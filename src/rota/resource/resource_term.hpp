// Resource terms: [r]^τ_ξ — rate r of located type ξ over interval τ.
#pragma once

#include <iosfwd>
#include <string>

#include "rota/resource/located_type.hpp"
#include "rota/time/interval.hpp"

namespace rota {

class ResourceTerm {
 public:
  /// Constructs [rate]^interval_type. Rates must be non-negative (the paper:
  /// "resource terms cannot be negative"); a zero rate or empty interval
  /// yields a null term.
  ResourceTerm(Rate rate, const TimeInterval& interval, const LocatedType& type);

  Rate rate() const { return rate_; }
  const TimeInterval& interval() const { return interval_; }
  const LocatedType& type() const { return type_; }

  /// "Resources are only defined during non-empty time intervals": a term
  /// with empty interval (or zero rate) is null — it denotes no resource.
  bool is_null() const { return interval_.empty() || rate_ == 0; }

  /// Total quantity r × |τ| deliverable by this term.
  Quantity total_quantity() const {
    return static_cast<Quantity>(rate_) * interval_.length();
  }

  /// The paper's strict domination order on terms: ξ1 satisfies ξ2, r1 > r2,
  /// and τ2 during τ1 (inclusive). "A computation that requires the latter
  /// can instead use the former, with some to spare."
  bool dominates_strictly(const ResourceTerm& other) const;

  /// Weak domination (r1 >= r2): sufficient for satisfaction with nothing to
  /// spare; this is the order feasibility checking uses.
  bool dominates(const ResourceTerm& other) const;

  bool operator==(const ResourceTerm&) const = default;

  /// "[r]^[s,e)_<kind, loc>".
  std::string to_string() const;

 private:
  Rate rate_;
  TimeInterval interval_;
  LocatedType type_;
};

/// The paper's term inequality [r1]^τ1_ξ1 > [r2]^τ2_ξ2.
inline bool operator>(const ResourceTerm& a, const ResourceTerm& b) {
  return a.dominates_strictly(b);
}

std::ostream& operator<<(std::ostream& os, const ResourceTerm& t);

}  // namespace rota
