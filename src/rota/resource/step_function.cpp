#include "rota/resource/step_function.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "rota/resource/simd.hpp"
#include "rota/util/arena.hpp"

namespace rota {
namespace {

// Below this many segments the SoA restructure (for combines) or the gather
// setup (for min_value) cannot pay for itself, whatever the host. Above it,
// min_value wins outright; combines stay behind the opt-in
// simd::combine_enabled() gate — see the measurement notes in simd.hpp. The
// e7 micro-bench covers both sides of the threshold.
constexpr std::size_t kVectorizeThreshold = 16;

// The strided-min kernel reads Segment::value in place, so pin the layout it
// assumes: three contiguous 64-bit lanes {start, end, value}.
static_assert(sizeof(Segment) == 3 * sizeof(std::int64_t));
static_assert(sizeof(Tick) == sizeof(std::int64_t) &&
              sizeof(Rate) == sizeof(std::int64_t));

}  // namespace

StepFunction::StepFunction(const TimeInterval& iv, Rate value) {
  if (!iv.empty() && value != 0) segments_.push_back({iv, value});
}

void StepFunction::normalize() {
  std::vector<Segment> out;
  out.reserve(segments_.size());
  for (const auto& seg : segments_) {
    if (seg.interval.empty() || seg.value == 0) continue;
    if (!out.empty() && out.back().value == seg.value &&
        out.back().interval.end() == seg.interval.start()) {
      out.back().interval =
          TimeInterval(out.back().interval.start(), seg.interval.end());
    } else {
      out.push_back(seg);
    }
  }
  segments_ = std::move(out);
}

Rate StepFunction::value_at(Tick t) const {
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](Tick v, const Segment& s) { return v < s.interval.start(); });
  if (it == segments_.begin()) return 0;
  const Segment& seg = *std::prev(it);
  return seg.interval.contains(t) ? seg.value : 0;
}

template <typename Op>
StepFunction StepFunction::combine(const StepFunction& other, Op op) const {
  // Both segment lists are sorted and disjoint, and each function is constant
  // between consecutive boundaries, so one merge walk over the two lists
  // produces the result in canonical form: advance a cursor boundary to
  // boundary, emitting op(value here, value there) and coalescing runs as
  // they appear. One pass, no boundary sort, no per-boundary binary search.
  // (Requires op(0, 0) == 0, which holds for +, -, min, and max — anything
  // else would be nonzero over the unbounded gaps outside both supports.)
  const auto& a = segments_;
  const auto& b = other.segments_;
  StepFunction result;
  result.segments_.reserve(a.size() + b.size());
  std::size_t ia = 0, ib = 0;
  Tick t = std::numeric_limits<Tick>::min();
  if (!a.empty()) t = a.front().interval.start();
  if (!b.empty() && (a.empty() || b.front().interval.start() < t)) {
    t = b.front().interval.start();
  }
  while (ia < a.size() || ib < b.size()) {
    while (ia < a.size() && a[ia].interval.end() <= t) ++ia;
    while (ib < b.size() && b[ib].interval.end() <= t) ++ib;
    if (ia >= a.size() && ib >= b.size()) break;
    Rate va = 0, vb = 0;
    Tick next = std::numeric_limits<Tick>::max();
    if (ia < a.size()) {
      if (a[ia].interval.start() <= t) {
        va = a[ia].value;
        next = a[ia].interval.end();
      } else {
        next = a[ia].interval.start();
      }
    }
    if (ib < b.size()) {
      if (b[ib].interval.start() <= t) {
        vb = b[ib].value;
        next = std::min(next, b[ib].interval.end());
      } else {
        next = std::min(next, b[ib].interval.start());
      }
    }
    const Rate v = op(va, vb);
    if (v != 0) {
      if (!result.segments_.empty() && result.segments_.back().value == v &&
          result.segments_.back().interval.end() == t) {
        result.segments_.back().interval =
            TimeInterval(result.segments_.back().interval.start(), next);
      } else {
        result.segments_.push_back({TimeInterval(t, next), v});
      }
    }
    t = next;
  }
  return result;
}

StepFunction StepFunction::combine_vectorized(const StepFunction& other,
                                              CombineOp op) const {
  // Same boundary walk as combine(), split into three passes so the value
  // arithmetic runs 4 lanes wide: (1) scalar walk fills SoA arrays from a
  // thread-local bump arena (zero heap traffic in steady state), (2) vector
  // kernel combines the value lanes, (3) scalar coalesce emits canonical
  // segments with the exact emission rules of the single-pass walk.
  const auto& a = segments_;
  const auto& b = other.segments_;
  thread_local util::BumpArena arena(1 << 14);
  arena.reset();
  // Each walk iteration strictly advances t to the next boundary drawn from
  // the 2(|a|+|b|) segment endpoints, so this bound is exact. Records are
  // contiguous (each iteration's start is the previous iteration's end, gaps
  // included as zero-value records), so only n+1 boundaries are stored: the
  // i-th record spans [ts[i], ts[i+1]).
  const std::size_t cap = 2 * (a.size() + b.size());
  Tick* ts = arena.allocate_array<Tick>(cap + 1);
  std::int64_t* va = arena.allocate_array<std::int64_t>(cap);
  std::int64_t* vb = arena.allocate_array<std::int64_t>(cap);
  std::size_t n = 0;

  std::size_t ia = 0, ib = 0;
  Tick t = std::numeric_limits<Tick>::min();
  if (!a.empty()) t = a.front().interval.start();
  if (!b.empty() && (a.empty() || b.front().interval.start() < t)) {
    t = b.front().interval.start();
  }
  while (ia < a.size() || ib < b.size()) {
    while (ia < a.size() && a[ia].interval.end() <= t) ++ia;
    while (ib < b.size() && b[ib].interval.end() <= t) ++ib;
    if (ia >= a.size() && ib >= b.size()) break;
    Rate here_a = 0, here_b = 0;
    Tick next = std::numeric_limits<Tick>::max();
    if (ia < a.size()) {
      if (a[ia].interval.start() <= t) {
        here_a = a[ia].value;
        next = a[ia].interval.end();
      } else {
        next = a[ia].interval.start();
      }
    }
    if (ib < b.size()) {
      if (b[ib].interval.start() <= t) {
        here_b = b[ib].value;
        next = std::min(next, b[ib].interval.end());
      } else {
        next = std::min(next, b[ib].interval.start());
      }
    }
    ts[n] = t;
    va[n] = here_a;
    vb[n] = here_b;
    ++n;
    t = next;
  }
  ts[n] = t;  // closing boundary of the last record

  switch (op) {
    case CombineOp::kPlus:
      simd::add_i64(va, vb, va, n);
      break;
    case CombineOp::kMinus:
      simd::sub_i64(va, vb, va, n);
      break;
    case CombineOp::kMin:
      simd::min_i64(va, vb, va, n);
      break;
    case CombineOp::kMax:
      simd::max_i64(va, vb, va, n);
      break;
  }

  StepFunction result;
  result.segments_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Rate v = va[i];
    if (v == 0) continue;
    if (!result.segments_.empty() && result.segments_.back().value == v &&
        result.segments_.back().interval.end() == ts[i]) {
      result.segments_.back().interval =
          TimeInterval(result.segments_.back().interval.start(), ts[i + 1]);
    } else {
      result.segments_.push_back({TimeInterval(ts[i], ts[i + 1]), v});
    }
  }
  return result;
}

StepFunction StepFunction::plus(const StepFunction& other) const {
  if (segments_.size() + other.segments_.size() >= kVectorizeThreshold &&
      simd::combine_enabled()) {
    return combine_vectorized(other, CombineOp::kPlus);
  }
  return combine(other, [](Rate a, Rate b) { return a + b; });
}

StepFunction StepFunction::minus(const StepFunction& other) const {
  if (segments_.size() + other.segments_.size() >= kVectorizeThreshold &&
      simd::combine_enabled()) {
    return combine_vectorized(other, CombineOp::kMinus);
  }
  return combine(other, [](Rate a, Rate b) { return a - b; });
}

void StepFunction::add(const TimeInterval& iv, Rate value) {
  *this = plus(StepFunction(iv, value));
}

StepFunction StepFunction::min(const StepFunction& other) const {
  if (segments_.size() + other.segments_.size() >= kVectorizeThreshold &&
      simd::combine_enabled()) {
    return combine_vectorized(other, CombineOp::kMin);
  }
  return combine(other, [](Rate a, Rate b) { return a < b ? a : b; });
}

StepFunction StepFunction::max(const StepFunction& other) const {
  if (segments_.size() + other.segments_.size() >= kVectorizeThreshold &&
      simd::combine_enabled()) {
    return combine_vectorized(other, CombineOp::kMax);
  }
  return combine(other, [](Rate a, Rate b) { return a > b ? a : b; });
}

StepFunction StepFunction::restricted(const TimeInterval& window) const {
  StepFunction result;
  for (const auto& seg : segments_) {
    const TimeInterval x = seg.interval.intersection(window);
    if (!x.empty()) result.segments_.push_back({x, seg.value});
  }
  result.normalize();
  return result;
}

StepFunction StepFunction::clamped_nonnegative() const {
  StepFunction result;
  for (const auto& seg : segments_) {
    if (seg.value > 0) result.segments_.push_back(seg);
  }
  result.normalize();
  return result;
}

Rate StepFunction::min_value() const {
  // The function is 0 outside its support, so the min starts (and floors) at
  // 0. The vector path scans the value lane of the AoS segment layout in
  // place (stride 3, offset 2 — see the static_asserts above).
  if (segments_.size() >= kVectorizeThreshold && simd::enabled()) {
    return simd::strided_min_i64(
        reinterpret_cast<const std::int64_t*>(segments_.data()),
        segments_.size(), 3, 2, 0);
  }
  Rate m = 0;
  for (const auto& seg : segments_) m = std::min(m, seg.value);
  return m;
}

Rate StepFunction::min_over(const TimeInterval& window) const {
  if (window.empty()) return 0;
  Rate m = std::numeric_limits<Rate>::max();
  Tick covered_until = window.start();
  for (const auto& seg : segments_) {
    const TimeInterval x = seg.interval.intersection(window);
    if (x.empty()) continue;
    if (x.start() > covered_until) m = std::min<Rate>(m, 0);  // gap inside window
    m = std::min(m, seg.value);
    covered_until = std::max(covered_until, x.end());
  }
  if (covered_until < window.end()) m = std::min<Rate>(m, 0);
  return m == std::numeric_limits<Rate>::max() ? 0 : m;
}

Quantity StepFunction::integral(const TimeInterval& window) const {
  Quantity total = 0;
  for (const auto& seg : segments_) {
    const TimeInterval x = seg.interval.intersection(window);
    total += static_cast<Quantity>(x.length()) * seg.value;
  }
  return total;
}

Quantity StepFunction::integral() const {
  Quantity total = 0;
  for (const auto& seg : segments_) {
    total += static_cast<Quantity>(seg.interval.length()) * seg.value;
  }
  return total;
}

bool StepFunction::dominates(const StepFunction& other) const {
  return minus(other).min_value() >= 0;
}

IntervalSet StepFunction::support() const {
  IntervalSet out;
  for (const auto& seg : segments_) {
    if (seg.value > 0) out.insert(seg.interval);
  }
  return out;
}

IntervalSet StepFunction::where_at_least(Rate threshold, const TimeInterval& window) const {
  if (threshold <= 0) {
    throw std::invalid_argument("where_at_least requires a positive threshold");
  }
  IntervalSet out;
  for (const auto& seg : segments_) {
    if (seg.value < threshold) continue;
    const TimeInterval x = seg.interval.intersection(window);
    if (!x.empty()) out.insert(x);
  }
  return out;
}

std::optional<Tick> StepFunction::earliest_cover(const TimeInterval& window,
                                                 Quantity q) const {
  if (q < 0) throw std::invalid_argument("earliest_cover requires q >= 0");
  if (q == 0) return window.start();
  Quantity remaining = q;
  for (const auto& seg : segments_) {
    const TimeInterval x = seg.interval.intersection(window);
    if (x.empty() || seg.value <= 0) continue;
    const Quantity here = static_cast<Quantity>(x.length()) * seg.value;
    if (here >= remaining) {
      const Tick ticks_needed = (remaining + seg.value - 1) / seg.value;  // ceil
      return x.start() + ticks_needed;
    }
    remaining -= here;
  }
  return std::nullopt;
}

std::optional<Tick> StepFunction::latest_cover_start(const TimeInterval& window,
                                                     Quantity q) const {
  if (q < 0) throw std::invalid_argument("latest_cover_start requires q >= 0");
  if (q == 0) return window.end();
  Quantity remaining = q;
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    const TimeInterval x = it->interval.intersection(window);
    if (x.empty() || it->value <= 0) continue;
    const Quantity here = static_cast<Quantity>(x.length()) * it->value;
    if (here >= remaining) {
      const Tick ticks_needed = (remaining + it->value - 1) / it->value;  // ceil
      return x.end() - ticks_needed;
    }
    remaining -= here;
  }
  return std::nullopt;
}

StepFunction StepFunction::coarsened(Tick factor) const {
  if (factor <= 0) throw std::invalid_argument("coarsened requires factor >= 1");
  if (factor == 1 || segments_.empty()) return *this;

  auto floor_div = [](Tick a, Tick b) {
    return a >= 0 ? a / b : -((-a + b - 1) / b);
  };
  const Tick first_bucket = floor_div(segments_.front().interval.start(), factor);
  const Tick last_bucket = floor_div(segments_.back().interval.end() - 1, factor);

  StepFunction result;
  for (Tick b = first_bucket; b <= last_bucket; ++b) {
    const TimeInterval bucket(b * factor, (b + 1) * factor);
    const Rate v = min_over(bucket);  // counts gaps inside the bucket as 0
    if (v != 0) result.segments_.push_back({bucket, v});
  }
  result.normalize();
  return result;
}

StepFunction StepFunction::shifted(Tick dt) const {
  StepFunction result;
  result.segments_.reserve(segments_.size());
  for (const auto& seg : segments_) {
    result.segments_.push_back({seg.interval.shifted(dt), seg.value});
  }
  return result;
}

std::string StepFunction::to_string() const {
  if (segments_.empty()) return "0";
  std::ostringstream out;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (i != 0) out << " + ";
    out << segments_[i].value << '@' << segments_[i].interval.to_string();
  }
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const StepFunction& f) {
  return os << f.to_string();
}

}  // namespace rota
