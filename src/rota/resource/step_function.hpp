// Piecewise-constant rate profiles over discrete time.
//
// This is the engine behind the paper's resource-set simplification: a set of
// resource terms with one located type is exactly a step function mapping
// each tick to the aggregate available rate. Union of terms is pointwise
// addition; relative complement is pointwise subtraction; the paper's
// "simplification" (splitting overlapping terms into aligned segments with
// summed rates) is the canonical segment representation maintained here.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "rota/time/interval.hpp"
#include "rota/time/interval_set.hpp"

namespace rota {

/// One maximal run of constant value. Canonical step functions keep segments
/// sorted, disjoint, non-empty, with non-zero values, and never store two
/// touching segments of equal value.
struct Segment {
  TimeInterval interval;
  Rate value = 0;

  bool operator==(const Segment&) const = default;
};

class StepFunction {
 public:
  /// The zero function.
  StepFunction() = default;

  /// value on `iv`, zero elsewhere.
  StepFunction(const TimeInterval& iv, Rate value);

  static StepFunction zero() { return StepFunction(); }

  bool is_zero() const { return segments_.empty(); }

  /// f(t).
  Rate value_at(Tick t) const;

  /// Pointwise addition / subtraction. Values may go negative under
  /// subtraction; callers that need non-negativity check `min_value()`.
  StepFunction plus(const StepFunction& other) const;
  StepFunction minus(const StepFunction& other) const;
  void add(const TimeInterval& iv, Rate value);

  /// Pointwise min / max with another function.
  StepFunction min(const StepFunction& other) const;
  StepFunction max(const StepFunction& other) const;

  /// Restriction: equal to *this inside `window`, zero outside.
  StepFunction restricted(const TimeInterval& window) const;

  /// Pointwise clamp to non-negative values.
  StepFunction clamped_nonnegative() const;

  /// Smallest value attained anywhere (0 if the support is not all of time —
  /// i.e., min over the whole timeline, where the function is 0 outside its
  /// support). For "is this non-negative everywhere" checks.
  Rate min_value() const;

  /// Minimum value over `window` (including zero stretches inside it).
  Rate min_over(const TimeInterval& window) const;

  /// ∫ f over `window` — the total quantity available in the window.
  Quantity integral(const TimeInterval& window) const;
  Quantity integral() const;

  /// True iff f(t) >= other(t) for all t.
  bool dominates(const StepFunction& other) const;

  /// Ticks where f > 0.
  IntervalSet support() const;
  /// Ticks within `window` where f >= `threshold` (threshold > 0).
  IntervalSet where_at_least(Rate threshold, const TimeInterval& window) const;

  /// Earliest tick t >= window.start such that ∫_{window.start}^{t} f >= q,
  /// counting only ticks inside `window`; nullopt when the window's total
  /// supply is insufficient. q must be >= 0. For q == 0 returns window.start.
  std::optional<Tick> earliest_cover(const TimeInterval& window, Quantity q) const;

  /// Latest tick t <= window.end such that ∫_{t}^{window.end} f >= q;
  /// nullopt when insufficient. (Used by ALAP schedule policies.)
  std::optional<Tick> latest_cover_start(const TimeInterval& window, Quantity q) const;

  /// Translate in time.
  StepFunction shifted(Tick dt) const;

  /// Conservative downsample to buckets of `factor` ticks (aligned at 0):
  /// each bucket takes the *minimum* value attained inside it, so the result
  /// never overstates availability — any plan feasible against the coarse
  /// profile is feasible against the original. This is the paper's "Δt
  /// defined according to the desired control granularity" as an operation:
  /// reason at coarse granularity, execute at fine.
  StepFunction coarsened(Tick factor) const;

  const std::vector<Segment>& segments() const { return segments_; }

  bool operator==(const StepFunction&) const = default;

  std::string to_string() const;

 private:
  /// Re-establishes canonical form from arbitrary (sorted, disjoint) pieces.
  void normalize();

  /// Generic pointwise combine over aligned segment boundaries.
  template <typename Op>
  StepFunction combine(const StepFunction& other, Op op) const;

  /// SIMD variant of combine(): the same boundary walk fills SoA value
  /// arrays, a vector kernel does the pointwise op, and a scalar coalesce
  /// emits canonical segments. Bit-identical to combine(); used for large
  /// inputs when rota::simd::enabled().
  enum class CombineOp { kPlus, kMinus, kMin, kMax };
  StepFunction combine_vectorized(const StepFunction& other, CombineOp op) const;

  std::vector<Segment> segments_;
};

std::ostream& operator<<(std::ostream& os, const StepFunction& f);

}  // namespace rota
