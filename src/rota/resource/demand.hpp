// Resource demands: located quantities, the codomain of the paper's Φ.
//
// Where a resource *term* promises a rate over an interval, a *demand* is a
// total amount of a located type that some action must absorb — "{4} units of
// <network, l1 -> l2>". A demand set maps located types to required amounts.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "rota/resource/located_type.hpp"
#include "rota/time/tick.hpp"

namespace rota {

struct Demand {
  LocatedType type;
  Quantity quantity = 0;

  bool operator==(const Demand&) const = default;
};

/// An aggregated multi-type demand (e.g. migrate needs cpu at the source,
/// network on the link, and cpu at the destination).
class DemandSet {
 public:
  DemandSet() = default;

  void add(const LocatedType& type, Quantity quantity);
  void add(const Demand& d) { add(d.type, d.quantity); }
  void merge(const DemandSet& other);

  /// Removes `quantity` units of `type`; throws if more than is present
  /// (consumption may not overshoot a requirement).
  void subtract(const LocatedType& type, Quantity quantity);

  bool empty() const { return amounts_.empty(); }
  std::size_t size() const { return amounts_.size(); }
  Quantity of(const LocatedType& type) const;
  Quantity total() const;

  /// The located amounts, sorted by type. Kept flat (planning iterates
  /// demands on every admission request) — pair layout preserves the
  /// `->first` / `->second` access of the former map interface.
  const std::vector<std::pair<LocatedType, Quantity>>& amounts() const {
    return amounts_;
  }

  bool operator==(const DemandSet&) const = default;

  std::string to_string() const;

 private:
  std::vector<std::pair<LocatedType, Quantity>> amounts_;  // sorted; values > 0
};

std::ostream& operator<<(std::ostream& os, const DemandSet& d);

}  // namespace rota
