#include "rota/resource/located_type.hpp"

#include <mutex>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace rota {

namespace {

// Global intern table for location names. Guarded for thread-safe creation;
// lookups by id read an append-only vector under the same lock for
// simplicity (location creation is not on any hot path).
struct InternTable {
  std::mutex mu;
  std::unordered_map<std::string, std::uint32_t> by_name;
  std::vector<std::string> names{"<nowhere>"};  // id 0 reserved
};

InternTable& interns() {
  static InternTable table;
  return table;
}

}  // namespace

Location::Location(const std::string& name) {
  if (name.empty()) throw std::invalid_argument("Location name must be non-empty");
  auto& table = interns();
  std::lock_guard<std::mutex> lock(table.mu);
  auto [it, inserted] = table.by_name.emplace(name, static_cast<std::uint32_t>(table.names.size()));
  if (inserted) table.names.push_back(name);
  id_ = it->second;
}

std::string Location::name() const {
  auto& table = interns();
  std::lock_guard<std::mutex> lock(table.mu);
  return table.names.at(id_);
}

std::string kind_name(ResourceKind k) {
  switch (k) {
    case ResourceKind::kCpu: return "cpu";
    case ResourceKind::kNetwork: return "network";
    case ResourceKind::kMemory: return "memory";
    case ResourceKind::kDisk: return "disk";
    case ResourceKind::kCustom: return "custom";
  }
  throw std::invalid_argument("invalid ResourceKind");
}

LocatedType LocatedType::node(ResourceKind kind, Location at) {
  return LocatedType(kind, at, at);
}

LocatedType LocatedType::link(ResourceKind kind, Location from, Location to) {
  if (from == to) {
    throw std::invalid_argument("link resource requires distinct endpoints");
  }
  return LocatedType(kind, from, to);
}

std::string LocatedType::to_string() const {
  std::string out = "<" + kind_name(kind_) + ", " + source_.name();
  if (is_link()) out += " -> " + destination_.name();
  out += ">";
  return out;
}

std::ostream& operator<<(std::ostream& os, const Location& l) { return os << l.name(); }
std::ostream& operator<<(std::ostream& os, const LocatedType& t) {
  return os << t.to_string();
}

}  // namespace rota
