// Resource sets (Θ in the paper): collections of resource terms with
// automatic simplification.
//
// Internally a resource set keys a canonical step function of available rate
// by located type. This makes the paper's operations exact and cheap:
//   * union (resources joining)       = pointwise addition,
//   * simplification                  = canonical segment form,
//   * relative complement (consuming) = pointwise subtraction, defined only
//     when the subtrahend is dominated everywhere,
//   * term extraction                 = reading the segments back out.
//
// The per-type profiles live in a flat vector sorted by located type (no
// zero functions stored). Admission planning unions and subtracts resource
// sets on every request, so the binary operations below are merge walks over
// the two sorted vectors — one pass, no node allocations — rather than
// per-key tree lookups.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "rota/resource/demand.hpp"
#include "rota/resource/resource_term.hpp"
#include "rota/resource/step_function.hpp"

namespace rota {

class ResourceSet {
 public:
  ResourceSet() = default;
  ResourceSet(std::initializer_list<ResourceTerm> terms) {
    for (const auto& t : terms) add(t);
  }

  /// Union with a single term (Θ ∪ {[r]^τ_ξ}), simplifying as the paper does.
  void add(const ResourceTerm& term);
  void add(Rate rate, const TimeInterval& interval, const LocatedType& type) {
    add(ResourceTerm(rate, interval, type));
  }
  /// Union with a whole per-type profile; moves the profile into place when
  /// the type is new.
  void add(const LocatedType& type, StepFunction profile);

  /// Θ1 ∪ Θ2 with simplification.
  ResourceSet unioned(const ResourceSet& other) const&;
  /// Move-aware overload: reuses this set's storage.
  ResourceSet unioned(const ResourceSet& other) &&;

  /// In-place union (Θ ← Θ ∪ Θ2) — the ledger's join path.
  void union_with(const ResourceSet& other);

  /// Θ1 \ Θ2 — the paper's relative complement. Defined only when every term
  /// of `other` is dominated by availability here; returns nullopt otherwise
  /// (equivalently: when subtraction would drive some rate negative).
  std::optional<ResourceSet> relative_complement(const ResourceSet& other) const;

  /// True iff this set can stand in for `other` everywhere (pointwise >=,
  /// per located type). The set-level counterpart of term domination.
  bool dominates(const ResourceSet& other) const;

  bool empty() const;

  /// The simplified terms — maximal constant-rate runs per located type,
  /// exactly what the paper's simplification rule produces.
  std::vector<ResourceTerm> terms() const;
  std::size_t term_count() const;

  /// Availability profile of one located type (zero function if absent).
  const StepFunction& availability(const LocatedType& type) const;

  std::vector<LocatedType> types() const;

  /// Allocation-free type iteration (`fn(const LocatedType&)`), in sorted
  /// order — the ledger's shard-footprint walk.
  template <typename Fn>
  void for_each_type(Fn&& fn) const {
    for (const auto& [type, profile] : by_type_) fn(type);
  }

  /// ⋃_s^d Θ restricted to a window (the f-function's left-hand side).
  ResourceSet restricted(const TimeInterval& window) const;

  /// restricted(window) keeping only types where `keep(type)` holds — the
  /// shard-filtered snapshot view: one pass, no intermediate full copy.
  template <typename Pred>
  ResourceSet restricted_if(const TimeInterval& window, Pred&& keep) const {
    ResourceSet out;
    out.by_type_.reserve(by_type_.size());
    for (const auto& [type, profile] : by_type_) {
      if (!keep(type)) continue;
      StepFunction r = profile.restricted(window);
      if (!r.is_zero()) out.by_type_.emplace_back(type, std::move(r));
    }
    return out;
  }

  /// Total quantity of `type` deliverable within `window`.
  Quantity quantity(const LocatedType& type, const TimeInterval& window) const;

  /// The paper's satisfaction function f(Θ, ρ(γ,s,d)) for a single demand
  /// set: every located quantity must be coverable within the window.
  bool satisfies(const DemandSet& demand, const TimeInterval& window) const;

  /// Drops all supply strictly before `t` (resources in the past are gone —
  /// used when advancing system states).
  ResourceSet from(Tick t) const;

  /// Conservative coarse-granularity view: every type's profile downsampled
  /// to `factor`-tick buckets at the bucket minimum (see
  /// StepFunction::coarsened). Reasoning against the result is sound for the
  /// original supply, at reduced precision and (on fragmented profiles)
  /// reduced cost.
  ResourceSet coarsened(Tick factor) const;

  /// Latest tick at which any supply exists; nullopt for an empty set.
  std::optional<Tick> horizon() const;

  bool operator==(const ResourceSet&) const = default;

  std::string to_string() const;

 private:
  using Entry = std::pair<LocatedType, StepFunction>;

  static const StepFunction& zero_function();

  /// Profile of `type`, or nullptr if absent.
  StepFunction* find(const LocatedType& type);
  const StepFunction* find(const LocatedType& type) const;

  std::vector<Entry> by_type_;  // sorted by type, unique, no zero functions
};

std::ostream& operator<<(std::ostream& os, const ResourceSet& s);

}  // namespace rota
