// Vector kernels for the resource-calculus merge walks.
//
// The calculus hot path is dominated by pointwise combines of canonical
// step-function segment lists (plus/minus/min/max under union, relative
// complement, and domination checks). The merge walk that aligns segment
// boundaries is inherently sequential, but once the boundaries are aligned
// the value arithmetic is embarrassingly data-parallel — that split is
// exactly what StepFunction::combine exploits: a scalar boundary walk fills
// arena-backed SoA arrays, the kernels below do the value pass 4 lanes at a
// time, and a scalar coalesce emits canonical segments. Results are
// bit-identical to the scalar path (integer ops only, no reassociation of
// anything order-sensitive), which the fuzz parity suite pins.
//
// Dispatch is two-layered:
//   * build time — the ROTA_SIMD CMake option (default ON) compiles the AVX2
//     bodies with a function-level target attribute, so the rest of the
//     library keeps its portable codegen; OFF builds scalar-only.
//   * run time — kernels check cpu support once (cached) and fall back to
//     scalar loops on machines without AVX2. set_enabled(false) forces the
//     scalar path globally; tests and micro-benches use it for A/B parity.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rota::simd {

/// True when AVX2 kernels are compiled in AND the cpu supports them.
bool available();

/// True when vector kernels will actually run (available() && not disabled).
bool enabled();

/// Gate for the three-pass vectorized combine in StepFunction (plus/minus/
/// min/max). Off by default: measured end-to-end, the scalar fused merge
/// walk beats the SoA split for these one-instruction value ops (the walk
/// dominates; the split only adds memory traffic). The path stays available
/// — and bit-exact, pinned by the parity suite — for A/B measurement and
/// for hosts/ISAs where wider vectors change the balance. Enable with
/// set_combine_enabled(true) or ROTA_SIMD=all in the environment.
/// Reduction-style scans (min_value) are not affected by this gate; they
/// win outright and follow enabled() alone.
bool combine_enabled();
void set_combine_enabled(bool on);

/// Force-disable (or re-enable) the vector path at runtime. Not thread-safe
/// against concurrent kernel calls; intended for test/bench setup. The
/// environment variable ROTA_SIMD=off (or 0) sets the initial state to
/// disabled — the no-rebuild A/B knob for production workloads.
void set_enabled(bool on);

/// out[i] = a[i] + b[i]. Arrays may not overlap except out == a or out == b.
void add_i64(const std::int64_t* a, const std::int64_t* b, std::int64_t* out,
             std::size_t n);
/// out[i] = a[i] - b[i].
void sub_i64(const std::int64_t* a, const std::int64_t* b, std::int64_t* out,
             std::size_t n);
/// out[i] = min(a[i], b[i]).
void min_i64(const std::int64_t* a, const std::int64_t* b, std::int64_t* out,
             std::size_t n);
/// out[i] = max(a[i], b[i]).
void max_i64(const std::int64_t* a, const std::int64_t* b, std::int64_t* out,
             std::size_t n);

/// min over { base[i*stride + offset] : i in [0, n) }, at least `floor`.
/// Strided so it can scan Segment::value fields in place (stride 3 over the
/// {start, end, value} AoS layout) without a gather-side copy. Returns
/// `floor` when n == 0.
std::int64_t strided_min_i64(const std::int64_t* base, std::size_t n,
                             std::size_t stride, std::size_t offset,
                             std::int64_t floor);

}  // namespace rota::simd
