#include "rota/resource/demand.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rota {

void DemandSet::add(const LocatedType& type, Quantity quantity) {
  if (quantity < 0) throw std::invalid_argument("demand quantities cannot be negative");
  if (quantity == 0) return;
  amounts_[type] += quantity;
}

void DemandSet::merge(const DemandSet& other) {
  for (const auto& [type, q] : other.amounts_) add(type, q);
}

void DemandSet::subtract(const LocatedType& type, Quantity quantity) {
  if (quantity < 0) throw std::invalid_argument("cannot subtract a negative demand");
  if (quantity == 0) return;
  auto it = amounts_.find(type);
  if (it == amounts_.end() || it->second < quantity) {
    throw std::invalid_argument("demand subtraction overshoots: removing " +
                                std::to_string(quantity) + " of " + type.to_string());
  }
  it->second -= quantity;
  if (it->second == 0) amounts_.erase(it);
}

Quantity DemandSet::of(const LocatedType& type) const {
  auto it = amounts_.find(type);
  return it == amounts_.end() ? 0 : it->second;
}

Quantity DemandSet::total() const {
  Quantity sum = 0;
  for (const auto& [type, q] : amounts_) sum += q;
  return sum;
}

std::string DemandSet::to_string() const {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (const auto& [type, q] : amounts_) {
    if (!first) out << ", ";
    out << '{' << q << '}' << '_' << type.to_string();
    first = false;
  }
  out << '}';
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const DemandSet& d) {
  return os << d.to_string();
}

}  // namespace rota
