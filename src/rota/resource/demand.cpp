#include "rota/resource/demand.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rota {

namespace {

struct AmountTypeLess {
  bool operator()(const std::pair<LocatedType, Quantity>& a,
                  const LocatedType& t) const {
    return a.first < t;
  }
};

}  // namespace

void DemandSet::add(const LocatedType& type, Quantity quantity) {
  if (quantity < 0) throw std::invalid_argument("demand quantities cannot be negative");
  if (quantity == 0) return;
  auto it = std::lower_bound(amounts_.begin(), amounts_.end(), type, AmountTypeLess{});
  if (it != amounts_.end() && it->first == type) {
    it->second += quantity;
  } else {
    amounts_.emplace(it, type, quantity);
  }
}

void DemandSet::merge(const DemandSet& other) {
  if (other.amounts_.empty()) return;
  if (amounts_.empty()) {
    amounts_ = other.amounts_;
    return;
  }
  std::vector<std::pair<LocatedType, Quantity>> merged;
  merged.reserve(amounts_.size() + other.amounts_.size());
  auto a = amounts_.begin();
  auto b = other.amounts_.begin();
  while (a != amounts_.end() && b != other.amounts_.end()) {
    if (a->first < b->first) {
      merged.push_back(*a++);
    } else if (b->first < a->first) {
      merged.push_back(*b++);
    } else {
      merged.emplace_back(a->first, a->second + b->second);
      ++a;
      ++b;
    }
  }
  merged.insert(merged.end(), a, amounts_.end());
  merged.insert(merged.end(), b, other.amounts_.end());
  amounts_ = std::move(merged);
}

void DemandSet::subtract(const LocatedType& type, Quantity quantity) {
  if (quantity < 0) throw std::invalid_argument("cannot subtract a negative demand");
  if (quantity == 0) return;
  auto it = std::lower_bound(amounts_.begin(), amounts_.end(), type, AmountTypeLess{});
  if (it == amounts_.end() || !(it->first == type) || it->second < quantity) {
    throw std::invalid_argument("demand subtraction overshoots: removing " +
                                std::to_string(quantity) + " of " + type.to_string());
  }
  it->second -= quantity;
  if (it->second == 0) amounts_.erase(it);
}

Quantity DemandSet::of(const LocatedType& type) const {
  auto it = std::lower_bound(amounts_.begin(), amounts_.end(), type, AmountTypeLess{});
  return (it == amounts_.end() || !(it->first == type)) ? 0 : it->second;
}

Quantity DemandSet::total() const {
  Quantity sum = 0;
  for (const auto& [type, q] : amounts_) sum += q;
  return sum;
}

std::string DemandSet::to_string() const {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (const auto& [type, q] : amounts_) {
    if (!first) out << ", ";
    out << '{' << q << '}' << '_' << type.to_string();
    first = false;
  }
  out << '}';
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const DemandSet& d) {
  return os << d.to_string();
}

}  // namespace rota
