#include "rota/resource/resource_set.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace rota {

const StepFunction& ResourceSet::zero_function() {
  static const StepFunction zero;
  return zero;
}

void ResourceSet::add(const ResourceTerm& term) {
  if (term.is_null()) return;
  auto [it, inserted] =
      by_type_.emplace(term.type(), StepFunction(term.interval(), term.rate()));
  if (!inserted) it->second.add(term.interval(), term.rate());
}

ResourceSet ResourceSet::unioned(const ResourceSet& other) const {
  ResourceSet out = *this;
  for (const auto& [type, profile] : other.by_type_) {
    auto [it, inserted] = out.by_type_.emplace(type, profile);
    if (!inserted) it->second = it->second.plus(profile);
  }
  return out;
}

std::optional<ResourceSet> ResourceSet::relative_complement(
    const ResourceSet& other) const {
  ResourceSet out = *this;
  for (const auto& [type, needed] : other.by_type_) {
    auto it = out.by_type_.find(type);
    if (it == out.by_type_.end()) {
      if (!needed.is_zero()) return std::nullopt;
      continue;
    }
    StepFunction diff = it->second.minus(needed);
    if (diff.min_value() < 0) return std::nullopt;  // not dominated: undefined
    if (diff.is_zero()) {
      out.by_type_.erase(it);
    } else {
      it->second = std::move(diff);
    }
  }
  return out;
}

bool ResourceSet::dominates(const ResourceSet& other) const {
  for (const auto& [type, needed] : other.by_type_) {
    if (!availability(type).dominates(needed)) return false;
  }
  return true;
}

bool ResourceSet::empty() const {
  for (const auto& [type, profile] : by_type_) {
    if (!profile.is_zero()) return false;
  }
  return true;
}

std::vector<ResourceTerm> ResourceSet::terms() const {
  std::vector<ResourceTerm> out;
  for (const auto& [type, profile] : by_type_) {
    for (const auto& seg : profile.segments()) {
      out.emplace_back(seg.value, seg.interval, type);
    }
  }
  return out;
}

std::size_t ResourceSet::term_count() const {
  std::size_t n = 0;
  for (const auto& [type, profile] : by_type_) n += profile.segments().size();
  return n;
}

const StepFunction& ResourceSet::availability(const LocatedType& type) const {
  auto it = by_type_.find(type);
  return it == by_type_.end() ? zero_function() : it->second;
}

std::vector<LocatedType> ResourceSet::types() const {
  std::vector<LocatedType> out;
  out.reserve(by_type_.size());
  for (const auto& [type, profile] : by_type_) out.push_back(type);
  return out;
}

ResourceSet ResourceSet::restricted(const TimeInterval& window) const {
  ResourceSet out;
  for (const auto& [type, profile] : by_type_) {
    StepFunction r = profile.restricted(window);
    if (!r.is_zero()) out.by_type_.emplace(type, std::move(r));
  }
  return out;
}

Quantity ResourceSet::quantity(const LocatedType& type,
                               const TimeInterval& window) const {
  return availability(type).integral(window);
}

bool ResourceSet::satisfies(const DemandSet& demand,
                            const TimeInterval& window) const {
  for (const auto& [type, q] : demand.amounts()) {
    if (quantity(type, window) < q) return false;
  }
  return true;
}

ResourceSet ResourceSet::from(Tick t) const {
  return restricted(TimeInterval(t, kTickMax));
}

ResourceSet ResourceSet::coarsened(Tick factor) const {
  ResourceSet out;
  for (const auto& [type, profile] : by_type_) {
    StepFunction coarse = profile.coarsened(factor);
    if (!coarse.is_zero()) out.by_type_.emplace(type, std::move(coarse));
  }
  return out;
}

std::optional<Tick> ResourceSet::horizon() const {
  std::optional<Tick> latest;
  for (const auto& [type, profile] : by_type_) {
    if (profile.is_zero()) continue;
    const Tick end = profile.segments().back().interval.end();
    if (!latest || end > *latest) latest = end;
  }
  return latest;
}

std::string ResourceSet::to_string() const {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (const auto& term : terms()) {
    if (!first) out << ", ";
    out << term.to_string();
    first = false;
  }
  out << '}';
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const ResourceSet& s) {
  return os << s.to_string();
}

}  // namespace rota
