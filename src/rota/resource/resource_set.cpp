#include "rota/resource/resource_set.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace rota {

namespace {

struct EntryTypeLess {
  bool operator()(const std::pair<LocatedType, StepFunction>& e,
                  const LocatedType& t) const {
    return e.first < t;
  }
};

}  // namespace

const StepFunction& ResourceSet::zero_function() {
  static const StepFunction zero;
  return zero;
}

StepFunction* ResourceSet::find(const LocatedType& type) {
  auto it = std::lower_bound(by_type_.begin(), by_type_.end(), type, EntryTypeLess{});
  if (it == by_type_.end() || !(it->first == type)) return nullptr;
  return &it->second;
}

const StepFunction* ResourceSet::find(const LocatedType& type) const {
  return const_cast<ResourceSet*>(this)->find(type);
}

void ResourceSet::add(const ResourceTerm& term) {
  if (term.is_null()) return;
  auto it = std::lower_bound(by_type_.begin(), by_type_.end(), term.type(),
                             EntryTypeLess{});
  if (it != by_type_.end() && it->first == term.type()) {
    it->second.add(term.interval(), term.rate());
    // A positive term can exactly cancel a negative stretch of the stored
    // profile; keep the no-zero-profiles invariant.
    if (it->second.is_zero()) by_type_.erase(it);
  } else {
    by_type_.emplace(it, term.type(), StepFunction(term.interval(), term.rate()));
  }
}

void ResourceSet::add(const LocatedType& type, StepFunction profile) {
  if (profile.is_zero()) return;
  auto it = std::lower_bound(by_type_.begin(), by_type_.end(), type, EntryTypeLess{});
  if (it != by_type_.end() && it->first == type) {
    it->second = it->second.plus(profile);
    if (it->second.is_zero()) by_type_.erase(it);
  } else {
    by_type_.emplace(it, type, std::move(profile));
  }
}

ResourceSet ResourceSet::unioned(const ResourceSet& other) const& {
  ResourceSet out;
  out.by_type_.reserve(by_type_.size() + other.by_type_.size());
  auto a = by_type_.begin();
  auto b = other.by_type_.begin();
  while (a != by_type_.end() && b != other.by_type_.end()) {
    if (a->first < b->first) {
      out.by_type_.push_back(*a++);
    } else if (b->first < a->first) {
      out.by_type_.push_back(*b++);
    } else {
      StepFunction sum = a->second.plus(b->second);
      // Opposite-sign profiles can cancel exactly; drop zero entries.
      if (!sum.is_zero()) out.by_type_.emplace_back(a->first, std::move(sum));
      ++a;
      ++b;
    }
  }
  out.by_type_.insert(out.by_type_.end(), a, by_type_.end());
  out.by_type_.insert(out.by_type_.end(), b, other.by_type_.end());
  return out;
}

ResourceSet ResourceSet::unioned(const ResourceSet& other) && {
  union_with(other);
  return std::move(*this);
}

void ResourceSet::union_with(const ResourceSet& other) {
  if (other.by_type_.empty()) return;
  if (by_type_.empty()) {
    by_type_ = other.by_type_;
    return;
  }
  // Merge from the back into freshly reserved space so matching types are
  // combined in place and new types are inserted in one pass.
  std::vector<Entry> merged;
  merged.reserve(by_type_.size() + other.by_type_.size());
  auto a = by_type_.begin();
  auto b = other.by_type_.begin();
  while (a != by_type_.end() && b != other.by_type_.end()) {
    if (a->first < b->first) {
      merged.push_back(std::move(*a++));
    } else if (b->first < a->first) {
      merged.push_back(*b++);
    } else {
      StepFunction sum = a->second.plus(b->second);
      if (!sum.is_zero()) merged.emplace_back(a->first, std::move(sum));
      ++a;
      ++b;
    }
  }
  for (; a != by_type_.end(); ++a) merged.push_back(std::move(*a));
  merged.insert(merged.end(), b, other.by_type_.end());
  by_type_ = std::move(merged);
}

std::optional<ResourceSet> ResourceSet::relative_complement(
    const ResourceSet& other) const {
  ResourceSet out;
  out.by_type_.reserve(by_type_.size());
  auto a = by_type_.begin();
  auto b = other.by_type_.begin();
  while (a != by_type_.end() && b != other.by_type_.end()) {
    if (a->first < b->first) {
      if (a->second.min_value() < 0) return std::nullopt;
      out.by_type_.push_back(*a++);
    } else if (b->first < a->first) {
      // Type absent here: availability is the zero function, so the
      // complement is defined iff 0 dominates b (b non-positive), and the
      // difference 0 - b may itself be a non-zero profile.
      StepFunction diff = StepFunction().minus(b->second);
      if (diff.min_value() < 0) return std::nullopt;
      if (!diff.is_zero()) out.by_type_.emplace_back(b->first, std::move(diff));
      ++b;
    } else {
      StepFunction diff = a->second.minus(b->second);
      if (diff.min_value() < 0) return std::nullopt;  // not dominated: undefined
      if (!diff.is_zero()) out.by_type_.emplace_back(a->first, std::move(diff));
      ++a;
      ++b;
    }
  }
  for (; b != other.by_type_.end(); ++b) {
    StepFunction diff = StepFunction().minus(b->second);
    if (diff.min_value() < 0) return std::nullopt;
    if (!diff.is_zero()) out.by_type_.emplace_back(b->first, std::move(diff));
  }
  for (; a != by_type_.end(); ++a) {
    if (a->second.min_value() < 0) return std::nullopt;
    out.by_type_.push_back(*a);
  }
  return out;
}

bool ResourceSet::dominates(const ResourceSet& other) const {
  // Pointwise over the union of mentioned types: a type absent on either
  // side is the zero function, so a negative profile here loses even against
  // a type `other` never mentions.
  auto a = by_type_.begin();
  auto b = other.by_type_.begin();
  while (a != by_type_.end() || b != other.by_type_.end()) {
    if (b == other.by_type_.end() ||
        (a != by_type_.end() && a->first < b->first)) {
      if (a->second.min_value() < 0) return false;
      ++a;
    } else if (a == by_type_.end() || b->first < a->first) {
      if (!zero_function().dominates(b->second)) return false;
      ++b;
    } else {
      if (!a->second.dominates(b->second)) return false;
      ++a;
      ++b;
    }
  }
  return true;
}

bool ResourceSet::empty() const {
  for (const auto& [type, profile] : by_type_) {
    if (!profile.is_zero()) return false;
  }
  return true;
}

std::vector<ResourceTerm> ResourceSet::terms() const {
  std::vector<ResourceTerm> out;
  out.reserve(term_count());
  for (const auto& [type, profile] : by_type_) {
    for (const auto& seg : profile.segments()) {
      out.emplace_back(seg.value, seg.interval, type);
    }
  }
  return out;
}

std::size_t ResourceSet::term_count() const {
  std::size_t n = 0;
  for (const auto& [type, profile] : by_type_) n += profile.segments().size();
  return n;
}

const StepFunction& ResourceSet::availability(const LocatedType& type) const {
  const StepFunction* f = find(type);
  return f == nullptr ? zero_function() : *f;
}

std::vector<LocatedType> ResourceSet::types() const {
  std::vector<LocatedType> out;
  out.reserve(by_type_.size());
  for (const auto& [type, profile] : by_type_) out.push_back(type);
  return out;
}

ResourceSet ResourceSet::restricted(const TimeInterval& window) const {
  ResourceSet out;
  out.by_type_.reserve(by_type_.size());
  for (const auto& [type, profile] : by_type_) {
    StepFunction r = profile.restricted(window);
    if (!r.is_zero()) out.by_type_.emplace_back(type, std::move(r));
  }
  return out;
}

Quantity ResourceSet::quantity(const LocatedType& type,
                               const TimeInterval& window) const {
  return availability(type).integral(window);
}

bool ResourceSet::satisfies(const DemandSet& demand,
                            const TimeInterval& window) const {
  for (const auto& [type, q] : demand.amounts()) {
    if (quantity(type, window) < q) return false;
  }
  return true;
}

ResourceSet ResourceSet::from(Tick t) const {
  return restricted(TimeInterval(t, kTickMax));
}

ResourceSet ResourceSet::coarsened(Tick factor) const {
  ResourceSet out;
  out.by_type_.reserve(by_type_.size());
  for (const auto& [type, profile] : by_type_) {
    StepFunction coarse = profile.coarsened(factor);
    if (!coarse.is_zero()) out.by_type_.emplace_back(type, std::move(coarse));
  }
  return out;
}

std::optional<Tick> ResourceSet::horizon() const {
  std::optional<Tick> latest;
  for (const auto& [type, profile] : by_type_) {
    if (profile.is_zero()) continue;
    const Tick end = profile.segments().back().interval.end();
    if (!latest || end > *latest) latest = end;
  }
  return latest;
}

std::string ResourceSet::to_string() const {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (const auto& term : terms()) {
    if (!first) out << ", ";
    out << term.to_string();
    first = false;
  }
  out << '}';
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const ResourceSet& s) {
  return os << s.to_string();
}

}  // namespace rota
