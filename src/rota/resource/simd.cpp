#include "rota/resource/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(ROTA_SIMD_AVX2) && defined(__x86_64__)
#include <immintrin.h>
#define ROTA_SIMD_HAVE_AVX2 1
#else
#define ROTA_SIMD_HAVE_AVX2 0
#endif

namespace rota::simd {
namespace {

// ROTA_SIMD in the environment is the no-rebuild A/B knob: "off" (or "0")
// forces the scalar path for the whole process; "all" additionally enables
// the combine vectorization (see combine_enabled() in the header).
// set_enabled()/set_combine_enabled() can still override at runtime.
bool env_is(const char* value) {
  const char* v = std::getenv("ROTA_SIMD");
  return v != nullptr && std::strcmp(v, value) == 0;
}

std::atomic<bool> g_disabled{env_is("off") || env_is("0")};
std::atomic<bool> g_combine_on{env_is("all")};

#if ROTA_SIMD_HAVE_AVX2

bool detect_avx2() { return __builtin_cpu_supports("avx2"); }

// Each kernel body is compiled for AVX2 via a function-level target attribute
// so the translation unit (and the rest of the library) keeps baseline
// codegen; callers reach these only after the runtime cpu check.

__attribute__((target("avx2"))) void add_i64_avx2(const std::int64_t* a,
                                                  const std::int64_t* b,
                                                  std::int64_t* out,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_add_epi64(va, vb));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

__attribute__((target("avx2"))) void sub_i64_avx2(const std::int64_t* a,
                                                  const std::int64_t* b,
                                                  std::int64_t* out,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_sub_epi64(va, vb));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

// AVX2 has no epi64 min/max; build them from the signed compare + blend.
__attribute__((target("avx2"))) inline __m256i min_epi64(__m256i a, __m256i b) {
  const __m256i a_gt_b = _mm256_cmpgt_epi64(a, b);
  return _mm256_blendv_epi8(a, b, a_gt_b);
}

__attribute__((target("avx2"))) inline __m256i max_epi64(__m256i a, __m256i b) {
  const __m256i a_gt_b = _mm256_cmpgt_epi64(a, b);
  return _mm256_blendv_epi8(b, a, a_gt_b);
}

__attribute__((target("avx2"))) void min_i64_avx2(const std::int64_t* a,
                                                  const std::int64_t* b,
                                                  std::int64_t* out,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), min_epi64(va, vb));
  }
  for (; i < n; ++i) out[i] = std::min(a[i], b[i]);
}

__attribute__((target("avx2"))) void max_i64_avx2(const std::int64_t* a,
                                                  const std::int64_t* b,
                                                  std::int64_t* out,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), max_epi64(va, vb));
  }
  for (; i < n; ++i) out[i] = std::max(a[i], b[i]);
}

__attribute__((target("avx2"))) std::int64_t strided_min_i64_avx2(
    const std::int64_t* base, std::size_t n, std::size_t stride,
    std::size_t offset, std::int64_t floor) {
  // Gather 4 strided values per iteration. vpgatherqq takes byte offsets.
  const std::int64_t sb = static_cast<std::int64_t>(stride) * 8;
  const __m256i idx = _mm256_set_epi64x(3 * sb, 2 * sb, sb, 0);
  __m256i acc = _mm256_set1_epi64x(floor);
  const std::int64_t* p = base + offset;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(p + i * stride), idx, 1);
    acc = min_epi64(acc, v);
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int64_t m = std::min(std::min(lanes[0], lanes[1]),
                            std::min(lanes[2], lanes[3]));
  for (; i < n; ++i) m = std::min(m, p[i * stride]);
  return m;
}

#endif  // ROTA_SIMD_HAVE_AVX2

void add_i64_scalar(const std::int64_t* a, const std::int64_t* b,
                    std::int64_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}
void sub_i64_scalar(const std::int64_t* a, const std::int64_t* b,
                    std::int64_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}
void min_i64_scalar(const std::int64_t* a, const std::int64_t* b,
                    std::int64_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::min(a[i], b[i]);
}
void max_i64_scalar(const std::int64_t* a, const std::int64_t* b,
                    std::int64_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::max(a[i], b[i]);
}
std::int64_t strided_min_i64_scalar(const std::int64_t* base, std::size_t n,
                                    std::size_t stride, std::size_t offset,
                                    std::int64_t floor) {
  std::int64_t m = floor;
  const std::int64_t* p = base + offset;
  for (std::size_t i = 0; i < n; ++i) m = std::min(m, p[i * stride]);
  return m;
}

}  // namespace

bool available() {
#if ROTA_SIMD_HAVE_AVX2
  static const bool ok = detect_avx2();
  return ok;
#else
  return false;
#endif
}

bool enabled() {
  return available() && !g_disabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) {
  g_disabled.store(!on, std::memory_order_relaxed);
}

bool combine_enabled() {
  return enabled() && g_combine_on.load(std::memory_order_relaxed);
}

void set_combine_enabled(bool on) {
  g_combine_on.store(on, std::memory_order_relaxed);
}

void add_i64(const std::int64_t* a, const std::int64_t* b, std::int64_t* out,
             std::size_t n) {
#if ROTA_SIMD_HAVE_AVX2
  if (enabled()) return add_i64_avx2(a, b, out, n);
#endif
  add_i64_scalar(a, b, out, n);
}

void sub_i64(const std::int64_t* a, const std::int64_t* b, std::int64_t* out,
             std::size_t n) {
#if ROTA_SIMD_HAVE_AVX2
  if (enabled()) return sub_i64_avx2(a, b, out, n);
#endif
  sub_i64_scalar(a, b, out, n);
}

void min_i64(const std::int64_t* a, const std::int64_t* b, std::int64_t* out,
             std::size_t n) {
#if ROTA_SIMD_HAVE_AVX2
  if (enabled()) return min_i64_avx2(a, b, out, n);
#endif
  min_i64_scalar(a, b, out, n);
}

void max_i64(const std::int64_t* a, const std::int64_t* b, std::int64_t* out,
             std::size_t n) {
#if ROTA_SIMD_HAVE_AVX2
  if (enabled()) return max_i64_avx2(a, b, out, n);
#endif
  max_i64_scalar(a, b, out, n);
}

std::int64_t strided_min_i64(const std::int64_t* base, std::size_t n,
                             std::size_t stride, std::size_t offset,
                             std::int64_t floor) {
#if ROTA_SIMD_HAVE_AVX2
  if (enabled()) return strided_min_i64_avx2(base, n, stride, offset, floor);
#endif
  return strided_min_i64_scalar(base, n, stride, offset, floor);
}

}  // namespace rota::simd
