#include "rota/resource/resource_term.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

#include "rota/time/allen.hpp"

namespace rota {

ResourceTerm::ResourceTerm(Rate rate, const TimeInterval& interval,
                           const LocatedType& type)
    : rate_(rate), interval_(interval), type_(type) {
  if (rate < 0) {
    throw std::invalid_argument("resource terms cannot be negative (rate " +
                                std::to_string(rate) + ")");
  }
}

bool ResourceTerm::dominates_strictly(const ResourceTerm& other) const {
  return type_.satisfies(other.type_) && rate_ > other.rate_ &&
         within(other.interval_, interval_);
}

bool ResourceTerm::dominates(const ResourceTerm& other) const {
  return type_.satisfies(other.type_) && rate_ >= other.rate_ &&
         within(other.interval_, interval_);
}

std::string ResourceTerm::to_string() const {
  std::ostringstream out;
  out << '[' << rate_ << "]^" << interval_.to_string() << '_' << type_.to_string();
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const ResourceTerm& t) {
  return os << t.to_string();
}

}  // namespace rota
