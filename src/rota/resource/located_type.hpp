// Located resource types (ξ in the paper).
//
// A located type pairs a resource kind with the place it lives: node-local
// resources (CPU, memory, ...) carry one location; communication resources
// carry a directed source→destination pair, e.g. <network, l1→l2>.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace rota {

/// A location (node) identifier. Locations are interned strings: creating a
/// Location with the same name twice yields equal ids, and comparisons are
/// integer comparisons.
class Location {
 public:
  Location() = default;  // the distinguished "nowhere" location
  explicit Location(const std::string& name);

  /// Returned by value: the intern table may reallocate as new locations are
  /// created, so references into it would not be stable.
  std::string name() const;
  std::uint32_t id() const { return id_; }

  friend auto operator<=>(const Location& a, const Location& b) { return a.id_ <=> b.id_; }
  friend bool operator==(const Location& a, const Location& b) { return a.id_ == b.id_; }

 private:
  std::uint32_t id_ = 0;
};

/// Resource kinds. The paper works with cpu and network; the calculus is
/// kind-agnostic, so we keep the enum open-ended for library users.
enum class ResourceKind : std::uint8_t {
  kCpu = 0,
  kNetwork,
  kMemory,
  kDisk,
  kCustom,
};

std::string kind_name(ResourceKind k);

/// ξ: a resource kind plus its spatial coordinates. Node resources use
/// `source == destination`; link resources are directed pairs.
class LocatedType {
 public:
  LocatedType() = default;

  /// Node-local resource, e.g. <cpu, l1>.
  static LocatedType node(ResourceKind kind, Location at);
  /// Directed link resource, e.g. <network, l1 -> l2>.
  static LocatedType link(ResourceKind kind, Location from, Location to);

  static LocatedType cpu(Location at) { return node(ResourceKind::kCpu, at); }
  static LocatedType network(Location from, Location to) {
    return link(ResourceKind::kNetwork, from, to);
  }
  static LocatedType memory(Location at) { return node(ResourceKind::kMemory, at); }

  ResourceKind kind() const { return kind_; }
  Location source() const { return source_; }
  Location destination() const { return destination_; }
  bool is_link() const { return source_ != destination_; }

  /// "A computation that requires ξ2 can instead use ξ1": in this calculus
  /// located types are compatible only when identical (a CPU at l1 cannot
  /// stand in for one at l2). Kept as a named function because the paper's
  /// domination order is phrased as ξ1 ≥ ξ2.
  bool satisfies(const LocatedType& required) const { return *this == required; }

  friend auto operator<=>(const LocatedType&, const LocatedType&) = default;

  std::string to_string() const;

 private:
  LocatedType(ResourceKind kind, Location src, Location dst)
      : kind_(kind), source_(src), destination_(dst) {}

  ResourceKind kind_ = ResourceKind::kCustom;
  Location source_;
  Location destination_;
};

std::ostream& operator<<(std::ostream& os, const Location& l);
std::ostream& operator<<(std::ostream& os, const LocatedType& t);

}  // namespace rota

template <>
struct std::hash<rota::Location> {
  std::size_t operator()(const rota::Location& l) const noexcept {
    return std::hash<std::uint32_t>{}(l.id());
  }
};

template <>
struct std::hash<rota::LocatedType> {
  std::size_t operator()(const rota::LocatedType& t) const noexcept {
    std::size_t h = std::hash<std::uint8_t>{}(static_cast<std::uint8_t>(t.kind()));
    h = h * 1000003u ^ std::hash<rota::Location>{}(t.source());
    h = h * 1000003u ^ std::hash<rota::Location>{}(t.destination());
    return h;
  }
};
