// Small statistics helpers shared by benchmarks and the simulator's metrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rota::util {

/// Accumulates samples and answers summary queries. Samples are kept so that
/// exact percentiles can be computed; experiment scales here are modest.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Exact percentile by nearest-rank; p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

/// Ratio counter for accept/reject and hit/miss style metrics.
struct Ratio {
  std::int64_t hits = 0;
  std::int64_t total = 0;

  void record(bool hit) {
    hits += hit ? 1 : 0;
    ++total;
  }
  double value() const { return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total); }
};

}  // namespace rota::util
