// Deterministic pseudo-random number generation for reproducible workloads.
//
// All experiments in this repository must be bit-for-bit reproducible across
// runs and platforms, so we ship our own small generator (splitmix64 seeded
// xoshiro256**) instead of relying on std::mt19937's distribution functions,
// whose outputs are not specified identically across standard libraries.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace rota::util {

/// xoshiro256** by Blackman & Vigna (public domain reference implementation
/// re-expressed), seeded through splitmix64 so that any 64-bit seed — even 0
/// — produces a well-mixed initial state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t s = seed;
    for (auto& word : state_) {
      s += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = s;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
    return lo + static_cast<std::int64_t>(bounded(range));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    double u = uniform01();
    // Guard against log(0); uniform01() can return exactly 0.
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Geometric-ish integer: exponential rounded up, at least 1.
  std::int64_t exponential_at_least_1(double mean) {
    const double v = exponential(mean);
    const auto n = static_cast<std::int64_t>(v) + 1;
    return n < 1 ? 1 : n;
  }

  /// Pick an index in [0, n) — convenience over uniform().
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(bounded(static_cast<std::uint64_t>(n)));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  /// Unbiased bounded sample via rejection (Lemire-style threshold).
  std::uint64_t bounded(std::uint64_t range) {
    const std::uint64_t threshold = (0 - range) % range;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % range;
    }
  }

  std::uint64_t state_[4]{};
};

}  // namespace rota::util
