#include "rota/util/table.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace rota::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table requires at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << std::left << std::setw(static_cast<int>(widths[c])) << row[c] << ' ';
    }
    out << "|\n";
  };

  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string fixed(double value, int digits) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(digits) << value;
  return out.str();
}

}  // namespace rota::util
