// Minimal CSV emission for benchmark series that downstream users may want to
// plot. Values are written unquoted; callers must not pass cells containing
// commas or newlines (benchmark output never does).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace rota::util {

class CsvWriter {
 public:
  CsvWriter(std::ostream& out, std::vector<std::string> headers) : out_(out) {
    write_row(headers);
  }

  void write_row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) out_ << ',';
      out_ << cells[i];
    }
    out_ << '\n';
  }

 private:
  std::ostream& out_;
};

}  // namespace rota::util
