// Plain-text table rendering for benchmark and example output.
//
// The benchmark harness reproduces the paper's exhibits as aligned ASCII
// tables on stdout; this tiny formatter keeps that output consistent across
// binaries.
#pragma once

#include <string>
#include <vector>

namespace rota::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header row.
  void add_row(std::vector<std::string> cells);

  /// Render with column-aligned cells and a header separator.
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (benchmark output helper).
std::string fixed(double value, int digits = 3);

}  // namespace rota::util
