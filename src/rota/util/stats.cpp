#include "rota/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rota::util {

void Summary::add(double x) {
  samples_.push_back(x);
  sum_ += x;
  sorted_ = false;
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::min() const {
  if (samples_.empty()) throw std::logic_error("Summary::min on empty summary");
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) throw std::logic_error("Summary::max on empty summary");
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::percentile(double p) const {
  if (samples_.empty()) throw std::logic_error("Summary::percentile on empty summary");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

}  // namespace rota::util
