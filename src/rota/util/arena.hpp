// Bump-pointer arenas for hot-path temporaries.
//
// The batched admission pipeline builds and discards the same shapes of
// scratch — boundary arrays for merge walks, per-round speculation slots —
// thousands of times per second. A BumpArena turns those into pointer bumps:
// allocation is an offset increment, deallocation is a no-op, and reset()
// recycles the high-water-mark block, so after the first round a lane's
// speculation does zero heap traffic in steady state.
//
// Arenas are single-threaded by design (each planning lane owns one, usually
// as a thread_local); nothing here synchronizes. Objects allocated from an
// arena must be trivially destructible or destroyed by the caller before
// reset() — the arena never runs destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace rota::util {

class BumpArena {
 public:
  explicit BumpArena(std::size_t initial_bytes = 4096)
      : initial_bytes_(initial_bytes) {}

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  /// Aligned raw allocation. Never returns nullptr (grows by doubling).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    std::uintptr_t p = reinterpret_cast<std::uintptr_t>(cursor_);
    const std::uintptr_t aligned = (p + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    if (aligned + bytes > reinterpret_cast<std::uintptr_t>(end_)) {
      return allocate_slow(bytes, align);
    }
    used_ += bytes;
    cursor_ = reinterpret_cast<std::byte*>(aligned + bytes);
    return reinterpret_cast<void*>(aligned);
  }

  /// Typed array allocation (uninitialized storage; T must be trivially
  /// destructible or destroyed by the caller).
  template <typename T>
  T* allocate_array(std::size_t n) {
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty. Keeps one block of at least the total size ever
  /// allocated, so a steady-state caller never touches the heap again.
  void reset() {
    used_ = 0;
    if (blocks_.size() > 1) {
      // Coalesce: replace the block list with one block covering the sum.
      std::size_t total = 0;
      for (const auto& b : blocks_) total += b.size;
      blocks_.clear();
      push_block(total);
    } else if (!blocks_.empty()) {
      cursor_ = blocks_.back().data.get();
      end_ = cursor_ + blocks_.back().size;
    }
  }

  /// Bytes currently handed out since the last reset (diagnostics).
  std::size_t used() const { return used_; }
  /// Total reserved capacity across blocks.
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const auto& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void push_block(std::size_t size) {
    Block b;
    b.size = size;
    b.data = std::make_unique<std::byte[]>(size);
    cursor_ = b.data.get();
    end_ = cursor_ + size;
    blocks_.push_back(std::move(b));
  }

  void* allocate_slow(std::size_t bytes, std::size_t align) {
    std::size_t want = blocks_.empty() ? initial_bytes_ : blocks_.back().size * 2;
    while (want < bytes + align) want *= 2;
    push_block(want);
    used_ += bytes;
    std::uintptr_t p = reinterpret_cast<std::uintptr_t>(cursor_);
    const std::uintptr_t aligned = (p + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    cursor_ = reinterpret_cast<std::byte*>(aligned + bytes);
    return reinterpret_cast<void*>(aligned);
  }

  std::size_t initial_bytes_;
  std::vector<Block> blocks_;
  std::byte* cursor_ = nullptr;
  std::byte* end_ = nullptr;
  std::size_t used_ = 0;
};

/// Minimal STL allocator over a BumpArena, for container-shaped temporaries
/// (e.g. std::vector<T, ArenaAllocator<T>>) whose lifetime ends before the
/// arena resets. deallocate is a no-op; memory is reclaimed by reset().
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(BumpArena& arena) : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) { return arena_->allocate_array<T>(n); }
  void deallocate(T*, std::size_t) {}

  BumpArena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }

 private:
  BumpArena* arena_;
};

}  // namespace rota::util
