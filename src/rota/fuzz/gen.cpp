#include "rota/fuzz/gen.hpp"

#include <string>

namespace rota::fuzz {

TimeInterval Gen::interval() {
  if (rng_.chance(0.05)) return TimeInterval();  // empty, canonical [0, 0)
  const Tick a = rng_.uniform(term_lo(), term_hi());
  const Tick b = rng_.uniform(term_lo(), term_hi());
  return TimeInterval(std::min(a, b), std::max(a, b) + 1);
}

std::pair<StepFunction, DenseFn> Gen::step_function(int max_terms,
                                                    bool allow_negative) {
  StepFunction f;
  DenseFn ref(domain_lo(), domain_hi());
  const int terms = static_cast<int>(rng_.uniform(0, max_terms));
  for (int i = 0; i < terms; ++i) {
    const TimeInterval iv = interval();
    const Rate lo = allow_negative ? -5 : 0;
    const Rate rate = rng_.uniform(lo, 5);
    f.add(iv, rate);
    ref.add(iv, rate);
  }
  return {std::move(f), std::move(ref)};
}

std::pair<IntervalSet, DenseSet> Gen::interval_set(int max_terms) {
  IntervalSet s;
  DenseSet ref(domain_lo(), domain_hi());
  const int terms = static_cast<int>(rng_.uniform(0, max_terms));
  for (int i = 0; i < terms; ++i) {
    const TimeInterval iv = interval();
    s.insert(iv);
    ref.insert(iv);
  }
  return {std::move(s), std::move(ref)};
}

LocatedType Gen::located_type() {
  static const Location l1("fz1");
  static const Location l2("fz2");
  switch (rng_.index(6)) {
    case 0: return LocatedType::cpu(l1);
    case 1: return LocatedType::cpu(l2);
    case 2: return LocatedType::memory(l1);
    case 3: return LocatedType::memory(l2);
    case 4: return LocatedType::network(l1, l2);
    default: return LocatedType::network(l2, l1);
  }
}

std::pair<ResourceSet, DenseResources> Gen::resource_set(int max_types, int max_terms,
                                                         bool allow_negative) {
  ResourceSet s;
  DenseResources ref(domain_lo(), domain_hi());
  const int types = static_cast<int>(rng_.uniform(1, max_types));
  for (int i = 0; i < types; ++i) {
    const LocatedType type = located_type();
    if (allow_negative && rng_.chance(0.4)) {
      // Feed a possibly-negative profile through add(type, profile).
      auto [f, fref] = step_function(max_terms, true);
      s.add(type, f);
      ref.of(type) = ref.of(type).plus(fref);
    } else {
      const int terms = static_cast<int>(rng_.uniform(0, max_terms));
      for (int t = 0; t < terms; ++t) {
        const TimeInterval iv = interval();
        const Rate rate = rng_.uniform(0, 5);
        s.add(rate, iv, type);
        if (!iv.empty() && rate != 0) ref.of(type).add(iv, rate);
      }
    }
  }
  return {std::move(s), std::move(ref)};
}

TimeInterval Gen::admission_window() {
  const Tick start = rng_.uniform(0, term_hi() - 4);
  const Tick len = rng_.uniform(1, term_hi() - start);
  return TimeInterval(start, start + len);
}

ConcurrentRequirement Gen::requirement(const std::string& name) {
  const TimeInterval window = admission_window();
  const int actor_count = static_cast<int>(rng_.uniform(1, 3));
  std::vector<ComplexRequirement> actors;
  actors.reserve(static_cast<std::size_t>(actor_count));
  for (int a = 0; a < actor_count; ++a) {
    const int phase_count = static_cast<int>(rng_.uniform(1, 3));
    std::vector<Phase> phases;
    std::size_t action_cursor = 0;
    for (int p = 0; p < phase_count; ++p) {
      Phase phase;
      const int demands = static_cast<int>(rng_.uniform(1, 2));
      for (int d = 0; d < demands; ++d) {
        phase.demand.add(located_type(), rng_.uniform(1, 8));
      }
      phase.first_action = action_cursor;
      phase.action_count = 1;
      action_cursor += 1;
      phases.push_back(std::move(phase));
    }
    const Rate cap = rng_.chance(0.3) ? rng_.uniform(1, 3) : 0;
    actors.emplace_back(name + "-a" + std::to_string(a), std::move(phases), window,
                        cap);
  }
  return ConcurrentRequirement(name, std::move(actors), window);
}

}  // namespace rota::fuzz
