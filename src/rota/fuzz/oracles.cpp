#include "rota/fuzz/oracles.hpp"

#include <algorithm>
#include <exception>
#include <map>
#include <optional>
#include <sstream>
#include <variant>

#include "rota/admission/audit.hpp"
#include "rota/admission/controller.hpp"
#include "rota/admission/negotiation.hpp"
#include "rota/admission/periodic.hpp"
#include "rota/cluster/cluster.hpp"
#include "rota/computation/actor_computation.hpp"
#include "rota/faults/schedule.hpp"
#include "rota/fuzz/exhaustive.hpp"
#include "rota/fuzz/gen.hpp"
#include "rota/logic/explorer.hpp"
#include "rota/logic/model_checker.hpp"
#include "rota/logic/symbolic/feasibility.hpp"
#include "rota/plan/kernel.hpp"
#include "rota/runtime/batch_controller.hpp"

namespace rota::fuzz {

namespace {

/// splitmix64 step — the same mixer util::Rng seeds through, reused so the
/// per-case seed stream is well distributed for any run seed.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Collects check results for one oracle run.
class Recorder {
 public:
  Recorder(OracleReport& report, std::uint64_t seed, std::size_t case_index)
      : report_(report), seed_(seed), case_index_(case_index) {}

  /// Records a boolean expectation; `detail` is only evaluated on failure.
  template <typename DetailFn>
  bool expect(const char* check, bool ok, DetailFn&& detail) {
    ++report_.checks;
    if (!ok) fail(check, detail());
    return ok;
  }

  /// Records a referee comparison (nullopt = agreement).
  bool check(const char* check, const std::optional<std::string>& mismatch) {
    ++report_.checks;
    if (mismatch) fail(check, *mismatch);
    return !mismatch;
  }

  void fail(const char* check, const std::string& detail) {
    ++report_.divergence_count;
    if (report_.divergences.size() < OracleReport::kMaxRecorded) {
      report_.divergences.push_back(
          {report_.family, check, seed_, case_index_, detail});
    }
  }

 private:
  OracleReport& report_;
  std::uint64_t seed_;
  std::size_t case_index_;
};

std::string bool_pair(const char* what, bool production, bool referee) {
  std::ostringstream out;
  out << what << ": production says " << (production ? "true" : "false")
      << ", referee says " << (referee ? "true" : "false");
  return out.str();
}

}  // namespace

std::string Divergence::to_string() const {
  std::ostringstream out;
  out << family << '/' << check << " case " << case_index << " (case seed "
      << seed << "): " << detail;
  return out.str();
}

std::string OracleReport::summary() const {
  std::ostringstream out;
  out << family << ": " << cases << " cases, " << checks << " checks, "
      << divergence_count << " divergence(s)";
  return out.str();
}

std::uint64_t case_seed(std::uint64_t run_seed, std::size_t case_index) {
  return mix64(run_seed ^ mix64(static_cast<std::uint64_t>(case_index)));
}

// ===========================================================================
// Calculus oracle
// ===========================================================================

namespace {

void calculus_case(Gen& g, Recorder& rec) {
  const Tick lo = Gen::domain_lo();
  const Tick hi = Gen::domain_hi();

  // --- StepFunction ---------------------------------------------------------
  auto [f, fr] = g.step_function(6, true);
  auto [h, hr] = g.step_function(6, true);
  rec.check("fn-canonical", check_canonical(f));
  rec.check("fn-build", diff_fn(f, fr));

  rec.check("fn-plus", diff_fn(f.plus(h), fr.plus(hr)));
  rec.check("fn-minus", diff_fn(f.minus(h), fr.minus(hr)));
  rec.check("fn-min", diff_fn(f.min(h), fr.min(hr)));
  rec.check("fn-max", diff_fn(f.max(h), fr.max(hr)));
  rec.check("fn-minus-canonical", check_canonical(f.minus(h)));

  // Algebraic round-trips: the canonical representation must make these
  // exact identities, not just pointwise ones.
  rec.expect("fn-minus-plus-roundtrip", f.minus(h).plus(h) == f, [&] {
    return "f - h + h != f; f = " + f.to_string() + ", h = " + h.to_string();
  });
  rec.expect("fn-plus-minus-roundtrip", f.plus(h).minus(h) == f, [&] {
    return "f + h - h != f; f = " + f.to_string() + ", h = " + h.to_string();
  });

  const TimeInterval w = g.interval();
  rec.check("fn-restricted", diff_fn(f.restricted(w), fr.restricted(w)));
  rec.check("fn-clamped", diff_fn(f.clamped_nonnegative(), fr.clamped_nonnegative()));
  rec.expect("fn-min-value", f.min_value() == fr.min_value(), [&] {
    std::ostringstream out;
    out << "min_value: production " << f.min_value() << ", referee "
        << fr.min_value() << " for " << f.to_string();
    return out.str();
  });
  rec.expect("fn-min-over", f.min_over(w) == fr.min_over(w), [&] {
    std::ostringstream out;
    out << "min_over" << w.to_string() << ": production " << f.min_over(w)
        << ", referee " << fr.min_over(w) << " for " << f.to_string();
    return out.str();
  });
  rec.expect("fn-integral-window", f.integral(w) == fr.integral(w), [&] {
    std::ostringstream out;
    out << "integral" << w.to_string() << ": production " << f.integral(w)
        << ", referee " << fr.integral(w) << " for " << f.to_string();
    return out.str();
  });
  rec.expect("fn-integral", f.integral() == fr.integral(), [&] {
    std::ostringstream out;
    out << "integral: production " << f.integral() << ", referee "
        << fr.integral() << " for " << f.to_string();
    return out.str();
  });
  rec.expect("fn-dominates", f.dominates(h) == fr.dominates(hr), [&] {
    return bool_pair("dominates", f.dominates(h), fr.dominates(hr)) +
           "; f = " + f.to_string() + ", h = " + h.to_string();
  });

  const Tick dt = g.rng().uniform(-8, 8);
  rec.check("fn-shifted", diff_fn(f.shifted(dt), fr.shifted(dt)));
  const Tick factor = g.rng().uniform(1, 8);
  rec.check("fn-coarsened", diff_fn(f.coarsened(factor), fr.coarsened(factor)));
  rec.check("fn-coarsened-canonical", check_canonical(f.coarsened(factor)));

  {
    // support() / where_at_least() against the dense membership view.
    DenseSet support_ref(lo, hi);
    for (Tick t = lo; t < hi; ++t) {
      if (fr.at(t) > 0) support_ref.insert(TimeInterval(t, t + 1));
    }
    rec.check("fn-support", diff_set(f.support(), support_ref));
    const Rate threshold = g.rng().uniform(1, 5);
    DenseSet at_least_ref(lo, hi);
    for (Tick t = lo; t < hi; ++t) {
      if (w.contains(t) && fr.at(t) >= threshold) {
        at_least_ref.insert(TimeInterval(t, t + 1));
      }
    }
    rec.check("fn-where-at-least",
              diff_set(f.where_at_least(threshold, w), at_least_ref));
  }

  {
    const Quantity q = g.rng().uniform(0, 30);
    const auto got = f.earliest_cover(w, q);
    const auto want = fr.earliest_cover(w, q);
    rec.expect("fn-earliest-cover", got == want, [&] {
      std::ostringstream out;
      out << "earliest_cover(" << w.to_string() << ", " << q << "): production "
          << (got ? std::to_string(*got) : "nullopt") << ", referee "
          << (want ? std::to_string(*want) : "nullopt") << " for " << f.to_string();
      return out.str();
    });
    const auto got_l = f.latest_cover_start(w, q);
    const auto want_l = fr.latest_cover_start(w, q);
    rec.expect("fn-latest-cover-start", got_l == want_l, [&] {
      std::ostringstream out;
      out << "latest_cover_start(" << w.to_string() << ", " << q
          << "): production " << (got_l ? std::to_string(*got_l) : "nullopt")
          << ", referee " << (want_l ? std::to_string(*want_l) : "nullopt")
          << " for " << f.to_string();
      return out.str();
    });
  }

  // --- IntervalSet ----------------------------------------------------------
  auto [s, sr] = g.interval_set(5);
  auto [u, ur] = g.interval_set(5);
  rec.check("set-canonical", check_canonical(s));
  rec.check("set-build", diff_set(s, sr));
  rec.check("set-unioned", diff_set(s.unioned(u), sr.unioned(ur)));
  rec.check("set-unioned-canonical", check_canonical(s.unioned(u)));
  rec.check("set-intersected", diff_set(s.intersected(u), sr.intersected(ur)));
  rec.check("set-subtracted", diff_set(s.subtracted(u), sr.subtracted(ur)));
  rec.check("set-subtracted-canonical", check_canonical(s.subtracted(u)));
  {
    DenseSet wref(lo, hi);
    wref.insert(w);
    rec.check("set-intersected-window",
              diff_set(s.intersected(w), sr.intersected(wref)));
  }
  rec.expect("set-covers", s.covers(w) == sr.covers(w), [&] {
    return bool_pair("covers", s.covers(w), sr.covers(w)) + "; s = " +
           s.to_string() + ", w = " + w.to_string();
  });
  rec.expect("set-measure", s.measure() == sr.measure(), [&] {
    std::ostringstream out;
    out << "measure: production " << s.measure() << ", referee " << sr.measure()
        << " for " << s.to_string();
    return out.str();
  });
  rec.expect("set-hull", s.hull() == sr.hull(), [&] {
    return "hull: production " + s.hull().to_string() + ", referee " +
           sr.hull().to_string() + " for " + s.to_string();
  });

  // --- ResourceSet ----------------------------------------------------------
  auto [a, ar] = g.resource_set(4, 4, true);
  auto [b, br] = g.resource_set(4, 4, true);
  rec.check("res-canonical", check_canonical(a));
  rec.check("res-build", diff_resources(a, ar));
  rec.check("res-unioned", diff_resources(a.unioned(b), ar.unioned(br)));
  rec.check("res-unioned-canonical", check_canonical(a.unioned(b)));
  {
    ResourceSet in_place = a;
    in_place.union_with(b);
    rec.expect("res-union-with", in_place == a.unioned(b), [&] {
      return std::string("union_with result diverges from unioned");
    });
    rec.check("res-union-with-canonical", check_canonical(in_place));
  }
  rec.expect("res-dominates", a.dominates(b) == ar.dominates(br), [&] {
    return bool_pair("dominates", a.dominates(b), ar.dominates(br));
  });

  {
    const auto got = a.relative_complement(b);
    const auto want = ar.relative_complement(br);
    rec.expect("res-complement-defined", got.has_value() == want.has_value(), [&] {
      return bool_pair("relative_complement defined", got.has_value(),
                       want.has_value());
    });
    // The boundary pin: complement defined ⇔ dominates, always.
    rec.expect("res-complement-iff-dominates", got.has_value() == a.dominates(b),
               [&] {
                 return bool_pair("complement defined vs dominates",
                                  got.has_value(), a.dominates(b));
               });
    if (got && want) {
      rec.check("res-complement-value", diff_resources(*got, *want));
      rec.check("res-complement-canonical", check_canonical(*got));
    }
  }

  {
    // A constructed dominated pair: c = b ∪ extra (extra non-negative), so
    // c ≥ b pointwise by construction and c \ b must reproduce extra.
    auto [extra, extra_ref] = g.resource_set(3, 3, false);
    const ResourceSet c = b.unioned(extra);
    rec.expect("res-constructed-dominates", c.dominates(b),
               [&] { return std::string("b ∪ extra fails to dominate b"); });
    const auto diff = c.relative_complement(b);
    if (rec.expect("res-constructed-complement", diff.has_value(), [&] {
          return std::string("(b ∪ extra) \\ b undefined");
        })) {
      rec.check("res-constructed-complement-value",
                diff_resources(*diff, extra_ref));
      rec.expect("res-complement-union-roundtrip", diff->unioned(b) == c, [&] {
        return std::string("((b ∪ extra) \\ b) ∪ b != b ∪ extra");
      });
    }
  }

  rec.check("res-restricted", diff_resources(a.restricted(w), ar.restricted(w)));
  rec.check("res-restricted-canonical", check_canonical(a.restricted(w)));
  {
    const LocatedType type = g.located_type();
    rec.expect("res-quantity", a.quantity(type, w) == ar.quantity(type, w), [&] {
      std::ostringstream out;
      out << "quantity(" << type.to_string() << ", " << w.to_string()
          << "): production " << a.quantity(type, w) << ", referee "
          << ar.quantity(type, w);
      return out.str();
    });
  }
  {
    const Tick from = g.rng().uniform(Gen::term_lo(), Gen::term_hi());
    const ResourceSet dropped = a.from(from);
    DenseResources dropped_ref(lo, hi);
    for (const auto& [type, fn] : ar.entries()) {
      DenseFn cut(lo, hi);
      for (Tick t = from; t < hi; ++t) cut.set(t, fn.at(t));
      dropped_ref.of(type) = cut;
    }
    rec.check("res-from", diff_resources(dropped, dropped_ref));
  }
  {
    const ResourceSet coarse = a.coarsened(factor);
    DenseResources coarse_ref(lo, hi);
    for (const auto& [type, fn] : ar.entries()) {
      coarse_ref.of(type) = fn.coarsened(factor);
    }
    rec.check("res-coarsened", diff_resources(coarse, coarse_ref));
    rec.check("res-coarsened-canonical", check_canonical(coarse));
  }
  {
    // satisfies() against per-type dense quantities.
    DemandSet demand;
    const int entries = static_cast<int>(g.rng().uniform(1, 3));
    for (int i = 0; i < entries; ++i) {
      demand.add(g.located_type(), g.rng().uniform(1, 12));
    }
    bool ref_ok = true;
    for (const auto& [type, q] : demand.amounts()) {
      if (ar.quantity(type, w) < q) ref_ok = false;
    }
    rec.expect("res-satisfies", a.satisfies(demand, w) == ref_ok, [&] {
      return bool_pair("satisfies", a.satisfies(demand, w), ref_ok) +
             "; demand = " + demand.to_string() + ", w = " + w.to_string();
    });
  }
  {
    // terms() round-trip (non-negative sets only: terms cannot carry
    // negative rates).
    auto [nn, nn_ref] = g.resource_set(3, 4, false);
    ResourceSet rebuilt;
    for (const auto& term : nn.terms()) rebuilt.add(term);
    rec.expect("res-terms-roundtrip", rebuilt == nn, [&] {
      return "rebuilding from terms() changed the set: " + nn.to_string();
    });
    rec.check("res-terms-roundtrip-ref", diff_resources(rebuilt, nn_ref));
  }
}

}  // namespace

OracleReport run_calculus_oracle(std::uint64_t seed, std::size_t cases) {
  OracleReport report;
  report.family = "calculus";
  for (std::size_t i = 0; i < cases; ++i) {
    const std::uint64_t cs = case_seed(seed, i);
    Recorder rec(report, cs, i);
    Gen g(cs);
    try {
      calculus_case(g, rec);
    } catch (const std::exception& e) {
      rec.fail("unexpected-exception", e.what());
    }
    ++report.cases;
  }
  return report;
}

// ===========================================================================
// Kernel oracle
// ===========================================================================

namespace {

std::string describe_decision(const AdmissionDecision& d) {
  std::ostringstream out;
  out << (d.accepted ? "accept" : "reject");
  if (!d.reason.empty()) out << " (" << d.reason << ')';
  if (d.plan) out << " finish=" << d.plan->finish;
  return out.str();
}

void kernel_case(Gen& g, Recorder& rec) {
  ResourceSet supply = g.resource_set(5, 5, false).first;

  const int n = static_cast<int>(g.rng().uniform(3, 8));
  std::vector<BatchRequest> requests;
  Tick at = 0;
  for (int i = 0; i < n; ++i) {
    at += g.rng().uniform(0, 3);
    requests.push_back({g.requirement("job" + std::to_string(i)), at});
  }

  // The sequential controller is the semantic baseline.
  RotaAdmissionController seq(CostModel{}, supply, PlanningPolicy::kAsap, 0);
  std::vector<AdmissionDecision> baseline;
  baseline.reserve(requests.size());
  for (const auto& r : requests) baseline.push_back(seq.request(r.rho, r.at));

  // Batched admission at several lane counts must reproduce it bit for bit.
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                  std::size_t{5}, std::size_t{8}}) {
    BatchAdmissionController batch(CostModel{}, supply, PlanningPolicy::kAsap,
                                   lanes, 0);
    const std::vector<AdmissionDecision> got = batch.admit_batch(requests);
    if (!rec.expect("batch-decision-count", got.size() == baseline.size(), [&] {
          std::ostringstream out;
          out << "lanes=" << lanes << ": " << got.size() << " decisions for "
              << baseline.size() << " requests";
          return out.str();
        })) {
      continue;
    }
    for (std::size_t i = 0; i < got.size(); ++i) {
      const bool same = got[i].accepted == baseline[i].accepted &&
                        got[i].reason == baseline[i].reason &&
                        got[i].plan == baseline[i].plan;
      rec.expect("batch-decision-parity", same, [&] {
        std::ostringstream out;
        out << "lanes=" << lanes << " request " << i << " ("
            << requests[i].rho.name() << "): batch " << describe_decision(got[i])
            << ", sequential " << describe_decision(baseline[i]);
        return out.str();
      });
    }
    rec.expect("batch-residual-parity",
               batch.ledger().residual() == seq.ledger().residual(), [&] {
                 std::ostringstream out;
                 out << "lanes=" << lanes
                     << ": batch residual diverges from sequential";
                 return out.str();
               });
    rec.expect("batch-admitted-count",
               batch.ledger().admitted_count() == seq.ledger().admitted_count(),
               [&] {
                 std::ostringstream out;
                 out << "lanes=" << lanes << ": batch admitted "
                     << batch.ledger().admitted_count() << ", sequential "
                     << seq.ledger().admitted_count();
                 return out.str();
               });
  }

  // Restriction-cache audit: whatever window mix the cache serves — fresh,
  // repeated, nested, overlapping — re-restricting its answer to the probe
  // window must equal the uncached restriction. (Served views may be wider
  // than the probe; they are planning-equivalent, not bit-equal.)
  {
    const FeasibilitySnapshot snap = FeasibilitySnapshot::capture(seq.ledger());
    rec.expect("snapshot-revision", snap.revision() == seq.ledger().revision(),
               [&] { return std::string("capture() revision != ledger revision"); });
    std::vector<TimeInterval> probes;
    for (int i = 0; i < 3; ++i) {
      const TimeInterval base = g.admission_window();
      probes.push_back(base);
      // A strict subwindow (cache hit by containment) and an overlap.
      probes.emplace_back(base.start() + base.length() / 3,
                          base.end() - base.length() / 4);
      probes.emplace_back(base.start() + base.length() / 2,
                          base.end() + g.rng().uniform(1, 6));
    }
    for (const TimeInterval& probe : probes) {
      const ResourceSet& served = snap.restricted(probe);
      rec.expect(
          "snapshot-cache-audit",
          served.restricted(probe) == seq.ledger().residual().restricted(probe),
          [&] {
            return "cached restriction to " + probe.to_string() +
                   " diverges from the uncached restriction";
          });
    }
  }

  // Optimistic-concurrency audit: two speculations against one snapshot; the
  // second commit must be refused exactly when the first changed the residual.
  if (requests.size() >= 2) {
    CommitmentLedger ledger(supply, 0);
    const PlanningKernel kernel;
    const FeasibilitySnapshot snap = FeasibilitySnapshot::capture(ledger);
    const PlanResult r0 = kernel.speculate(requests[0].rho, requests[0].at, snap);
    const PlanResult r1 = kernel.speculate(requests[1].rho, requests[1].at, snap);
    AdmissionDecision d0, d1;
    rec.expect("stale-first-commit",
               kernel.commit(r0, ledger, d0) == CommitStatus::kCommitted, [&] {
                 return std::string("first commit against fresh snapshot refused");
               });
    const CommitStatus second = kernel.commit(r1, ledger, d1);
    // An accept moves the residual, but only in the shards its demand
    // touches: a second speculation with a disjoint shard footprint is
    // salvaged (committed as-is), not staled. An accepted plan consumes
    // every demanded type, so the first commit bumps exactly the shards of
    // requests[0]'s demand mask. The second speculation's footprint is its
    // *recorded* mask — empty (always salvageable) when the window was
    // already closed at arrival, since a deadline-passed verdict reads no
    // residual at all.
    const ShardMask overlap =
        touched_shard_mask(requests[0].rho) & r1.touched_mask;
    const CommitStatus expected =
        d0.accepted && (!r1.sharded || overlap != 0) ? CommitStatus::kStale
                                                     : CommitStatus::kCommitted;
    rec.expect("stale-second-commit", second == expected, [&] {
      std::ostringstream out;
      out << "second commit "
          << (second == CommitStatus::kStale ? "stale" : "committed")
          << " but first decision was " << describe_decision(d0)
          << " with shard overlap " << overlap;
      return out.str();
    });
    if (second == CommitStatus::kStale) {
      const FeasibilitySnapshot fresh = FeasibilitySnapshot::capture(ledger);
      const PlanResult redo =
          kernel.speculate(requests[1].rho, requests[1].at, fresh);
      rec.expect("stale-redo-commit",
                 kernel.commit(redo, ledger, d1) == CommitStatus::kCommitted,
                 [&] { return std::string("re-speculated commit refused"); });
    }
    // Either way the two decisions must match the sequential baseline.
    for (std::size_t i = 0; i < 2; ++i) {
      const AdmissionDecision& got = i == 0 ? d0 : d1;
      const bool same = got.accepted == baseline[i].accepted &&
                        got.reason == baseline[i].reason &&
                        got.plan == baseline[i].plan;
      rec.expect("stale-path-parity", same, [&] {
        std::ostringstream out;
        out << "speculate/commit request " << i << ": " << describe_decision(got)
            << ", sequential " << describe_decision(baseline[i]);
        return out.str();
      });
    }
  }

  // WAL-replay audit: re-admitting the audited plans through the commit gate
  // must reproduce the live residual exactly.
  {
    CommitmentLedger rebuilt(supply, 0);
    const PlanningKernel kernel;
    for (const AdmittedRecord& record : seq.ledger().admitted()) {
      rec.expect("replay-accepts",
                 kernel.replay(record.name, record.window, record.plan, rebuilt),
                 [&] { return "replay refused plan of " + record.name; });
    }
    rec.expect("replay-residual", rebuilt.residual() == seq.ledger().residual(),
               [&] {
                 return std::string(
                     "replayed residual diverges from live residual");
               });
  }

  // Negotiation audit: the binary searches return *extremal* windows, so the
  // direct kernel probe (the same probe the search runs) must accept the
  // returned window and refuse the one-tick-tighter one.
  {
    const ConcurrentRequirement rho = g.requirement("nego");
    const PlanningKernel kernel;
    const FeasibilitySnapshot snap = FeasibilitySnapshot::capture(seq.ledger());
    const Tick s = rho.window().start();
    const Tick latest = rho.window().end() + g.rng().uniform(2, 8);
    const auto probe = [&](const TimeInterval& w, const TimeInterval& focus) {
      return kernel
          .speculate_within(clip_requirement(rho, w), w.start(), snap, focus)
          .feasible();
    };
    const TimeInterval d_focus(s, latest);
    const auto d_star = earliest_feasible_deadline(snap, rho, latest, kernel);
    if (d_star) {
      rec.expect("nego-deadline-feasible",
                 probe(TimeInterval(s, *d_star), d_focus), [&] {
                   return "earliest_feasible_deadline returned d = " +
                          std::to_string(*d_star) +
                          " but the direct probe rejects it";
                 });
      if (*d_star > s + 1) {
        rec.expect("nego-deadline-minimal",
                   !probe(TimeInterval(s, *d_star - 1), d_focus), [&] {
                     return "d = " + std::to_string(*d_star) +
                            " is not minimal: d-1 also fits";
                   });
      }
    } else {
      rec.expect("nego-deadline-exhausted", !probe(d_focus, d_focus), [&] {
        return "nullopt although the widest window [" + d_focus.to_string() +
               ") fits";
      });
    }
    const auto s_star = latest_feasible_start(snap, rho, kernel);
    const Tick d = rho.window().end();
    if (s_star) {
      rec.expect("nego-start-feasible",
                 probe(TimeInterval(*s_star, d), rho.window()), [&] {
                   return "latest_feasible_start returned s = " +
                          std::to_string(*s_star) +
                          " but the direct probe rejects it";
                 });
      if (*s_star + 1 < d) {
        rec.expect("nego-start-maximal",
                   !probe(TimeInterval(*s_star + 1, d), rho.window()), [&] {
                     return "s = " + std::to_string(*s_star) +
                            " is not maximal: s+1 also fits";
                   });
      }
    } else {
      rec.expect("nego-start-exhausted", !probe(rho.window(), rho.window()),
                 [&] {
                   return "nullopt although the original window " +
                          rho.window().to_string() + " fits";
                 });
    }
  }

  // Counter-offer audit: a rejection leaves the ledger untouched, and
  // accepting the suggested deadline by re-requesting must succeed (the offer
  // was probed against this exact residual).
  {
    const ConcurrentRequirement rho = g.requirement("offer");
    RotaAdmissionController ctl(CostModel{}, supply, PlanningPolicy::kAsap, 0);
    const ResourceSet residual_before = ctl.ledger().residual();
    const std::size_t admitted_before = ctl.ledger().admitted_count();
    const Tick max_d = rho.window().end() + g.rng().uniform(2, 8);
    const CounterOffer offer = request_with_counter_offer(ctl, rho, 0, max_d);
    if (!offer.decision.accepted) {
      rec.expect("offer-reject-preserves-ledger",
                 ctl.ledger().residual() == residual_before &&
                     ctl.ledger().admitted_count() == admitted_before,
                 [&] {
                   return std::string(
                       "a rejected request with counter-offer probing moved "
                       "the ledger");
                 });
      if (offer.suggested_deadline) {
        const TimeInterval extended(rho.window().start(),
                                    *offer.suggested_deadline);
        const AdmissionDecision redo =
            ctl.request(clip_requirement(rho, extended), 0);
        rec.expect("offer-accepted-on-retry", redo.accepted, [&] {
          return "suggested deadline " +
                 std::to_string(*offer.suggested_deadline) +
                 " refused on re-request: " + redo.reason;
        });
      }
    }
  }

  // Periodic admission audit: admit_periodic must decide exactly like a
  // manual request loop over expand_periodic against a fresh controller, be
  // all-or-nothing on failure, and agree with sustainable_instances' pure
  // speculation.
  {
    const Location site("pf");
    ActorComputationBuilder builder("p.a", site);
    const int weight = static_cast<int>(g.rng().uniform(1, 3));
    auto gamma = std::move(builder.evaluate(weight)).build();
    const Tick s = g.rng().uniform(1, 6);
    const Tick len = g.rng().uniform(2, 6);
    const DistributedComputation task("ptask", {gamma}, s, s + len);
    const Tick period = g.rng().uniform(1, 8);
    const std::size_t count = static_cast<std::size_t>(g.rng().uniform(1, 4));
    ResourceSet psupply;
    psupply.add(g.rng().uniform(1, 3), TimeInterval(0, g.rng().uniform(8, 36)),
                LocatedType::cpu(site));

    RotaAdmissionController a(CostModel{}, psupply, PlanningPolicy::kAsap, 0);
    RotaAdmissionController b(CostModel{}, psupply, PlanningPolicy::kAsap, 0);
    const std::size_t sustained = sustainable_instances(a, task, period, count, 0);
    const PeriodicAdmission series = admit_periodic(a, task, period, count, 0);

    const auto instances = expand_periodic(task, period, count);
    bool manual_all = true;
    std::size_t manual_failed = 0;
    std::vector<AdmissionDecision> manual;
    for (std::size_t k = 0; k < instances.size(); ++k) {
      const AdmissionDecision dec =
          b.request(make_concurrent_requirement(b.phi(), instances[k]), 0);
      if (!dec.accepted) {
        manual_all = false;
        manual_failed = k;
        break;
      }
      manual.push_back(dec);
    }

    rec.expect("periodic-verdict-parity", series.accepted == manual_all, [&] {
      std::ostringstream out;
      out << "admit_periodic " << (series.accepted ? "accepted" : "rejected")
          << " but the manual loop " << (manual_all ? "accepted" : "rejected")
          << " (period " << period << ", count " << count << ")";
      return out.str();
    });
    if (series.accepted && manual_all) {
      bool plans_match = series.plans.size() == manual.size();
      for (std::size_t k = 0; plans_match && k < manual.size(); ++k) {
        plans_match = manual[k].plan && series.plans[k] == *manual[k].plan;
      }
      rec.expect("periodic-plan-parity", plans_match, [&] {
        return std::string(
            "admit_periodic plans diverge from the manual loop's");
      });
      rec.expect("periodic-residual-parity",
                 a.ledger().residual() == b.ledger().residual(), [&] {
                   return std::string(
                       "series residual diverges from the manual loop's");
                 });
      rec.expect("periodic-sustainable-full", sustained == count, [&] {
        std::ostringstream out;
        out << "series admitted in full but sustainable_instances says "
            << sustained << " of " << count;
        return out.str();
      });
    } else if (!series.accepted && !manual_all) {
      rec.expect("periodic-failed-instance",
                 series.failed_instance == manual_failed, [&] {
                   std::ostringstream out;
                   out << "series failed at instance " << series.failed_instance
                       << ", manual loop at " << manual_failed;
                   return out.str();
                 });
      rec.expect("periodic-rollback",
                 series.plans.empty() && a.ledger().admitted_count() == 0 &&
                     a.ledger().residual() == a.ledger().supply(),
                 [&] {
                   return std::string(
                       "rejected series left commitments in the controller");
                 });
      rec.expect("periodic-sustainable-prefix", sustained == manual_failed, [&] {
        std::ostringstream out;
        out << "manual loop failed at instance " << manual_failed
            << " but sustainable_instances says " << sustained;
        return out.str();
      });
    }
  }
}

}  // namespace

OracleReport run_kernel_oracle(std::uint64_t seed, std::size_t cases) {
  OracleReport report;
  report.family = "kernel";
  for (std::size_t i = 0; i < cases; ++i) {
    const std::uint64_t cs = case_seed(seed, i);
    Recorder rec(report, cs, i);
    Gen g(cs);
    try {
      kernel_case(g, rec);
    } catch (const std::exception& e) {
      rec.fail("unexpected-exception", e.what());
    }
    ++report.cases;
  }
  return report;
}

// ===========================================================================
// Sim oracle
// ===========================================================================

namespace {

/// Independent tick-replay referee for ComputationPath::expiring_resources:
/// accumulate supply (origin Θ from its clock, joins from theirs), subtract
/// every TickStep label at the tick it consumed, clamp, restrict.
DenseResources dense_expiring(const ComputationPath& path, std::size_t pos,
                              const TimeInterval& window) {
  const Tick lo = Gen::domain_lo();
  const Tick hi = Gen::domain_hi();
  DenseResources acc(lo, hi);

  const SystemState& origin = path.state(pos);
  for (const LocatedType& type : origin.theta().types()) {
    const StepFunction& f = origin.theta().availability(type);
    DenseFn& d = acc.of(type);
    for (Tick t = std::max(origin.now(), lo); t < hi; ++t) {
      d.set(t, d.at(t) + f.value_at(t));
    }
  }
  for (std::size_t i = pos; i < path.steps().size(); ++i) {
    if (const auto* join = std::get_if<JoinStep>(&path.steps()[i])) {
      const Tick visible_from = path.state(i).now();
      for (const LocatedType& type : join->joined.types()) {
        const StepFunction& f = join->joined.availability(type);
        DenseFn& d = acc.of(type);
        for (Tick t = std::max(visible_from, lo); t < hi; ++t) {
          d.set(t, d.at(t) + f.value_at(t));
        }
      }
    } else if (const auto* tick = std::get_if<TickStep>(&path.steps()[i])) {
      const Tick t = path.state(i).now();
      if (t < lo || t >= hi) continue;
      for (const ConsumptionLabel& label : tick->consumptions) {
        DenseFn& d = acc.of(label.type);
        d.set(t, d.at(t) - label.rate);
      }
    }
  }

  DenseResources out(lo, hi);
  for (const auto& [type, fn] : acc.entries()) {
    DenseFn& d = out.of(type);
    for (Tick t = lo; t < hi; ++t) {
      if (!window.contains(t)) continue;
      d.set(t, std::max<Rate>(fn.at(t), 0));
    }
  }
  return out;
}

/// The Figure 1 clip: (max(s, t), d) at a path position.
TimeInterval clip_at(const ComputationPath& path, std::size_t pos,
                     const TimeInterval& window) {
  return TimeInterval(std::max(window.start(), path.state(pos).now()),
                      window.end());
}

bool dense_satisfies_simple(const ComputationPath& path, std::size_t pos,
                            const SimpleRequirement& rho) {
  const TimeInterval clipped = clip_at(path, pos, rho.window());
  const DenseResources expiring = dense_expiring(path, pos, clipped);
  for (const auto& [type, q] : rho.demand().amounts()) {
    if (expiring.quantity(type, clipped) < q) return false;
  }
  return true;
}

/// Validates one concurrent plan pointwise against the tick-replay referee's
/// expiring budget; returns the first violation.
std::optional<std::string> validate_plan(const ConcurrentPlan& plan,
                                         const ConcurrentRequirement& rho,
                                         const TimeInterval& window,
                                         const DenseResources& budget) {
  const Tick lo = Gen::domain_lo();
  const Tick hi = Gen::domain_hi();

  std::map<LocatedType, DenseFn> usage;
  for (const ActorPlan& ap : plan.actors) {
    for (const auto& [type, f] : ap.usage) {
      auto [it, inserted] = usage.try_emplace(type, DenseFn(lo, hi));
      for (Tick t = lo; t < hi; ++t) {
        it->second.set(t, it->second.at(t) + f.value_at(t));
      }
    }
  }
  for (const auto& [type, used] : usage) {
    const DenseFn* have = budget.find(type);
    for (Tick t = lo; t < hi; ++t) {
      const Rate avail = have != nullptr ? have->at(t) : 0;
      if (used.at(t) < 0) {
        return "plan consumes a negative rate of " + type.to_string() +
               " at tick " + std::to_string(t);
      }
      if (used.at(t) > avail) {
        return "plan uses " + std::to_string(used.at(t)) + " of " +
               type.to_string() + " at tick " + std::to_string(t) +
               " with only " + std::to_string(avail) + " expiring";
      }
      if (!window.contains(t) && used.at(t) != 0) {
        return "plan consumes outside the window at tick " + std::to_string(t);
      }
    }
  }

  // Per-actor totals must meet the demand exactly.
  for (std::size_t i = 0; i < plan.actors.size() && i < rho.actors().size(); ++i) {
    const ActorPlan& ap = plan.actors[i];
    const DemandSet want = rho.actors()[i].total_demand();
    for (const auto& [type, q] : want.amounts()) {
      Quantity got = 0;
      const auto it = ap.usage.find(type);
      if (it != ap.usage.end()) got = it->second.integral();
      if (got != q) {
        return "actor " + ap.actor + " consumes " + std::to_string(got) +
               " of " + type.to_string() + ", demand is " + std::to_string(q);
      }
    }
  }
  if (plan.finish > window.end()) {
    return "plan finish " + std::to_string(plan.finish) + " past deadline " +
           std::to_string(window.end());
  }
  return std::nullopt;
}

void sim_cluster_checks(Gen& g, Recorder& rec) {
  using cluster::ClusterConfig;
  using cluster::ClusterReport;
  using cluster::ClusterSim;
  using cluster::NodeConfig;
  using cluster::NodeId;

  const int node_count = static_cast<int>(g.rng().uniform(2, 3));
  std::vector<Location> sites;
  std::vector<ResourceSet> supplies;
  for (int i = 0; i < node_count; ++i) {
    const Location site("cl" + std::to_string(i));
    sites.push_back(site);
    ResourceSet supply;
    supply.add(g.rng().uniform(2, 6), TimeInterval(0, 40), LocatedType::cpu(site));
    supply.add(g.rng().uniform(2, 6), TimeInterval(0, 40),
               LocatedType::memory(site));
    supplies.push_back(std::move(supply));
  }

  struct JobDraw {
    Tick at = 0;
    NodeId origin = 0;
    WorkSpec work;
  };
  std::vector<JobDraw> jobs;
  const int job_count = static_cast<int>(g.rng().uniform(2, 5));
  for (int j = 0; j < job_count; ++j) {
    JobDraw draw;
    draw.at = g.rng().uniform(0, 12);
    draw.origin = static_cast<NodeId>(g.rng().index(sites.size()));
    draw.work.actor = "cj" + std::to_string(j);
    draw.work.home = sites[draw.origin];
    const int chunks = static_cast<int>(g.rng().uniform(1, 2));
    for (int c = 0; c < chunks; ++c) {
      draw.work.chunk_weights.push_back(g.rng().uniform(1, 2));
    }
    draw.work.state_size = 1;
    draw.work.earliest_start = draw.at;
    draw.work.deadline = draw.at + g.rng().uniform(10, 30);
    jobs.push_back(std::move(draw));
  }

  ClusterConfig cfg;
  cfg.seed = g.rng().next_u64();
  cfg.node.lanes = static_cast<std::size_t>(g.rng().uniform(1, 2));
  cfg.node.gossip_period = 4;
  cfg.node.max_remote_rounds = 2;

  const auto build = [&](ClusterSim& sim) {
    for (int i = 0; i < node_count; ++i) sim.add_node(sites[i], supplies[i]);
    for (const JobDraw& j : jobs) {
      WorkSpec work = j.work;
      sim.submit(j.at, j.origin, std::move(work));
    }
  };

  ClusterSim sim_a(CostModel{}, cfg);
  ClusterSim sim_b(CostModel{}, cfg);
  build(sim_a);
  build(sim_b);
  const Tick horizon = 48;
  const ClusterReport ra = sim_a.run(horizon);
  const ClusterReport rb = sim_b.run(horizon);

  rec.expect("cluster-deterministic-log", ra.decision_log() == rb.decision_log(),
             [&] {
               return "same-seed cluster runs diverge:\n--- run A\n" +
                      ra.decision_log() + "--- run B\n" + rb.decision_log();
             });
  rec.expect("cluster-deterministic-fabric",
             ra.messages_sent == rb.messages_sent &&
                 ra.messages_dropped == rb.messages_dropped &&
                 ra.messages_delivered == rb.messages_delivered,
             [&] {
               std::ostringstream out;
               out << "fabric counters diverge: sent " << ra.messages_sent << "/"
                   << rb.messages_sent << ", dropped " << ra.messages_dropped
                   << "/" << rb.messages_dropped << ", delivered "
                   << ra.messages_delivered << "/" << rb.messages_delivered;
               return out.str();
             });
  rec.expect("cluster-decision-coverage", ra.decisions.size() == jobs.size(),
             [&] {
               std::ostringstream out;
               out << ra.decisions.size() << " decisions for " << jobs.size()
                   << " submitted jobs";
               return out.str();
             });

  // WAL replay: each node's audit log rebuilt onto a fresh ledger with the
  // node's base supply must reproduce the live residual.
  for (int i = 0; i < node_count; ++i) {
    const auto& node = sim_a.node(static_cast<NodeId>(i));
    CommitmentLedger rebuilt(supplies[static_cast<std::size_t>(i)], 0);
    const std::size_t replayed = node.audit().replay_into(rebuilt);
    rec.expect("cluster-replay-count",
               replayed == node.ledger().admitted_count(), [&] {
                 std::ostringstream out;
                 out << "node " << i << " replayed " << replayed << " of "
                     << node.ledger().admitted_count() << " admissions";
                 return out.str();
               });
    rec.expect("cluster-replay-residual",
               rebuilt.residual() == node.ledger().residual(), [&] {
                 std::ostringstream out;
                 out << "node " << i
                     << ": replayed residual diverges from live residual";
                 return out.str();
               });
  }
}

void sim_case(Gen& g, std::size_t case_index, Recorder& rec) {
  const Tick horizon = Gen::term_hi() + 8;

  ResourceSet supply = g.resource_set(3, 4, false).first;
  SystemState start(supply, 0);
  const int nreq = static_cast<int>(g.rng().uniform(1, 2));
  for (int i = 0; i < nreq; ++i) {
    start.accommodate(g.requirement("sim" + std::to_string(i)));
  }

  // --- Greedy determinism and greedy ⇒ search -------------------------------
  static constexpr PriorityOrder kAll[] = {
      PriorityOrder::kFcfs, PriorityOrder::kEdf, PriorityOrder::kLeastLaxity,
      PriorityOrder::kProportional};
  const PriorityOrder order = kAll[case_index % 4];
  const RunResult r1 = run_greedy(start, horizon, order);
  const RunResult r2 = run_greedy(start, horizon, order);
  rec.expect("greedy-deterministic",
             r1.path.steps() == r2.path.steps() &&
                 r1.path.back() == r2.path.back() && r1.all_met == r2.all_met &&
                 r1.finished_at == r2.finished_at,
             [&] {
               return "two run_greedy(" + priority_name(order) +
                      ") runs from one state disagree";
             });

  bool any_greedy_met = false;
  for (const PriorityOrder searched :
       {PriorityOrder::kEdf, PriorityOrder::kLeastLaxity, PriorityOrder::kFcfs}) {
    if (run_greedy(start, horizon, searched).all_met) any_greedy_met = true;
  }
  if (any_greedy_met) {
    rec.expect("greedy-implies-search",
               search_feasible(start, horizon, 4).has_value(), [&] {
                 return std::string(
                     "a greedy order meets every deadline but search_feasible "
                     "finds nothing");
               });
  }

  // --- Θ_expire vs the tick-replay referee ----------------------------------
  const RunResult fcfs_run = order == PriorityOrder::kFcfs
                                 ? r1
                                 : run_greedy(start, horizon, PriorityOrder::kFcfs);
  const ComputationPath& path = fcfs_run.path;
  const std::size_t pos = g.rng().index(path.size());
  {
    const TimeInterval w = g.interval();
    const ResourceSet expiring = path.expiring_resources(pos, w);
    rec.check("expiring-canonical", check_canonical(expiring));
    rec.check("expiring-vs-replay",
              diff_resources(expiring, dense_expiring(path, pos, w)));
  }

  // --- Model checker vs brute force -----------------------------------------
  const ModelChecker checker(path);

  // satisfy(ρ(γ,s,d)) against dense expiring quantities.
  DemandSet demand;
  const int entries = static_cast<int>(g.rng().uniform(1, 2));
  for (int i = 0; i < entries; ++i) {
    demand.add(g.located_type(), g.rng().uniform(1, 12));
  }
  const SimpleRequirement simple(demand, g.admission_window());
  {
    const bool got = checker.satisfies(f_satisfy(simple), pos);
    const bool want = dense_satisfies_simple(path, pos, simple);
    rec.expect("satisfy-simple", got == want, [&] {
      return bool_pair("satisfy(simple)", got, want) + "; demand = " +
             demand.to_string() + ", window = " + simple.window().to_string();
    });
  }

  // satisfy(ρ(Γ,s,d)): single-actor verdicts are complete on both sides, so
  // the checker must agree with a brute-force schedule search over Θ_expire.
  {
    const ConcurrentRequirement donor = g.requirement("bf");
    const ComplexRequirement& actor = donor.actors().front();
    const bool got = checker.satisfies(f_satisfy(actor), pos);
    const TimeInterval clipped = clip_at(path, pos, actor.window());
    if (clipped.empty()) {
      rec.expect("satisfy-complex-expired", !got, [&] {
        return std::string("satisfiable although the clipped window is empty");
      });
    } else {
      const ResourceSet expiring = path.expiring_resources(pos, actor.window());
      SystemState brute(expiring, path.state(pos).now());
      const ComplexRequirement clipped_actor(actor.actor(), actor.phases(),
                                             clipped, actor.rate_cap());
      brute.accommodate(ConcurrentRequirement("bf", {clipped_actor}, clipped));
      const bool want = search_feasible(brute, clipped.end(), 3).has_value();
      rec.expect("satisfy-complex-vs-search", got == want, [&] {
        return bool_pair("satisfy(complex)", got, want) + "; actor = " +
               actor.to_string() + " at position " + std::to_string(pos);
      });
    }
  }

  // satisfy(ρ(Λ,s,d)): full verdict parity against the symbolic engine's
  // exact verdict wherever it decides, greedy-plan soundness validated
  // pointwise against the tick-replay referee, and plan ⇒ not-infeasible.
  {
    const ConcurrentRequirement rho = g.requirement("cc");
    const bool got = checker.satisfies(f_satisfy(rho), pos);
    const TimeInterval clipped = clip_at(path, pos, rho.window());
    if (clipped.empty()) {
      rec.expect("satisfy-concurrent-expired", !got, [&] {
        return std::string(
            "concurrent satisfiable although the clipped window is empty");
      });
    } else {
      const ResourceSet expiring = path.expiring_resources(pos, rho.window());
      std::vector<ComplexRequirement> clipped_actors;
      for (const auto& a : rho.actors()) {
        clipped_actors.emplace_back(a.actor(), a.phases(), clipped, a.rate_cap());
      }
      const ConcurrentRequirement clipped_rho(rho.name(),
                                              std::move(clipped_actors), clipped);
      const auto plan =
          plan_concurrent(expiring, clipped_rho, PlanningPolicy::kAsap);
      if (plan) {
        rec.check("plan-soundness",
                  validate_plan(*plan, clipped_rho, clipped,
                                dense_expiring(path, pos, clipped)));
      }
      SystemState probe(expiring, path.state(pos).now());
      probe.accommodate(clipped_rho);
      const FeasibilityResult sym = decide_feasibility(probe, clipped.end());
      if (plan) {
        rec.expect("plan-implies-not-infeasible",
                   sym.verdict != FeasibilityVerdict::kInfeasible, [&] {
                     return "greedy planner found a plan for " + rho.name() +
                            " but the symbolic engine says infeasible";
                   });
      }
      if (sym.verdict != FeasibilityVerdict::kUnknown) {
        rec.expect("satisfy-concurrent-parity", got == sym.feasible(), [&] {
          return bool_pair("satisfy(concurrent)", got, sym.feasible()) +
                 "; rho = " + rho.name() + " at position " +
                 std::to_string(pos);
        });
      }
    }
  }

  // Temporal operators: the checker's ◇/□/¬ recursion against direct
  // enumeration over path positions, with atoms decided by the dense referee.
  {
    std::vector<char> ref(path.size());
    for (std::size_t p = 0; p < path.size(); ++p) {
      ref[p] = dense_satisfies_simple(path, p, simple) ? 1 : 0;
    }
    FormulaPtr formula = f_satisfy(simple);
    const int depth = static_cast<int>(g.rng().uniform(0, 3));
    for (int d = 0; d < depth; ++d) {
      std::vector<char> next(ref.size());
      switch (g.rng().index(3)) {
        case 0:
          formula = f_not(formula);
          for (std::size_t p = 0; p < ref.size(); ++p) next[p] = ref[p] ? 0 : 1;
          break;
        case 1:
          formula = f_eventually(formula);
          for (std::size_t p = 0; p < ref.size(); ++p) {
            next[p] = 0;
            for (std::size_t q = p + 1; q < ref.size(); ++q) {
              if (ref[q]) {
                next[p] = 1;
                break;
              }
            }
          }
          break;
        default:
          formula = f_always(formula);
          for (std::size_t p = 0; p < ref.size(); ++p) {
            next[p] = 1;
            for (std::size_t q = p + 1; q < ref.size(); ++q) {
              if (!ref[q]) {
                next[p] = 0;
                break;
              }
            }
          }
          break;
      }
      ref = std::move(next);
    }
    bool all_match = true;
    std::size_t first_bad = 0;
    for (std::size_t p = 0; p < path.size(); ++p) {
      if (checker.satisfies(formula, p) != static_cast<bool>(ref[p])) {
        all_match = false;
        first_bad = p;
        break;
      }
    }
    rec.expect("temporal-enumeration", all_match, [&] {
      return "checker disagrees with position enumeration for " +
             formula->to_string() + " first at position " +
             std::to_string(first_bad);
    });
  }

  // --- Cluster determinism and WAL replay -----------------------------------
  sim_cluster_checks(g, rec);
}

}  // namespace

OracleReport run_sim_oracle(std::uint64_t seed, std::size_t cases) {
  OracleReport report;
  report.family = "sim";
  for (std::size_t i = 0; i < cases; ++i) {
    const std::uint64_t cs = case_seed(seed, i);
    Recorder rec(report, cs, i);
    Gen g(cs);
    try {
      sim_case(g, i, rec);
    } catch (const std::exception& e) {
      rec.fail("unexpected-exception", e.what());
    }
    ++report.cases;
  }
  return report;
}

// ===========================================================================
// Cluster oracle — hostile-conditions fault sweep
// ===========================================================================
//
// A random small cluster, a random workload, a seeded FaultSchedule drawn
// over the run, optionally closed-loop retry clients — built twice from the
// same draw and replayed. The referees pin:
//   * byte-identical decision logs and fabric/retry counters across replays;
//   * exact message accounting (sent = delivered + dropped + in-flight),
//     partitions purging in-flight traffic included;
//   * an independent loss referee recomputed from the schedule alone:
//     a placement admitted strictly after a crash survives it, one admitted
//     before an unrecovered crash that precedes its finish is lost, and
//     accepted decisions inherit exactly their placement's fate — the
//     satellite audit of restart(recover=false) against the report
//     invariants lives here;
//   * decision coverage: every submitted job and every injected retry gets
//     exactly one decision, horizon aborts included;
//   * execution: surviving placements replayed through the plan-following
//     Simulator complete inside their deadlines (SimReport::validate throws
//     on a completed-without-finish corpse);
//   * the DSL round trip: schedule → scenario `fault` lines → text → parse →
//     schedule, structurally equal.

namespace {

/// Everything one cluster fault case needs, kept so the sim can be rebuilt
/// from scratch for the replay run.
struct ClusterFaultDraw {
  struct Job {
    Tick at = 0;
    cluster::NodeId origin = 0;
    WorkSpec work;
  };

  std::vector<std::string> names;
  std::vector<Location> sites;
  std::vector<ResourceSet> supplies;
  std::vector<Job> jobs;
  cluster::ClusterConfig cfg;
  faults::FaultSchedule schedule;
  bool retries = false;
  faults::RetryPolicy retry_policy;
  std::uint64_t retry_seed = 0;
  Tick horizon = 64;
};

ClusterFaultDraw draw_cluster_fault_case(Gen& g) {
  ClusterFaultDraw draw;
  const int node_count = static_cast<int>(g.rng().uniform(2, 3));
  for (int i = 0; i < node_count; ++i) {
    const std::string name = "cl" + std::to_string(i);
    const Location site(name);
    draw.names.push_back(name);
    draw.sites.push_back(site);
    ResourceSet supply;
    supply.add(g.rng().uniform(2, 6), TimeInterval(0, 64), LocatedType::cpu(site));
    supply.add(g.rng().uniform(2, 6), TimeInterval(0, 64),
               LocatedType::memory(site));
    draw.supplies.push_back(std::move(supply));
  }

  const int job_count = static_cast<int>(g.rng().uniform(2, 6));
  for (int j = 0; j < job_count; ++j) {
    ClusterFaultDraw::Job job;
    job.at = g.rng().uniform(0, 16);
    job.origin = static_cast<cluster::NodeId>(g.rng().index(draw.sites.size()));
    job.work.actor = "fj" + std::to_string(j);
    job.work.home = draw.sites[job.origin];
    const int chunks = static_cast<int>(g.rng().uniform(1, 2));
    for (int c = 0; c < chunks; ++c) {
      job.work.chunk_weights.push_back(g.rng().uniform(1, 2));
    }
    job.work.state_size = 1;
    job.work.earliest_start = job.at;
    job.work.deadline = job.at + g.rng().uniform(10, 30);
    draw.jobs.push_back(std::move(job));
  }

  draw.cfg.seed = g.rng().next_u64();
  draw.cfg.node.lanes = static_cast<std::size_t>(g.rng().uniform(1, 2));
  draw.cfg.node.gossip_period = 4;
  draw.cfg.node.max_remote_rounds = 2;
  draw.cfg.node.expire_by_deadline = g.rng().chance(0.5);
  draw.cfg.default_link.jitter = g.rng().uniform(0, 2);
  draw.cfg.default_link.drop = g.rng().chance(0.5) ? 0.0 : 0.1;

  faults::FaultProfile profile;
  profile.crash_rate = 0.6;
  profile.restart_probability = 0.8;
  profile.recover_probability = 0.5;
  profile.min_outage = 0;  // same-tick crash→restart bounces included
  profile.max_outage = 10;
  profile.partition_rate = 0.5;
  profile.min_cut = 0;
  profile.max_cut = 12;
  profile.heal_probability = 0.8;
  draw.schedule = faults::make_fault_schedule(g.rng(), draw.sites.size(),
                                              draw.horizon, profile);

  draw.retries = g.rng().chance(0.5);
  if (draw.retries) {
    draw.retry_policy.max_attempts = static_cast<std::size_t>(g.rng().uniform(2, 4));
    draw.retry_policy.backoff_base = 1;
    draw.retry_policy.backoff_cap = 4;
    draw.retry_policy.jitter = g.rng().uniform(0, 2);
    draw.retry_seed = g.rng().next_u64();
  }
  return draw;
}

cluster::ClusterSim build_cluster_fault_sim(const ClusterFaultDraw& draw) {
  cluster::ClusterSim sim(CostModel{}, draw.cfg);
  for (std::size_t i = 0; i < draw.sites.size(); ++i) {
    sim.add_node(draw.sites[i], draw.supplies[i]);
  }
  for (const ClusterFaultDraw::Job& j : draw.jobs) {
    sim.submit(j.at, j.origin, j.work);
  }
  sim.apply(draw.schedule);
  if (draw.retries) sim.set_retry_policy(draw.retry_policy, draw.retry_seed);
  return sim;
}

/// The loss referee's own outage table, recomputed from the schedule alone:
/// per node, (crash_at, restart_at or kTickMax, recovered) in timeline order.
std::vector<std::vector<std::tuple<Tick, Tick, bool>>> referee_outages(
    const faults::FaultSchedule& schedule, std::size_t nodes) {
  std::vector<faults::FaultEvent> ordered = schedule.events();
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const faults::FaultEvent& x, const faults::FaultEvent& y) {
                     return x.at < y.at;
                   });
  std::vector<std::vector<std::tuple<Tick, Tick, bool>>> outages(nodes);
  for (const faults::FaultEvent& e : ordered) {
    if (e.kind == faults::FaultEvent::Kind::kCrash) {
      outages[e.a].emplace_back(e.at, kTickMax, false);
    } else if (e.kind == faults::FaultEvent::Kind::kRestart &&
               !outages[e.a].empty()) {
      auto& [crash_at, restart_at, recovered] = outages[e.a].back();
      (void)crash_at;
      restart_at = e.at;
      recovered = e.recover;
    }
  }
  return outages;
}

void cluster_fault_case(Gen& g, Recorder& rec) {
  using cluster::ClusterReport;
  using cluster::ClusterSim;
  using cluster::JobDecision;
  using cluster::PlacedAdmission;
  using cluster::Placement;

  const ClusterFaultDraw draw = draw_cluster_fault_case(g);

  ClusterSim sim_a = build_cluster_fault_sim(draw);
  ClusterSim sim_b = build_cluster_fault_sim(draw);
  const ResourceSet total = sim_a.total_supply();
  const ClusterReport ra = sim_a.run(draw.horizon);
  const ClusterReport rb = sim_b.run(draw.horizon);

  // --- determinism across an identical replay -------------------------------
  rec.expect("cluster-deterministic-log", ra.decision_log() == rb.decision_log(),
             [&] {
               return "same-seed fault runs diverge:\n--- run A\n" +
                      ra.decision_log() + "--- run B\n" + rb.decision_log() +
                      "--- schedule\n" + draw.schedule.to_string();
             });
  rec.expect("cluster-deterministic-fabric",
             ra.messages_sent == rb.messages_sent &&
                 ra.messages_dropped == rb.messages_dropped &&
                 ra.messages_delivered == rb.messages_delivered &&
                 ra.messages_in_flight == rb.messages_in_flight,
             [&] {
               std::ostringstream out;
               out << "fabric counters diverge: sent " << ra.messages_sent << "/"
                   << rb.messages_sent << ", dropped " << ra.messages_dropped
                   << "/" << rb.messages_dropped << ", delivered "
                   << ra.messages_delivered << "/" << rb.messages_delivered
                   << ", in-flight " << ra.messages_in_flight << "/"
                   << rb.messages_in_flight;
               return out.str();
             });
  rec.expect("cluster-deterministic-retries",
             ra.resubmissions == rb.resubmissions &&
                 ra.retry_root == rb.retry_root,
             [&] {
               std::ostringstream out;
               out << "retry streams diverge: " << ra.resubmissions << "/"
                   << rb.resubmissions << " resubmissions";
               return out.str();
             });

  // --- message accounting ---------------------------------------------------
  rec.expect("cluster-message-accounting",
             ra.messages_sent == ra.messages_delivered + ra.messages_dropped +
                                     ra.messages_in_flight,
             [&] {
               std::ostringstream out;
               out << "messages leak: sent " << ra.messages_sent
                   << " != delivered " << ra.messages_delivered << " + dropped "
                   << ra.messages_dropped << " + in-flight "
                   << ra.messages_in_flight;
               return out.str();
             });

  // --- decision coverage: originals + injected retries, exactly once -------
  {
    std::vector<std::uint64_t> expected;
    for (std::size_t j = 0; j < draw.jobs.size(); ++j) {
      expected.push_back(static_cast<std::uint64_t>(j));
    }
    for (const auto& [retry, root] : ra.retry_root) {
      (void)root;
      expected.push_back(retry);
    }
    std::sort(expected.begin(), expected.end());
    std::vector<std::uint64_t> got;
    for (const JobDecision& d : ra.decisions) got.push_back(d.id);
    std::sort(got.begin(), got.end());
    rec.expect("cluster-decision-coverage", got == expected, [&] {
      std::ostringstream out;
      out << got.size() << " decisions for " << expected.size()
          << " submissions (" << draw.jobs.size() << " jobs + "
          << ra.retry_root.size() << " retries)";
      return out.str();
    });
  }

  // --- the loss referee: recompute every placement's fate from the schedule
  const auto outages = referee_outages(draw.schedule, draw.sites.size());
  const auto referee_lost = [&](const PlacedAdmission& p) {
    // Faults apply at tick start, so an admission stamped at the crash tick
    // happened after a same-tick restart and survives; only a crash strictly
    // between admission and planned finish, never recovered, destroys it.
    for (const auto& [crash_at, restart_at, recovered] : outages[p.node]) {
      (void)restart_at;
      if (!recovered && crash_at > p.at && crash_at < p.plan.finish) return true;
    }
    return false;
  };
  for (const PlacedAdmission& p : ra.placements) {
    rec.expect("cluster-lost-referee", p.lost == referee_lost(p), [&] {
      std::ostringstream out;
      out << "placement job " << p.job << " at node " << p.node << " (at="
          << p.at << ", finish=" << p.plan.finish << ") marked lost="
          << (p.lost ? "true" : "false") << ", referee says "
          << (p.lost ? "false" : "true") << "\nschedule:\n"
          << draw.schedule.to_string();
      return out.str();
    });
  }
  for (const JobDecision& d : ra.decisions) {
    if (d.outcome == Placement::kRejected) continue;
    const PlacedAdmission* placed = nullptr;
    for (const PlacedAdmission& p : ra.placements) {
      if (p.job == d.id && p.node == d.placed) {
        placed = &p;
        break;
      }
    }
    if (!rec.expect("cluster-accept-has-placement", placed != nullptr, [&] {
          return "accepted decision without a placement: " + d.to_string();
        })) {
      continue;
    }
    rec.expect("cluster-decision-lost-inheritance", d.lost == placed->lost,
               [&] {
                 return "decision and placement disagree on loss: " +
                        d.to_string();
               });
  }

  // --- execution: surviving placements meet their deadlines ----------------
  std::size_t surviving = 0;
  for (const PlacedAdmission& p : ra.placements) {
    if (!p.lost) ++surviving;
  }
  try {
    Simulator exec(total, 0, ExecutionMode::kPlanFollowing);
    ra.schedule_into(exec);
    const SimReport outcome = exec.run(draw.horizon + 64);
    rec.expect("cluster-exec-deadlines",
               outcome.outcomes.size() == surviving && outcome.missed() == 0,
               [&] {
                 std::ostringstream out;
                 out << outcome.outcomes.size() << " outcomes for " << surviving
                     << " surviving placements, " << outcome.missed()
                     << " missed deadlines";
                 return out.str();
               });
  } catch (const std::exception& e) {
    // Simulator::run validates its report; a throw is an invariant corpse
    // (e.g. completed without finished_at after an unrecovered restart).
    rec.fail("cluster-exec-invariants", e.what());
  }

  // --- DSL round trip -------------------------------------------------------
  try {
    Scenario scenario;
    for (std::size_t i = 0; i < draw.names.size(); ++i) {
      scenario.nodes.push_back(ScenarioNode{draw.names[i], draw.names[i], 1});
    }
    scenario.faults = faults::to_scenario_faults(draw.schedule, draw.names);
    const Scenario reparsed = parse_scenario_string(scenario_to_string(scenario));
    rec.expect("cluster-fault-dsl-parse", reparsed.faults == scenario.faults,
               [&] {
                 return "fault statements changed across write/parse:\n" +
                        scenario_to_string(scenario);
               });
    const faults::FaultSchedule back =
        faults::from_scenario_faults(reparsed.faults, draw.names);
    rec.expect("cluster-fault-dsl-roundtrip", back == draw.schedule, [&] {
      return "schedule changed across the DSL round trip:\n--- original\n" +
             draw.schedule.to_string() + "--- round-tripped\n" + back.to_string();
    });
  } catch (const std::exception& e) {
    rec.fail("cluster-fault-dsl-exception", e.what());
  }
}

}  // namespace

OracleReport run_cluster_oracle(std::uint64_t seed, std::size_t cases) {
  OracleReport report;
  report.family = "cluster";
  for (std::size_t i = 0; i < cases; ++i) {
    const std::uint64_t cs = case_seed(seed, i);
    Recorder rec(report, cs, i);
    Gen g(cs);
    try {
      cluster_fault_case(g, rec);
    } catch (const std::exception& e) {
      rec.fail("unexpected-exception", e.what());
    }
    ++report.cases;
  }
  return report;
}

// ===========================================================================
// Feasibility oracle — symbolic engine vs permutation explorer
// ===========================================================================

namespace {

/// A small-window instance kept in parts so the minimizer can rebuild
/// subsets: supply over [0, horizon), 1–3 actors with their own windows.
struct FeasibilityDraw {
  ResourceSet supply;
  std::vector<ComplexRequirement> actors;
  Tick horizon = 0;
};

SystemState materialize(const FeasibilityDraw& draw) {
  SystemState state(draw.supply, 0);
  if (!draw.actors.empty()) {
    state.accommodate(
        ConcurrentRequirement("fz", draw.actors, TimeInterval(0, draw.horizon)));
  }
  return state;
}

std::string describe_draw(const FeasibilityDraw& draw) {
  std::ostringstream out;
  out << draw.actors.size() << " actor(s), horizon " << draw.horizon
      << ", supply " << draw.supply.to_string();
  for (const auto& a : draw.actors) {
    out << "; " << a.to_string();
    // to_string omits the absorption cap, and an invisible cap once made a
    // minimized repro look like a sweep bug — keep it in the dump.
    if (a.rate_cap() > 0) out << " cap " << a.rate_cap();
  }
  return out.str();
}

/// Windows W ∈ [3, 9], 1–2 located types, modest rates: small enough that
/// the permutation explorer is an exact-for-practical-purposes adversary and
/// the exhaustive referee can adjudicate the tiniest instances, rich enough
/// (staggered windows, supply steps, rate caps, two phases) to exercise every
/// constraint family of the encoding.
FeasibilityDraw draw_feasibility_instance(Gen& g) {
  FeasibilityDraw draw;
  draw.horizon = g.rng().uniform(3, 9);
  const Location site("fz");
  std::vector<LocatedType> types{LocatedType::cpu(site)};
  if (g.rng().chance(0.5)) types.push_back(LocatedType::memory(site));
  for (const LocatedType& t : types) {
    draw.supply.add(g.rng().uniform(1, 4), TimeInterval(0, draw.horizon), t);
  }
  if (g.rng().chance(0.3)) {
    // A supply step partway through the window: expiry pressure.
    draw.supply.add(g.rng().uniform(1, 3),
                    TimeInterval(g.rng().uniform(0, draw.horizon - 1), draw.horizon),
                    types[g.rng().index(types.size())]);
  }
  const int actor_count = static_cast<int>(g.rng().uniform(1, 3));
  for (int a = 0; a < actor_count; ++a) {
    TimeInterval window(0, draw.horizon);
    if (g.rng().chance(0.4)) {
      const Tick lo = g.rng().uniform(0, draw.horizon - 2);
      window = TimeInterval(lo, g.rng().uniform(lo + 2, draw.horizon));
    }
    const int phase_count = static_cast<int>(g.rng().uniform(1, 2));
    std::vector<Phase> phases;
    std::size_t cursor = 0;
    for (int p = 0; p < phase_count; ++p) {
      Phase phase;
      const int demands = static_cast<int>(g.rng().uniform(1, 2));
      for (int d = 0; d < demands; ++d) {
        phase.demand.add(types[g.rng().index(types.size())],
                         g.rng().uniform(1, 5));
      }
      phase.first_action = cursor;
      phase.action_count = 1;
      cursor += 1;
      phases.push_back(std::move(phase));
    }
    const Rate cap = g.rng().chance(0.4) ? g.rng().uniform(1, 3) : 0;
    draw.actors.emplace_back("fz-a" + std::to_string(a), std::move(phases),
                             window, cap);
  }
  return draw;
}

/// The instances the static-priority sweep is exact on: single phase AND no
/// absorption caps. Multi-phase schedules can need a leading actor throttled
/// below its water-fill share; capped schedules can need the priority order
/// to *switch* between ticks (give the capped actor its cap first, then yield
/// the remainder) — neither is expressible as one static permutation.
bool sweep_exact_domain(const FeasibilityDraw& draw) {
  for (const ComplexRequirement& a : draw.actors) {
    if (a.phase_count() > 1 || a.rate_cap() > 0) return false;
  }
  return true;
}

struct EngineVerdicts {
  FeasibilityVerdict symbolic = FeasibilityVerdict::kUnknown;
  bool explorer = false;
  bool sweep_exact = true;

  /// A *contradiction* between the engines, not a mere difference. The
  /// permutation sweep enumerates static priority orders, so it can miss
  /// feasible instances outside its exact domain: multi-phase schedules that
  /// throttle a leading actor below its water-fill share, and rate-capped
  /// schedules that switch priority between ticks — the fuzz harness found
  /// live instances of both, and the symbolic witnesses replayed. What may
  /// never happen: the sweep produces a path the symbolic engine calls
  /// infeasible, or the two decide an instance inside the sweep's exact
  /// domain (single-phase, uncapped) differently.
  bool disagree() const {
    if (symbolic == FeasibilityVerdict::kUnknown) return false;
    const bool sym_feasible = symbolic == FeasibilityVerdict::kFeasible;
    if (explorer && !sym_feasible) return true;
    return sweep_exact && sym_feasible != explorer;
  }
};

EngineVerdicts decide_both(const FeasibilityDraw& draw,
                           const FeasibilityOptions& options) {
  EngineVerdicts v;
  const SystemState state = materialize(draw);
  v.symbolic = decide_feasibility(state, draw.horizon, options).verdict;
  SearchOptions sweep;
  sweep.engine = FeasibilityEngine::kExplorer;
  v.explorer = search_feasible(state, draw.horizon, sweep).has_value();
  v.sweep_exact = sweep_exact_domain(draw);
  return v;
}

/// Shrinks a diverging instance before reporting it: drop actors one at a
/// time, then shorten the horizon, keeping each reduction only while the
/// divergence survives. Bounded at 32 re-decisions.
FeasibilityDraw minimize_divergence(FeasibilityDraw draw,
                                    const FeasibilityOptions& options) {
  std::size_t budget = 32;
  bool shrunk = true;
  while (shrunk && budget > 0) {
    shrunk = false;
    for (std::size_t i = 0; draw.actors.size() > 1 && i < draw.actors.size();
         ++i) {
      if (budget == 0) break;
      FeasibilityDraw candidate = draw;
      candidate.actors.erase(candidate.actors.begin() +
                             static_cast<std::ptrdiff_t>(i));
      --budget;
      if (decide_both(candidate, options).disagree()) {
        draw = std::move(candidate);
        shrunk = true;
        break;
      }
    }
    while (draw.horizon > 3 && budget > 0) {
      FeasibilityDraw candidate = draw;
      --candidate.horizon;
      --budget;
      if (!decide_both(candidate, options).disagree()) break;
      draw = std::move(candidate);
      shrunk = true;
    }
  }
  return draw;
}

void feasibility_case(Gen& g, Recorder& rec) {
  const FeasibilityDraw draw = draw_feasibility_instance(g);
  const SystemState state = materialize(draw);

  // Generous budget: a small-window instance the engine cannot decide under
  // it is itself a bug worth a divergence report.
  FeasibilityOptions options;
  options.node_budget = 2'000'000;
  options.max_ticks = 512;

  const FeasibilityResult sym = decide_feasibility(state, draw.horizon, options);
  if (!rec.expect("symbolic-decided",
                  sym.verdict != FeasibilityVerdict::kUnknown, [&] {
                    return "budget exhausted on a small instance: " +
                           describe_draw(draw);
                  })) {
    return;
  }

  // Bit-identical re-decision: verdict, witness schedule, and boundaries.
  {
    const FeasibilityResult again =
        decide_feasibility(state, draw.horizon, options);
    rec.expect("symbolic-deterministic",
               sym.verdict == again.verdict && sym.schedule == again.schedule &&
                   sym.boundaries == again.boundaries,
               [&] {
                 return "two decisions of one instance disagree: " +
                        describe_draw(draw);
               });
  }

  // kFeasible must come with a witness that replays through the transition
  // rules and finishes every commitment inside its window.
  if (sym.feasible()) {
    rec.expect("witness-replays", realize_feasibility(state, sym).has_value(),
               [&] {
                 return "witness schedule failed to replay: " +
                        describe_draw(draw);
               });
  }

  // The permutation explorer independently decides the same instance. A path
  // from the sweep is a constructive proof, so the symbolic engine may never
  // contradict it; and inside the sweep's exact domain (single-phase,
  // uncapped) the two must agree outright. Outside it,
  // "symbolic-feasible, sweep-refused" is the sweep's documented
  // incompleteness — static priority orders cannot throttle a multi-phase
  // leader below its water-fill share, nor switch priority between ticks the
  // way rate-capped schedules can require — and the witness-replays check
  // above already proved such verdicts constructively. Divergences are
  // minimized before reporting.
  SearchOptions sweep;
  sweep.engine = FeasibilityEngine::kExplorer;
  const bool explored = search_feasible(state, draw.horizon, sweep).has_value();
  rec.expect("explorer-refutes-symbolic", !explored || sym.feasible(), [&] {
    const FeasibilityDraw minimal = minimize_divergence(draw, options);
    return bool_pair("feasible", sym.feasible(), explored) +
           "; minimized instance: " + describe_draw(minimal);
  });
  if (sweep_exact_domain(draw)) {
    rec.expect("static-sweep-parity", sym.feasible() == explored, [&] {
      const FeasibilityDraw minimal = minimize_divergence(draw, options);
      return bool_pair("feasible", sym.feasible(), explored) +
             "; minimized instance: " + describe_draw(minimal);
    });
  }

  // The tiniest instances get a third, assumption-free adjudicator: the
  // bounded exhaustive tick-level scheduler.
  if (draw.actors.size() <= 2 && draw.horizon <= 7) {
    const auto exact = exhaustive_feasible(state, draw.horizon, 200'000);
    if (exact) {
      rec.expect("symbolic-vs-exhaustive", sym.feasible() == *exact, [&] {
        return bool_pair("feasible", sym.feasible(), *exact) +
               "; instance: " + describe_draw(draw);
      });
      // One-sided for the same reason as above: a sweep path implies
      // feasibility, but the sweep may refuse feasible instances outside its
      // exact domain. Inside it (single-phase, uncapped) the sweep is held
      // to full agreement with the exhaustive scheduler.
      const bool sweep_sound = !explored || *exact;
      rec.expect("explorer-vs-exhaustive",
                 sweep_exact_domain(draw) ? explored == *exact : sweep_sound,
                 [&] {
                   return bool_pair("feasible", explored, *exact) +
                          "; instance: " + describe_draw(draw);
                 });
    }
  }
}

}  // namespace

OracleReport run_feasibility_oracle(std::uint64_t seed, std::size_t cases) {
  OracleReport report;
  report.family = "feasibility";
  for (std::size_t i = 0; i < cases; ++i) {
    const std::uint64_t cs = case_seed(seed, i);
    Recorder rec(report, cs, i);
    Gen g(cs);
    try {
      feasibility_case(g, rec);
    } catch (const std::exception& e) {
      rec.fail("unexpected-exception", e.what());
    }
    ++report.cases;
  }
  return report;
}

}  // namespace rota::fuzz
