// The three differential-oracle families of the fuzzing harness.
//
//   calculus — randomized StepFunction / IntervalSet / ResourceSet terms
//     checked pointwise against the dense referees in reference.hpp, plus
//     canonical-form audits and algebraic round-trips (∪ then \, restrict,
//     clamp, shift, coarsen) and the relative_complement ⇔ dominates pin.
//   kernel   — random workloads where the batched admission pipeline at
//     1–8 lanes must reproduce the sequential controller's decisions bit for
//     bit, plus FeasibilitySnapshot restriction-cache and stale-commit
//     audits and WAL-replay residual reproduction.
//   sim      — greedy runs, explorer searches, model-checker verdicts and
//     cluster executions cross-checked: Θ_expire against an independent
//     tick-replay referee, single-actor satisfy() against brute-force
//     schedule search, concurrent satisfy() against the symbolic engine's
//     exact verdict, concurrent plans validated pointwise, and cluster
//     runs re-executed from the same seed and from audit-log replay.
//   cluster  — the hostile-conditions sweep: a seeded FaultSchedule
//     (crash/restart/partition/heal) and optional closed-loop retry clients
//     over a small cluster, built twice and replayed for byte-identical
//     decision logs and counters; exact message accounting across partition
//     purges; an independent loss referee recomputed from the schedule
//     alone (unrecovered crashes destroy earlier unfinished placements,
//     same-tick bounces don't); decision coverage over originals + retries;
//     surviving placements re-executed through the plan-following Simulator
//     (report invariants validated); and the `fault` DSL round trip.
//   feasibility — the percy two-synthesizer pattern: the symbolic cut-point
//     engine and the permutation explorer independently decide the same
//     small-window multi-actor instances. A sweep path may never contradict
//     a symbolic kInfeasible, instances in the sweep's exact domain
//     (single-phase, uncapped) must agree outright, every kFeasible witness
//     must replay through the transition rules, and on tiny instances a
//     bounded exhaustive tick-level scheduler adjudicates. (Full two-sided
//     parity is deliberately *not* demanded outside that domain: static
//     priority orders cannot throttle a multi-phase leader below its
//     water-fill share, nor switch priority between ticks the way
//     rate-capped schedules can require — fuzzing found feasible,
//     witness-validated instances of both kinds.) Divergences are minimized
//     (drop actors, shrink the horizon) before reporting.
//
// Every case is pinned by (run seed, case index) through case_seed(), so a
// divergence report is a reproduction recipe: seed the generator with
// case_seed(seed, index) and replay the same checks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rota::fuzz {

/// One observed disagreement between production code and a referee.
struct Divergence {
  std::string family;      // "calculus" | "kernel" | "sim"
  std::string check;       // short name of the failing check
  std::uint64_t seed = 0;  // the *case* seed (feed straight to Gen)
  std::size_t case_index = 0;
  std::string detail;      // first mismatch, human-readable

  std::string to_string() const;
};

/// Outcome of one oracle run.
struct OracleReport {
  /// Divergences beyond this many are counted but not recorded.
  static constexpr std::size_t kMaxRecorded = 8;

  std::string family;
  std::size_t cases = 0;
  std::uint64_t checks = 0;  // individual comparisons performed
  std::uint64_t divergence_count = 0;
  std::vector<Divergence> divergences;  // first kMaxRecorded

  bool clean() const { return divergence_count == 0; }
  std::string summary() const;
};

/// The seed a given case runs under — deterministic in (run_seed, index) and
/// well-mixed, so each case is independently reproducible.
std::uint64_t case_seed(std::uint64_t run_seed, std::size_t case_index);

OracleReport run_calculus_oracle(std::uint64_t seed, std::size_t cases);
OracleReport run_kernel_oracle(std::uint64_t seed, std::size_t cases);
OracleReport run_sim_oracle(std::uint64_t seed, std::size_t cases);
OracleReport run_cluster_oracle(std::uint64_t seed, std::size_t cases);
OracleReport run_feasibility_oracle(std::uint64_t seed, std::size_t cases);

}  // namespace rota::fuzz
