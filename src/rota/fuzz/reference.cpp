#include "rota/fuzz/reference.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

namespace rota::fuzz {

namespace {

/// Floor division, matching StepFunction::coarsened's bucket alignment.
Tick floor_div(Tick a, Tick b) { return a >= 0 ? a / b : -((-a + b - 1) / b); }

}  // namespace

// ---------------------------------------------------------------------------
// DenseFn

void DenseFn::add(const TimeInterval& iv, Rate value) {
  for (Tick t = std::max(iv.start(), lo_); t < std::min(iv.end(), hi()); ++t) {
    values_[static_cast<std::size_t>(t - lo_)] += value;
  }
}

DenseFn DenseFn::restricted(const TimeInterval& window) const {
  DenseFn out(lo_, hi());
  for (Tick t = lo_; t < hi(); ++t) {
    if (window.contains(t)) out.set(t, at(t));
  }
  return out;
}

DenseFn DenseFn::clamped_nonnegative() const {
  DenseFn out(lo_, hi());
  for (Tick t = lo_; t < hi(); ++t) out.set(t, std::max<Rate>(at(t), 0));
  return out;
}

DenseFn DenseFn::shifted(Tick dt) const {
  DenseFn out(lo_, hi());
  for (Tick t = lo_; t < hi(); ++t) {
    const Tick source = t - dt;
    if (source >= lo_ && source < hi()) out.set(t, at(source));
  }
  return out;
}

DenseFn DenseFn::coarsened(Tick factor) const {
  // Each tick takes the minimum over its aligned bucket (gaps count as 0).
  DenseFn out(lo_, hi());
  for (Tick t = lo_; t < hi(); ++t) {
    const Tick bucket = floor_div(t, factor);
    Rate m = 0;  // buckets always reach outside any bounded support eventually;
                 // inside the domain the loop below visits every tick exactly.
    bool first = true;
    for (Tick u = bucket * factor; u < (bucket + 1) * factor; ++u) {
      const Rate v = at(u);
      m = first ? v : std::min(m, v);
      first = false;
    }
    out.set(t, m);
  }
  return out;
}

Rate DenseFn::min_value() const {
  Rate m = 0;  // zero outside the support
  for (const Rate v : values_) m = std::min(m, v);
  return m;
}

Rate DenseFn::min_over(const TimeInterval& window) const {
  if (window.empty()) return 0;
  Rate m = std::numeric_limits<Rate>::max();
  for (Tick t = window.start(); t < window.end(); ++t) m = std::min(m, at(t));
  return m;
}

Quantity DenseFn::integral(const TimeInterval& window) const {
  Quantity total = 0;
  for (Tick t = lo_; t < hi(); ++t) {
    if (window.contains(t)) total += at(t);
  }
  return total;
}

Quantity DenseFn::integral() const {
  Quantity total = 0;
  for (const Rate v : values_) total += v;
  return total;
}

bool DenseFn::dominates(const DenseFn& o) const {
  for (Tick t = std::min(lo_, o.lo()); t < std::max(hi(), o.hi()); ++t) {
    if (at(t) < o.at(t)) return false;
  }
  return true;
}

std::optional<Tick> DenseFn::earliest_cover(const TimeInterval& window, Quantity q) const {
  if (q == 0) return window.start();
  Quantity acc = 0;
  for (Tick t = window.start(); t < window.end(); ++t) {
    if (at(t) > 0) acc += at(t);
    if (acc >= q) return t + 1;
  }
  return std::nullopt;
}

std::optional<Tick> DenseFn::latest_cover_start(const TimeInterval& window,
                                                Quantity q) const {
  if (q == 0) return window.end();
  Quantity acc = 0;
  for (Tick t = window.end() - 1; t >= window.start(); --t) {
    if (at(t) > 0) acc += at(t);
    if (acc >= q) return t;
  }
  return std::nullopt;
}

std::string DenseFn::to_string() const {
  std::ostringstream out;
  out << '[';
  bool first = true;
  for (Tick t = lo_; t < hi(); ++t) {
    if (at(t) == 0) continue;
    if (!first) out << ' ';
    out << t << ':' << at(t);
    first = false;
  }
  out << ']';
  return out.str();
}

// ---------------------------------------------------------------------------
// DenseSet

void DenseSet::insert(const TimeInterval& iv) {
  for (Tick t = std::max(iv.start(), lo_); t < std::min(iv.end(), hi()); ++t) {
    member_[static_cast<std::size_t>(t - lo_)] = true;
  }
}

DenseSet DenseSet::unioned(const DenseSet& o) const {
  DenseSet out(lo_, hi());
  for (Tick t = lo_; t < hi(); ++t) {
    if (contains(t) || o.contains(t)) out.insert(TimeInterval(t, t + 1));
  }
  return out;
}

DenseSet DenseSet::intersected(const DenseSet& o) const {
  DenseSet out(lo_, hi());
  for (Tick t = lo_; t < hi(); ++t) {
    if (contains(t) && o.contains(t)) out.insert(TimeInterval(t, t + 1));
  }
  return out;
}

DenseSet DenseSet::subtracted(const DenseSet& o) const {
  DenseSet out(lo_, hi());
  for (Tick t = lo_; t < hi(); ++t) {
    if (contains(t) && !o.contains(t)) out.insert(TimeInterval(t, t + 1));
  }
  return out;
}

bool DenseSet::covers(const TimeInterval& iv) const {
  for (Tick t = iv.start(); t < iv.end(); ++t) {
    if (!contains(t)) return false;
  }
  return true;
}

Tick DenseSet::measure() const {
  Tick total = 0;
  for (const bool m : member_) total += m ? 1 : 0;
  return total;
}

TimeInterval DenseSet::hull() const {
  Tick first = hi(), last = lo_ - 1;
  for (Tick t = lo_; t < hi(); ++t) {
    if (!contains(t)) continue;
    first = std::min(first, t);
    last = std::max(last, t);
  }
  if (first > last) return TimeInterval();
  return TimeInterval(first, last + 1);
}

// ---------------------------------------------------------------------------
// DenseResources

DenseFn& DenseResources::of(const LocatedType& type) {
  for (auto& [t, f] : entries_) {
    if (t == type) return f;
  }
  entries_.emplace_back(type, DenseFn(lo_, hi_));
  return entries_.back().second;
}

const DenseFn* DenseResources::find(const LocatedType& type) const {
  for (const auto& [t, f] : entries_) {
    if (t == type) return &f;
  }
  return nullptr;
}

DenseResources DenseResources::unioned(const DenseResources& o) const {
  DenseResources out(lo_, hi_);
  for (const auto& [type, f] : entries_) out.of(type) = f;
  for (const auto& [type, f] : o.entries_) out.of(type) = out.of(type).plus(f);
  return out;
}

std::optional<DenseResources> DenseResources::relative_complement(
    const DenseResources& o) const {
  if (!dominates(o)) return std::nullopt;
  DenseResources out(lo_, hi_);
  for (const auto& [type, f] : entries_) out.of(type) = f;
  for (const auto& [type, f] : o.entries_) out.of(type) = out.of(type).minus(f);
  return out;
}

bool DenseResources::dominates(const DenseResources& o) const {
  // Total-function semantics: every type either side mentions, with absent
  // types reading as the zero function.
  const DenseFn zero(lo_, hi_);
  for (const auto& [type, f] : o.entries_) {
    const DenseFn* have = find(type);
    if (!(have != nullptr ? *have : zero).dominates(f)) return false;
  }
  for (const auto& [type, f] : entries_) {
    if (o.find(type) == nullptr && !f.dominates(zero)) return false;
  }
  return true;
}

DenseResources DenseResources::restricted(const TimeInterval& window) const {
  DenseResources out(lo_, hi_);
  for (const auto& [type, f] : entries_) out.of(type) = f.restricted(window);
  return out;
}

Quantity DenseResources::quantity(const LocatedType& type,
                                  const TimeInterval& window) const {
  const DenseFn* f = find(type);
  return f == nullptr ? 0 : f->integral(window);
}

// ---------------------------------------------------------------------------
// Bridges and audits

std::optional<std::string> diff_fn(const StepFunction& f, const DenseFn& ref) {
  for (const auto& seg : f.segments()) {
    if (seg.interval.start() < ref.lo() || seg.interval.end() > ref.hi()) {
      return "segment " + seg.interval.to_string() + " escapes the referee domain";
    }
  }
  for (Tick t = ref.lo(); t < ref.hi(); ++t) {
    if (f.value_at(t) != ref.at(t)) {
      std::ostringstream out;
      out << "value_at(" << t << ") = " << f.value_at(t) << ", referee says "
          << ref.at(t) << "; f = " << f.to_string() << ", ref = " << ref.to_string();
      return out.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> diff_set(const IntervalSet& s, const DenseSet& ref) {
  for (const auto& iv : s.intervals()) {
    if (iv.start() < ref.lo() || iv.end() > ref.hi()) {
      return "interval " + iv.to_string() + " escapes the referee domain";
    }
  }
  for (Tick t = ref.lo(); t < ref.hi(); ++t) {
    if (s.contains(t) != ref.contains(t)) {
      std::ostringstream out;
      out << "contains(" << t << ") = " << s.contains(t) << ", referee says "
          << ref.contains(t) << "; s = " << s.to_string();
      return out.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> diff_resources(const ResourceSet& s,
                                          const DenseResources& ref) {
  // Every type either side mentions must agree pointwise.
  std::vector<LocatedType> types = s.types();
  for (const auto& [type, f] : ref.entries()) types.push_back(type);
  std::sort(types.begin(), types.end());
  types.erase(std::unique(types.begin(), types.end()), types.end());

  const DenseFn zero(ref.lo(), ref.hi());
  for (const LocatedType& type : types) {
    const DenseFn* expect = ref.find(type);
    auto mismatch = diff_fn(s.availability(type), expect != nullptr ? *expect : zero);
    if (mismatch) return "type " + type.to_string() + ": " + *mismatch;
  }
  return std::nullopt;
}

std::optional<std::string> check_canonical(const StepFunction& f) {
  const auto& segs = f.segments();
  for (std::size_t i = 0; i < segs.size(); ++i) {
    if (segs[i].interval.empty()) {
      return "segment " + std::to_string(i) + " is empty in " + f.to_string();
    }
    if (segs[i].value == 0) {
      return "segment " + std::to_string(i) + " stores value 0 in " + f.to_string();
    }
    if (i == 0) continue;
    if (segs[i - 1].interval.end() > segs[i].interval.start()) {
      return "segments " + std::to_string(i - 1) + " and " + std::to_string(i) +
             " are unsorted or overlap in " + f.to_string();
    }
    if (segs[i - 1].interval.end() == segs[i].interval.start() &&
        segs[i - 1].value == segs[i].value) {
      return "touching equal-value segments " + std::to_string(i - 1) + " and " +
             std::to_string(i) + " not coalesced in " + f.to_string();
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_canonical(const IntervalSet& s) {
  const auto& ivs = s.intervals();
  for (std::size_t i = 0; i < ivs.size(); ++i) {
    if (ivs[i].empty()) {
      return "member " + std::to_string(i) + " is empty in " + s.to_string();
    }
    if (i > 0 && ivs[i - 1].end() >= ivs[i].start()) {
      return "members " + std::to_string(i - 1) + " and " + std::to_string(i) +
             " are unsorted, overlapping, or touching in " + s.to_string();
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_canonical(const ResourceSet& s) {
  // ResourceSet::to_string() goes through terms(), which cannot represent
  // negative availability — report via the per-type profiles instead.
  const std::vector<LocatedType> types = s.types();
  for (std::size_t i = 1; i < types.size(); ++i) {
    if (!(types[i - 1] < types[i])) {
      return "types unsorted or duplicated: " + types[i - 1].to_string() + " then " +
             types[i].to_string();
    }
  }
  for (const LocatedType& type : types) {
    const StepFunction& f = s.availability(type);
    if (f.is_zero()) {
      return "zero profile stored for type " + type.to_string();
    }
    auto mismatch = check_canonical(f);
    if (mismatch) return "profile of " + type.to_string() + ": " + *mismatch;
  }
  return std::nullopt;
}

}  // namespace rota::fuzz
