#include "rota/fuzz/exhaustive.hpp"

#include <algorithm>
#include <set>
#include <vector>

namespace rota::fuzz {

namespace {

struct Split {
  std::size_t commitment = 0;
  LocatedType type;
  Rate give = 0;
};

struct Ctx {
  Tick horizon = 0;
  std::uint64_t budget = 0;
  std::uint64_t nodes = 0;
  bool exhausted = false;
  std::set<std::vector<std::int64_t>> failed;  // states proven infeasible
};

/// (now, per commitment: phase_index then per-type remainder in the phase's
/// canonical demand order). Θ evolves deterministically with `now` (supply
/// only expires), so it is implied and omitted.
std::vector<std::int64_t> signature(const SystemState& s) {
  std::vector<std::int64_t> sig;
  sig.push_back(s.now());
  for (const auto& p : s.commitments()) {
    sig.push_back(static_cast<std::int64_t>(p.phase_index));
    if (!p.finished()) {
      for (const auto& [type, q] : p.phases[p.phase_index].demand.amounts()) {
        sig.push_back(p.remaining.of(type));
      }
    }
    sig.push_back(-1);
  }
  return sig;
}

bool hopeless(const SystemState& s) {
  for (const auto& p : s.commitments()) {
    if (p.missed_by(s.now())) return true;
    if (p.finished() && p.finished_at && *p.finished_at > p.window.end()) {
      return true;
    }
  }
  return false;
}

/// All ways to hand `target` units of one type to `claimants` (each capped by
/// its appetite), appended to `out` as per-claimant grant vectors.
void enumerate_splits(const std::vector<std::pair<std::size_t, Rate>>& claimants,
                      std::size_t k, Rate target, std::vector<Rate>& grants,
                      std::vector<std::vector<Rate>>& out) {
  if (k == claimants.size()) {
    if (target == 0) out.push_back(grants);
    return;
  }
  Rate tail = 0;
  for (std::size_t j = k + 1; j < claimants.size(); ++j) {
    tail += claimants[j].second;
  }
  const Rate lo = std::max<Rate>(0, target - tail);
  const Rate hi = std::min(claimants[k].second, target);
  for (Rate g = lo; g <= hi; ++g) {
    grants[k] = g;
    enumerate_splits(claimants, k + 1, target - g, grants, out);
  }
  grants[k] = 0;
}

bool feasible(Ctx& ctx, const SystemState& s);

/// Cartesian product across types of the per-type maximal splits; recurses
/// into the next tick for each combination.
bool expand(Ctx& ctx, const SystemState& s,
            const std::vector<std::pair<LocatedType,
                                        std::vector<std::vector<Split>>>>& by_type,
            std::size_t ti, std::vector<ConsumptionLabel>& labels) {
  if (ctx.exhausted) return false;
  if (ti == by_type.size()) {
    SystemState next = s;
    next.advance(labels);
    if (hopeless(next)) return false;
    return feasible(ctx, next);
  }
  for (const auto& option : by_type[ti].second) {
    const std::size_t before = labels.size();
    for (const Split& sp : option) {
      if (sp.give > 0) {
        labels.push_back(ConsumptionLabel{sp.commitment, sp.type, sp.give});
      }
    }
    if (expand(ctx, s, by_type, ti + 1, labels)) return true;
    labels.resize(before);
    if (ctx.exhausted) return false;
  }
  return false;
}

bool feasible(Ctx& ctx, const SystemState& s) {
  if (s.all_finished()) return true;
  if (s.now() >= ctx.horizon) return false;
  if (++ctx.nodes > ctx.budget) {
    ctx.exhausted = true;
    return false;
  }
  const std::vector<std::int64_t> sig = signature(s);
  if (ctx.failed.contains(sig)) return false;

  // Per type: every maximal split of this tick's availability across the
  // commitments that can absorb it now.
  std::vector<std::pair<LocatedType, std::vector<std::vector<Split>>>> by_type;
  std::set<LocatedType> types;
  for (const auto& p : s.commitments()) {
    if (!p.active_at(s.now()) || p.finished()) continue;
    for (const auto& [type, q] : p.remaining.amounts()) {
      if (q > 0) types.insert(type);
    }
  }
  for (const LocatedType& type : types) {
    const Rate avail =
        std::max<Rate>(0, s.theta().availability(type).value_at(s.now()));
    if (avail <= 0) continue;
    std::vector<std::pair<std::size_t, Rate>> claimants;  // (commitment, want)
    Rate appetite = 0;
    for (std::size_t i = 0; i < s.commitments().size(); ++i) {
      const auto& p = s.commitments()[i];
      if (!p.active_at(s.now()) || p.finished()) continue;
      Rate want = p.remaining.of(type);
      if (p.rate_cap > 0) want = std::min(want, p.rate_cap);
      if (want > 0) {
        claimants.emplace_back(i, want);
        appetite += want;
      }
    }
    if (claimants.empty()) continue;
    const Rate target = std::min(avail, appetite);
    std::vector<std::vector<Rate>> grant_vectors;
    std::vector<Rate> grants(claimants.size(), 0);
    enumerate_splits(claimants, 0, target, grants, grant_vectors);
    std::vector<std::vector<Split>> options;
    options.reserve(grant_vectors.size());
    for (const auto& gv : grant_vectors) {
      std::vector<Split> option;
      for (std::size_t k = 0; k < claimants.size(); ++k) {
        option.push_back(Split{claimants[k].first, type, gv[k]});
      }
      options.push_back(std::move(option));
    }
    by_type.emplace_back(type, std::move(options));
  }

  std::vector<ConsumptionLabel> labels;
  if (expand(ctx, s, by_type, 0, labels)) return true;
  if (!ctx.exhausted) ctx.failed.insert(sig);
  return false;
}

}  // namespace

std::optional<bool> exhaustive_feasible(const SystemState& start, Tick horizon,
                                        std::uint64_t node_budget) {
  std::size_t unfinished = 0;
  for (const auto& p : start.commitments()) {
    if (!p.finished()) ++unfinished;
  }
  if (unfinished > 3) return std::nullopt;
  if (hopeless(start)) return false;
  Ctx ctx;
  ctx.horizon = horizon;
  ctx.budget = node_budget;
  const bool ok = feasible(ctx, start);
  if (!ok && ctx.exhausted) return std::nullopt;
  return ok;
}

}  // namespace rota::fuzz
