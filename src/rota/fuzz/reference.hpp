// Naive tick-by-tick reference models for differential fuzzing.
//
// The production calculus (StepFunction, IntervalSet, ResourceSet) earns its
// speed from canonical segment representations and merge walks; these
// referees earn their trust from having no representation at all. A DenseFn
// is literally one Rate per tick over a bounded domain; a DenseSet is one
// bool per tick; DenseResources is a map from located type to DenseFn. Every
// operation is the one-line pointwise definition from the paper, so a
// disagreement between a referee and the production type is a bug in the
// production type (or, rarely, in the referee — either way it is a bug).
//
// All referees share one bounded domain [lo, hi). Generators must keep every
// endpoint they produce strictly inside the domain so that no mass is
// clipped; the referee then represents the function exactly (everything
// outside the domain is identically zero, matching the calculus).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "rota/resource/resource_set.hpp"
#include "rota/resource/step_function.hpp"
#include "rota/time/interval_set.hpp"

namespace rota::fuzz {

/// A rate profile as one value per tick over [lo, hi); zero outside.
class DenseFn {
 public:
  DenseFn(Tick lo, Tick hi) : lo_(lo), values_(static_cast<std::size_t>(hi - lo), 0) {}

  Tick lo() const { return lo_; }
  Tick hi() const { return lo_ + static_cast<Tick>(values_.size()); }

  Rate at(Tick t) const {
    if (t < lo_ || t >= hi()) return 0;
    return values_[static_cast<std::size_t>(t - lo_)];
  }
  void set(Tick t, Rate v) { values_.at(static_cast<std::size_t>(t - lo_)) = v; }

  /// Pointwise accumulate `value` over `iv` (must lie inside the domain).
  void add(const TimeInterval& iv, Rate value);

  DenseFn plus(const DenseFn& o) const { return zip(o, [](Rate a, Rate b) { return a + b; }); }
  DenseFn minus(const DenseFn& o) const { return zip(o, [](Rate a, Rate b) { return a - b; }); }
  DenseFn min(const DenseFn& o) const {
    return zip(o, [](Rate a, Rate b) { return a < b ? a : b; });
  }
  DenseFn max(const DenseFn& o) const {
    return zip(o, [](Rate a, Rate b) { return a > b ? a : b; });
  }
  DenseFn restricted(const TimeInterval& window) const;
  DenseFn clamped_nonnegative() const;
  DenseFn shifted(Tick dt) const;  // dt must keep the support inside the domain
  DenseFn coarsened(Tick factor) const;

  Rate min_value() const;  // min over the whole timeline (0 outside support)
  Rate min_over(const TimeInterval& window) const;
  Quantity integral(const TimeInterval& window) const;
  Quantity integral() const;
  bool dominates(const DenseFn& o) const;
  std::optional<Tick> earliest_cover(const TimeInterval& window, Quantity q) const;
  std::optional<Tick> latest_cover_start(const TimeInterval& window, Quantity q) const;

  std::string to_string() const;  // compact segment-ish rendering for reports

 private:
  template <typename Op>
  DenseFn zip(const DenseFn& o, Op op) const {
    DenseFn out(lo_, hi());
    for (Tick t = lo_; t < hi(); ++t) out.set(t, op(at(t), o.at(t)));
    return out;
  }

  Tick lo_;
  std::vector<Rate> values_;
};

/// A set of ticks as one bool per tick over [lo, hi).
class DenseSet {
 public:
  DenseSet(Tick lo, Tick hi) : lo_(lo), member_(static_cast<std::size_t>(hi - lo), false) {}

  Tick lo() const { return lo_; }
  Tick hi() const { return lo_ + static_cast<Tick>(member_.size()); }

  bool contains(Tick t) const {
    if (t < lo_ || t >= hi()) return false;
    return member_[static_cast<std::size_t>(t - lo_)];
  }
  void insert(const TimeInterval& iv);

  DenseSet unioned(const DenseSet& o) const;
  DenseSet intersected(const DenseSet& o) const;
  DenseSet subtracted(const DenseSet& o) const;
  bool covers(const TimeInterval& iv) const;
  Tick measure() const;
  TimeInterval hull() const;

 private:
  Tick lo_;
  std::vector<bool> member_;
};

/// A resource set as a dense profile per located type.
class DenseResources {
 public:
  DenseResources(Tick lo, Tick hi) : lo_(lo), hi_(hi) {}

  Tick lo() const { return lo_; }
  Tick hi() const { return hi_; }

  /// Profile of `type`, creating an all-zero one on first touch.
  DenseFn& of(const LocatedType& type);
  const DenseFn* find(const LocatedType& type) const;
  const std::vector<std::pair<LocatedType, DenseFn>>& entries() const { return entries_; }

  DenseResources unioned(const DenseResources& o) const;
  /// Defined iff dominated pointwise for every type (including types present
  /// only in `o`) — the exact contract ResourceSet::relative_complement and
  /// ResourceSet::dominates must agree on.
  std::optional<DenseResources> relative_complement(const DenseResources& o) const;
  bool dominates(const DenseResources& o) const;
  DenseResources restricted(const TimeInterval& window) const;
  Quantity quantity(const LocatedType& type, const TimeInterval& window) const;

 private:
  Tick lo_, hi_;
  std::vector<std::pair<LocatedType, DenseFn>> entries_;  // insertion order
};

// ---------------------------------------------------------------------------
// Bridges and invariant audits. Each checker returns nullopt on success or a
// human-readable description of the first violation found.

/// True iff the step function equals the dense referee at every tick of the
/// referee's domain (and has no segment outside it).
std::optional<std::string> diff_fn(const StepFunction& f, const DenseFn& ref);

/// True iff the interval set equals the dense referee tick for tick.
std::optional<std::string> diff_set(const IntervalSet& s, const DenseSet& ref);

/// Pointwise comparison per located type (types with all-zero profiles on
/// either side are fine — canonical sets simply omit them).
std::optional<std::string> diff_resources(const ResourceSet& s, const DenseResources& ref);

/// Audits the canonical-form invariants step_function.hpp promises: segments
/// sorted, disjoint, non-empty, non-zero values, no touching equal-value
/// neighbours.
std::optional<std::string> check_canonical(const StepFunction& f);

/// Audits IntervalSet's canonical form: sorted, disjoint, non-touching,
/// non-empty members.
std::optional<std::string> check_canonical(const IntervalSet& s);

/// Audits ResourceSet's canonical form: types sorted and unique, no zero
/// profiles stored, and every stored profile canonical.
std::optional<std::string> check_canonical(const ResourceSet& s);

}  // namespace rota::fuzz
