// rota_fuzz — deterministic differential-fuzzing driver.
//
//   rota_fuzz [--family=all|calculus|kernel|sim|cluster|feasibility]
//             [--seeds=a,b,c] [--cases=N] [--time-budget-s=N] [--verbose]
//
// Runs each requested oracle family over each seed. Exit code 0 iff every
// run is divergence-free. On a divergence the report names the family, the
// check, and the *case* seed — `Gen(case_seed)` replays the exact inputs, so
// the line is a reproduction recipe. `--time-budget-s` keeps looping over
// fresh derived seeds until the budget is spent (CI smoke mode).
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "rota/fuzz/oracles.hpp"

namespace {

struct Options {
  std::vector<std::string> families = {"calculus", "kernel", "sim", "cluster",
                                       "feasibility"};
  std::vector<std::uint64_t> seeds = {1};
  std::size_t cases = 200;
  long time_budget_s = 0;  // 0 = run each (family, seed) exactly once
  bool verbose = false;
};

bool parse_args(int argc, char** argv, Options& opts, std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--family=", 0) == 0) {
      const std::string v = value_of("--family=");
      if (v == "all") {
        opts.families = {"calculus", "kernel", "sim", "cluster", "feasibility"};
      } else if (v == "calculus" || v == "kernel" || v == "sim" ||
                 v == "cluster" || v == "feasibility") {
        opts.families = {v};
      } else {
        error = "unknown family '" + v + "'";
        return false;
      }
    } else if (arg.rfind("--seeds=", 0) == 0) {
      opts.seeds.clear();
      std::stringstream in(value_of("--seeds="));
      std::string token;
      while (std::getline(in, token, ',')) {
        if (token.empty()) continue;
        opts.seeds.push_back(std::stoull(token));
      }
      if (opts.seeds.empty()) {
        error = "--seeds needs at least one seed";
        return false;
      }
    } else if (arg.rfind("--cases=", 0) == 0) {
      opts.cases = static_cast<std::size_t>(std::stoull(value_of("--cases=")));
    } else if (arg.rfind("--time-budget-s=", 0) == 0) {
      opts.time_budget_s = std::stol(value_of("--time-budget-s="));
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      error.clear();
      return false;
    } else {
      error = "unknown option '" + arg + "'";
      return false;
    }
  }
  return true;
}

rota::fuzz::OracleReport run_family(const std::string& family,
                                    std::uint64_t seed, std::size_t cases) {
  if (family == "calculus") return rota::fuzz::run_calculus_oracle(seed, cases);
  if (family == "kernel") return rota::fuzz::run_kernel_oracle(seed, cases);
  if (family == "cluster") return rota::fuzz::run_cluster_oracle(seed, cases);
  if (family == "feasibility") return rota::fuzz::run_feasibility_oracle(seed, cases);
  return rota::fuzz::run_sim_oracle(seed, cases);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  std::string error;
  if (!parse_args(argc, argv, opts, error)) {
    if (!error.empty()) std::cerr << "rota_fuzz: " << error << "\n";
    std::cerr << "usage: rota_fuzz"
                 " [--family=all|calculus|kernel|sim|cluster|feasibility]"
                 " [--seeds=a,b,c] [--cases=N] [--time-budget-s=N]"
                 " [--verbose]\n";
    return error.empty() ? 0 : 2;
  }

  const auto start = std::chrono::steady_clock::now();
  const auto budget_spent = [&] {
    if (opts.time_budget_s <= 0) return false;
    return std::chrono::steady_clock::now() - start >=
           std::chrono::seconds(opts.time_budget_s);
  };

  std::uint64_t total_cases = 0, total_checks = 0, total_divergences = 0;
  std::size_t reported = 0;
  bool first_pass = true;
  // With a time budget, keep deriving fresh per-round seeds from the given
  // ones until the budget runs out; each round stays fully reproducible via
  // the printed seed.
  for (std::uint64_t round = 0; first_pass || (opts.time_budget_s > 0 && !budget_spent());
       ++round) {
    first_pass = false;
    for (const std::uint64_t base_seed : opts.seeds) {
      const std::uint64_t seed =
          round == 0 ? base_seed
                     : rota::fuzz::case_seed(base_seed, static_cast<std::size_t>(round) << 32);
      for (const std::string& family : opts.families) {
        const rota::fuzz::OracleReport report =
            run_family(family, seed, opts.cases);
        total_cases += report.cases;
        total_checks += report.checks;
        total_divergences += report.divergence_count;
        if (opts.verbose || !report.clean()) {
          std::cout << "seed " << seed << " " << report.summary() << "\n";
        }
        for (const rota::fuzz::Divergence& d : report.divergences) {
          if (reported >= 32) break;
          ++reported;
          std::cout << "DIVERGENCE " << d.to_string() << "\n";
        }
        if (budget_spent()) break;
      }
      if (budget_spent()) break;
    }
  }

  std::cout << "rota_fuzz: " << total_cases << " cases, " << total_checks
            << " checks, " << total_divergences << " divergence(s)\n";
  return total_divergences == 0 ? 0 : 1;
}
