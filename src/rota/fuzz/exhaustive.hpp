// Bounded exhaustive tick-level scheduling: the ground-truth referee the
// feasibility fuzz family uses to adjudicate symbolic-vs-explorer
// disagreements on tiny instances.
//
// The search enumerates, per tick, every *maximal* split of each type's
// available rate across the commitments that want it (maximal: the tick's
// grant sums to min(availability, total appetite)). Giving a commitment more
// of a type it still wants never hurts — a state that consumed more
// dominates one that consumed less and can mimic any continuation — so
// restricting to maximal splits preserves the feasibility verdict while
// taming the branching factor. States are memoized; when the node budget
// runs out the answer is nullopt (undecided) rather than a guess.
#pragma once

#include <cstdint>
#include <optional>

#include "rota/logic/state.hpp"

namespace rota::fuzz {

/// True/false iff some label sequence from `start` finishes every commitment
/// by its deadline (consuming nothing at or past `horizon`); nullopt when the
/// instance is too large for the budget. Intended for referee duty only:
/// instances with more than 3 commitments are declined immediately.
std::optional<bool> exhaustive_feasible(const SystemState& start, Tick horizon,
                                        std::uint64_t node_budget);

}  // namespace rota::fuzz
