// Seeded random term generators for the differential-fuzzing harness.
//
// Every generator draws from one util::Rng, so a (seed, case index) pair
// pins the entire case: re-running `rota_fuzz --family=F --seeds=S` replays
// byte-identical inputs, which is what turns a fuzz failure into a
// regression test. Generators build the production value and its dense
// referee from the same primitive draws — the production representation is
// never consulted to build the referee, so the two can only agree if the
// production operations are right.
//
// All endpoints stay inside [domain_lo(), domain_hi()) with enough margin
// that shifted()/coarsened() results remain representable.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "rota/computation/requirement.hpp"
#include "rota/fuzz/reference.hpp"
#include "rota/util/rng.hpp"

namespace rota::fuzz {

class Gen {
 public:
  explicit Gen(std::uint64_t seed) : rng_(seed) {}

  util::Rng& rng() { return rng_; }

  /// Referee domain. Generated endpoints stay within [kTermLo, kTermHi], so
  /// the margin absorbs shifts of up to ±8 and coarsening up to factor 8.
  static constexpr Tick domain_lo() { return -32; }
  static constexpr Tick domain_hi() { return 72; }
  static constexpr Tick term_lo() { return -12; }
  static constexpr Tick term_hi() { return 48; }

  /// A window inside the term range; occasionally empty.
  TimeInterval interval();

  /// A step function assembled from 0..max_terms random (interval, rate)
  /// additions. Negative rates are included when `allow_negative` (the type
  /// supports them; subtraction produces them). The referee accumulates the
  /// identical pieces.
  std::pair<StepFunction, DenseFn> step_function(int max_terms, bool allow_negative);

  /// An interval set from 0..max_terms random insertions, plus its referee.
  std::pair<IntervalSet, DenseSet> interval_set(int max_terms);

  /// One of a small pool of located types (2 locations: cpu/memory at each,
  /// network both ways) — small enough that independently generated resource
  /// sets collide on types, which is where the merge walks earn their keep.
  LocatedType located_type();

  /// A resource set over 1..max_types distinct types, with its referee.
  /// `allow_negative` feeds negative profiles through add(type, profile) —
  /// legal at the API level and exactly where cancellation edge cases live.
  std::pair<ResourceSet, DenseResources> resource_set(int max_types, int max_terms,
                                                      bool allow_negative);

  /// A non-empty admission window within [0, term_hi()).
  TimeInterval admission_window();

  /// A random concurrent requirement: 1..3 actors, each 1..3 phases of small
  /// demands over located types from the shared pool, sharing one window;
  /// per-actor rate caps are 0 (unbounded) or small.
  ConcurrentRequirement requirement(const std::string& name);

 private:
  util::Rng rng_;
};

}  // namespace rota::fuzz
