// Parameterized random workloads: computations, supply, and churn.
//
// The paper evaluates nothing empirically; these generators produce the open
// distributed system its model describes — a set of locations with CPU and
// pairwise network supply, deadline-constrained multi-actor computations
// arriving over time, and peer resources that join with bounded lifetimes.
// Everything is driven by a seeded Rng, so every experiment is reproducible.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rota/advisor/migration_advisor.hpp"
#include "rota/faults/schedule.hpp"
#include "rota/computation/actor_computation.hpp"
#include "rota/computation/cost_model.hpp"
#include "rota/resource/resource_set.hpp"
#include "rota/sim/churn.hpp"
#include "rota/util/rng.hpp"

namespace rota {

struct WorkloadConfig {
  std::uint64_t seed = 1;

  // Topology & base supply.
  std::size_t num_locations = 4;
  Rate cpu_rate = 10;      // per location per tick
  Rate network_rate = 10;  // per directed link per tick

  // Computation shape.
  std::size_t actors_min = 1, actors_max = 3;
  std::size_t actions_min = 2, actions_max = 8;
  double p_send = 0.30;     // remaining probability mass goes to evaluate
  double p_create = 0.10;
  double p_ready = 0.15;
  double p_migrate = 0.05;
  std::int64_t eval_weight_max = 3;
  std::int64_t msg_size_max = 3;

  // Deadline tightness: window length = laxity × (a lower bound on the
  // computation's completion time given dedicated supply), at least 2 ticks.
  double laxity = 2.0;

  // Arrival process: mean gap (ticks) between computation arrivals.
  double mean_interarrival = 20.0;
};

struct Arrival {
  Tick at = 0;
  DistributedComputation computation;
};

/// A time-varying arrival process: a base Poisson rate modulated by a diurnal
/// sinusoid and a flash-crowd window (the workload zoo's first two hostile
/// shapes, and e19's open-loop load shape). All fields compose: a diurnal
/// day with a flash crowd at its peak is one pattern.
///
/// rate(t) = (1 / base_mean_interarrival)
///           × (1 + diurnal_amplitude · sin(2π t / diurnal_period))
///           × (flash_multiplier inside [flash_at, flash_at + flash_duration))
struct ArrivalPattern {
  double base_mean_interarrival = 20.0;  // ticks between arrivals off-peak
  double diurnal_amplitude = 0.0;        // [0, 1): rate swings ± this fraction
  Tick diurnal_period = 0;               // 0 disables the sinusoid
  double flash_multiplier = 1.0;         // ≥ 1; rate × this inside the window
  Tick flash_at = 0;
  Tick flash_duration = 0;               // 0 disables the flash crowd

  /// Instantaneous arrival rate (arrivals per tick) at `t`.
  double rate_at(Tick t) const;
  /// Upper bound on rate_at over all t — the thinning envelope.
  double peak_rate() const;
};

/// One cluster job arrival: location-independent work landing at a node.
struct ClusterArrivalSpec {
  Tick at = 0;
  std::size_t origin = 0;  // node index in [0, num_nodes)
  WorkSpec work;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadConfig config, CostModel phi);

  const std::vector<Location>& locations() const { return locations_; }
  const CostModel& phi() const { return phi_; }
  const WorkloadConfig& config() const { return config_; }

  /// Constant base supply over `span`: cpu at every location, network on
  /// every directed pair.
  ResourceSet base_supply(const TimeInterval& span) const;

  /// One random computation whose window starts at `earliest_start`.
  DistributedComputation make_computation(Tick earliest_start);

  /// Arrivals over [0, horizon) with exponential interarrival gaps.
  std::vector<Arrival> make_arrivals(Tick horizon);

  /// Arrivals over [0, horizon) from a non-homogeneous Poisson process shaped
  /// by `pattern` (thinning against the pattern's peak rate; seeded, so the
  /// trace is reproducible). The pattern's rate replaces the config's
  /// mean_interarrival; computations are drawn exactly as make_arrivals does.
  std::vector<Arrival> make_arrivals(Tick horizon, const ArrivalPattern& pattern);

  /// One cluster node's share of the base supply: cpu at location `node`
  /// over `span` (inter-node links are the fabric's concern, not supply).
  ResourceSet node_supply(std::size_t node, const TimeInterval& span) const;

  /// Cluster job arrivals over [0, horizon): exponential interarrival gaps;
  /// each job lands on node 0 with probability `hot_fraction`, otherwise on
  /// a uniformly random node — a skewed load whose overflow the federated
  /// layer can move to the cold nodes. Deadlines use the configured laxity
  /// against a dedicated-supply lower bound, exactly like make_arrivals.
  std::vector<ClusterArrivalSpec> make_cluster_arrivals(Tick horizon,
                                                        std::size_t num_nodes,
                                                        double hot_fraction);

  /// Random joins: `join_rate` events per tick on average over [0, horizon),
  /// each adding one resource term with exponential lifetime (mean
  /// `mean_lifetime`) and rate in [1, max_rate].
  ChurnTrace make_churn(Tick horizon, double join_rate, double mean_lifetime,
                        Rate max_rate);

 private:
  ActorComputation make_actor(const std::string& name, Location home);
  /// Lower bound on completion ticks given dedicated base supply.
  Tick completion_lower_bound(const DistributedComputation& lambda) const;

  WorkloadConfig config_;
  CostModel phi_;
  util::Rng rng_;
  std::vector<Location> locations_;
  std::size_t next_id_ = 0;
};

/// A closed-loop client: work the system rejects or sheds comes *back* after
/// a capped, jittered exponential backoff instead of vanishing — the
/// retry-storm half of the hostile-conditions sweep. One instance models one
/// client population with one seeded jitter stream; ClusterSim's retry
/// engine and the daemon retry-storm tests both speak the same
/// faults::RetryPolicy, so a storm is as reproducible as the workload.
class ClosedLoopClient {
 public:
  ClosedLoopClient(faults::RetryPolicy policy, std::uint64_t seed)
      : policy_(policy), rng_(seed) {}

  const faults::RetryPolicy& policy() const { return policy_; }

  /// When to resubmit after the `attempts_so_far`-th submission was rejected
  /// at `now`, or nullopt when the client gives up (attempt budget spent, or
  /// the retry would land at/after `deadline`).
  std::optional<Tick> next_attempt(std::size_t attempts_so_far, Tick now,
                                   Tick deadline) {
    return faults::retry_at(policy_, attempts_so_far, now, deadline, rng_);
  }

 private:
  faults::RetryPolicy policy_;
  util::Rng rng_;
};

}  // namespace rota
