#include "rota/workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rota/computation/requirement.hpp"

namespace rota {

double ArrivalPattern::rate_at(Tick t) const {
  double rate = 1.0 / base_mean_interarrival;
  if (diurnal_period > 0) {
    constexpr double kTau = 6.283185307179586;
    rate *= 1.0 + diurnal_amplitude *
                      std::sin(kTau * static_cast<double>(t) /
                               static_cast<double>(diurnal_period));
  }
  if (flash_duration > 0 && t >= flash_at && t < flash_at + flash_duration) {
    rate *= flash_multiplier;
  }
  return rate;
}

double ArrivalPattern::peak_rate() const {
  double peak = 1.0 / base_mean_interarrival;
  if (diurnal_period > 0) peak *= 1.0 + diurnal_amplitude;
  if (flash_duration > 0) peak *= std::max(1.0, flash_multiplier);
  return peak;
}

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config, CostModel phi)
    : config_(config), phi_(std::move(phi)), rng_(config.seed) {
  if (config_.num_locations == 0) {
    throw std::invalid_argument("workload requires at least one location");
  }
  if (config_.actors_min == 0 || config_.actors_min > config_.actors_max ||
      config_.actions_min == 0 || config_.actions_min > config_.actions_max) {
    throw std::invalid_argument("workload actor/action bounds are inconsistent");
  }
  locations_.reserve(config_.num_locations);
  for (std::size_t i = 0; i < config_.num_locations; ++i) {
    locations_.emplace_back("l" + std::to_string(i + 1));
  }
}

ResourceSet WorkloadGenerator::base_supply(const TimeInterval& span) const {
  ResourceSet supply;
  for (const Location& l : locations_) {
    supply.add(config_.cpu_rate, span, LocatedType::cpu(l));
  }
  for (const Location& a : locations_) {
    for (const Location& b : locations_) {
      if (a == b) continue;
      supply.add(config_.network_rate, span, LocatedType::network(a, b));
    }
  }
  return supply;
}

ActorComputation WorkloadGenerator::make_actor(const std::string& name, Location home) {
  ActorComputationBuilder builder(name, home);
  const auto n = static_cast<std::size_t>(rng_.uniform(
      static_cast<std::int64_t>(config_.actions_min),
      static_cast<std::int64_t>(config_.actions_max)));

  for (std::size_t i = 0; i < n; ++i) {
    const double roll = rng_.uniform01();
    double cut = config_.p_send;
    if (roll < cut && locations_.size() > 1) {
      Location to = locations_[rng_.index(locations_.size())];
      builder.send(to, rng_.uniform(1, config_.msg_size_max));
      continue;
    }
    cut += config_.p_create;
    if (roll < cut) {
      builder.create();
      continue;
    }
    cut += config_.p_ready;
    if (roll < cut) {
      builder.ready();
      continue;
    }
    cut += config_.p_migrate;
    if (roll < cut && locations_.size() > 1) {
      Location to = builder.current_location();
      while (to == builder.current_location()) {
        to = locations_[rng_.index(locations_.size())];
      }
      builder.migrate(to);
      continue;
    }
    builder.evaluate(rng_.uniform(1, config_.eval_weight_max));
  }
  return std::move(builder).build();
}

Tick WorkloadGenerator::completion_lower_bound(
    const DistributedComputation& lambda) const {
  // With dedicated supply, each actor's phases run back to back; a phase of
  // quantity q on a type of rate r needs at least ceil(q / r) ticks. The
  // computation's bound is the slowest actor's chain.
  Tick bound = 1;
  for (const auto& gamma : lambda.actors()) {
    Tick actor_ticks = 0;
    for (const auto& phase : decompose_phases(phi_, gamma.actions())) {
      Tick phase_ticks = 0;
      for (const auto& [type, q] : phase.demand.amounts()) {
        const Rate r = type.kind() == ResourceKind::kNetwork ? config_.network_rate
                                                             : config_.cpu_rate;
        phase_ticks = std::max<Tick>(phase_ticks, (q + r - 1) / r);
      }
      actor_ticks += std::max<Tick>(phase_ticks, 1);
    }
    bound = std::max(bound, actor_ticks);
  }
  return bound;
}

DistributedComputation WorkloadGenerator::make_computation(Tick earliest_start) {
  const auto actor_count = static_cast<std::size_t>(rng_.uniform(
      static_cast<std::int64_t>(config_.actors_min),
      static_cast<std::int64_t>(config_.actors_max)));

  const std::string name = "job" + std::to_string(next_id_++);
  std::vector<ActorComputation> actors;
  actors.reserve(actor_count);
  for (std::size_t i = 0; i < actor_count; ++i) {
    Location home = locations_[rng_.index(locations_.size())];
    actors.push_back(make_actor(name + ".a" + std::to_string(i), home));
  }

  DistributedComputation sized("tmp", actors, earliest_start, earliest_start + 1);
  const Tick lower = completion_lower_bound(sized);
  const auto window =
      std::max<Tick>(2, static_cast<Tick>(static_cast<double>(lower) * config_.laxity));
  return DistributedComputation(name, std::move(actors), earliest_start,
                                earliest_start + window);
}

std::vector<Arrival> WorkloadGenerator::make_arrivals(Tick horizon) {
  std::vector<Arrival> arrivals;
  double t = 0.0;
  while (true) {
    t += rng_.exponential(config_.mean_interarrival);
    const auto at = static_cast<Tick>(t);
    if (at >= horizon) break;
    arrivals.push_back(Arrival{at, make_computation(at)});
  }
  return arrivals;
}

std::vector<Arrival> WorkloadGenerator::make_arrivals(
    Tick horizon, const ArrivalPattern& pattern) {
  if (pattern.base_mean_interarrival <= 0.0) {
    throw std::invalid_argument("arrival pattern needs a positive mean interarrival");
  }
  if (pattern.diurnal_amplitude < 0.0 || pattern.diurnal_amplitude >= 1.0) {
    throw std::invalid_argument("diurnal amplitude must be in [0, 1)");
  }
  if (pattern.flash_multiplier < 1.0) {
    throw std::invalid_argument("flash multiplier must be >= 1");
  }
  // Lewis–Shedler thinning: draw candidates from a homogeneous process at the
  // pattern's peak rate and keep each with probability rate(t)/peak. Both the
  // candidate stream and the keep rolls come from the generator's seeded rng,
  // so the trace (and the computations drawn for it) is fully reproducible.
  const double peak = pattern.peak_rate();
  std::vector<Arrival> arrivals;
  double t = 0.0;
  while (true) {
    t += rng_.exponential(1.0 / peak);
    const auto at = static_cast<Tick>(t);
    if (at >= horizon) break;
    if (rng_.uniform01() * peak > pattern.rate_at(at)) continue;
    arrivals.push_back(Arrival{at, make_computation(at)});
  }
  return arrivals;
}

ResourceSet WorkloadGenerator::node_supply(std::size_t node,
                                           const TimeInterval& span) const {
  if (node >= locations_.size()) {
    throw std::out_of_range("node index exceeds configured locations");
  }
  ResourceSet supply;
  supply.add(config_.cpu_rate, span, LocatedType::cpu(locations_[node]));
  return supply;
}

std::vector<ClusterArrivalSpec> WorkloadGenerator::make_cluster_arrivals(
    Tick horizon, std::size_t num_nodes, double hot_fraction) {
  if (num_nodes == 0 || num_nodes > locations_.size()) {
    throw std::invalid_argument("num_nodes must be in [1, num_locations]");
  }
  if (hot_fraction < 0.0 || hot_fraction > 1.0) {
    throw std::invalid_argument("hot_fraction must be in [0, 1]");
  }
  std::vector<ClusterArrivalSpec> arrivals;
  double t = 0.0;
  while (true) {
    t += rng_.exponential(config_.mean_interarrival);
    const auto at = static_cast<Tick>(t);
    if (at >= horizon) break;

    ClusterArrivalSpec a;
    a.at = at;
    a.origin = rng_.chance(hot_fraction) ? 0 : rng_.index(num_nodes);

    WorkSpec& w = a.work;
    w.actor = "j" + std::to_string(next_id_++);
    w.home = locations_[a.origin];
    const auto chunks = static_cast<std::size_t>(rng_.uniform(1, 3));
    Quantity total = 0;
    for (std::size_t i = 0; i < chunks; ++i) {
      const std::int64_t weight = rng_.uniform(1, config_.eval_weight_max);
      w.chunk_weights.push_back(weight);
      total += weight * phi_.parameters().evaluate_per_weight;
    }
    w.state_size = rng_.uniform(1, config_.msg_size_max);
    w.earliest_start = at;
    const Tick lower =
        std::max<Tick>(1, (total + config_.cpu_rate - 1) / config_.cpu_rate);
    const auto window = std::max<Tick>(
        2, static_cast<Tick>(static_cast<double>(lower) * config_.laxity));
    w.deadline = at + window;

    arrivals.push_back(std::move(a));
  }
  return arrivals;
}

ChurnTrace WorkloadGenerator::make_churn(Tick horizon, double join_rate,
                                         double mean_lifetime, Rate max_rate) {
  if (join_rate <= 0.0 || mean_lifetime <= 0.0 || max_rate <= 0) {
    throw std::invalid_argument("churn parameters must be positive");
  }
  ChurnTrace trace;
  double t = 0.0;
  while (true) {
    t += rng_.exponential(1.0 / join_rate);
    const auto at = static_cast<Tick>(t);
    if (at >= horizon) break;
    const Tick life = rng_.exponential_at_least_1(mean_lifetime);
    const Rate rate = rng_.uniform(1, max_rate);
    // Mostly CPU joins; occasionally a link.
    if (locations_.size() > 1 && rng_.chance(0.25)) {
      Location a = locations_[rng_.index(locations_.size())];
      Location b = a;
      while (b == a) b = locations_[rng_.index(locations_.size())];
      trace.add(at, ResourceTerm(rate, TimeInterval(at, at + life),
                                 LocatedType::network(a, b)));
    } else {
      Location a = locations_[rng_.index(locations_.size())];
      trace.add(at,
                ResourceTerm(rate, TimeInterval(at, at + life), LocatedType::cpu(a)));
    }
  }
  trace.sort();
  return trace;
}

}  // namespace rota
