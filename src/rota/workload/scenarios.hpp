// Ready-made scenarios used by examples, tests and benchmarks.
#pragma once

#include <string>
#include <vector>

#include "rota/computation/actor_computation.hpp"
#include "rota/computation/cost_model.hpp"
#include "rota/io/scenario.hpp"
#include "rota/resource/resource_set.hpp"
#include "rota/workload/generator.hpp"

namespace rota {

/// An arrival trace as a scenario-DSL document: `supply` plus one computation
/// per arrival. Each arrival's tick equals its computation's earliest start
/// (make_computation's invariant), so writing the scenario and parsing it
/// back reproduces the trace exactly — generated workloads (including the
/// diurnal/flash-crowd shapes) are shareable as plain text files.
Scenario arrivals_to_scenario(ResourceSet supply,
                              const std::vector<Arrival>& arrivals);

/// Inverse of arrivals_to_scenario: one Arrival per computation, at its
/// earliest start, in file order.
std::vector<Arrival> arrivals_from_scenario(const Scenario& scenario);

/// The paper's running example (§III/§IV): locations l1, l2; the worked
/// resource-set calculations' supply; and an actor that evaluates, sends,
/// creates, readies, and migrates with the paper's example Φ values.
struct PaperExample {
  Location l1;
  Location l2;
  CostModel phi;             // default parameters == the paper's numbers
  ResourceSet supply;        // {5}^((0,3))_<cpu,l1> ∪ {5}^((0,5))_<network,l1->l2> …
  ActorComputation actor;    // a1: evaluate, send(a2), create, ready
  DistributedComputation computation;  // (Λ={a1}, s=0, d=10)
};

PaperExample make_paper_example();

/// A small static cluster: `nodes` locations, uniform supply over `span`.
struct ClusterScenario {
  std::vector<Location> nodes;
  CostModel phi;
  ResourceSet supply;
};

ClusterScenario make_cluster(std::size_t nodes, Rate cpu_rate, Rate network_rate,
                             const TimeInterval& span);

/// A volunteer-computing style open system: thin always-on base supply plus
/// heavy churn of donated resources.
struct VolunteerScenario {
  WorkloadGenerator generator;
  ResourceSet base_supply;
  ChurnTrace churn;
  Tick horizon;
};

VolunteerScenario make_volunteer_network(std::uint64_t seed, Tick horizon);

}  // namespace rota
