#include "rota/workload/scenarios.hpp"

#include <stdexcept>

namespace rota {

PaperExample make_paper_example() {
  PaperExample ex{
      .l1 = Location("l1"),
      .l2 = Location("l2"),
      .phi = CostModel(),
      .supply = {},
      .actor = {},
      .computation = {},
  };

  // §III's example supply: cpu on l1 over (0,3) at rate 5 twice (joined),
  // and network l1->l2 over (0,5) at rate 5.
  ex.supply.add(5, TimeInterval(0, 3), LocatedType::cpu(ex.l1));
  ex.supply.add(5, TimeInterval(0, 5), LocatedType::cpu(ex.l1));
  ex.supply.add(5, TimeInterval(0, 5), LocatedType::network(ex.l1, ex.l2));

  // §IV's actor a1 at l1: evaluate(e), send(a2, m), create(b), ready(b).
  ex.actor = ActorComputationBuilder("a1", ex.l1)
                 .evaluate()
                 .send(ex.l2)
                 .create()
                 .ready()
                 .build();
  ex.computation = DistributedComputation("paper-example", {ex.actor}, 0, 10);
  return ex;
}

ClusterScenario make_cluster(std::size_t nodes, Rate cpu_rate, Rate network_rate,
                             const TimeInterval& span) {
  ClusterScenario scenario;
  scenario.nodes.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    scenario.nodes.emplace_back("node" + std::to_string(i + 1));
  }
  for (const Location& n : scenario.nodes) {
    scenario.supply.add(cpu_rate, span, LocatedType::cpu(n));
  }
  for (const Location& a : scenario.nodes) {
    for (const Location& b : scenario.nodes) {
      if (a == b) continue;
      scenario.supply.add(network_rate, span, LocatedType::network(a, b));
    }
  }
  return scenario;
}

VolunteerScenario make_volunteer_network(std::uint64_t seed, Tick horizon) {
  WorkloadConfig config;
  config.seed = seed;
  config.num_locations = 6;
  config.cpu_rate = 1;      // starving guaranteed base — donations matter
  config.network_rate = 3;
  config.mean_interarrival = 12.0;
  config.laxity = 2.0;

  WorkloadGenerator generator(config, CostModel());
  ResourceSet base = generator.base_supply(TimeInterval(0, horizon));
  ChurnTrace churn = generator.make_churn(horizon, /*join_rate=*/0.3,
                                          /*mean_lifetime=*/60.0, /*max_rate=*/8);
  return VolunteerScenario{std::move(generator), std::move(base), std::move(churn),
                           horizon};
}

Scenario arrivals_to_scenario(ResourceSet supply,
                              const std::vector<Arrival>& arrivals) {
  Scenario scenario;
  scenario.supply = std::move(supply);
  scenario.computations.reserve(arrivals.size());
  for (const Arrival& a : arrivals) {
    if (a.computation.earliest_start() != a.at) {
      throw std::invalid_argument(
          "arrival tick must equal the computation's earliest start to round-trip");
    }
    scenario.computations.push_back(a.computation);
  }
  return scenario;
}

std::vector<Arrival> arrivals_from_scenario(const Scenario& scenario) {
  std::vector<Arrival> arrivals;
  arrivals.reserve(scenario.computations.size());
  for (const DistributedComputation& c : scenario.computations) {
    arrivals.push_back(Arrival{c.earliest_start(), c});
  }
  return arrivals;
}

}  // namespace rota
