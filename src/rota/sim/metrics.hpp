// Execution outcomes and derived metrics.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rota/obs/metrics.hpp"
#include "rota/resource/located_type.hpp"
#include "rota/time/interval.hpp"

namespace rota {

/// What happened to one admitted computation.
///
/// Invariant (checked by SimReport::validate): completed ⇔ finished_at has a
/// value. A computation with no work at all (zero actors, or all actors with
/// empty phase lists) is vacuously complete and finishes at the tick it was
/// accommodated — it never reports "completed with no finish time".
struct ComputationOutcome {
  std::string name;
  TimeInterval window;
  bool completed = false;            // all actors drained by the horizon
  std::optional<Tick> finished_at;   // last actor's finish tick, if completed
  bool met_deadline() const {
    return completed && finished_at && *finished_at <= window.end();
  }
  /// Ticks past the deadline (0 when on time; nullopt when never completed —
  /// unbounded tardiness).
  std::optional<Tick> tardiness() const {
    if (!completed || !finished_at) return std::nullopt;
    return *finished_at > window.end() ? *finished_at - window.end() : 0;
  }
  /// Finish time relative to the window start (the job-level response time);
  /// nullopt when never completed.
  std::optional<Tick> response_time() const {
    if (!completed || !finished_at) return std::nullopt;
    return *finished_at - window.start();
  }
};

/// One simulation run's results.
struct SimReport {
  std::vector<ComputationOutcome> outcomes;
  Tick horizon = 0;
  std::map<LocatedType, Quantity> supplied;  // total quantity offered
  std::map<LocatedType, Quantity> consumed;  // total quantity used

  /// Snapshot of the global metrics registry taken when the run ended; empty
  /// unless obs::enable_metrics(true) was in effect (see docs/observability.md
  /// for the sim.* counter names tests can assert on).
  obs::MetricsSnapshot metrics;

  std::size_t admitted() const { return outcomes.size(); }
  std::size_t met() const;
  std::size_t missed() const { return admitted() - met(); }

  /// Deadline-miss rate among admitted computations (0 when none admitted).
  double miss_rate() const;

  /// Mean tardiness over computations that completed (incomplete ones are
  /// excluded — report missed() alongside); 0 when nothing completed.
  double mean_tardiness() const;

  /// Mean response time (finish − window start) over completed computations.
  double mean_response_time() const;

  /// Consumed / supplied across all types (goodput proxy; 0 when nothing was
  /// supplied — an empty run has zero utilization, not NaN).
  double utilization() const;

  /// Checks the report's structural invariants and throws std::logic_error
  /// naming the first violation: per outcome, completed ⇔ finished_at;
  /// supplied and consumed quantities non-negative; horizon non-negative.
  /// Simulator::run validates every report before returning it.
  void validate() const;

  std::string to_string() const;
};

}  // namespace rota
