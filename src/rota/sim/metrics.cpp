#include "rota/sim/metrics.hpp"

#include <sstream>
#include <stdexcept>

namespace rota {

std::size_t SimReport::met() const {
  std::size_t n = 0;
  for (const auto& o : outcomes) n += o.met_deadline() ? 1 : 0;
  return n;
}

double SimReport::miss_rate() const {
  if (outcomes.empty()) return 0.0;
  return static_cast<double>(missed()) / static_cast<double>(outcomes.size());
}

double SimReport::mean_tardiness() const {
  Tick total = 0;
  std::size_t n = 0;
  for (const auto& o : outcomes) {
    if (auto t = o.tardiness()) {
      total += *t;
      ++n;
    }
  }
  return n == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(n);
}

double SimReport::mean_response_time() const {
  Tick total = 0;
  std::size_t n = 0;
  for (const auto& o : outcomes) {
    if (auto t = o.response_time()) {
      total += *t;
      ++n;
    }
  }
  return n == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(n);
}

double SimReport::utilization() const {
  Quantity total_supplied = 0;
  Quantity total_consumed = 0;
  for (const auto& [type, q] : supplied) total_supplied += q;
  for (const auto& [type, q] : consumed) total_consumed += q;
  if (total_supplied == 0) return 0.0;
  return static_cast<double>(total_consumed) / static_cast<double>(total_supplied);
}

void SimReport::validate() const {
  if (horizon < 0) throw std::logic_error("SimReport: negative horizon");
  for (const auto& o : outcomes) {
    if (o.completed != o.finished_at.has_value()) {
      throw std::logic_error(
          "SimReport: outcome '" + o.name + "' violates completed <=> finished_at (completed=" +
          (o.completed ? "true" : "false") + ", finished_at " +
          (o.finished_at ? "set" : "unset") + ")");
    }
  }
  for (const auto& [type, q] : supplied) {
    if (q < 0) throw std::logic_error("SimReport: negative supplied quantity for " + type.to_string());
  }
  for (const auto& [type, q] : consumed) {
    if (q < 0) throw std::logic_error("SimReport: negative consumed quantity for " + type.to_string());
  }
}

std::string SimReport::to_string() const {
  std::ostringstream out;
  out << "admitted=" << admitted() << " met=" << met() << " missed=" << missed()
      << " miss_rate=" << miss_rate() << " utilization=" << utilization();
  return out.str();
}

}  // namespace rota
