#include "rota/sim/metrics.hpp"

#include <sstream>

namespace rota {

std::size_t SimReport::met() const {
  std::size_t n = 0;
  for (const auto& o : outcomes) n += o.met_deadline() ? 1 : 0;
  return n;
}

double SimReport::miss_rate() const {
  if (outcomes.empty()) return 0.0;
  return static_cast<double>(missed()) / static_cast<double>(outcomes.size());
}

double SimReport::mean_tardiness() const {
  Tick total = 0;
  std::size_t n = 0;
  for (const auto& o : outcomes) {
    if (auto t = o.tardiness()) {
      total += *t;
      ++n;
    }
  }
  return n == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(n);
}

double SimReport::mean_response_time() const {
  Tick total = 0;
  std::size_t n = 0;
  for (const auto& o : outcomes) {
    if (auto t = o.response_time()) {
      total += *t;
      ++n;
    }
  }
  return n == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(n);
}

double SimReport::utilization() const {
  Quantity total_supplied = 0;
  Quantity total_consumed = 0;
  for (const auto& [type, q] : supplied) total_supplied += q;
  for (const auto& [type, q] : consumed) total_consumed += q;
  if (total_supplied == 0) return 0.0;
  return static_cast<double>(total_consumed) / static_cast<double>(total_supplied);
}

std::string SimReport::to_string() const {
  std::ostringstream out;
  out << "admitted=" << admitted() << " met=" << met() << " missed=" << missed()
      << " miss_rate=" << miss_rate() << " utilization=" << utilization();
  return out.str();
}

}  // namespace rota
