// Resource churn traces for open systems.
//
// In the paper's model resources only ever *join* — a resource that will
// leave declares its departure time up front via its term's interval (there
// is no leave rule for resources). A churn trace is therefore just a list of
// timed joins, each contributing a finite-lifetime resource term.
#pragma once

#include <vector>

#include "rota/resource/resource_set.hpp"

namespace rota {

struct JoinEvent {
  Tick at = 0;            // when the resource becomes known to the system
  ResourceTerm term;      // its availability (interval encodes the lifetime)

  bool operator==(const JoinEvent&) const = default;
};

class ChurnTrace {
 public:
  ChurnTrace() = default;

  void add(Tick at, const ResourceTerm& term) { events_.push_back({at, term}); }

  /// Events sorted by join time (stable for equal times).
  const std::vector<JoinEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Sorts events by join time; call once after bulk construction.
  void sort();

  /// The union of every event's term — the supply an omniscient observer
  /// would see (useful for computing offered load).
  ResourceSet total_supply() const;

 private:
  std::vector<JoinEvent> events_;
};

}  // namespace rota
