#include "rota/sim/simulator.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "rota/obs/obs.hpp"

namespace rota {

std::string execution_mode_name(ExecutionMode m) {
  switch (m) {
    case ExecutionMode::kPlanFollowing: return "plan-following";
    case ExecutionMode::kWorkConserving: return "work-conserving";
  }
  throw std::invalid_argument("invalid ExecutionMode");
}

Simulator::Simulator(ResourceSet initial_supply, Tick start, ExecutionMode mode,
                     PriorityOrder discipline)
    : initial_supply_(std::move(initial_supply)),
      start_(start),
      mode_(mode),
      discipline_(discipline) {}

void Simulator::schedule_join(Tick at, const ResourceSet& joined) {
  joins_.push_back({at, joined});
}

void Simulator::schedule_churn(const ChurnTrace& trace) {
  for (const auto& e : trace.events()) {
    ResourceSet one;
    one.add(e.term);
    joins_.push_back({e.at, std::move(one)});
  }
}

void Simulator::schedule_admission(Tick at, const ConcurrentRequirement& rho,
                                   std::optional<ConcurrentPlan> plan) {
  if (mode_ == ExecutionMode::kPlanFollowing && plan &&
      plan->actors.size() != rho.actors().size()) {
    throw std::invalid_argument("admission plan does not match requirement arity");
  }
  admissions_.push_back({at, rho, std::move(plan)});
}

SimReport Simulator::run(Tick horizon) {
  ROTA_OBS_SPAN("sim.run");
  const bool metered = obs::metrics_enabled();
  std::stable_sort(joins_.begin(), joins_.end(),
                   [](const PendingJoin& a, const PendingJoin& b) { return a.at < b.at; });
  std::stable_sort(admissions_.begin(), admissions_.end(),
                   [](const PendingAdmission& a, const PendingAdmission& b) {
                     return a.at < b.at;
                   });

  SystemState state(initial_supply_, start_);
  // For each live commitment: which admission it belongs to and, when
  // following plans, its ActorPlan.
  std::vector<std::size_t> admission_of_commitment;
  std::vector<const ActorPlan*> plan_of_commitment;

  std::size_t next_join = 0;
  std::size_t next_admission = 0;
  std::map<LocatedType, Quantity> consumed;

  // Per-tick scratch, hoisted out of the loop and cleared each iteration.
  std::vector<ConsumptionLabel> labels;
  std::vector<std::size_t> ranked;
  std::map<LocatedType, Rate> capacity_left;

  for (Tick t = start_; t < horizon; ++t) {
    ROTA_OBS_SPAN("sim.tick");
    while (next_join < joins_.size() && joins_[next_join].at <= t) {
      state.join(joins_[next_join].joined);
      ++next_join;
      if (metered) obs::CoreMetrics::get().sim_joins.add();
    }
    while (next_admission < admissions_.size() && admissions_[next_admission].at <= t) {
      const PendingAdmission& adm = admissions_[next_admission];
      state.accommodate(adm.rho);
      if (metered) obs::CoreMetrics::get().sim_admissions.add();
      for (std::size_t i = 0; i < adm.rho.actors().size(); ++i) {
        admission_of_commitment.push_back(next_admission);
        const bool follow = mode_ == ExecutionMode::kPlanFollowing && adm.plan;
        plan_of_commitment.push_back(follow ? &adm.plan->actors[i] : nullptr);
      }
      ++next_admission;
    }

    if (next_join >= joins_.size() && next_admission >= admissions_.size() &&
        state.all_finished()) {
      break;
    }

    // Plan followers first: their claims are reservations.
    labels.clear();
    capacity_left.clear();
    auto capacity = [&](const LocatedType& type) -> Rate& {
      auto [it, inserted] = capacity_left.try_emplace(type, 0);
      if (inserted) it->second = state.theta().availability(type).value_at(t);
      return it->second;
    };

    for (std::size_t i = 0; i < state.commitments().size(); ++i) {
      const ActorPlan* plan = plan_of_commitment[i];
      if (plan == nullptr || state.commitments()[i].finished()) continue;
      for (const auto& [type, f] : plan->usage) {
        const Rate r = f.value_at(t);
        if (r <= 0) continue;
        labels.push_back(ConsumptionLabel{i, type, r});
        capacity(type) -= r;
      }
    }

    // Everyone else shares what remains, in discipline order (or fairly).
    ranked.clear();
    for (std::size_t i = 0; i < state.commitments().size(); ++i) {
      if (plan_of_commitment[i] == nullptr) ranked.push_back(i);
    }
    if (discipline_ == PriorityOrder::kProportional) {
      // Pre-touch every type the plan followers reserved so water-filling
      // sees the reduced capacities, then split fairly.
      for (const ConsumptionLabel& label : labels) capacity(label.type);
      for (const ConsumptionLabel& label :
           water_fill_labels(state, ranked, capacity_left)) {
        labels.push_back(label);
      }
    } else {
      std::stable_sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
        const auto& pa = state.commitments()[a];
        const auto& pb = state.commitments()[b];
        switch (discipline_) {
          case PriorityOrder::kEdf:
            return pa.window.end() < pb.window.end();
          case PriorityOrder::kLeastLaxity:
            return pa.window.end() - t - pa.remaining_total() <
                   pb.window.end() - t - pb.remaining_total();
          case PriorityOrder::kFcfs:
          default:
            return false;  // keep arrival order
        }
      });
      for (std::size_t i : ranked) {
        const ActorProgress& p = state.commitments()[i];
        if (!p.active_at(t)) continue;
        for (const auto& [type, q] : p.remaining.amounts()) {
          Rate& cap = capacity(type);
          Rate grab = std::min<Rate>(cap, q);
          if (p.rate_cap > 0) grab = std::min(grab, p.rate_cap);
          if (grab <= 0) continue;
          labels.push_back(ConsumptionLabel{i, type, grab});
          cap -= grab;
        }
      }
    }

    for (const auto& label : labels) consumed[label.type] += label.rate;
    state.advance(labels);
    if (metered) {
      obs::CoreMetrics& m = obs::CoreMetrics::get();
      m.sim_ticks.add();
      m.sim_labels.add(labels.size());
    }
    if ((t - start_) % 512 == 511) {
      state.garbage_collect();
      if (metered) obs::CoreMetrics::get().sim_gc_runs.add();
    }
  }

  // Assemble per-computation outcomes.
  SimReport report;
  report.horizon = horizon;
  report.consumed = std::move(consumed);

  const TimeInterval span(start_, horizon);
  for (const auto& term : initial_supply_.restricted(span).terms()) {
    report.supplied[term.type()] += term.total_quantity();
  }
  for (const auto& j : joins_) {
    const TimeInterval visible(std::max(j.at, start_), horizon);
    for (const auto& term : j.joined.restricted(visible).terms()) {
      report.supplied[term.type()] += term.total_quantity();
    }
  }

  report.outcomes.resize(admissions_.size());
  for (std::size_t a = 0; a < admissions_.size(); ++a) {
    report.outcomes[a].name = admissions_[a].rho.name();
    report.outcomes[a].window = admissions_[a].rho.window();
    const bool accommodated = a < next_admission;
    report.outcomes[a].completed = accommodated;
    // A computation with no actors spawns no commitments, so the loop below
    // never touches it: it is vacuously done at the tick it entered the
    // system. Setting finished_at here keeps the completed ⇔ finished_at
    // invariant; actor-bearing computations overwrite it below.
    if (accommodated) {
      report.outcomes[a].finished_at = std::max(admissions_[a].at, start_);
    }
  }
  for (std::size_t i = 0; i < admission_of_commitment.size(); ++i) {
    ComputationOutcome& outcome = report.outcomes[admission_of_commitment[i]];
    const ActorProgress& p = state.commitments()[i];
    if (!p.finished()) {
      outcome.completed = false;
      outcome.finished_at.reset();
    } else if (outcome.completed) {
      const Tick f = p.finished_at.value_or(start_);
      if (!outcome.finished_at || f > *outcome.finished_at) outcome.finished_at = f;
    }
  }
  if (metered) report.metrics = obs::MetricsRegistry::global().snapshot();
  report.validate();
  return report;
}

}  // namespace rota
