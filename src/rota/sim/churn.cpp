#include "rota/sim/churn.hpp"

#include <algorithm>

namespace rota {

void ChurnTrace::sort() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const JoinEvent& a, const JoinEvent& b) { return a.at < b.at; });
}

ResourceSet ChurnTrace::total_supply() const {
  ResourceSet out;
  for (const auto& e : events_) out.add(e.term);
  return out;
}

}  // namespace rota
