// Discrete-event execution of admitted computations.
//
// The simulator is the empirical check on the logic: it executes admitted
// computations against the *actual* (possibly churning) supply through the
// very same transition rules the logic reasons with, and reports who met
// their deadline. Two execution modes:
//   * kPlanFollowing  — each computation consumes exactly per its admission
//     plan (what a ROTA-scheduled system does); admitted ⇒ deadline met is
//     the soundness property the tests assert.
//   * kWorkConserving — a priority-ordered greedy allocator shares each
//     tick's supply among all unfinished computations (how a conventional
//     best-effort system behaves); over-admission shows up as misses here.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rota/logic/explorer.hpp"
#include "rota/logic/planner.hpp"
#include "rota/logic/state.hpp"
#include "rota/sim/churn.hpp"
#include "rota/sim/metrics.hpp"

namespace rota {

enum class ExecutionMode { kPlanFollowing, kWorkConserving };

std::string execution_mode_name(ExecutionMode m);

class Simulator {
 public:
  /// `initial_supply` is the supply known at tick `start`; churn joins more.
  Simulator(ResourceSet initial_supply, Tick start = 0,
            ExecutionMode mode = ExecutionMode::kWorkConserving,
            PriorityOrder discipline = PriorityOrder::kEdf);

  /// Supply that becomes known at `at` (resource acquisition rule).
  void schedule_join(Tick at, const ResourceSet& joined);
  void schedule_churn(const ChurnTrace& trace);

  /// A computation admitted at `at`. In plan-following mode a plan must be
  /// supplied; work-conserving mode ignores it.
  void schedule_admission(Tick at, const ConcurrentRequirement& rho,
                          std::optional<ConcurrentPlan> plan = std::nullopt);

  /// Runs to `horizon` (or until everything finishes) and reports outcomes.
  SimReport run(Tick horizon);

 private:
  struct PendingJoin {
    Tick at;
    ResourceSet joined;
  };
  struct PendingAdmission {
    Tick at;
    ConcurrentRequirement rho;
    std::optional<ConcurrentPlan> plan;
  };

  std::vector<ConsumptionLabel> labels_for_tick(const SystemState& state) const;

  ResourceSet initial_supply_;
  Tick start_;
  ExecutionMode mode_;
  PriorityOrder discipline_;
  std::vector<PendingJoin> joins_;
  std::vector<PendingAdmission> admissions_;
};

}  // namespace rota
