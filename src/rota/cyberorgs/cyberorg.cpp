#include "rota/cyberorgs/cyberorg.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace rota {

CyberOrg::CyberOrg(std::string name, CostModel phi, ResourceSet slice,
                   PlanningPolicy policy, Tick now)
    : name_(std::move(name)),
      controller_(std::move(phi), std::move(slice), policy, now) {}

CyberOrg& CyberOrg::create_child(const std::string& child_name,
                                 const ResourceSet& slice) {
  if (find(child_name) != nullptr) {
    throw std::invalid_argument("org name already in subtree: " + child_name);
  }
  if (!controller_.carve(slice)) {
    throw std::invalid_argument(
        "org " + name_ + " cannot isolate a slice its free supply does not cover");
  }
  children_.push_back(std::make_unique<CyberOrg>(
      child_name, controller_.phi(), slice, controller_.policy(),
      controller_.ledger().now()));
  return *children_.back();
}

bool CyberOrg::assimilate(const std::string& child_name) {
  auto it = std::find_if(
      children_.begin(), children_.end(),
      [&](const std::unique_ptr<CyberOrg>& c) { return c->name_ == child_name; });
  if (it == children_.end()) return false;

  // Detach first: pushing grandchildren into children_ below may reallocate
  // the vector and would invalidate `it`.
  std::unique_ptr<CyberOrg> dissolved = std::move(*it);
  children_.erase(it);

  controller_.absorb(std::move(dissolved->controller_));
  // Grandchildren are promoted to direct children (the encapsulation
  // boundary dissolves, not the orgs inside it).
  for (auto& grandchild : dissolved->children_) {
    children_.push_back(std::move(grandchild));
  }
  return true;
}

CyberOrg* CyberOrg::find(const std::string& org_name) {
  if (name_ == org_name) return this;
  for (const auto& child : children_) {
    if (CyberOrg* found = child->find(org_name)) return found;
  }
  return nullptr;
}

std::size_t CyberOrg::subtree_size() const {
  std::size_t n = 1;
  for (const auto& child : children_) n += child->subtree_size();
  return n;
}

std::size_t CyberOrg::subtree_depth() const {
  std::size_t deepest = 0;
  for (const auto& child : children_) {
    deepest = std::max(deepest, child->subtree_depth());
  }
  return deepest + 1;
}

std::string CyberOrg::to_string() const {
  std::ostringstream out;
  out << name_ << "(" << controller_.ledger().admitted_count() << " admitted, "
      << controller_.ledger().residual().term_count() << " free terms";
  if (!children_.empty()) {
    out << ", children: ";
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (i != 0) out << ' ';
      out << children_[i]->to_string();
    }
  }
  out << ')';
  return out.str();
}

}  // namespace rota
