// CyberOrgs-style resource encapsulations — the paper's third future-work
// direction.
//
// §VI: "the context in which we hope to use ROTA is that of resource
// encapsulations of the type defined by the CyberOrgs model, where the
// reasoning only needs to concern itself with resources available inside the
// encapsulation." A CyberOrg is a node in a hierarchy of resource owners:
// each org holds a slice of supply and runs Theorem-4 admission over *its
// slice only*, which bounds the cost of every feasibility question by the
// encapsulation's size (bench e9_cyberorgs measures exactly this).
//
// The two structural primitives follow the CyberOrgs model:
//   * isolation     — create_child(name, slice): a sub-org is born owning a
//     slice carved out of this org's uncommitted supply;
//   * assimilation  — assimilate(name): a child dissolves into its parent;
//     its remaining supply, commitments and children are absorbed.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rota/admission/controller.hpp"

namespace rota {

class CyberOrg {
 public:
  CyberOrg(std::string name, CostModel phi, ResourceSet slice,
           PlanningPolicy policy = PlanningPolicy::kAsap, Tick now = 0);

  const std::string& name() const { return name_; }
  const CommitmentLedger& ledger() const { return controller_.ledger(); }

  /// Theorem-4 admission against this org's slice only.
  AdmissionDecision request(const DistributedComputation& lambda, Tick now) {
    return controller_.request(lambda, now);
  }
  AdmissionDecision request(const ConcurrentRequirement& rho, Tick now) {
    return controller_.request(rho, now);
  }

  /// Resource acquisition into this org's slice.
  void on_join(const ResourceSet& joined) { controller_.on_join(joined); }

  /// Isolation: carves `slice` out of this org's uncommitted supply and
  /// creates a child org owning it. Throws std::invalid_argument when the
  /// residual cannot cover the slice, or the name is taken in this subtree.
  CyberOrg& create_child(const std::string& child_name, const ResourceSet& slice);

  /// Assimilation: the named direct child dissolves; its supply, admitted
  /// commitments and children transfer to this org. Returns false when no
  /// direct child has that name.
  bool assimilate(const std::string& child_name);

  const std::vector<std::unique_ptr<CyberOrg>>& children() const { return children_; }

  /// Finds an org by name in this subtree (depth-first); nullptr if absent.
  CyberOrg* find(const std::string& org_name);

  /// Total orgs in this subtree (including this one) / depth of the subtree.
  std::size_t subtree_size() const;
  std::size_t subtree_depth() const;

  std::string to_string() const;

 private:
  std::string name_;
  RotaAdmissionController controller_;
  std::vector<std::unique_ptr<CyberOrg>> children_;
};

}  // namespace rota
