#include "rota/io/dot.hpp"

#include <sstream>

namespace rota {

namespace {

std::string dot_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void emit_org(std::ostringstream& out, const CyberOrg& org, std::size_t& counter,
              std::size_t parent_id) {
  const std::size_t my_id = counter++;
  out << "  n" << my_id << " [label=\"" << dot_escape(org.name()) << "\\n"
      << org.ledger().admitted_count() << " admitted, "
      << org.ledger().residual().term_count() << " free terms\"];\n";
  if (my_id != parent_id) {
    out << "  n" << parent_id << " -> n" << my_id << ";\n";
  }
  for (const auto& child : org.children()) emit_org(out, *child, counter, my_id);
}

}  // namespace

std::string to_dot(const DagRequirement& dag) {
  std::ostringstream out;
  out << "digraph \"" << dot_escape(dag.name) << "\" {\n"
      << "  rankdir=LR;\n  node [shape=box];\n";
  for (std::size_t i = 0; i < dag.nodes.size(); ++i) {
    const SegmentRequirement& node = dag.nodes[i];
    out << "  s" << i << " [label=\""
        << dot_escape(node.requirement.actor()) << "\\n"
        << dot_escape(node.requirement.total_demand().to_string()) << "\"];\n";
  }
  for (std::size_t i = 0; i < dag.nodes.size(); ++i) {
    for (std::size_t dep : dag.nodes[i].waits_for) {
      // Intra-actor sequencing is solid; cross-actor message gates dashed.
      const bool same_actor =
          dag.nodes[dep].actor_index == dag.nodes[i].actor_index;
      out << "  s" << dep << " -> s" << i;
      if (!same_actor) out << " [style=dashed, label=\"msg\"]";
      out << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string to_dot(const CyberOrg& root) {
  std::ostringstream out;
  out << "digraph cyberorgs {\n  node [shape=box];\n";
  std::size_t counter = 0;
  emit_org(out, root, counter, 0);
  out << "}\n";
  return out.str();
}

}  // namespace rota
