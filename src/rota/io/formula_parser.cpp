#include "rota/io/formula_parser.hpp"

#include <cctype>

#include "rota/computation/requirement.hpp"

namespace rota {

namespace {

/// Recursive-descent parser over a character cursor.
class Parser {
 public:
  Parser(const std::string& text, const Scenario& scenario, const CostModel& phi)
      : text_(text), scenario_(scenario), phi_(phi) {}

  FormulaPtr parse() {
    FormulaPtr psi = formula();
    skip_spaces();
    if (pos_ != text_.size()) {
      throw FormulaParseError(pos_, "unexpected trailing input");
    }
    return psi;
  }

 private:
  void skip_spaces() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool try_consume(const std::string& token) {
    skip_spaces();
    if (text_.compare(pos_, token.size(), token) != 0) return false;
    // Word tokens must not run into identifier characters ("trueX" ≠ "true").
    if (std::isalpha(static_cast<unsigned char>(token[0]))) {
      const std::size_t after = pos_ + token.size();
      if (after < text_.size() &&
          (std::isalnum(static_cast<unsigned char>(text_[after])) ||
           text_[after] == '_')) {
        return false;
      }
    }
    pos_ += token.size();
    return true;
  }

  void expect(const std::string& token) {
    if (!try_consume(token)) {
      throw FormulaParseError(pos_, "expected '" + token + "'");
    }
  }

  std::string identifier() {
    skip_spaces();
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
          c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) throw FormulaParseError(pos_, "expected a name");
    return text_.substr(start, pos_ - start);
  }

  Tick integer() {
    skip_spaces();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && !std::isdigit(static_cast<unsigned char>(
                                                   text_[start])))) {
      throw FormulaParseError(start, "expected an integer");
    }
    try {
      return std::stoll(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      throw FormulaParseError(start, "integer out of range");
    }
  }

  FormulaPtr formula() {
    // Each operator and parenthesis recurses once; cap the depth so
    // adversarial input ("!!!!…") reports an error instead of exhausting
    // the stack.
    if (++depth_ > kMaxDepth) {
      throw FormulaParseError(pos_, "formula nesting too deep");
    }
    FormulaPtr result;
    if (try_consume("!")) {
      result = f_not(formula());
    } else if (try_consume("<>")) {
      result = f_eventually(formula());
    } else if (try_consume("[]")) {
      result = f_always(formula());
    } else if (try_consume("(")) {
      result = formula();
      expect(")");
    } else if (try_consume("true")) {
      result = f_true();
    } else if (try_consume("false")) {
      result = f_false();
    } else if (try_consume("satisfy")) {
      result = satisfy_atom();
    } else {
      throw FormulaParseError(pos_, "expected a formula");
    }
    --depth_;
    return result;
  }

  FormulaPtr satisfy_atom() {
    expect("(");
    skip_spaces();  // so name_pos points at the name, not preceding blanks
    const std::size_t name_pos = pos_;
    const std::string name = identifier();

    const DistributedComputation* target = nullptr;
    for (const auto& c : scenario_.computations) {
      if (c.name() == name) {
        target = &c;
        break;
      }
    }
    if (target == nullptr) {
      throw FormulaParseError(name_pos,
                              "unknown computation '" + name + "' in scenario");
    }

    Tick start = target->earliest_start();
    Tick deadline = target->deadline();
    if (try_consume("from")) start = integer();
    if (try_consume("by")) deadline = integer();
    expect(")");
    if (deadline <= start) {
      throw FormulaParseError(name_pos, "window for '" + name + "' is empty");
    }

    const DistributedComputation adjusted(target->name(), target->actors(), start,
                                          deadline);
    return f_satisfy(make_concurrent_requirement(phi_, adjusted));
  }

  static constexpr std::size_t kMaxDepth = 512;

  const std::string& text_;
  const Scenario& scenario_;
  const CostModel& phi_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

FormulaPtr parse_formula(const std::string& text, const Scenario& scenario,
                         const CostModel& phi) {
  return Parser(text, scenario, phi).parse();
}

}  // namespace rota
