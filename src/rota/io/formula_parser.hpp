// Parsing ROTA formulas from text.
//
// Grammar (whitespace-insensitive):
//
//   formula := '!' formula            negation
//            | '<>' formula           eventually
//            | '[]' formula           always
//            | '(' formula ')'
//            | 'true' | 'false'
//            | 'satisfy' '(' name [ 'from' int ] [ 'by' int ] ')'
//
// `name` references a computation in the scenario; its requirement is
// derived via Φ. `from`/`by` override the earliest start / deadline, letting
// one scenario answer many what-ifs:
//
//   satisfy(job1)              the computation as declared
//   satisfy(job1 by 15)        same phases, deadline 15
//   <> satisfy(job1 from 4)    eventually satisfiable if it may start at 4
//   [] !satisfy(huge)          never room for `huge`
#pragma once

#include <stdexcept>
#include <string>

#include "rota/computation/cost_model.hpp"
#include "rota/io/scenario.hpp"
#include "rota/logic/formula.hpp"

namespace rota {

class FormulaParseError : public std::runtime_error {
 public:
  FormulaParseError(std::size_t position, const std::string& message)
      : std::runtime_error("at character " + std::to_string(position) + ": " +
                           message),
        position_(position) {}

  /// 0-based offset into the input where the problem was detected.
  std::size_t position() const { return position_; }

 private:
  std::size_t position_;
};

/// Parses `text` into a formula, resolving satisfy() targets against the
/// scenario's computations via Φ. Throws FormulaParseError on malformed
/// input or unknown computation names.
FormulaPtr parse_formula(const std::string& text, const Scenario& scenario,
                         const CostModel& phi);

}  // namespace rota
