#include "rota/io/scenario.hpp"

#include <algorithm>
#include <fstream>
#include <optional>
#include <sstream>

namespace rota {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') break;  // comment to end of line
    tokens.push_back(token);
  }
  return tokens;
}

std::int64_t parse_int(const std::string& token, std::size_t line,
                       const std::string& what) {
  try {
    std::size_t consumed = 0;
    const long long v = std::stoll(token, &consumed);
    if (consumed != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    throw ScenarioParseError(line, "expected an integer for " + what + ", got '" +
                                       token + "'");
  }
}

void expect_arity(const std::vector<std::string>& tokens, std::size_t n,
                  std::size_t line, const std::string& usage) {
  if (tokens.size() != n) {
    throw ScenarioParseError(line, "expected: " + usage);
  }
}

std::int64_t parse_nonnegative(const std::string& token, std::size_t line,
                               const std::string& what) {
  const std::int64_t v = parse_int(token, line, what);
  if (v < 0) {
    throw ScenarioParseError(line, what + " cannot be negative, got '" + token + "'");
  }
  return v;
}

/// A computation block under construction.
struct OpenComputation {
  std::string name;
  Tick start = 0;
  Tick deadline = 0;
  std::vector<ActorComputation> actors;
  std::optional<ActorComputationBuilder> current_actor;
  std::size_t opened_at = 0;

  void close_actor() {
    if (current_actor) {
      actors.push_back(std::move(*current_actor).build());
      current_actor.reset();
    }
  }
};

}  // namespace

Scenario parse_scenario(std::istream& in) {
  Scenario scenario;
  std::optional<OpenComputation> open;
  std::string line;
  std::size_t line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> t = tokenize(line);
    if (t.empty()) continue;
    const std::string& keyword = t[0];

    if (keyword == "supply") {
      if (open) throw ScenarioParseError(line_no, "supply inside a computation block");
      if (t.size() < 2) throw ScenarioParseError(line_no, "supply needs a kind");
      // Node form: 6 tokens. Link form: 7 tokens (two locations). Any kind
      // may take either form except `network`, which is link-only — so that
      // everything the writer emits parses back.
      ResourceKind kind;
      if (t[1] == "cpu") {
        kind = ResourceKind::kCpu;
      } else if (t[1] == "network") {
        kind = ResourceKind::kNetwork;
      } else if (t[1] == "memory") {
        kind = ResourceKind::kMemory;
      } else if (t[1] == "disk") {
        kind = ResourceKind::kDisk;
      } else if (t[1] == "custom") {
        kind = ResourceKind::kCustom;
      } else {
        throw ScenarioParseError(line_no, "unknown resource kind '" + t[1] + "'");
      }
      if (t.size() == 7) {
        const Rate rate = parse_nonnegative(t[4], line_no, "rate");
        const Tick from = parse_int(t[5], line_no, "from");
        const Tick to = parse_int(t[6], line_no, "to");
        if (t[2] == t[3]) {
          throw ScenarioParseError(line_no, "a link needs two distinct nodes");
        }
        scenario.supply.add(rate, TimeInterval(from, to),
                            LocatedType::link(kind, Location(t[2]), Location(t[3])));
      } else if (t.size() == 6 && kind != ResourceKind::kNetwork) {
        const Rate rate = parse_nonnegative(t[3], line_no, "rate");
        const Tick from = parse_int(t[4], line_no, "from");
        const Tick to = parse_int(t[5], line_no, "to");
        scenario.supply.add(rate, TimeInterval(from, to),
                            LocatedType::node(kind, Location(t[2])));
      } else {
        throw ScenarioParseError(line_no,
                                 "expected: supply <kind> <loc> <rate> <from> <to> "
                                 "or supply <kind> <src> <dst> <rate> <from> <to>");
      }
      continue;
    }

    if (keyword == "node") {
      if (open) throw ScenarioParseError(line_no, "node inside a computation block");
      if (t.size() != 3 && t.size() != 4) {
        throw ScenarioParseError(line_no, "expected: node <name> <location> [lanes]");
      }
      ScenarioNode node;
      node.name = t[1];
      node.location = t[2];
      if (t.size() == 4) {
        const std::int64_t lanes = parse_int(t[3], line_no, "lanes");
        if (lanes < 1) throw ScenarioParseError(line_no, "lanes must be >= 1");
        node.lanes = static_cast<std::size_t>(lanes);
      }
      for (const ScenarioNode& existing : scenario.nodes) {
        if (existing.name == node.name) {
          throw ScenarioParseError(line_no, "duplicate node '" + node.name + "'");
        }
      }
      scenario.nodes.push_back(std::move(node));
      continue;
    }

    if (keyword == "link") {
      if (open) throw ScenarioParseError(line_no, "link inside a computation block");
      if (t.size() < 4 || t.size() > 6) {
        throw ScenarioParseError(
            line_no, "expected: link <from> <to> <latency> [jitter [drop-permille]]");
      }
      ScenarioLink link;
      link.from = t[1];
      link.to = t[2];
      if (link.from == link.to) {
        throw ScenarioParseError(line_no, "a link needs two distinct nodes");
      }
      link.latency = parse_int(t[3], line_no, "latency");
      if (link.latency < 1) throw ScenarioParseError(line_no, "latency must be >= 1");
      if (t.size() >= 5) link.jitter = parse_nonnegative(t[4], line_no, "jitter");
      if (t.size() == 6) {
        link.drop_permille = parse_nonnegative(t[5], line_no, "drop-permille");
        if (link.drop_permille > 1000) {
          throw ScenarioParseError(line_no, "drop-permille cannot exceed 1000");
        }
      }
      const bool known_from = std::any_of(
          scenario.nodes.begin(), scenario.nodes.end(),
          [&](const ScenarioNode& n) { return n.name == link.from; });
      const bool known_to = std::any_of(
          scenario.nodes.begin(), scenario.nodes.end(),
          [&](const ScenarioNode& n) { return n.name == link.to; });
      if (!known_from || !known_to) {
        throw ScenarioParseError(line_no, "link references undeclared node '" +
                                              (known_from ? link.to : link.from) + "'");
      }
      scenario.links.push_back(std::move(link));
      continue;
    }

    if (keyword == "fault") {
      if (open) throw ScenarioParseError(line_no, "fault inside a computation block");
      const auto known_node = [&](const std::string& name) {
        return std::any_of(scenario.nodes.begin(), scenario.nodes.end(),
                           [&](const ScenarioNode& n) { return n.name == name; });
      };
      if (t.size() < 2) throw ScenarioParseError(line_no, "fault needs a kind");
      ScenarioFault fault;
      fault.kind = t[1];
      if (fault.kind == "crash") {
        expect_arity(t, 4, line_no, "fault crash <node> <at>");
        fault.a = t[2];
        fault.at = parse_nonnegative(t[3], line_no, "at");
      } else if (fault.kind == "restart") {
        expect_arity(t, 5, line_no, "fault restart <node> <at> recover|fresh");
        fault.a = t[2];
        fault.at = parse_nonnegative(t[3], line_no, "at");
        if (t[4] == "recover") {
          fault.recover = true;
        } else if (t[4] == "fresh") {
          fault.recover = false;
        } else {
          throw ScenarioParseError(line_no, "restart mode must be 'recover' or "
                                            "'fresh', got '" + t[4] + "'");
        }
      } else if (fault.kind == "partition" || fault.kind == "heal") {
        expect_arity(t, 5, line_no,
                     "fault " + fault.kind + " <node-a> <node-b> <at>");
        fault.a = t[2];
        fault.b = t[3];
        fault.at = parse_nonnegative(t[4], line_no, "at");
        if (fault.a == fault.b) {
          throw ScenarioParseError(line_no,
                                   "a " + fault.kind + " needs two distinct nodes");
        }
        if (!known_node(fault.b)) {
          throw ScenarioParseError(line_no, "fault references undeclared node '" +
                                                fault.b + "'");
        }
      } else {
        throw ScenarioParseError(line_no, "unknown fault kind '" + fault.kind + "'");
      }
      if (!known_node(fault.a)) {
        throw ScenarioParseError(line_no, "fault references undeclared node '" +
                                              fault.a + "'");
      }
      scenario.faults.push_back(std::move(fault));
      continue;
    }

    if (keyword == "computation") {
      if (open) {
        throw ScenarioParseError(line_no, "computation blocks cannot nest (missing "
                                          "'end'?)");
      }
      expect_arity(t, 4, line_no, "computation <name> <start> <deadline>");
      OpenComputation block;
      block.name = t[1];
      block.start = parse_int(t[2], line_no, "start");
      block.deadline = parse_int(t[3], line_no, "deadline");
      block.opened_at = line_no;
      if (block.deadline <= block.start) {
        throw ScenarioParseError(line_no, "deadline must lie after start");
      }
      open = std::move(block);
      continue;
    }

    if (keyword == "end") {
      if (!open) throw ScenarioParseError(line_no, "'end' without a computation");
      expect_arity(t, 1, line_no, "end");
      open->close_actor();
      scenario.computations.emplace_back(open->name, std::move(open->actors),
                                         open->start, open->deadline);
      open.reset();
      continue;
    }

    if (!open) {
      throw ScenarioParseError(line_no, "'" + keyword +
                                            "' outside a computation block");
    }

    if (keyword == "actor") {
      expect_arity(t, 3, line_no, "actor <name> <home-loc>");
      open->close_actor();
      open->current_actor.emplace(t[1], Location(t[2]));
      continue;
    }

    if (!open->current_actor) {
      throw ScenarioParseError(line_no, "action before any 'actor' line");
    }
    ActorComputationBuilder& actor = *open->current_actor;
    if (keyword == "evaluate") {
      expect_arity(t, 2, line_no, "evaluate <weight>");
      actor.evaluate(parse_nonnegative(t[1], line_no, "weight"));
    } else if (keyword == "send") {
      expect_arity(t, 3, line_no, "send <to-loc> <size>");
      actor.send(Location(t[1]), parse_nonnegative(t[2], line_no, "size"));
    } else if (keyword == "create") {
      expect_arity(t, 2, line_no, "create <size>");
      actor.create(parse_nonnegative(t[1], line_no, "size"));
    } else if (keyword == "ready") {
      expect_arity(t, 1, line_no, "ready");
      actor.ready();
    } else if (keyword == "migrate") {
      expect_arity(t, 3, line_no, "migrate <to-loc> <size>");
      if (Location(t[1]) == actor.current_location()) {
        throw ScenarioParseError(line_no, "migrate target equals current location");
      }
      actor.migrate(Location(t[1]), parse_nonnegative(t[2], line_no, "size"));
    } else {
      throw ScenarioParseError(line_no, "unknown statement '" + keyword + "'");
    }
  }

  if (open) {
    throw ScenarioParseError(open->opened_at,
                             "computation '" + open->name + "' is never closed");
  }
  return scenario;
}

Scenario parse_scenario_string(const std::string& text) {
  std::istringstream in(text);
  return parse_scenario(in);
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open scenario file: " + path);
  return parse_scenario(in);
}

void write_scenario(std::ostream& out, const Scenario& scenario) {
  for (const ResourceTerm& term : scenario.supply.terms()) {
    const LocatedType& type = term.type();
    out << "supply ";
    if (type.is_link()) {
      out << kind_name(type.kind()) << ' ' << type.source().name() << ' '
          << type.destination().name();
    } else {
      out << kind_name(type.kind()) << ' ' << type.source().name();
    }
    out << ' ' << term.rate() << ' ' << term.interval().start() << ' '
        << term.interval().end() << '\n';
  }

  for (const ScenarioNode& n : scenario.nodes) {
    out << "node " << n.name << ' ' << n.location;
    if (n.lanes != 1) out << ' ' << n.lanes;
    out << '\n';
  }
  for (const ScenarioLink& l : scenario.links) {
    out << "link " << l.from << ' ' << l.to << ' ' << l.latency;
    if (l.jitter != 0 || l.drop_permille != 0) out << ' ' << l.jitter;
    if (l.drop_permille != 0) out << ' ' << l.drop_permille;
    out << '\n';
  }
  for (const ScenarioFault& f : scenario.faults) {
    out << "fault " << f.kind << ' ' << f.a;
    if (f.kind == "partition" || f.kind == "heal") out << ' ' << f.b;
    out << ' ' << f.at;
    if (f.kind == "restart") out << (f.recover ? " recover" : " fresh");
    out << '\n';
  }

  for (const DistributedComputation& c : scenario.computations) {
    out << "computation " << c.name() << ' ' << c.earliest_start() << ' '
        << c.deadline() << '\n';
    for (const ActorComputation& gamma : c.actors()) {
      // Reconstruct the home location: the first action's `at`.
      const Location home =
          gamma.actions().empty() ? Location() : gamma.actions().front().at;
      out << "  actor " << gamma.actor() << ' ' << home.name() << '\n';
      for (const Action& a : gamma.actions()) {
        out << "    ";
        switch (a.kind) {
          case ActionKind::kEvaluate: out << "evaluate " << a.size; break;
          case ActionKind::kSend: out << "send " << a.to.name() << ' ' << a.size; break;
          case ActionKind::kCreate: out << "create " << a.size; break;
          case ActionKind::kReady: out << "ready"; break;
          case ActionKind::kMigrate:
            out << "migrate " << a.to.name() << ' ' << a.size;
            break;
        }
        out << '\n';
      }
    }
    out << "end\n";
  }
}

std::string scenario_to_string(const Scenario& scenario) {
  std::ostringstream out;
  write_scenario(out, scenario);
  return out.str();
}

}  // namespace rota
