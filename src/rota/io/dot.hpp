// Graphviz DOT export for the library's graph-shaped values:
//   * requirement DAGs of interacting computations (segments + gates),
//   * CyberOrg hierarchies (encapsulations + their load).
//
// Output renders with plain `dot -Tsvg`; no external dependencies here.
#pragma once

#include <string>

#include "rota/computation/interaction.hpp"
#include "rota/cyberorgs/cyberorg.hpp"

namespace rota {

/// The DAG as a digraph: one node per segment (labelled actor#segment with
/// its total demand), solid edges for intra-actor sequencing, dashed edges
/// for cross-actor message gates.
std::string to_dot(const DagRequirement& dag);

/// The org tree: one node per org showing admitted count and free terms.
std::string to_dot(const CyberOrg& root);

}  // namespace rota
