#include "rota/io/trace.hpp"

#include <algorithm>
#include <sstream>

namespace rota {

namespace {

/// Shared row renderer: one labelled intensity row per (label, profile).
struct GanttRow {
  std::string label;
  const StepFunction* profile;
};

TimeInterval fit_window(const std::vector<GanttRow>& rows, const GanttOptions& opts) {
  if (!opts.window.empty()) return opts.window;
  Tick lo = 0, hi = 1;
  bool first = true;
  for (const auto& row : rows) {
    if (row.profile->is_zero()) continue;
    const Tick s = row.profile->segments().front().interval.start();
    const Tick e = row.profile->segments().back().interval.end();
    if (first) {
      lo = s;
      hi = e;
      first = false;
    } else {
      lo = std::min(lo, s);
      hi = std::max(hi, e);
    }
  }
  return TimeInterval(lo, std::max(hi, lo + 1));
}

std::string render_rows(const std::vector<GanttRow>& rows, const GanttOptions& opts) {
  const TimeInterval window = fit_window(rows, opts);
  const Tick span = window.length();
  const Tick bucket = std::max<Tick>(1, (span + opts.max_columns - 1) / opts.max_columns);
  const Tick columns = (span + bucket - 1) / bucket;

  std::size_t label_width = 0;
  for (const auto& row : rows) label_width = std::max(label_width, row.label.size());

  std::ostringstream out;
  out << std::string(label_width, ' ') << " |t=" << window.start();
  if (bucket > 1) out << " (1 col = " << bucket << " ticks)";
  out << '\n';

  static const char* kShades[] = {"░", "▒", "▓", "█"};
  for (const auto& row : rows) {
    // Per-row peak (over buckets) scales the shading.
    std::vector<Rate> cells(static_cast<std::size_t>(columns), 0);
    Rate peak = 0;
    for (Tick c = 0; c < columns; ++c) {
      const Tick lo = window.start() + c * bucket;
      const Tick hi = std::min<Tick>(lo + bucket, window.end());
      Rate m = 0;
      for (Tick t = lo; t < hi; ++t) m = std::max(m, row.profile->value_at(t));
      cells[static_cast<std::size_t>(c)] = m;
      peak = std::max(peak, m);
    }
    out << row.label << std::string(label_width - row.label.size(), ' ') << " |";
    for (Rate v : cells) {
      if (v <= 0 || peak == 0) {
        out << ' ';
      } else {
        const int shade = std::min<int>(3, static_cast<int>((v * 4 - 1) / peak));
        out << kShades[shade];
      }
    }
    out << "| peak=" << peak << '\n';
  }
  out << std::string(label_width, ' ') << " |t=" << window.end() << '\n';
  return out.str();
}

// -------------------------------------------------------------------
// Minimal JSON building. Values here are numbers, short names and nested
// arrays/objects; names never contain characters needing escapes beyond
// quotes and backslashes.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void usage_to_json(std::ostringstream& out,
                   const std::map<LocatedType, StepFunction>& usage) {
  out << '[';
  bool first_type = true;
  for (const auto& [type, f] : usage) {
    if (!first_type) out << ',';
    first_type = false;
    out << "{\"type\":\"" << json_escape(type.to_string()) << "\",\"segments\":[";
    bool first_seg = true;
    for (const auto& seg : f.segments()) {
      if (!first_seg) out << ',';
      first_seg = false;
      out << "{\"start\":" << seg.interval.start() << ",\"end\":" << seg.interval.end()
          << ",\"rate\":" << seg.value << '}';
    }
    out << "]}";
  }
  out << ']';
}

}  // namespace

std::string render_gantt(const ConcurrentPlan& plan, GanttOptions options) {
  std::vector<GanttRow> rows;
  for (const auto& actor : plan.actors) {
    for (const auto& [type, f] : actor.usage) {
      rows.push_back({actor.actor + " " + type.to_string(), &f});
    }
  }
  if (rows.empty()) return "(empty plan)\n";
  return render_rows(rows, options);
}

std::string render_gantt(const InteractingPlan& plan, GanttOptions options) {
  std::vector<GanttRow> rows;
  for (const auto& seg : plan.segments) {
    for (const auto& [type, f] : seg.usage) {
      rows.push_back({"a" + std::to_string(seg.actor_index) + "#" +
                          std::to_string(seg.segment_index) + " " + type.to_string(),
                      &f});
    }
  }
  if (rows.empty()) return "(empty plan)\n";
  return render_rows(rows, options);
}

std::string to_json(const ConcurrentPlan& plan) {
  std::ostringstream out;
  out << "{\"computation\":\"" << json_escape(plan.computation)
      << "\",\"finish\":" << plan.finish << ",\"actors\":[";
  for (std::size_t i = 0; i < plan.actors.size(); ++i) {
    const ActorPlan& a = plan.actors[i];
    if (i != 0) out << ',';
    out << "{\"actor\":\"" << json_escape(a.actor) << "\",\"start\":" << a.start
        << ",\"finish\":" << a.finish << ",\"cut_points\":[";
    for (std::size_t c = 0; c < a.cut_points.size(); ++c) {
      if (c != 0) out << ',';
      out << a.cut_points[c];
    }
    out << "],\"usage\":";
    usage_to_json(out, a.usage);
    out << '}';
  }
  out << "]}";
  return out.str();
}

std::string to_json(const InteractingPlan& plan) {
  std::ostringstream out;
  out << "{\"computation\":\"" << json_escape(plan.computation)
      << "\",\"finish\":" << plan.finish << ",\"segments\":[";
  for (std::size_t i = 0; i < plan.segments.size(); ++i) {
    const SegmentPlan& s = plan.segments[i];
    if (i != 0) out << ',';
    out << "{\"actor\":" << s.actor_index << ",\"segment\":" << s.segment_index
        << ",\"start\":" << s.start << ",\"finish\":" << s.finish << ",\"usage\":";
    usage_to_json(out, s.usage);
    out << '}';
  }
  out << "]}";
  return out.str();
}

std::string to_json(const ComputationPath& path) {
  std::ostringstream out;
  out << "{\"states\":[";
  for (std::size_t i = 0; i < path.size(); ++i) {
    const SystemState& s = path.state(i);
    if (i != 0) out << ',';
    out << "{\"t\":" << s.now() << ",\"commitments\":" << s.commitments().size()
        << ",\"unfinished\":" << s.unfinished_count() << '}';
  }
  out << "],\"steps\":[";
  for (std::size_t i = 0; i < path.steps().size(); ++i) {
    if (i != 0) out << ',';
    out << "\"" << json_escape(step_to_string(path.steps()[i])) << "\"";
  }
  out << "]}";
  return out.str();
}

}  // namespace rota
