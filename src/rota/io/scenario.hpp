// Scenario files: a small line-oriented text format for describing supply
// and deadline-constrained computations, so ROTA can be driven without
// writing C++ (see examples/rota_check.cpp and examples/scenarios/).
//
// Grammar (one statement per line; '#' starts a comment; blank lines and
// leading/trailing whitespace are ignored):
//
//   supply cpu <loc> <rate> <from> <to>
//   supply memory <loc> <rate> <from> <to>
//   supply disk <loc> <rate> <from> <to>
//   supply network <src-loc> <dst-loc> <rate> <from> <to>
//   node <name> <location> [lanes]
//   link <from-node> <to-node> <latency> [jitter [drop-permille]]
//   fault crash <node> <at>
//   fault restart <node> <at> recover|fresh
//   fault partition <node-a> <node-b> <at>
//   fault heal <node-a> <node-b> <at>
//   computation <name> <start> <deadline>
//     actor <name> <home-loc>
//       evaluate <weight>
//       send <to-loc> <size>
//       create <size>
//       ready
//       migrate <to-loc> <size>
//   end
//
// Every `computation` block must be closed by `end`; `actor` lines belong to
// the enclosing computation; action lines to the latest actor. Locations are
// created on first mention.
//
// The `node`/`link` section is optional (files without it describe a
// single-site system and keep parsing unchanged): `node` declares one
// cluster member hosting a location, `link` the symmetric connection between
// two declared members. Loss is written in permille so the value survives a
// write/parse round trip exactly.
//
// `fault` statements (also optional, cluster section only) pin a hostile-
// conditions timeline against the declared nodes: a crash kills a node at
// tick start, a restart brings it back (`recover` replays its audit log,
// `fresh` forgets it), partition/heal cut and mend the link between two
// members. Statement order is the schedule order — same-tick events apply
// in the order written. See rota/faults/schedule.hpp for the replayable
// value these lines round-trip with.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "rota/computation/actor_computation.hpp"
#include "rota/resource/resource_set.hpp"

namespace rota {

/// One declared cluster member (see rota/cluster/): a named node hosting a
/// location, admitting with `lanes` planning lanes.
struct ScenarioNode {
  std::string name;
  std::string location;
  std::size_t lanes = 1;

  bool operator==(const ScenarioNode&) const = default;
};

/// A symmetric link between two declared nodes. `drop_permille` is the loss
/// probability in thousandths (integer, so round trips are exact).
struct ScenarioLink {
  std::string from;
  std::string to;
  Tick latency = 1;
  Tick jitter = 0;
  std::int64_t drop_permille = 0;

  bool operator==(const ScenarioLink&) const = default;
};

/// One fault-timeline statement against the declared nodes. `kind` is the
/// statement keyword (crash/restart/partition/heal); `b` and `recover` are
/// meaningful only for the kinds whose grammar carries them.
struct ScenarioFault {
  std::string kind;
  std::string a;
  std::string b;        // partition/heal only
  Tick at = 0;
  bool recover = false;  // restart only

  bool operator==(const ScenarioFault&) const = default;
};

struct Scenario {
  ResourceSet supply;
  std::vector<DistributedComputation> computations;
  std::vector<ScenarioNode> nodes;  // empty: no cluster section
  std::vector<ScenarioLink> links;
  std::vector<ScenarioFault> faults;

  bool operator==(const Scenario&) const = default;
};

/// Thrown on malformed input; carries the 1-based line number.
class ScenarioParseError : public std::runtime_error {
 public:
  ScenarioParseError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

Scenario parse_scenario(std::istream& in);
Scenario parse_scenario_string(const std::string& text);
Scenario load_scenario_file(const std::string& path);

/// Serializes a scenario in the same format; parse_scenario round-trips it.
void write_scenario(std::ostream& out, const Scenario& scenario);
std::string scenario_to_string(const Scenario& scenario);

}  // namespace rota
