// Trace export: plans and paths rendered for humans and for tools.
//
// Two renderers:
//   * render_gantt — an ASCII Gantt chart of a plan's consumption (one row
//     per actor × located type, one column per tick), the quickest way to
//     see *when* a plan uses *what*;
//   * to_json — a dependency-free JSON export of plans and computation paths
//     for downstream tooling (plotting, dashboards, diffing runs).
#pragma once

#include <string>

#include "rota/logic/dag_planner.hpp"
#include "rota/logic/path.hpp"
#include "rota/logic/planner.hpp"

namespace rota {

struct GanttOptions {
  /// Chart window; an empty interval means "fit to the plan".
  TimeInterval window;
  /// Widest chart in ticks; longer plans are compressed by this bucket size
  /// (each column shows the max rate within its bucket).
  Tick max_columns = 80;
};

/// ASCII Gantt of a concurrent plan. Rows are "actor/type"; cells show
/// consumption intensity (' ' none, '░▒▓█' quartiles of the row's peak).
std::string render_gantt(const ConcurrentPlan& plan, GanttOptions options = {});

/// ASCII Gantt of an interacting (DAG) plan; rows are segment/type, and a
/// marker column shows each segment's gate-release time.
std::string render_gantt(const InteractingPlan& plan, GanttOptions options = {});

/// JSON export (stable field order, no external dependencies).
std::string to_json(const ConcurrentPlan& plan);
std::string to_json(const InteractingPlan& plan);
std::string to_json(const ComputationPath& path);

}  // namespace rota
