#include "rota/service/codec.hpp"

#include <charconv>
#include <sstream>

#include "rota/io/scenario.hpp"

namespace rota::service {

namespace {

std::uint64_t parse_u64(std::string_view token, const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    throw CodecError(std::string("malformed ") + what + ": '" +
                     std::string(token) + "'");
  }
  return value;
}

/// Splits `line` into whitespace-separated tokens.
std::vector<std::string_view> tokens_of(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ') ++j;
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string_view first_line(std::string_view payload, std::size_t& body_start) {
  const std::size_t nl = payload.find('\n');
  if (nl == std::string_view::npos) {
    body_start = payload.size();
    return payload;
  }
  body_start = nl + 1;
  return payload.substr(0, nl);
}

}  // namespace

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kAccepted: return "accepted";
    case Verdict::kRejected: return "rejected";
    case Verdict::kOverloaded: return "overloaded";
  }
  return "rejected";
}

std::string request_payload(const AdmitRequest& request) {
  std::ostringstream out;
  out << "admit " << request.id << ' ' << request.at << ' ' << request.budget_us
      << '\n';
  Scenario body;
  body.computations.push_back(request.computation);
  write_scenario(out, body);
  return out.str();
}

AdmitRequest parse_request(const std::string& payload) {
  std::size_t body_start = 0;
  const auto header = tokens_of(first_line(payload, body_start));
  if (header.size() != 4 || header[0] != "admit") {
    throw CodecError("request header must be 'admit <id> <at> <budget_us>'");
  }
  AdmitRequest request;
  request.id = parse_u64(header[1], "request id");
  request.at = static_cast<Tick>(parse_u64(header[2], "arrival tick"));
  request.budget_us = parse_u64(header[3], "budget");
  Scenario body;
  try {
    body = parse_scenario_string(payload.substr(body_start));
  } catch (const ScenarioParseError& e) {
    throw CodecError(std::string("request body: ") + e.what());
  }
  if (body.computations.size() != 1) {
    throw CodecError("request body must carry exactly one computation (got " +
                     std::to_string(body.computations.size()) + ")");
  }
  if (!body.supply.empty() || !body.nodes.empty() || !body.links.empty()) {
    throw CodecError("request body must not carry supply or cluster sections");
  }
  request.computation = std::move(body.computations.front());
  return request;
}

std::string response_payload(const AdmitResponse& response) {
  std::ostringstream out;
  out << "decision " << response.id << ' ' << verdict_name(response.verdict)
      << ' ' << (response.strategy.empty() ? "-" : response.strategy) << ' '
      << response.planning_ns << ' ' << response.queue_ns << '\n';
  if (!response.reason.empty()) out << "reason " << response.reason << '\n';
  return out.str();
}

AdmitResponse parse_response(const std::string& payload) {
  std::size_t body_start = 0;
  const auto header = tokens_of(first_line(payload, body_start));
  if (header.size() != 6 || header[0] != "decision") {
    throw CodecError(
        "response header must be "
        "'decision <id> <verdict> <strategy> <planning_ns> <queue_ns>'");
  }
  AdmitResponse response;
  response.id = parse_u64(header[1], "response id");
  if (header[2] == "accepted") {
    response.verdict = Verdict::kAccepted;
  } else if (header[2] == "rejected") {
    response.verdict = Verdict::kRejected;
  } else if (header[2] == "overloaded") {
    response.verdict = Verdict::kOverloaded;
  } else {
    throw CodecError("unknown verdict '" + std::string(header[2]) + "'");
  }
  response.strategy = header[3] == "-" ? "" : std::string(header[3]);
  response.planning_ns = parse_u64(header[4], "planning_ns");
  response.queue_ns = parse_u64(header[5], "queue_ns");
  std::string_view rest(payload);
  rest.remove_prefix(body_start);
  if (rest.rfind("reason ", 0) == 0) {
    rest.remove_prefix(7);
    const std::size_t nl = rest.find('\n');
    response.reason = std::string(rest.substr(0, nl));
  }
  return response;
}

bool is_request_payload(std::string_view payload) {
  return payload.rfind("admit ", 0) == 0;
}

}  // namespace rota::service
