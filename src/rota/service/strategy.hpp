// Anytime planning strategies: the degradation ladder the SLO governor walks.
//
// Every strategy answers the same question the PlanningKernel does —
// speculate ρ against a snapshot — but at a different point on the
// cost/completeness curve:
//
//   kExact   full kernel: greedy ladder plus the symbolic cut-point rescue.
//            Complete within the rescue's budget; the reference decision.
//   kDigest  greedy ladder over a StepFunction digest of the snapshot view
//            (cluster/digest's bucket-minimum compaction). The hull is
//            dominated by the true residual everywhere, so any plan found is
//            feasible against the live ledger — accepts are SAFE; rejects
//            may be pessimistic. Cost scales with digest segments, not with
//            residual fragmentation.
//   kGreedy  fast ladder only: the greedy planner against the true view, no
//            symbolic rescue. Accepts are exact-feasible witnesses; a
//            contended multi-actor rejection may be spurious.
//
// The asymmetry is deliberate and is the subsystem's safety argument: *every*
// rung's accept carries a concrete plan the ledger re-validates at commit
// (CommitmentLedger::admit refuses plans the residual does not cover), so
// degrading under load can cost acceptance rate, never correctness. A
// degraded strategy is never unsafely optimistic.
//
// Each strategy self-reports cost as an EWMA of its recent planning wall
// times; StrategyRegistry::pick uses those to choose the highest-quality
// rung predicted to fit a request's remaining planning budget.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "rota/plan/kernel.hpp"

namespace rota::service {

enum class StrategyKind : int { kExact = 0, kDigest = 1, kGreedy = 2 };
inline constexpr int kStrategyCount = 3;

const char* strategy_name(StrategyKind kind);

class AnytimeStrategy {
 public:
  virtual ~AnytimeStrategy() = default;

  virtual const char* name() const = 0;

  /// Speculates ρ against a snapshot captured from the live ledger. The
  /// result must be commit-able against that ledger (revision stamps kept);
  /// feasible results must carry plans feasible against the snapshot's true
  /// view. `cancel` is honored at speculation boundaries.
  virtual PlanResult speculate(const ConcurrentRequirement& rho, Tick at,
                               const FeasibilitySnapshot& snapshot,
                               const CancellationToken& cancel) = 0;

  /// Self-reported cost: EWMA of recent planning wall times, 0 until the
  /// first observation ("assume cheap until proven otherwise" — the governor
  /// corrects quickly via record_cost).
  std::uint64_t predicted_cost_ns() const {
    return ewma_ns_.load(std::memory_order_relaxed);
  }

  /// Feeds one measured planning time into the EWMA (α = 1/4). Lossy under
  /// races by design — a cost model, not an accounting ledger.
  void record_cost(std::uint64_t ns) {
    const std::uint64_t prev = ewma_ns_.load(std::memory_order_relaxed);
    ewma_ns_.store(prev == 0 ? ns : (3 * prev + ns) / 4,
                   std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> ewma_ns_{0};
};

/// The three built-in rungs, replaceable for tests (inject a deliberately
/// slow kExact to force demotion, a latched strategy to hold a lane, …).
class StrategyRegistry {
 public:
  /// `digest_max_segments` bounds the per-type segment count of kDigest's
  /// compacted hull (see cluster::compact_hull).
  StrategyRegistry(const PlanningKernel& kernel, std::size_t digest_max_segments);

  AnytimeStrategy& strategy(StrategyKind kind) {
    return *rungs_[static_cast<int>(kind)];
  }

  /// Test injection point: swap one rung. Call before traffic flows.
  void replace(StrategyKind kind, std::unique_ptr<AnytimeStrategy> strategy);

  /// The highest-quality rung at or below `floor` (the governor's current
  /// level) whose predicted cost fits `budget_ns`. Falls through to kGreedy
  /// when nothing is predicted to fit — anytime service always answers with
  /// its cheapest honest attempt rather than refusing to think.
  StrategyKind pick(std::uint64_t budget_ns, StrategyKind floor) const;

 private:
  std::unique_ptr<AnytimeStrategy> rungs_[kStrategyCount];
};

}  // namespace rota::service
