#include "rota/service/strategy.hpp"

#include "rota/cluster/digest.hpp"

namespace rota::service {

namespace {

class ExactStrategy final : public AnytimeStrategy {
 public:
  explicit ExactStrategy(const PlanningKernel& kernel) : kernel_(kernel) {}

  const char* name() const override { return "exact"; }

  PlanResult speculate(const ConcurrentRequirement& rho, Tick at,
                       const FeasibilitySnapshot& snapshot,
                       const CancellationToken& cancel) override {
    SpeculateOptions options;
    options.cancel = &cancel;
    return kernel_.speculate(rho, at, snapshot, options);
  }

 private:
  const PlanningKernel& kernel_;
};

class DigestStrategy final : public AnytimeStrategy {
 public:
  DigestStrategy(const PlanningKernel& kernel, std::size_t max_segments)
      : kernel_(kernel), max_segments_(max_segments) {}

  const char* name() const override { return "digest"; }

  PlanResult speculate(const ConcurrentRequirement& rho, Tick at,
                       const FeasibilitySnapshot& snapshot,
                       const CancellationToken& cancel) override {
    const TimeInterval window = effective_window(rho, at);
    SpeculateOptions options;
    options.cancel = &cancel;
    options.symbolic_rescue = false;
    if (window.empty()) {
      // Nothing to compact; the kernel short-circuits to kDeadlinePassed.
      return kernel_.speculate(rho, at, snapshot, options);
    }
    // The hull is dominated by the true view everywhere (bucket-minimum
    // compaction), so planning against it can only under-promise: feasible
    // plans transfer to the live residual unchanged.
    const ResourceSet hull = cluster::compact_hull(
        snapshot.pre_restricted() ? snapshot.view() : snapshot.restricted(window),
        max_segments_);
    options.view_override = &hull;
    return kernel_.speculate(rho, at, snapshot, options);
  }

 private:
  const PlanningKernel& kernel_;
  std::size_t max_segments_;
};

class GreedyStrategy final : public AnytimeStrategy {
 public:
  explicit GreedyStrategy(const PlanningKernel& kernel) : kernel_(kernel) {}

  const char* name() const override { return "greedy"; }

  PlanResult speculate(const ConcurrentRequirement& rho, Tick at,
                       const FeasibilitySnapshot& snapshot,
                       const CancellationToken& cancel) override {
    SpeculateOptions options;
    options.cancel = &cancel;
    options.symbolic_rescue = false;
    return kernel_.speculate(rho, at, snapshot, options);
  }

 private:
  const PlanningKernel& kernel_;
};

}  // namespace

const char* strategy_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kExact: return "exact";
    case StrategyKind::kDigest: return "digest";
    case StrategyKind::kGreedy: return "greedy";
  }
  return "exact";
}

StrategyRegistry::StrategyRegistry(const PlanningKernel& kernel,
                                   std::size_t digest_max_segments) {
  rungs_[static_cast<int>(StrategyKind::kExact)] =
      std::make_unique<ExactStrategy>(kernel);
  rungs_[static_cast<int>(StrategyKind::kDigest)] =
      std::make_unique<DigestStrategy>(kernel, digest_max_segments);
  rungs_[static_cast<int>(StrategyKind::kGreedy)] =
      std::make_unique<GreedyStrategy>(kernel);
}

void StrategyRegistry::replace(StrategyKind kind,
                               std::unique_ptr<AnytimeStrategy> strategy) {
  rungs_[static_cast<int>(kind)] = std::move(strategy);
}

StrategyKind StrategyRegistry::pick(std::uint64_t budget_ns,
                                    StrategyKind floor) const {
  for (int k = static_cast<int>(floor); k < kStrategyCount - 1; ++k) {
    if (rungs_[k]->predicted_cost_ns() <= budget_ns) {
      return static_cast<StrategyKind>(k);
    }
  }
  return StrategyKind::kGreedy;
}

}  // namespace rota::service
