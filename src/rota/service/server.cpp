#include "rota/service/server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace rota::service {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

int make_unix_listener(const std::string& path) {
  if (path.size() + 1 > sizeof(sockaddr_un::sun_path)) {
    throw std::invalid_argument("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  ::unlink(path.c_str());  // stale socket from a previous run
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("bind(unix)");
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    throw_errno("listen(unix)");
  }
  return fd;
}

int make_tcp_listener(std::uint16_t port, std::uint16_t& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("bind(tcp)");
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    throw_errno("listen(tcp)");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    ::close(fd);
    throw_errno("getsockname(tcp)");
  }
  bound_port = ntohs(bound.sin_port);
  return fd;
}

bool send_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      return false;
    }
    data += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

}  // namespace

/// One accepted connection: a reader thread feeding the service, and a
/// write path any planning lane may call. Kept alive by shared_ptr — the
/// response callbacks hold one, so a session outlives its socket peer for
/// exactly as long as decisions are still owed to it.
struct ServiceServer::Session {
  explicit Session(int fd_in) : fd(fd_in) {}
  ~Session() {
    if (fd >= 0) ::close(fd);
  }

  void write_response(const AdmitResponse& response) {
    const std::string bytes = frame(response_payload(response));
    std::lock_guard<std::mutex> lock(write_mutex);
    if (!writable) return;
    if (!send_all(fd, bytes.data(), bytes.size())) writable = false;
  }

  /// Ends the conversation from our side: the peer sees EOF (a protocol
  /// violator would otherwise wait forever for a hang-up that never comes)
  /// and later responses are dropped. stop()/~Session still own the close().
  void hang_up() {
    std::lock_guard<std::mutex> lock(write_mutex);
    writable = false;
    ::shutdown(fd, SHUT_RDWR);
  }

  const int fd;
  std::mutex write_mutex;
  bool writable = true;  // guarded by write_mutex
  std::thread reader;
};

ServiceServer::ServiceServer(AdmissionService& service, ServerConfig config)
    : service_(service), config_(std::move(config)) {
  if (config_.unix_path.empty() && !config_.tcp) {
    throw std::invalid_argument("ServiceServer needs a unix path or tcp");
  }
  if (!config_.unix_path.empty()) {
    unix_fd_ = make_unix_listener(config_.unix_path);
  }
  if (config_.tcp) {
    try {
      tcp_fd_ = make_tcp_listener(config_.tcp_port, bound_tcp_port_);
    } catch (...) {
      if (unix_fd_ >= 0) ::close(unix_fd_);
      throw;
    }
  }
  // Capture the fds by value: the members are overwritten by stop() (which
  // may run before a freshly spawned acceptor gets scheduled), the captured
  // copies are immutable.
  if (const int fd = unix_fd_; fd >= 0) {
    acceptors_.emplace_back([this, fd] { accept_loop(fd); });
  }
  if (const int fd = tcp_fd_; fd >= 0) {
    acceptors_.emplace_back([this, fd] { accept_loop(fd); });
  }
}

ServiceServer::~ServiceServer() { stop(); }

void ServiceServer::accept_loop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop()) or fatal: acceptor exits
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    sessions_accepted_.fetch_add(1, std::memory_order_relaxed);
    start_session(fd);
  }
}

void ServiceServer::start_session(int fd) {
  auto session = std::make_shared<Session>(fd);
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_.push_back(session);
  }
  session->reader = std::thread([this, session] {
    FrameReader frames;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(session->fd, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;  // peer closed, or stop() half-closed us
      try {
        frames.feed(buf, static_cast<std::size_t>(n));
        while (auto payload = frames.next()) {
          AdmitRequest request = parse_request(*payload);
          service_.submit(std::move(request),
                          [session](const AdmitResponse& response) {
                            session->write_response(response);
                          });
        }
      } catch (const CodecError& e) {
        // Protocol violation: answer what we can and hang up. (id 0 — a
        // malformed frame has no trustworthy id.)
        AdmitResponse err;
        err.verdict = Verdict::kRejected;
        err.reason = std::string("protocol error: ") + e.what();
        session->write_response(err);
        session->hang_up();
        return;
      }
    }
  });
}

void ServiceServer::stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);

  // 1. No new connections: closing the listeners unblocks accept().
  if (unix_fd_ >= 0) ::shutdown(unix_fd_, SHUT_RDWR);
  if (tcp_fd_ >= 0) ::shutdown(tcp_fd_, SHUT_RDWR);
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  unix_fd_ = tcp_fd_ = -1;
  for (auto& t : acceptors_) t.join();
  acceptors_.clear();

  // 2. No new requests: half-close every session for reading. The write
  // halves stay open — queued decisions still owe responses.
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions = sessions_;
  }
  for (auto& s : sessions) ::shutdown(s->fd, SHUT_RD);
  for (auto& s : sessions) {
    if (s->reader.joinable()) s->reader.join();
  }

  // 3. Drain: every request accepted into the queue is answered through the
  // still-writable sessions before the lanes stop.
  service_.drain_and_stop();

  // 4. Tear down. Callbacks already delivered dropped their refs; clearing
  // ours closes the sockets.
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_.clear();
  }
  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());
}

}  // namespace rota::service
