#include "rota/service/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>

#include "rota/net/sockets.hpp"
#include "rota/net/wire.hpp"

namespace rota::service {

using net::make_tcp_listener;
using net::make_unix_listener;
using net::send_all;

/// One accepted connection: a reader thread feeding the service, and a
/// write path any planning lane may call. Kept alive by shared_ptr — the
/// response callbacks hold one, so a session outlives its socket peer for
/// exactly as long as decisions are still owed to it.
struct ServiceServer::Session {
  explicit Session(int fd_in) : fd(fd_in) {}
  ~Session() {
    if (fd >= 0) ::close(fd);
  }

  void write_response(const AdmitResponse& response) {
    write_raw(frame(response_payload(response)));
  }

  void write_raw(const std::string& bytes) {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (!writable) return;
    if (!send_all(fd, bytes.data(), bytes.size())) writable = false;
  }

  /// Ends the conversation from our side: the peer sees EOF (a protocol
  /// violator would otherwise wait forever for a hang-up that never comes)
  /// and later responses are dropped. stop()/~Session still own the close().
  void hang_up() {
    std::lock_guard<std::mutex> lock(write_mutex);
    writable = false;
    ::shutdown(fd, SHUT_RDWR);
  }

  const int fd;
  std::mutex write_mutex;
  bool writable = true;  // guarded by write_mutex
  std::thread reader;
};

ServiceServer::ServiceServer(AdmissionService& service, ServerConfig config,
                             SubmitFn submit)
    : service_(service), config_(std::move(config)), submit_(std::move(submit)) {
  if (!submit_) {
    submit_ = [this](AdmitRequest request, AdmissionService::ResponseFn done) {
      service_.submit(std::move(request), std::move(done));
    };
  }
  if (config_.unix_path.empty() && !config_.tcp) {
    throw std::invalid_argument("ServiceServer needs a unix path or tcp");
  }
  if (!config_.unix_path.empty()) {
    unix_fd_ = make_unix_listener(config_.unix_path);
  }
  if (config_.tcp) {
    try {
      tcp_fd_ = make_tcp_listener(config_.tcp_port, bound_tcp_port_);
    } catch (...) {
      if (unix_fd_ >= 0) ::close(unix_fd_);
      throw;
    }
  }
  // Capture the fds by value: the members are overwritten by stop() (which
  // may run before a freshly spawned acceptor gets scheduled), the captured
  // copies are immutable.
  if (const int fd = unix_fd_; fd >= 0) {
    acceptors_.emplace_back([this, fd] { accept_loop(fd); });
  }
  if (const int fd = tcp_fd_; fd >= 0) {
    acceptors_.emplace_back([this, fd] { accept_loop(fd); });
  }
}

ServiceServer::~ServiceServer() { stop(); }

void ServiceServer::accept_loop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop()) or fatal: acceptor exits
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    sessions_accepted_.fetch_add(1, std::memory_order_relaxed);
    start_session(fd);
  }
}

void ServiceServer::start_session(int fd) {
  auto session = std::make_shared<Session>(fd);
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_.push_back(session);
  }
  session->reader = std::thread([this, session] {
    FrameReader frames;
    char buf[4096];
    // With a secret configured, the session opens with a hello frame whose
    // token must match before any request is read (rota/net/wire).
    bool authed = config_.secret.empty();
    for (;;) {
      const ssize_t n = ::recv(session->fd, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;  // peer closed, or stop() half-closed us
      try {
        frames.feed(buf, static_cast<std::size_t>(n));
        while (auto payload = frames.next()) {
          if (net::is_hello_payload(*payload)) {
            const net::Hello hello = net::decode_hello(*payload);
            if (!config_.secret.empty() && hello.token != config_.secret) {
              throw CodecError("unauthorized: bad session token");
            }
            authed = true;
            session->write_raw(frame("ok"));
            continue;
          }
          if (!authed) {
            throw CodecError("unauthorized: session token required");
          }
          AdmitRequest request = parse_request(*payload);
          submit_(std::move(request),
                  [session](const AdmitResponse& response) {
                    session->write_response(response);
                  });
        }
      } catch (const CodecError& e) {
        // Protocol violation: answer what we can and hang up. (id 0 — a
        // malformed frame has no trustworthy id.)
        AdmitResponse err;
        err.verdict = Verdict::kRejected;
        err.reason = std::string("protocol error: ") + e.what();
        session->write_response(err);
        session->hang_up();
        return;
      }
    }
  });
}

void ServiceServer::stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);

  // 1. No new connections: closing the listeners unblocks accept().
  if (unix_fd_ >= 0) ::shutdown(unix_fd_, SHUT_RDWR);
  if (tcp_fd_ >= 0) ::shutdown(tcp_fd_, SHUT_RDWR);
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  unix_fd_ = tcp_fd_ = -1;
  for (auto& t : acceptors_) t.join();
  acceptors_.clear();

  // 2. No new requests: half-close every session for reading. The write
  // halves stay open — queued decisions still owe responses.
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions = sessions_;
  }
  for (auto& s : sessions) ::shutdown(s->fd, SHUT_RD);
  for (auto& s : sessions) {
    if (s->reader.joinable()) s->reader.join();
  }

  // 3. Drain: every request accepted into the queue is answered through the
  // still-writable sessions before the lanes stop.
  service_.drain_and_stop();

  // 4. Tear down. Callbacks already delivered dropped their refs; clearing
  // ours closes the sockets.
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_.clear();
  }
  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());
}

}  // namespace rota::service
