// ServiceClient: a blocking connection to the admission daemon.
//
// One socket, framed with the same codec the server speaks. send() may be
// pipelined (many requests in flight); receive() yields decisions in the
// order the server made them, which is not necessarily submission order —
// correlate by id. call() is the one-in-flight convenience that does.
//
// ClientOptions bounds the blocking: connect_timeout_ms caps the dial (and
// the hello handshake when a token is set), read_timeout_ms caps every
// receive(). On a broken connection, send() makes exactly one reconnect
// attempt — re-dialing the original address and re-running the handshake —
// before giving up; responses to requests pipelined on the dead connection
// are lost (callers correlate by id and re-send).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "rota/service/codec.hpp"

namespace rota::service {

struct ClientOptions {
  int connect_timeout_ms = 0;  // <= 0: block indefinitely
  int read_timeout_ms = 0;     // <= 0: block indefinitely
  std::string token;           // non-empty: open sessions with a hello frame
  bool reconnect = true;       // one re-dial when send() hits a dead socket
};

class ServiceClient {
 public:
  /// Factories throw std::system_error when the connection fails (including
  /// a connect timeout) and std::runtime_error when the server refuses the
  /// session token.
  static ServiceClient connect_unix(const std::string& path,
                                    ClientOptions options = {});
  static ServiceClient connect_tcp(std::uint16_t port,
                                   ClientOptions options = {});

  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ~ServiceClient();

  /// Frames and writes one request. On a dead socket, re-dials once (when
  /// options.reconnect) and retries; throws std::system_error when that
  /// fails too.
  void send(const AdmitRequest& request);

  /// Blocks for the next decision; nullopt on clean EOF (server drained and
  /// closed). Throws CodecError on malformed frames and std::system_error
  /// when read_timeout_ms elapses with no frame.
  std::optional<AdmitResponse> receive();

  /// send + receive-until-matching-id. Throws std::runtime_error when the
  /// connection closes before the matching decision arrives.
  AdmitResponse call(const AdmitRequest& request);

  /// Connections survived so far (0 on a fresh client; bumps when send()'s
  /// reconnect path replaces a dead socket).
  std::size_t reconnects() const { return reconnects_; }

  void close();

 private:
  enum class Target { kUnix, kTcp };

  ServiceClient(int fd, Target target, std::string path, std::uint16_t port,
                ClientOptions options)
      : fd_(fd),
        target_(target),
        path_(std::move(path)),
        port_(port),
        options_(std::move(options)) {}

  /// Dials target_, runs the hello handshake, applies the read timeout.
  /// Returns the connected fd; throws like the factories.
  static int dial(Target target, const std::string& path, std::uint16_t port,
                  const ClientOptions& options);

  int fd_ = -1;
  Target target_ = Target::kUnix;
  std::string path_;
  std::uint16_t port_ = 0;
  ClientOptions options_;
  std::size_t reconnects_ = 0;
  FrameReader frames_;
};

}  // namespace rota::service
