// ServiceClient: a blocking connection to the admission daemon.
//
// One socket, framed with the same codec the server speaks. send() may be
// pipelined (many requests in flight); receive() yields decisions in the
// order the server made them, which is not necessarily submission order —
// correlate by id. call() is the one-in-flight convenience that does.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "rota/service/codec.hpp"

namespace rota::service {

class ServiceClient {
 public:
  /// Factories throw std::system_error when the connection fails.
  static ServiceClient connect_unix(const std::string& path);
  static ServiceClient connect_tcp(std::uint16_t port);

  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ~ServiceClient();

  /// Frames and writes one request. Throws std::system_error on a broken
  /// connection.
  void send(const AdmitRequest& request);

  /// Blocks for the next decision; nullopt on clean EOF (server drained and
  /// closed). Throws CodecError on malformed frames.
  std::optional<AdmitResponse> receive();

  /// send + receive-until-matching-id. Throws std::runtime_error when the
  /// connection closes before the matching decision arrives.
  AdmitResponse call(const AdmitRequest& request);

  void close();

 private:
  explicit ServiceClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  FrameReader frames_;
};

}  // namespace rota::service
