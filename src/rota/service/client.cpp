#include "rota/service/client.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <utility>

#include "rota/cluster/message.hpp"
#include "rota/net/sockets.hpp"
#include "rota/net/wire.hpp"

namespace rota::service {

int ServiceClient::dial(Target target, const std::string& path,
                        std::uint16_t port, const ClientOptions& options) {
  const int fd =
      target == Target::kUnix
          ? net::connect_unix_fd(path, options.connect_timeout_ms)
          : net::connect_tcp_fd(port, options.connect_timeout_ms);
  if (fd < 0) {
    net::throw_errno(target == Target::kUnix ? "connect(unix)" : "connect(tcp)");
  }
  if (!options.token.empty()) {
    // Session open: hello, then a bounded wait for the server's verdict.
    const std::string hello = frame(
        net::encode_hello(net::Hello{cluster::kNoNode, options.token}));
    net::set_recv_timeout(fd, options.connect_timeout_ms > 0
                                  ? options.connect_timeout_ms
                                  : 0);
    bool ok = net::send_all(fd, hello.data(), hello.size());
    std::string reply;
    if (ok) {
      FrameReader frames;
      char buf[4096];
      for (;;) {
        if (auto payload = frames.next()) {
          reply = *payload;
          break;
        }
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
          ok = false;
          break;
        }
        frames.feed(buf, static_cast<std::size_t>(n));
      }
    }
    if (!ok || reply != "ok") {
      ::close(fd);
      throw std::runtime_error(
          reply.empty() ? "service handshake failed (no reply)"
                        : "service refused session: " + reply);
    }
  }
  net::set_recv_timeout(fd, options.read_timeout_ms > 0
                                ? options.read_timeout_ms
                                : 0);
  return fd;
}

ServiceClient ServiceClient::connect_unix(const std::string& path,
                                          ClientOptions options) {
  const int fd = dial(Target::kUnix, path, 0, options);
  return ServiceClient(fd, Target::kUnix, path, 0, std::move(options));
}

ServiceClient ServiceClient::connect_tcp(std::uint16_t port,
                                         ClientOptions options) {
  const int fd = dial(Target::kTcp, {}, port, options);
  return ServiceClient(fd, Target::kTcp, {}, port, std::move(options));
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      target_(other.target_),
      path_(std::move(other.path_)),
      port_(other.port_),
      options_(std::move(other.options_)),
      reconnects_(other.reconnects_),
      frames_(std::move(other.frames_)) {}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    target_ = other.target_;
    path_ = std::move(other.path_);
    port_ = other.port_;
    options_ = std::move(other.options_);
    reconnects_ = other.reconnects_;
    frames_ = std::move(other.frames_);
  }
  return *this;
}

ServiceClient::~ServiceClient() { close(); }

void ServiceClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ServiceClient::send(const AdmitRequest& request) {
  if (fd_ < 0) throw std::runtime_error("ServiceClient: closed");
  const std::string bytes = frame(request_payload(request));
  if (net::send_all(fd_, bytes.data(), bytes.size())) return;

  if (!options_.reconnect) net::throw_errno("send");

  // One reconnect: replace the dead socket, re-handshake, retry the write.
  // Responses pipelined on the old connection are lost with it.
  ::close(fd_);
  fd_ = -1;
  fd_ = dial(target_, path_, port_, options_);  // throws when the re-dial fails
  frames_ = FrameReader();  // a partial frame from the dead socket is garbage
  ++reconnects_;
  if (!net::send_all(fd_, bytes.data(), bytes.size())) net::throw_errno("send");
}

std::optional<AdmitResponse> ServiceClient::receive() {
  if (fd_ < 0) return std::nullopt;
  for (;;) {
    if (auto payload = frames_.next()) {
      return parse_response(*payload);
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) net::throw_errno("recv");  // EAGAIN here means the read timeout
    if (n == 0) return std::nullopt;      // clean EOF
    frames_.feed(buf, static_cast<std::size_t>(n));
  }
}

AdmitResponse ServiceClient::call(const AdmitRequest& request) {
  send(request);
  while (auto response = receive()) {
    if (response->id == request.id) return *response;
    // A decision for an earlier pipelined request: not ours, keep reading.
  }
  throw std::runtime_error("connection closed before decision for request " +
                           std::to_string(request.id));
}

}  // namespace rota::service
