#include "rota/service/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace rota::service {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

ServiceClient ServiceClient::connect_unix(const std::string& path) {
  if (path.size() + 1 > sizeof(sockaddr_un::sun_path)) {
    throw std::invalid_argument("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("connect(unix)");
  }
  return ServiceClient(fd);
}

ServiceClient ServiceClient::connect_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("connect(tcp)");
  }
  return ServiceClient(fd);
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), frames_(std::move(other.frames_)) {}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    frames_ = std::move(other.frames_);
  }
  return *this;
}

ServiceClient::~ServiceClient() { close(); }

void ServiceClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ServiceClient::send(const AdmitRequest& request) {
  if (fd_ < 0) throw std::runtime_error("ServiceClient: closed");
  const std::string bytes = frame(request_payload(request));
  const char* data = bytes.data();
  std::size_t n = bytes.size();
  while (n > 0) {
    const ssize_t sent = ::send(fd_, data, n, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      throw_errno("send");
    }
    data += sent;
    n -= static_cast<std::size_t>(sent);
  }
}

std::optional<AdmitResponse> ServiceClient::receive() {
  if (fd_ < 0) return std::nullopt;
  for (;;) {
    if (auto payload = frames_.next()) {
      return parse_response(*payload);
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) throw_errno("recv");
    if (n == 0) return std::nullopt;  // clean EOF
    frames_.feed(buf, static_cast<std::size_t>(n));
  }
}

AdmitResponse ServiceClient::call(const AdmitRequest& request) {
  send(request);
  while (auto response = receive()) {
    if (response->id == request.id) return *response;
    // A decision for an earlier pipelined request: not ours, keep reading.
  }
  throw std::runtime_error("connection closed before decision for request " +
                           std::to_string(request.id));
}

}  // namespace rota::service
