#include "rota/service/service.hpp"

#include <future>
#include <utility>

#include "rota/obs/obs.hpp"

namespace rota::service {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

obs::HistogramSnapshot snapshot_of(const obs::Histogram& h) {
  const auto buckets = h.buckets();
  obs::HistogramSnapshot out;
  out.buckets.assign(buckets.begin(), buckets.end());
  out.count = h.count();
  out.sum = h.sum();
  return out;
}

void bump_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t prev = slot.load(std::memory_order_relaxed);
  while (prev < v &&
         !slot.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

AdmissionService::AdmissionService(CommitmentLedger& ledger, CostModel phi,
                                   ServiceConfig config)
    : ledger_(ledger),
      phi_(std::move(phi)),
      config_(config),
      registry_(kernel_, config.digest_max_segments ? config.digest_max_segments : 1),
      governor_(config.governor),
      queue_(config.queue_capacity),
      // lanes workers + the (unused-for-lanes) caller slot: every lane loop
      // must land on a real worker thread, never run inline in submit().
      pool_(config.lanes + 1) {
  for (std::size_t i = 0; i < pool_.concurrency() - 1; ++i) {
    pool_.submit([this] { lane_loop(); });
  }
}

AdmissionService::~AdmissionService() { drain_and_stop(); }

CancellationToken AdmissionService::budget_token(const AdmitRequest& request) const {
  const std::uint64_t budget_us =
      request.budget_us != 0 ? request.budget_us : config_.default_budget_us;
  return CancellationToken::with_budget_ns(budget_us * 1000);
}

void AdmissionService::submit(AdmitRequest request, ResponseFn done) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (obs::metrics_enabled()) obs::CoreMetrics::get().service_requests.add();

  CancellationToken token = budget_token(request);
  Pending pending{std::move(request), std::move(done), std::move(token),
                  std::chrono::steady_clock::now()};
  if (stopping_.load(std::memory_order_acquire) ||
      !queue_.try_push(std::move(pending))) {
    // Shed at the front door: the queue bound (or a stopping service) turned
    // overload into an immediate, explicit answer instead of latent latency.
    shed_queue_.fetch_add(1, std::memory_order_relaxed);
    if (obs::metrics_enabled()) obs::CoreMetrics::get().service_shed.add();
    AdmitResponse response;
    response.id = pending.request.id;
    response.verdict = Verdict::kOverloaded;
    response.reason = "admission queue full";
    respond(pending, std::move(response));
    return;
  }
  const std::size_t depth = queue_.depth();
  bump_max(max_queue_depth_, depth);
  if (obs::metrics_enabled()) {
    obs::CoreMetrics::get().service_queue_depth.set(
        static_cast<std::int64_t>(depth));
  }
}

AdmitResponse AdmissionService::admit(AdmitRequest request) {
  std::promise<AdmitResponse> decided;
  auto future = decided.get_future();
  submit(std::move(request),
         [&decided](const AdmitResponse& r) { decided.set_value(r); });
  return future.get();
}

void AdmissionService::lane_loop() {
  while (auto pending = queue_.pop()) {
    serve(std::move(*pending));
  }
}

void AdmissionService::serve(Pending pending) {
  const std::uint64_t queue_ns = elapsed_ns(pending.enqueued_at);
  queue_hist_.record(queue_ns);
  if (obs::metrics_enabled()) {
    obs::CoreMetrics::get().service_queue_ns.record(queue_ns);
  }

  AdmitResponse response;
  response.id = pending.request.id;
  response.queue_ns = queue_ns;

  const auto planning_start = std::chrono::steady_clock::now();
  std::uint64_t planning_ns = 0;
  bool observed = false;  // whether this request should feed the governor
  try {
    const ConcurrentRequirement rho =
        make_concurrent_requirement(phi_, pending.request.computation);
    for (;;) {
      if (pending.token.expired()) {
        planning_ns = elapsed_ns(planning_start);
        response.verdict = Verdict::kOverloaded;
        response.reason = "planning budget exhausted";
        shed_budget_.fetch_add(1, std::memory_order_relaxed);
        if (obs::metrics_enabled()) {
          obs::CoreMetrics::get().service_budget_cancels.add();
          obs::CoreMetrics::get().service_shed.add();
        }
        observed = true;  // budget pressure is pressure: the governor sees it
        break;
      }
      const StrategyKind kind =
          registry_.pick(pending.token.remaining_ns(), governor_.level());
      AnytimeStrategy& strategy = registry_.strategy(kind);

      FeasibilitySnapshot snapshot;
      {
        // Owned, hull- and shard-restricted capture: safe to plan against
        // outside the lock, cheap to copy under it.
        std::lock_guard<std::mutex> lock(ledger_mutex_);
        snapshot = FeasibilitySnapshot::capture(
            ledger_, effective_window(rho, pending.request.at),
            touched_shard_mask(rho));
      }
      const auto attempt_start = std::chrono::steady_clock::now();
      const PlanResult result =
          strategy.speculate(rho, pending.request.at, snapshot, pending.token);
      const std::uint64_t attempt_ns = elapsed_ns(attempt_start);
      if (result.status != PlanStatus::kCancelled) {
        // Cancelled attempts stopped early; folding their truncated time into
        // the EWMA would teach pick() that a slow strategy is cheap.
        strategy.record_cost(attempt_ns);
      }
      if (result.status == PlanStatus::kCancelled) continue;  // shed above

      AdmissionDecision decision;
      CommitStatus committed;
      {
        std::lock_guard<std::mutex> lock(ledger_mutex_);
        committed = kernel_.commit(result, ledger_, decision);
      }
      if (committed == CommitStatus::kStale) continue;  // re-pick, re-capture

      planning_ns = elapsed_ns(planning_start);
      served_by_[static_cast<int>(kind)].fetch_add(1, std::memory_order_relaxed);
      response.strategy = strategy_name(kind);
      if (decision.accepted) {
        response.verdict = Verdict::kAccepted;
        accepted_.fetch_add(1, std::memory_order_relaxed);
        if (obs::metrics_enabled()) obs::CoreMetrics::get().service_accepted.add();
      } else {
        response.verdict = Verdict::kRejected;
        response.reason = decision.reason;
        rejected_.fetch_add(1, std::memory_order_relaxed);
        if (obs::metrics_enabled()) obs::CoreMetrics::get().service_rejected.add();
        if (result.feasible()) {
          // The ladder's safety invariant failed: a degraded strategy found a
          // "feasible" plan the live residual refused. Counted loudly; the
          // strategy test suite and the bench gate hold this at zero.
          revalidations_failed_.fetch_add(1, std::memory_order_relaxed);
          if (obs::metrics_enabled()) {
            obs::CoreMetrics::get().service_revalidations_failed.add();
          }
        }
      }
      observed = true;
      break;
    }
  } catch (const std::exception& e) {
    // A malformed computation (bad cost model fit, inverted window, …) is the
    // client's mistake, not the service's overload: answer rejected.
    planning_ns = elapsed_ns(planning_start);
    response.verdict = Verdict::kRejected;
    response.reason = std::string("invalid request: ") + e.what();
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (obs::metrics_enabled()) obs::CoreMetrics::get().service_rejected.add();
  }

  response.planning_ns = planning_ns;
  planning_hist_.record(planning_ns);
  if (obs::metrics_enabled()) {
    auto& m = obs::CoreMetrics::get();
    if (response.strategy == "exact") m.service_latency_exact_ns.record(planning_ns);
    else if (response.strategy == "digest") m.service_latency_digest_ns.record(planning_ns);
    else if (response.strategy == "greedy") m.service_latency_greedy_ns.record(planning_ns);
  }

  if (observed) {
    switch (governor_.observe(planning_ns, queue_.depth())) {
      case GovernorEvent::kDemoted:
        demotions_.fetch_add(1, std::memory_order_relaxed);
        if (obs::metrics_enabled()) obs::CoreMetrics::get().service_demotions.add();
        break;
      case GovernorEvent::kPromoted:
        promotions_.fetch_add(1, std::memory_order_relaxed);
        if (obs::metrics_enabled()) obs::CoreMetrics::get().service_promotions.add();
        break;
      case GovernorEvent::kNone:
        break;
    }
    if (obs::metrics_enabled()) {
      obs::CoreMetrics::get().service_level.set(
          static_cast<std::int64_t>(governor_.level()));
    }
  }

  respond(pending, std::move(response));
}

void AdmissionService::respond(const Pending& pending, AdmitResponse response) {
  if (!pending.done) return;
  try {
    pending.done(response);
  } catch (...) {
    // A throwing completion callback must not take a planning lane down;
    // the decision was made and recorded either way.
  }
}

void AdmissionService::drain_and_stop() {
  stopping_.store(true, std::memory_order_release);
  queue_.close();   // lanes drain what was admitted, then see nullopt
  pool_.shutdown(); // joins the lanes; idempotent
}

ServiceStats AdmissionService::stats() const {
  ServiceStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.shed_queue = shed_queue_.load(std::memory_order_relaxed);
  out.shed_budget = shed_budget_.load(std::memory_order_relaxed);
  out.demotions = demotions_.load(std::memory_order_relaxed);
  out.promotions = promotions_.load(std::memory_order_relaxed);
  out.revalidations_failed = revalidations_failed_.load(std::memory_order_relaxed);
  for (int k = 0; k < kStrategyCount; ++k) {
    out.served_by[k] = served_by_[k].load(std::memory_order_relaxed);
  }
  out.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  out.planning_ns = snapshot_of(planning_hist_);
  out.queue_ns = snapshot_of(queue_hist_);
  return out;
}

}  // namespace rota::service
