// AdmissionService: admission-as-a-service around the PlanningKernel.
//
// The in-process core of the daemon (rota/service/server.hpp adds sockets):
// requests enter a bounded admission queue, planning lanes on the runtime's
// ThreadPool drain it, and each request is decided by whichever anytime
// strategy the SLO governor and its remaining planning budget select:
//
//   submit ──▶ BoundedQueue ──▶ lane: pick(budget, governor.level())
//                 │                    ├─ capture owned snapshot  (ledger lock)
//                 │ full?              ├─ strategy.speculate      (no lock)
//                 ▼                    ├─ kernel.commit           (ledger lock)
//             kOverloaded              │    └─ stale? re-pick and retry
//             (shed, immediate)        └─ respond, feed the governor
//
// Back-pressure is explicit at both ends: a full queue sheds at the front
// door with kOverloaded (never silence, never unbounded waiting), and a
// request whose planning budget expires mid-flight is shed the same way —
// a cancelled speculation is not a decision (commit() refuses it), so
// degradation can never turn into a wrong verdict. Every accept, from any
// rung of the ladder, carries a concrete plan the ledger re-validates at
// commit; `revalidations_failed` counts the times that backstop fired and
// must stay zero.
//
// Threading: lanes speculate concurrently against *owned* snapshots captured
// under the service's ledger mutex (hull- and shard-restricted, so the copy
// is small), and commit under the same mutex. While the service is running
// it must be the ledger's only writer.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>

#include "rota/computation/cost_model.hpp"
#include "rota/obs/metrics.hpp"
#include "rota/plan/kernel.hpp"
#include "rota/runtime/bounded_queue.hpp"
#include "rota/runtime/thread_pool.hpp"
#include "rota/service/codec.hpp"
#include "rota/service/governor.hpp"
#include "rota/service/strategy.hpp"

namespace rota::service {

struct ServiceConfig {
  std::size_t lanes = 2;                    // planning lanes (pool workers)
  std::size_t queue_capacity = 64;          // admission queue bound
  std::uint64_t default_budget_us = 20'000; // budget when a request says 0
  std::size_t digest_max_segments = 64;     // kDigest hull resolution
  GovernorConfig governor;
};

/// Point-in-time service statistics (monotone counters plus histogram
/// snapshots; always maintained, independent of the global metrics toggle).
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed_queue = 0;      // kOverloaded: queue full / stopping
  std::uint64_t shed_budget = 0;     // kOverloaded: planning budget exhausted
  std::uint64_t demotions = 0;
  std::uint64_t promotions = 0;
  std::uint64_t revalidations_failed = 0;  // must stay 0 (safety backstop)
  std::uint64_t served_by[kStrategyCount] = {0, 0, 0};
  std::uint64_t max_queue_depth = 0;
  obs::HistogramSnapshot planning_ns;  // per served/budget-shed request
  obs::HistogramSnapshot queue_ns;     // waiting time of dequeued requests

  std::uint64_t shed() const { return shed_queue + shed_budget; }
};

class AdmissionService {
 public:
  using ResponseFn = std::function<void(const AdmitResponse&)>;

  /// The service plans against `ledger` and must be its only writer while
  /// running; `phi` maps computations to requirements exactly as every other
  /// admission surface does.
  AdmissionService(CommitmentLedger& ledger, CostModel phi, ServiceConfig config);
  ~AdmissionService();

  AdmissionService(const AdmissionService&) = delete;
  AdmissionService& operator=(const AdmissionService&) = delete;

  const ServiceConfig& config() const { return config_; }

  /// Asynchronous admission: `done` is invoked exactly once, from a planning
  /// lane (decision) or inline on the calling thread (shed on a full queue or
  /// a stopping service). The planning-budget clock starts now — time spent
  /// queued burns budget, which is what makes queue pressure visible to the
  /// strategy picker.
  void submit(AdmitRequest request, ResponseFn done);

  /// Synchronous admission (submit + wait); the test/bench convenience.
  AdmitResponse admit(AdmitRequest request);

  /// Clean shutdown: closes intake (later submits shed with kOverloaded),
  /// drains every queued request to a response, joins the lanes. Idempotent.
  void drain_and_stop();

  ServiceStats stats() const;
  std::size_t queue_depth() const { return queue_.depth(); }

  /// Test seams. Replace strategies before traffic flows.
  StrategyRegistry& registry() { return registry_; }
  SloGovernor& governor() { return governor_; }

  /// Federation seams (rota/service/federation.hpp): the adapter that lets a
  /// ClusterNode probe/claim against this service's ledger serializes with
  /// the planning lanes through exactly these — capture and commit under
  /// ledger_mutex(), speculate outside it, like the lanes do.
  CommitmentLedger& shared_ledger() { return ledger_; }
  std::mutex& ledger_mutex() { return ledger_mutex_; }
  PlanningKernel& planning_kernel() { return kernel_; }
  const CostModel& phi() const { return phi_; }

 private:
  struct Pending {
    AdmitRequest request;
    ResponseFn done;
    CancellationToken token;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  void lane_loop();
  void serve(Pending pending);
  void respond(const Pending& pending, AdmitResponse response);
  CancellationToken budget_token(const AdmitRequest& request) const;

  CommitmentLedger& ledger_;
  CostModel phi_;
  ServiceConfig config_;
  PlanningKernel kernel_;
  StrategyRegistry registry_;
  SloGovernor governor_;
  BoundedQueue<Pending> queue_;
  std::mutex ledger_mutex_;
  ThreadPool pool_;  // lanes; joined by drain_and_stop() before teardown

  std::atomic<bool> stopping_{false};

  // Own stats (never gated): the bench and tests read these without turning
  // on the global registry. CoreMetrics mirrors them when metrics are on.
  std::atomic<std::uint64_t> requests_{0}, accepted_{0}, rejected_{0};
  std::atomic<std::uint64_t> shed_queue_{0}, shed_budget_{0};
  std::atomic<std::uint64_t> demotions_{0}, promotions_{0};
  std::atomic<std::uint64_t> revalidations_failed_{0};
  std::atomic<std::uint64_t> served_by_[kStrategyCount] = {};
  std::atomic<std::uint64_t> max_queue_depth_{0};
  obs::Histogram planning_hist_;
  obs::Histogram queue_hist_;
};

}  // namespace rota::service
