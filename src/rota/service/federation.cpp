#include "rota/service/federation.hpp"

#include <chrono>
#include <stdexcept>

#include "rota/cluster/digest.hpp"
#include "rota/obs/obs.hpp"

namespace rota::service {

// --- ServiceNodeAdmission ---------------------------------------------------

AdmissionDecision ServiceNodeAdmission::decide(const ConcurrentRequirement& rho,
                                               Tick now) {
  // The planning lanes' loop: capture under the ledger mutex, speculate
  // outside it, commit under it again; a stale commit re-captures. This is
  // what makes a peer claim and a concurrently-served local request agree on
  // one residual.
  for (;;) {
    FeasibilitySnapshot snapshot;
    {
      std::lock_guard<std::mutex> lock(service_.ledger_mutex());
      snapshot = FeasibilitySnapshot::capture(service_.shared_ledger());
    }
    const PlanResult result =
        service_.planning_kernel().speculate(rho, now, snapshot);
    AdmissionDecision decision;
    CommitStatus committed;
    {
      std::lock_guard<std::mutex> lock(service_.ledger_mutex());
      committed = service_.planning_kernel().commit(
          result, service_.shared_ledger(), decision);
    }
    if (committed == CommitStatus::kStale) continue;
    return decision;
  }
}

std::vector<AdmissionDecision> ServiceNodeAdmission::admit_batch(
    const std::vector<BatchRequest>& requests) {
  // FCFS, like the owned backend: each request commits before the next
  // speculates, so later requests see earlier accepts.
  std::vector<AdmissionDecision> decisions;
  decisions.reserve(requests.size());
  for (const BatchRequest& r : requests) {
    decisions.push_back(decide(r.rho, r.at));
  }
  return decisions;
}

PlanResult ServiceNodeAdmission::probe(const ConcurrentRequirement& rho,
                                       Tick now) {
  FeasibilitySnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(service_.ledger_mutex());
    snapshot = FeasibilitySnapshot::capture(service_.shared_ledger());
  }
  return service_.planning_kernel().speculate(rho, now, snapshot);
}

AdmissionDecision ServiceNodeAdmission::claim(const ConcurrentRequirement& rho,
                                              Tick now) {
  AdmissionDecision decision = decide(rho, now);
  if (decision.accepted) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++peer_claims_admitted_;
    }
    obs::count(obs::CoreMetrics::get().service_peer_claims);
  }
  return decision;
}

cluster::SupplyDigest ServiceNodeAdmission::digest(Location site, Tick now,
                                                   std::size_t max_segments) {
  std::lock_guard<std::mutex> lock(service_.ledger_mutex());
  return cluster::make_digest(service_.shared_ledger(), site, now, max_segments);
}

// --- forwarding bridge ------------------------------------------------------

std::optional<WorkSpec> forwardable_work(const AdmitRequest& request) {
  const DistributedComputation& comp = request.computation;
  if (comp.actors().size() != 1) return std::nullopt;
  const ActorComputation& actor = comp.actors().front();
  if (actor.empty()) return std::nullopt;

  WorkSpec spec;
  spec.actor = actor.actor();
  spec.home = actor.actions().front().at;
  spec.earliest_start = comp.earliest_start();
  spec.deadline = comp.deadline();
  const std::vector<Action>& actions = actor.actions();
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const Action& a = actions[i];
    if (a.at != spec.home) return std::nullopt;  // already multi-site
    if (a.kind == ActionKind::kEvaluate) {
      spec.chunk_weights.push_back(a.size);
    } else if (a.kind == ActionKind::kReady && i + 1 == actions.size()) {
      // materialize(kStay)'s trailing ready — shape still forwardable
    } else {
      return std::nullopt;  // sends/creates/migrates pin the computation
    }
  }
  if (spec.chunk_weights.empty()) return std::nullopt;
  return spec;
}

// --- FederatedService -------------------------------------------------------

cluster::NodeConfig FederatedService::daemon_node_config(
    cluster::NodeConfig base) {
  base.expire_by_deadline = true;
  return base;
}

FederatedService::FederatedService(AdmissionService& service,
                                   FederationConfig config)
    : service_(service),
      config_(std::move(config)),
      transport_(config_.transport),
      admission_(service),
      node_(config_.transport.local, Location(config_.site), service.phi(),
            daemon_node_config(config_.node), &events_, &transport_,
            &admission_) {
  for (const auto& [peer, address] : config_.transport.peers) {
    node_.set_peer(peer, config_.peer_latency);
  }
  pump_ = std::thread([this] { pump_loop(); });
}

FederatedService::~FederatedService() { stop(); }

void FederatedService::submit(AdmitRequest request,
                              AdmissionService::ResponseFn done) {
  std::optional<WorkSpec> spec;
  if (!stopping_.load(std::memory_order_acquire)) {
    spec = forwardable_work(request);
  }
  if (!spec) {
    service_.submit(std::move(request), std::move(done));
    return;
  }
  service_.submit(
      std::move(request),
      [this, spec = std::move(*spec), done = std::move(done)](
          const AdmitResponse& local) {
        if (local.verdict != Verdict::kRejected ||
            stopping_.load(std::memory_order_acquire)) {
          done(local);
          return;
        }
        forward(spec, local, done);
      });
}

void FederatedService::forward(const WorkSpec& spec, const AdmitResponse& local,
                               AdmissionService::ResponseFn done) {
  Ready ready;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      done(local);
      return;
    }
    const Tick now = transport_.now();
    // Cluster-unique job ids: this node's id in the high bits, a local
    // sequence below — two daemons never mint the same id.
    const std::uint64_t job =
        (static_cast<std::uint64_t>(node_.id()) << 32) | ++next_job_;
    pending_[job] = PendingForward{local.id, std::move(done),
                                   spec.deadline + config_.node.claim_timeout};
    ++forwarded_;
    obs::count(obs::CoreMetrics::get().service_forwarded);
    node_.submit_remote(job, spec, local.reason, now);
    // submit_remote may decide synchronously (no eligible peer): resolve now
    // so the caller is never left waiting on a decision already made.
    ready = resolve_decisions_locked();
  }
  for (auto& [fn, response] : ready) fn(response);
}

FederatedService::Ready FederatedService::resolve_decisions_locked() {
  Ready ready;
  for (; decisions_seen_ < events_.decisions.size(); ++decisions_seen_) {
    const cluster::JobDecision& d = events_.decisions[decisions_seen_];
    auto it = pending_.find(d.id);
    if (it == pending_.end()) continue;
    AdmitResponse response;
    response.id = it->second.request_id;
    response.strategy = "federated";
    if (d.outcome == cluster::Placement::kRejected) {
      response.verdict = Verdict::kRejected;
      response.reason = d.reason;
      ++forward_rejects_;
    } else {
      response.verdict = Verdict::kAccepted;
      ++forward_accepts_;
      obs::count(obs::CoreMetrics::get().service_forward_accepts);
    }
    ready.emplace_back(std::move(it->second.done), std::move(response));
    pending_.erase(it);
  }
  return ready;
}

FederatedService::Ready FederatedService::expire_forwards_locked(Tick now) {
  Ready ready;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now < it->second.expire_at) {
      ++it;
      continue;
    }
    AdmitResponse response;
    response.id = it->second.request_id;
    response.verdict = Verdict::kRejected;
    response.strategy = "federated";
    response.reason = "forward expired: no peer verdict within the deadline budget";
    ++forward_expired_;
    ready.emplace_back(std::move(it->second.done), std::move(response));
    it = pending_.erase(it);
  }
  return ready;
}

void FederatedService::pump_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Ready ready;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const Tick now = transport_.now();
      node_.pump(now);
      node_.on_tick(now);
      ready = resolve_decisions_locked();
      for (auto& expired : expire_forwards_locked(now)) {
        ready.push_back(std::move(expired));
      }
    }
    for (auto& [fn, response] : ready) fn(response);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.pump_interval_ms));
  }
}

void FederatedService::stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  if (pump_.joinable()) pump_.join();

  Ready ready;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    node_.abort_pending(transport_.now(), "federation shutting down");
    ready = resolve_decisions_locked();
    // Defensive: nothing should survive abort_pending, but a forward that
    // raced stop() must still be answered.
    for (auto& [job, p] : pending_) {
      AdmitResponse response;
      response.id = p.request_id;
      response.verdict = Verdict::kRejected;
      response.strategy = "federated";
      response.reason = "federation shutting down";
      ready.emplace_back(std::move(p.done), std::move(response));
    }
    pending_.clear();
  }
  for (auto& [fn, response] : ready) fn(response);
  transport_.close();
}

FederationStats FederatedService::stats() const {
  FederationStats out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.forwarded = forwarded_;
    out.forward_accepts = forward_accepts_;
    out.forward_rejects = forward_rejects_;
    out.forward_expired = forward_expired_;
  }
  out.peer_claims = admission_.peer_claims_admitted();
  return out;
}

}  // namespace rota::service
