#include "rota/service/governor.hpp"

#include <algorithm>

namespace rota::service {

SloGovernor::SloGovernor(GovernorConfig config) : config_(config) {
  if (config_.latency_window == 0) config_.latency_window = 1;
  if (config_.queue_low > config_.queue_high) config_.queue_low = config_.queue_high;
  if (config_.demote_after == 0) config_.demote_after = 1;
  if (config_.promote_after == 0) config_.promote_after = 1;
  window_.reserve(config_.latency_window);
}

namespace {

std::uint64_t p99_of(std::vector<std::uint64_t> samples) {
  if (samples.empty()) return 0;
  // Upper-bound rank: ceil(0.99 * n) - 1, clamped. With few samples this is
  // simply the max, which is the conservative direction for a pressure test.
  const std::size_t rank =
      std::min(samples.size() - 1, (samples.size() * 99 + 99) / 100 - 1);
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  return samples[rank];
}

}  // namespace

GovernorEvent SloGovernor::observe(std::uint64_t latency_ns,
                                   std::size_t queue_depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (window_.size() < config_.latency_window) {
    window_.push_back(latency_ns);
  } else {
    window_[next_] = latency_ns;
    next_ = (next_ + 1) % config_.latency_window;
  }
  const std::uint64_t p99 = p99_of(window_);
  const bool pressure = p99 > config_.slo_ns || queue_depth >= config_.queue_high;
  const bool calm = p99 <= config_.slo_ns && queue_depth < config_.queue_low;

  const int level = level_.load(std::memory_order_relaxed);
  if (pressure) {
    calm_ = 0;
    if (++pressured_ >= config_.demote_after &&
        level < kStrategyCount - 1) {
      pressured_ = 0;
      level_.store(level + 1, std::memory_order_relaxed);
      return GovernorEvent::kDemoted;
    }
    return GovernorEvent::kNone;
  }
  pressured_ = 0;
  if (!calm) {
    // Neither pressured nor calm (mid-band queue depth): hold position and
    // let the calm streak survive — only pressure resets it.
    return GovernorEvent::kNone;
  }
  if (++calm_ >= config_.promote_after && level > 0) {
    calm_ = 0;
    level_.store(level - 1, std::memory_order_relaxed);
    return GovernorEvent::kPromoted;
  }
  return GovernorEvent::kNone;
}

std::uint64_t SloGovernor::p99_ns() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return p99_of(window_);
}

}  // namespace rota::service
