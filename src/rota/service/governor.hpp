// The SLO governor: queue-depth + p99-latency feedback turned into a
// degradation-ladder position.
//
// State machine (one rung per strategy; docs/service.md draws it):
//
//          pressure × demote_after            pressure × demote_after
//   EXACT ─────────────────────────▶ DIGEST ─────────────────────────▶ GREEDY
//     ◀───────────────────────────────  ◀───────────────────────────────
//          calm × promote_after             calm × promote_after
//
//   pressure ≡ rolling p99 over the SLO, or queue depth over queue_high
//   calm     ≡ p99 within the SLO and queue depth under queue_low
//
// Demotion is fast (a handful of pressured observations) because overload
// compounds: every queued request's budget is burning while the lanes think
// too slowly. Promotion is slow (many calm observations) because flapping is
// worse than a few conservative decisions — the asymmetric hysteresis is the
// whole point of having two thresholds and two counters.
//
// Shedding is not a rung: it is the bounded admission queue refusing intake
// (kOverloaded at the front door) while the governor keeps the lanes'
// per-request work under the SLO. The two mechanisms compose: the governor
// bounds service time, the queue bounds waiting, so no request waits
// unboundedly for a decision that arrives too late to matter.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "rota/service/strategy.hpp"

namespace rota::service {

struct GovernorConfig {
  std::uint64_t slo_ns = 20'000'000;  // p99 planning-latency target (20 ms)
  std::size_t queue_high = 32;        // depth at/above which pressure is on
  std::size_t queue_low = 4;          // depth below which calm can accrue
  std::size_t latency_window = 128;   // sliding samples for the p99 estimate
  std::uint32_t demote_after = 8;     // consecutive pressured observations
  std::uint32_t promote_after = 64;   // consecutive calm observations
};

/// What one observation did to the ladder (for metrics and logs).
enum class GovernorEvent { kNone, kDemoted, kPromoted };

class SloGovernor {
 public:
  explicit SloGovernor(GovernorConfig config);

  const GovernorConfig& config() const { return config_; }

  /// Current ladder rung. Lock-free — lanes read it per request.
  StrategyKind level() const {
    return static_cast<StrategyKind>(level_.load(std::memory_order_relaxed));
  }

  /// Feeds one served-request observation (planning wall time + queue depth
  /// at completion); returns the ladder movement it caused, if any.
  GovernorEvent observe(std::uint64_t latency_ns, std::size_t queue_depth);

  /// Rolling p99 upper bound (0 until any sample lands).
  std::uint64_t p99_ns() const;

 private:
  GovernorConfig config_;
  std::atomic<int> level_{static_cast<int>(StrategyKind::kExact)};

  mutable std::mutex mutex_;
  std::vector<std::uint64_t> window_;  // ring buffer, guarded by mutex_
  std::size_t next_ = 0;
  std::uint32_t pressured_ = 0;  // consecutive pressure observations
  std::uint32_t calm_ = 0;       // consecutive calm observations
};

}  // namespace rota::service
