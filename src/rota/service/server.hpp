// ServiceServer: the socket front end of the admission daemon.
//
// Listens on a Unix-domain socket (and optionally loopback TCP), reassembles
// length-prefixed frames per connection, parses admit requests, and submits
// them to an AdmissionService. Decisions stream back on the same connection
// as they are made — possibly out of submission order (requests from one
// connection may be decided by different planning lanes); the client
// correlates by request id. Each session serializes its writes behind a
// mutex, so concurrent lanes answering one connection never interleave
// frames.
//
// stop() is the clean-shutdown path the daemon's SIGINT/SIGTERM handler
// drives: (1) stop accepting connections, (2) half-close every session for
// reading so no new requests enter, (3) drain the service — every request
// already queued still gets its response written, (4) close the sockets and
// join. Nothing admitted is abandoned; nothing new sneaks in.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rota/service/service.hpp"

namespace rota::service {

struct ServerConfig {
  std::string unix_path;       // empty: no Unix listener
  bool tcp = false;            // true: also listen on loopback TCP
  std::uint16_t tcp_port = 0;  // 0: ephemeral (read back via tcp_port())
  std::string secret;          // non-empty: sessions must open with a hello
                               // frame carrying this token (rota/net/wire);
                               // a wrong token is answered with a rejected
                               // decision and a hang-up
};

class ServiceServer {
 public:
  /// Parsed requests normally go straight to AdmissionService::submit; a
  /// SubmitFn reroutes them (the federation daemon passes
  /// FederatedService::submit so local rejections can try the peers).
  using SubmitFn = std::function<void(AdmitRequest, AdmissionService::ResponseFn)>;

  /// Binds and starts accepting immediately. Throws std::system_error when a
  /// listener cannot be bound. At least one of unix_path / tcp must be set.
  ServiceServer(AdmissionService& service, ServerConfig config,
                SubmitFn submit = nullptr);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  const std::string& unix_path() const { return config_.unix_path; }
  /// The actually-bound TCP port (resolves an ephemeral request); 0 if none.
  std::uint16_t tcp_port() const { return bound_tcp_port_; }

  std::size_t sessions_accepted() const {
    return sessions_accepted_.load(std::memory_order_relaxed);
  }

  /// Clean drain, per the header comment. Idempotent; the destructor calls it.
  void stop();

 private:
  struct Session;

  void accept_loop(int listen_fd);
  void start_session(int fd);

  AdmissionService& service_;
  ServerConfig config_;
  SubmitFn submit_;
  std::uint16_t bound_tcp_port_ = 0;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  std::vector<std::thread> acceptors_;

  std::mutex sessions_mutex_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::atomic<std::size_t> sessions_accepted_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace rota::service
