// Federation: N admission daemons running the cluster protocol live.
//
// The sim proves the protocol (deterministically, over FabricTransport);
// this header runs the *same* ClusterNode against the *same* protocol over
// real sockets, with the live AdmissionService's ledger as the node's
// admission backend:
//
//   client ──▶ AdmissionService (local-first, anytime ladder)
//                   │ rejected, deadline budget left, forwardable shape
//                   ▼
//              ClusterNode ──probe/offer/claim──▶ peers (SocketTransport)
//                   │                               │
//                   ▼                               ▼
//              JobDecision ──▶ client          ServiceNodeAdmission
//                                              (peer claims commit into the
//                                               peer's live service ledger)
//
// Two pieces:
//
//   * ServiceNodeAdmission — cluster::NodeAdmission over an
//     AdmissionService: probes capture a snapshot under the service's ledger
//     mutex and speculate outside it; claims run the same
//     speculate/commit-or-retry loop the planning lanes run, so federation
//     and live traffic agree on one residual and claim-time re-validation
//     keeps its guarantee (service.revalidations_failed stays 0).
//
//   * FederatedService — the daemon driver: wraps submit() with the
//     forwarding bridge (a locally-rejected single-actor evaluate-only
//     computation is re-expressed as a WorkSpec — the inverse of
//     MigrationAdvisor::materialize(kStay) — and handed to the node's remote
//     path), and runs the pump thread that drives ClusterNode::pump/on_tick
//     against the SocketTransport clock.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "rota/cluster/node.hpp"
#include "rota/net/socket_transport.hpp"
#include "rota/service/service.hpp"

namespace rota::service {

/// The daemon-mode admission backend: the cluster protocol planning against
/// the live service ledger, serialized with the planning lanes.
class ServiceNodeAdmission final : public cluster::NodeAdmission {
 public:
  explicit ServiceNodeAdmission(AdmissionService& service) : service_(service) {}

  std::vector<AdmissionDecision> admit_batch(
      const std::vector<BatchRequest>& requests) override;
  PlanResult probe(const ConcurrentRequirement& rho, Tick now) override;
  AdmissionDecision claim(const ConcurrentRequirement& rho, Tick now) override;
  cluster::SupplyDigest digest(Location site, Tick now,
                               std::size_t max_segments) override;

  /// Claims peers placed here and this backend committed.
  std::uint64_t peer_claims_admitted() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return peer_claims_admitted_;
  }

 private:
  /// The lanes' speculate/commit-or-retry loop, shared by claim and
  /// admit_batch.
  AdmissionDecision decide(const ConcurrentRequirement& rho, Tick now);

  AdmissionService& service_;
  mutable std::mutex stats_mutex_;
  std::uint64_t peer_claims_admitted_ = 0;
};

/// A locally-rejected request's shape as location-independent work, when it
/// has one: a single actor, evaluate chunks (optionally closed by ready) at
/// one location. Exactly what MigrationAdvisor::materialize(kStay) builds,
/// inverted; anything else returns nullopt and the local rejection stands.
std::optional<WorkSpec> forwardable_work(const AdmitRequest& request);

struct FederationConfig {
  std::string site;                     // this daemon's location name
  net::SocketTransportConfig transport; // local id, listen, peers, secret
  cluster::NodeConfig node;             // protocol knobs (fanout, timeouts…)
  Tick peer_latency = 1;                // static transfer-delay estimate
  std::int64_t pump_interval_ms = 5;    // pump-thread cadence
};

struct FederationStats {
  std::uint64_t forwarded = 0;        // local rejections handed to the peers
  std::uint64_t forward_accepts = 0;  // of those, admitted by a peer
  std::uint64_t forward_rejects = 0;  // of those, rejected by every peer too
  std::uint64_t forward_expired = 0;  // of those, answered by the expiry sweep
                                      // after the peer went silent
  std::uint64_t peer_claims = 0;      // peer claims committed into our ledger
};

class FederatedService {
 public:
  /// Binds the transport listener and starts the pump thread immediately.
  /// `service` must outlive this object.
  FederatedService(AdmissionService& service, FederationConfig config);
  ~FederatedService();

  FederatedService(const FederatedService&) = delete;
  FederatedService& operator=(const FederatedService&) = delete;

  /// The federated front door: local admission first; a local rejection
  /// that is forwardable and still inside its deadline goes to the peers,
  /// and `done` fires with the peers' verdict instead (strategy
  /// "federated"). Everything else answers exactly like
  /// AdmissionService::submit.
  void submit(AdmitRequest request, AdmissionService::ResponseFn done);

  /// Stops forwarding, finalizes every pending remote conversation as
  /// rejected (their callbacks fire), joins the pump thread, closes the
  /// transport. Idempotent. Does NOT stop the underlying service — the
  /// caller drains it afterwards, per the daemon's shutdown order.
  void stop();

  FederationStats stats() const;
  net::SocketTransport& transport() { return transport_; }
  cluster::ClusterNode& node() { return node_; }

 private:
  struct PendingForward {
    std::uint64_t request_id = 0;
    AdmissionService::ResponseFn done;
    // Hard answer-by tick: the request's deadline plus a claim-timeout of
    // grace (a legitimate ClaimAck can still arrive until about then). A
    // peer that crashes between offer and claim leaves the conversation to
    // the node's own timeout machinery; if even that goes silent — the node
    // rejects at the deadline via expire_by_deadline — the sweep answers
    // the client with a reject at expire_at. Never silence.
    Tick expire_at = 0;
  };
  using Ready = std::vector<std::pair<AdmissionService::ResponseFn, AdmitResponse>>;

  void pump_loop();
  /// Starts the remote path for a locally-rejected forwardable request.
  void forward(const WorkSpec& spec, const AdmitResponse& local,
               AdmissionService::ResponseFn done);
  /// Matches fresh JobDecisions to pending forwards; must hold mutex_. The
  /// returned callbacks are fired by the caller *after* unlocking — a
  /// completion callback is free to re-enter submit().
  Ready resolve_decisions_locked();
  /// Rejects every pending forward whose expire_at has passed; must hold
  /// mutex_. A decision arriving after the sweep answered finds no pending
  /// entry and is dropped (a late peer accept stays committed at the peer —
  /// conservative over-commitment, never an unanswered client).
  Ready expire_forwards_locked(Tick now);
  /// The daemon's node config: `base` with expire_by_deadline forced on, so
  /// a conversation stranded by a peer crash dies at the deadline instead of
  /// limping silently.
  static cluster::NodeConfig daemon_node_config(cluster::NodeConfig base);

  AdmissionService& service_;
  FederationConfig config_;
  net::SocketTransport transport_;
  ServiceNodeAdmission admission_;

  mutable std::mutex mutex_;  // guards node_, events_, pending_, next_job_, counters
  cluster::ClusterEvents events_;
  cluster::ClusterNode node_;
  std::size_t decisions_seen_ = 0;
  std::map<std::uint64_t, PendingForward> pending_;
  std::uint64_t next_job_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t forward_accepts_ = 0;
  std::uint64_t forward_rejects_ = 0;
  std::uint64_t forward_expired_ = 0;

  std::thread pump_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace rota::service
