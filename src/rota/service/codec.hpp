// Wire protocol for the admission service: length-prefixed frames carrying
// line-oriented payloads that reuse the scenario DSL.
//
// Framing (4-byte little-endian length prefix) lives in rota/net/frame.hpp —
// it is the shared byte-stream layer under both this codec and the cluster
// wire codec — and is re-exported here so service code keeps its historical
// names. The payload is free to be text — which matters, because the request
// body *is* the scenario DSL's `computation … end` block (rota/io/scenario):
// anything a scenario file can describe can be submitted over a socket
// unchanged, and every request is printable, diffable, and replayable by the
// existing tooling.
//
//   request payload:
//     admit <id> <at> <budget_us>
//     computation <name> <start> <deadline>
//       actor …
//     end
//
//   response payload:
//     decision <id> <accepted|rejected|overloaded> <strategy> <planning_ns> <queue_ns>
//     reason <free text>                  (omitted when empty)
//
// `budget_us` is the request's planning-time budget in microseconds (0 means
// "server default"). Responses stream back as decisions are made — possibly
// out of submission order — correlated by id.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "rota/computation/actor_computation.hpp"
#include "rota/net/frame.hpp"

namespace rota::service {

// Framing layer, re-exported from rota/net (see header comment).
inline constexpr std::size_t kMaxFramePayload = net::kMaxFramePayload;
using CodecError = net::CodecError;
using FrameReader = net::FrameReader;
using net::frame;

enum class Verdict {
  kAccepted,    // admitted with a feasible plan
  kRejected,    // decided: no feasible plan (or deadline already passed)
  kOverloaded,  // shed: not decided — queue full or planning budget exhausted
};

const char* verdict_name(Verdict v);

struct AdmitRequest {
  std::uint64_t id = 0;
  Tick at = 0;                  // arrival tick (the controller's `now`)
  std::uint64_t budget_us = 0;  // planning budget; 0 = server default
  DistributedComputation computation;

  bool operator==(const AdmitRequest&) const = default;
};

struct AdmitResponse {
  std::uint64_t id = 0;
  Verdict verdict = Verdict::kRejected;
  std::string strategy;  // strategy that decided ("-" for shed responses)
  std::string reason;    // rejection/shed cause, empty on accept
  std::uint64_t planning_ns = 0;
  std::uint64_t queue_ns = 0;

  bool operator==(const AdmitResponse&) const = default;
};

/// Payload codecs. Parsers throw CodecError on malformed input.
std::string request_payload(const AdmitRequest& request);
AdmitRequest parse_request(const std::string& payload);
std::string response_payload(const AdmitResponse& response);
AdmitResponse parse_response(const std::string& payload);

/// True when `payload` is an admit request (dispatch on the first token).
bool is_request_payload(std::string_view payload);

}  // namespace rota::service
