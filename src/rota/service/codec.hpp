// Wire protocol for the admission service: length-prefixed frames carrying
// line-oriented payloads that reuse the scenario DSL.
//
// A frame is a 4-byte little-endian payload length followed by the payload.
// Length-prefixed framing keeps stream reassembly trivial (FrameReader below
// is a few lines and allocation-light) and leaves the payload free to be
// text — which matters, because the request body *is* the scenario DSL's
// `computation … end` block (rota/io/scenario): anything a scenario file can
// describe can be submitted over a socket unchanged, and every request is
// printable, diffable, and replayable by the existing tooling.
//
//   request payload:
//     admit <id> <at> <budget_us>
//     computation <name> <start> <deadline>
//       actor …
//     end
//
//   response payload:
//     decision <id> <accepted|rejected|overloaded> <strategy> <planning_ns> <queue_ns>
//     reason <free text>                  (omitted when empty)
//
// `budget_us` is the request's planning-time budget in microseconds (0 means
// "server default"). Responses stream back as decisions are made — possibly
// out of submission order — correlated by id.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "rota/computation/actor_computation.hpp"

namespace rota::service {

/// Hard ceiling on a frame payload. A peer announcing more is malformed or
/// hostile; the reader throws instead of buffering unboundedly.
inline constexpr std::size_t kMaxFramePayload = 1 << 20;

class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& message) : std::runtime_error(message) {}
};

enum class Verdict {
  kAccepted,    // admitted with a feasible plan
  kRejected,    // decided: no feasible plan (or deadline already passed)
  kOverloaded,  // shed: not decided — queue full or planning budget exhausted
};

const char* verdict_name(Verdict v);

struct AdmitRequest {
  std::uint64_t id = 0;
  Tick at = 0;                  // arrival tick (the controller's `now`)
  std::uint64_t budget_us = 0;  // planning budget; 0 = server default
  DistributedComputation computation;

  bool operator==(const AdmitRequest&) const = default;
};

struct AdmitResponse {
  std::uint64_t id = 0;
  Verdict verdict = Verdict::kRejected;
  std::string strategy;  // strategy that decided ("-" for shed responses)
  std::string reason;    // rejection/shed cause, empty on accept
  std::uint64_t planning_ns = 0;
  std::uint64_t queue_ns = 0;

  bool operator==(const AdmitResponse&) const = default;
};

/// Payload codecs. Parsers throw CodecError on malformed input.
std::string request_payload(const AdmitRequest& request);
AdmitRequest parse_request(const std::string& payload);
std::string response_payload(const AdmitResponse& response);
AdmitResponse parse_response(const std::string& payload);

/// True when `payload` is an admit request (dispatch on the first token).
bool is_request_payload(std::string_view payload);

/// Wraps a payload in a length-prefixed frame.
std::string frame(std::string_view payload);

/// Incremental frame reassembly over an arbitrary byte stream: feed() the
/// chunks the socket yields, drain complete payloads with next(). Throws
/// CodecError when a frame announces more than kMaxFramePayload.
class FrameReader {
 public:
  void feed(const char* data, std::size_t n);
  /// The next complete payload, or nullopt when more bytes are needed.
  std::optional<std::string> next();
  /// Bytes buffered but not yet returned (diagnostics).
  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

}  // namespace rota::service
