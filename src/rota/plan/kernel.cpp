#include "rota/plan/kernel.hpp"

#include <algorithm>

#include "rota/logic/symbolic/feasibility.hpp"
#include "rota/obs/obs.hpp"

namespace rota {

TimeInterval effective_window(const ConcurrentRequirement& rho, Tick now) {
  return TimeInterval(std::max(rho.window().start(), now), rho.window().end());
}

ConcurrentRequirement clip_requirement(const ConcurrentRequirement& rho,
                                       const TimeInterval& window) {
  std::vector<ComplexRequirement> clipped;
  clipped.reserve(rho.actors().size());
  for (const auto& a : rho.actors()) {
    clipped.emplace_back(a.actor(), a.phases(), window, a.rate_cap());
  }
  return ConcurrentRequirement(rho.name(), std::move(clipped), window);
}

ShardMask touched_shard_mask(const ConcurrentRequirement& rho) {
  ShardMask mask = 0;
  for (const auto& actor : rho.actors()) {
    for (const auto& phase : actor.phases()) {
      for (const auto& [type, quantity] : phase.demand.amounts()) {
        mask |= static_cast<ShardMask>(1) << shard_of(type);
      }
    }
  }
  return mask;
}

const char* PlanResult::reject_reason() const {
  switch (status) {
    case PlanStatus::kFeasible: return "";
    case PlanStatus::kDeadlinePassed: return "deadline has already passed";
    case PlanStatus::kInfeasible:
      return "no feasible plan over expiring resources";
    case PlanStatus::kCancelled: return "planning budget exhausted";
  }
  return "";
}

namespace {

// Budget for the in-kernel symbolic probe: generous enough that small and
// mid-size admission windows are always decided exactly, small enough that a
// rejection-heavy workload is not slowed by pathological cut searches (the
// probe returns kUnknown and the greedy rejection stands).
constexpr FeasibilityOptions kKernelProbeOptions{/*node_budget=*/20'000,
                                                 /*max_ticks=*/256};

PlanResult speculate_against(const ConcurrentRequirement& rho, Tick at,
                             const FeasibilitySnapshot& snapshot,
                             const ResourceSet* focused_view,
                             PlanningPolicy policy,
                             const SpeculateOptions& options = {}) {
  PlanResult result;
  result.computation = rho.name();
  result.at = at;
  result.revision = snapshot.revision();
  result.sharded = snapshot.has_shard_stamps();
  result.window = effective_window(rho, at);
  if (result.window.empty()) {
    // Reads nothing: the empty footprint (mask 0, stamp 0) stays valid under
    // any ledger motion.
    result.status = PlanStatus::kDeadlinePassed;
    return result;
  }
  if (result.sharded) {
    result.touched_mask = touched_shard_mask(rho);
    result.shard_stamp = snapshot.shard_stamp(result.touched_mask);
  }
  if (options.cancel != nullptr && options.cancel->expired()) {
    result.status = PlanStatus::kCancelled;
    return result;
  }
  ROTA_OBS_SPAN("plan.speculate");
  const bool metered = obs::metrics_enabled();
  if (metered) obs::CoreMetrics::get().plan_speculations.add();
  const ResourceSet& view =
      options.view_override != nullptr
          ? *options.view_override
          : (focused_view != nullptr
                 ? *focused_view
                 : (snapshot.pre_restricted() ? snapshot.view()
                                              : snapshot.restricted(result.window)));
  // Most requests arrive before their window opens, so the clip is a no-op;
  // skip the requirement deep-copy when every actor window already matches.
  const bool clip_needed =
      result.window != rho.window() ||
      std::any_of(rho.actors().begin(), rho.actors().end(),
                  [&](const ComplexRequirement& a) {
                    return a.window() != result.window;
                  });
  std::optional<ConcurrentRequirement> clipped;
  if (clip_needed) clipped.emplace(clip_requirement(rho, result.window));
  const ConcurrentRequirement& effective = clipped ? *clipped : rho;
  auto plan = plan_concurrent(view, effective, policy);
  if (!plan && policy == PlanningPolicy::kAsap && effective.actors().size() > 1 &&
      options.symbolic_rescue) {
    // The sequential planner admits actors one at a time and its rejection of
    // a contended multi-actor requirement can be spurious (order-sensitive).
    // Retry with the symbolic cut-point engine before giving up: exact within
    // its budget, deterministic, so every surface sharing the kernel keeps
    // identical decisions. Gated to kAsap — the kAlap/kUniform ablations
    // deliberately measure their policy's own (incomplete) behavior.
    if (options.cancel != nullptr && options.cancel->expired()) {
      // Boundary check between the ladder and the (costlier) rescue: a spent
      // budget turns the spurious-maybe rejection into kCancelled rather than
      // letting the cut search blow the latency SLO.
      result.status = PlanStatus::kCancelled;
      return result;
    }
    plan = symbolic_concurrent_plan(view, effective, at, kKernelProbeOptions);
    if (plan && metered) obs::CoreMetrics::get().plan_speculations_rescued.add();
  }
  if (!plan) {
    result.status = PlanStatus::kInfeasible;
    return result;
  }
  result.status = PlanStatus::kFeasible;
  result.plan = std::move(*plan);
  if (metered) obs::CoreMetrics::get().plan_speculations_feasible.add();
  return result;
}

}  // namespace

PlanResult PlanningKernel::speculate(const ConcurrentRequirement& rho, Tick at,
                                     const FeasibilitySnapshot& snapshot) const {
  return speculate_against(rho, at, snapshot, nullptr, policy_);
}

PlanResult PlanningKernel::speculate(const ConcurrentRequirement& rho, Tick at,
                                     const FeasibilitySnapshot& snapshot,
                                     const SpeculateOptions& options) const {
  return speculate_against(rho, at, snapshot, nullptr, policy_, options);
}

PlanResult PlanningKernel::speculate_within(const ConcurrentRequirement& rho,
                                            Tick at,
                                            const FeasibilitySnapshot& snapshot,
                                            const TimeInterval& focus) const {
  const ResourceSet& view = snapshot.restricted(focus);
  return speculate_against(rho, at, snapshot, &view, policy_);
}

std::optional<ActorPlan> PlanningKernel::speculate_actor(
    const ComplexRequirement& requirement,
    const FeasibilitySnapshot& snapshot) const {
  ROTA_OBS_SPAN("plan.speculate");
  if (obs::metrics_enabled()) obs::CoreMetrics::get().plan_speculations.add();
  auto plan = plan_actor(snapshot.pre_restricted()
                             ? snapshot.view()
                             : snapshot.restricted(requirement.window()),
                         requirement, policy_);
  if (plan && obs::metrics_enabled()) {
    obs::CoreMetrics::get().plan_speculations_feasible.add();
  }
  return plan;
}

CommitStatus PlanningKernel::commit(const PlanResult& result,
                                    CommitmentLedger& ledger,
                                    AdmissionDecision& out) const {
  ROTA_OBS_SPAN("plan.commit");
  const bool metered = obs::metrics_enabled();
  if (result.revision != ledger.revision()) {
    // The global revision moved, but if every shard the speculation read is
    // untouched, replaying it against the live ledger would read the same
    // availability and produce the identical result — commit it directly.
    // (Shard counters are monotone, so the compressed-sum comparison is
    // exact; see shard.hpp.)
    if (!result.sharded ||
        result.shard_stamp != ledger.shard_stamp(result.touched_mask)) {
      if (metered) obs::CoreMetrics::get().plan_commit_stale.add();
      return CommitStatus::kStale;
    }
    if (metered) obs::CoreMetrics::get().plan_commit_shard_salvaged.add();
  }
  if (result.status == PlanStatus::kCancelled) {
    // A cancelled speculation is not a decision — committing it would issue a
    // rejection the exact kernel might have accepted, breaking parity. Treat
    // it like a stale result: nothing issued, the caller re-speculates
    // (typically with a cheaper strategy or sheds the request).
    return CommitStatus::kStale;
  }
  ledger.advance_to(std::max(result.at, ledger.now()));
  out = AdmissionDecision{};
  switch (result.status) {
    case PlanStatus::kDeadlinePassed:
      out.reason = result.reject_reason();
      if (metered) obs::CoreMetrics::get().plan_commit_rejected_deadline.add();
      return CommitStatus::kCommitted;
    case PlanStatus::kInfeasible:
      out.reason = result.reject_reason();
      if (metered) obs::CoreMetrics::get().plan_commit_rejected_no_plan.add();
      return CommitStatus::kCommitted;
    case PlanStatus::kCancelled:  // unreachable: early-returned above
      return CommitStatus::kStale;
    case PlanStatus::kFeasible:
      break;
  }
  if (!ledger.admit(result.computation, result.window, *result.plan)) {
    // Defensive: a matching revision certifies the residual the plan was
    // computed against, so the ledger should never refuse here.
    out.reason = "plan no longer fits residual";
    if (metered) obs::CoreMetrics::get().plan_commit_rejected_conflict.add();
    return CommitStatus::kCommitted;
  }
  out.accepted = true;
  out.plan = result.plan;
  if (metered) obs::CoreMetrics::get().plan_commit_accepted.add();
  return CommitStatus::kCommitted;
}

AdmissionDecision PlanningKernel::decide(CommitmentLedger& ledger,
                                         const ConcurrentRequirement& rho,
                                         Tick at) const {
  AdmissionDecision decision;
  // Sequentially the snapshot cannot go stale between speculate and commit;
  // the loop is belt-and-braces for exotic callers.
  do {
    const FeasibilitySnapshot snapshot = FeasibilitySnapshot::capture(ledger);
    const PlanResult result = speculate(rho, at, snapshot);
    if (commit(result, ledger, decision) == CommitStatus::kCommitted) break;
  } while (true);
  return decision;
}

bool PlanningKernel::replay(const std::string& computation,
                            const TimeInterval& window,
                            const ConcurrentPlan& plan,
                            CommitmentLedger& ledger) const {
  PlanResult result;
  result.status = PlanStatus::kFeasible;
  result.computation = computation;
  result.window = window;
  result.at = ledger.now();  // replay never advances the recovering clock
  result.revision = ledger.revision();
  result.plan = plan;
  AdmissionDecision decision;
  if (commit(result, ledger, decision) != CommitStatus::kCommitted) return false;
  return decision.accepted;
}

}  // namespace rota
