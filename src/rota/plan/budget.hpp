// Planning-time budgets: the cancellation token the admission service threads
// through the kernel.
//
// A request that arrives with a latency budget must stop *reasoning* when the
// budget runs out — the paper's §VI concern made operational. The token is
// the cheapest sound mechanism for that: a deadline on the steady clock plus
// an explicit cancel flag, checked at speculation boundaries (before
// planning, between the greedy ladder and the symbolic rescue). Planning
// never observes a torn state: a cancelled speculation returns
// PlanStatus::kCancelled, which the kernel refuses to commit, so a budget
// overrun can only cost the work already done — never a wrong decision.
//
// Tokens are cheap value types; share one across threads freely (the flag is
// atomic, the deadline immutable after construction).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace rota {

class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// A token that never expires on its own (cancel() still works).
  CancellationToken() : state_(std::make_shared<State>()) {}

  /// A token that expires when the steady clock passes `deadline`.
  static CancellationToken with_deadline(Clock::time_point deadline) {
    CancellationToken t;
    t.state_->deadline = deadline;
    t.state_->has_deadline = true;
    return t;
  }

  /// A token expiring `budget_ns` nanoseconds from now (0 = never).
  static CancellationToken with_budget_ns(std::uint64_t budget_ns) {
    if (budget_ns == 0) return CancellationToken();
    return with_deadline(Clock::now() + std::chrono::nanoseconds(budget_ns));
  }

  /// Explicit cancellation (load shedding, connection gone).
  void cancel() { state_->cancelled.store(true, std::memory_order_relaxed); }

  /// True once cancelled or past the deadline. This is the check planted at
  /// speculation boundaries; it costs one relaxed load plus (when a deadline
  /// is set) one clock read.
  bool expired() const {
    if (state_->cancelled.load(std::memory_order_relaxed)) return true;
    return state_->has_deadline && Clock::now() >= state_->deadline;
  }

  /// Nanoseconds left before the deadline (0 when expired; max when none).
  std::uint64_t remaining_ns() const {
    if (state_->cancelled.load(std::memory_order_relaxed)) return 0;
    if (!state_->has_deadline) return ~std::uint64_t{0};
    const auto left = state_->deadline - Clock::now();
    if (left <= Clock::duration::zero()) return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(left).count());
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    Clock::time_point deadline{};
    bool has_deadline = false;
  };
  std::shared_ptr<State> state_;
};

}  // namespace rota
