// PlanningKernel: Theorem 4 as one audited code path.
//
// Every admission surface in the system — the sequential controller, the
// batched pipeline, the baseline strategy harness, deadline negotiation,
// periodic series admission, cluster probe/claim, and crash-recovery
// replay — answers the same question: does a feasible consumption plan for
// the newcomer exist against the residual supply, and if so, commit it
// without disturbing earlier admissions. The kernel is that question asked
// exactly once in code, split into the two halves the surfaces compose
// differently:
//
//   speculate(rho, at, snapshot) — pure. Clips the requirement window to the
//     arrival tick, plans against the snapshot's availability view, and
//     returns a PlanResult stamped with the snapshot's revision. Thread-safe
//     and side-effect free: any number of lanes may speculate against one
//     snapshot concurrently.
//
//   commit(result, ledger)       — the only writer. Refuses (kStale, ledger
//     untouched) whenever the result's revision no longer matches the
//     ledger: a stale speculation is redone, never committed. On a matching
//     revision it advances the ledger clock, subtracts the plan on accept,
//     and issues the decision — FCFS order is whatever order the caller
//     commits in.
//
// decide() is the sequential composition (speculate against a fresh
// snapshot, then commit; retry on the impossible-in-sequence stale case) and
// replay() is the crash-recovery variant that re-admits an audited plan
// through the same commit gate, so even a WAL rebuild cannot bypass the
// revision-checked path.
//
// The kernel is also the observability choke point: plan.speculate.* and
// plan.commit.* metrics plus the plan.speculate / plan.commit spans are
// emitted here and nowhere else, so every surface's admission traffic lands
// in one instrument set.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "rota/admission/ledger.hpp"
#include "rota/computation/requirement.hpp"
#include "rota/logic/planner.hpp"
#include "rota/plan/budget.hpp"
#include "rota/plan/snapshot.hpp"

namespace rota {

/// The requirement's window clipped to the present (empty ⇔ deadline passed).
TimeInterval effective_window(const ConcurrentRequirement& rho, Tick now);

/// `rho` with every actor's window replaced by `window` — the kernel's
/// re-clip for requests whose earliest start is already behind the clock,
/// and negotiation's what-if window substitution.
ConcurrentRequirement clip_requirement(const ConcurrentRequirement& rho,
                                       const TimeInterval& window);

/// The shard footprint of a requirement: the shards of every located type
/// its demand names. Planning reads availability only for demanded types, and
/// a plan's usage is confined to them, so this mask bounds everything a
/// speculation reads *and* everything its commit writes.
ShardMask touched_shard_mask(const ConcurrentRequirement& rho);

/// What one admission decides: accepted with a plan, or why not.
struct AdmissionDecision {
  bool accepted = false;
  std::optional<ConcurrentPlan> plan;  // present iff accepted
  std::string reason;                  // human-readable rejection cause
};

enum class PlanStatus {
  kFeasible,        // a plan exists against the snapshot
  kDeadlinePassed,  // effective window empty at the arrival tick
  kInfeasible,      // planner found no feasible consumption plan
  kCancelled,       // planning-time budget expired before a verdict — not a
                    // decision; commit() refuses it (kStale, nothing issued)
};

/// One speculation's outcome, stamped with the snapshot revision it is valid
/// for. Pure data: carrying it across threads or holding it across commits
/// is safe — commit() checks the stamp.
struct PlanResult {
  PlanStatus status = PlanStatus::kInfeasible;
  std::string computation;             // requirement name (ledger key)
  TimeInterval window;                 // effective (clipped) window
  Tick at = 0;                         // arrival tick used for clipping
  std::uint64_t revision = FeasibilitySnapshot::kDetachedRevision;
  std::optional<ConcurrentPlan> plan;  // present iff kFeasible

  // Shard-level staleness witness, populated when the snapshot carried shard
  // stamps (captures of a live ledger). `touched_mask` is the requirement's
  // shard footprint; `shard_stamp` is the snapshot's compressed stamp of
  // those shards. commit() salvages a result whose global revision moved as
  // long as the footprint's stamp still matches: every type the speculation
  // read (and the plan writes) is untouched, so replaying it would produce
  // the identical decision. Deadline-passed results read nothing — their
  // empty footprint (mask 0, stamp 0) is always salvageable.
  ShardMask touched_mask = 0;
  std::uint64_t shard_stamp = 0;
  bool sharded = false;  // stamps valid (false for over()/minus() snapshots)

  bool feasible() const { return status == PlanStatus::kFeasible; }

  /// Canonical rejection wording, shared by every surface.
  const char* reject_reason() const;
};

enum class CommitStatus {
  kCommitted,  // decision issued (accept or reject) against a live revision
  kStale,      // revision moved since speculation; nothing issued
};

/// Knobs for the budget-aware speculate entry point. Defaults reproduce the
/// plain speculate() exactly; the admission service's anytime strategies vary
/// them per request.
struct SpeculateOptions {
  /// Checked at speculation boundaries (entry, and between the greedy ladder
  /// and the symbolic rescue). Expired => PlanStatus::kCancelled. May be
  /// null: never cancelled.
  const CancellationToken* cancel = nullptr;

  /// When false, a greedy multi-actor rejection stands — the symbolic
  /// cut-point rescue is skipped (the service's kGreedy "fast ladder only"
  /// strategy, and a sensible default once the budget is nearly gone).
  bool symbolic_rescue = true;

  /// Plan against this availability instead of the snapshot's view. The
  /// caller warrants it is dominated by the snapshot's true view (e.g. a
  /// StepFunction digest hull), so any plan found is feasible against the
  /// live residual and the result keeps the snapshot's revision stamps —
  /// commit-able exactly like an exact speculation.
  const ResourceSet* view_override = nullptr;
};

class PlanningKernel {
 public:
  explicit PlanningKernel(PlanningPolicy policy = PlanningPolicy::kAsap)
      : policy_(policy) {}

  PlanningPolicy policy() const { return policy_; }

  /// Pure speculation against a frozen snapshot. Plans against the
  /// snapshot's view directly when it is pre-restricted (hull views, bare
  /// supplies), and through the snapshot's restriction cache otherwise.
  PlanResult speculate(const ConcurrentRequirement& rho, Tick at,
                       const FeasibilitySnapshot& snapshot) const;

  /// Budget-aware speculation: speculate() with a cancellation token checked
  /// at speculation boundaries, an optional rescue opt-out, and an optional
  /// dominated-view override (see SpeculateOptions). With default options
  /// this is bit-identical to speculate().
  PlanResult speculate(const ConcurrentRequirement& rho, Tick at,
                       const FeasibilitySnapshot& snapshot,
                       const SpeculateOptions& options) const;

  /// Speculation against the snapshot restricted to `focus` (served from the
  /// snapshot's restriction cache). `focus` must cover the requirement's
  /// effective window; monotone searches probing many candidate windows
  /// inside one focus pay for a single restriction.
  PlanResult speculate_within(const ConcurrentRequirement& rho, Tick at,
                              const FeasibilitySnapshot& snapshot,
                              const TimeInterval& focus) const;

  /// Single-actor speculation (the migration advisor's scoring path): plans
  /// one complex requirement against the snapshot's view.
  std::optional<ActorPlan> speculate_actor(const ComplexRequirement& requirement,
                                           const FeasibilitySnapshot& snapshot) const;

  /// Revision-checked commit. kStale ⇔ the result's revision no longer
  /// matches the ledger (nothing issued — re-speculate). Otherwise advances
  /// the ledger clock to the result's arrival tick and issues the decision
  /// into `out`, subtracting the plan from the residual on accept.
  CommitStatus commit(const PlanResult& result, CommitmentLedger& ledger,
                      AdmissionDecision& out) const;

  /// speculate + commit against the live ledger: the sequential decision,
  /// identical to the historical one-request-at-a-time controller.
  AdmissionDecision decide(CommitmentLedger& ledger,
                           const ConcurrentRequirement& rho, Tick at) const;

  /// Crash-recovery re-admission of an audited plan through the same commit
  /// gate (revision stamped current — a WAL replay is not a speculation).
  /// Returns true when the ledger accepted the plan.
  bool replay(const std::string& computation, const TimeInterval& window,
              const ConcurrentPlan& plan, CommitmentLedger& ledger) const;

 private:
  PlanningPolicy policy_;
};

}  // namespace rota
