// FeasibilitySnapshot: one immutable, revision-stamped view of the residual
// supply — the input side of the planning kernel.
//
// Every admission surface used to freeze its own copy of "what is left"
// before reasoning about a newcomer: the sequential controller restricted
// the residual per request, the batch pipeline built a hull view per round,
// negotiation restricted per probe, cluster probes per message. The snapshot
// unifies those freezes behind one type:
//
//   * capture(ledger)        — borrows the ledger's cached residual at its
//     current revision. Planning restricts per request (through the cache),
//     exactly as the sequential controller always has.
//   * capture(ledger, hull)  — owns one hull-restricted copy of the
//     residual. Planning reads it directly: the planner only ever looks at
//     availability inside a requirement's window, so any view whose window
//     covers the request hull yields bit-identical plans at one restriction
//     per round instead of one per request (the batch pipeline's
//     amortization, now shared).
//   * over(supply)           — borrows an arbitrary availability (gossiped
//     digests, baseline probes, negotiation what-ifs). Speculation-only: its
//     revision never matches a live ledger, so commits are refused as stale.
//   * minus(plan)            — a derived what-if snapshot with one plan's
//     usage subtracted; chains speculative admissions (periodic probes,
//     admissible copies) without copying a controller.
//
// Borrowing snapshots alias the source set; they must not outlive it, and a
// ledger commit invalidates what capture(ledger) borrowed — the revision
// stamp turns that staleness into a checkable property instead of a bug.
//
// The restriction cache memoizes restricted views by window, serving any
// later window a cached view *contains* (containment is enough: planning
// never reads outside the requirement window). A deadline search that probes
// dozens of candidate windows against one snapshot pays for one restriction,
// not one per candidate. The cache is internally locked, so a snapshot is
// safely shared across planning lanes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "rota/admission/shard.hpp"
#include "rota/resource/resource_set.hpp"

namespace rota {

class CommitmentLedger;
struct ConcurrentPlan;

class FeasibilitySnapshot {
 public:
  /// Revision stamp of speculation-only snapshots (over(), minus()): never
  /// equal to any live ledger revision, so commits read as stale.
  static constexpr std::uint64_t kDetachedRevision =
      ~static_cast<std::uint64_t>(0);

  FeasibilitySnapshot();

  /// Full-residual snapshot at the ledger's current revision. Borrows the
  /// residual (no copy) — valid until the next residual-changing ledger
  /// operation, which the revision stamp detects.
  static FeasibilitySnapshot capture(const CommitmentLedger& ledger);

  /// Hull-restricted snapshot: owns residual().restricted(hull) and plans
  /// against it directly. `hull` must cover the window of every requirement
  /// later speculated against this snapshot.
  static FeasibilitySnapshot capture(const CommitmentLedger& ledger,
                                     const TimeInterval& hull);

  /// Hull- and shard-restricted snapshot: the owned view keeps only types
  /// whose shard is in `mask`. `mask` must cover the shard footprint of every
  /// requirement later speculated against this snapshot — planning reads
  /// only demanded types, so dropping foreign shards changes nothing while
  /// shrinking the copy a lane pays per round.
  static FeasibilitySnapshot capture(const CommitmentLedger& ledger,
                                     const TimeInterval& hull, ShardMask mask);

  /// Snapshot over a bare availability (digest, baseline supply, what-if).
  /// Borrows `supply`; speculation-only (kDetachedRevision).
  static FeasibilitySnapshot over(const ResourceSet& supply, Tick now = 0);

  /// Derived what-if: this snapshot's planning view minus `plan`'s usage.
  /// nullopt when the plan is not covered. Speculation-only.
  std::optional<FeasibilitySnapshot> minus(const ConcurrentPlan& plan) const;

  /// Ledger revision this snapshot froze (kDetachedRevision when detached).
  std::uint64_t revision() const { return revision_; }

  /// True when this snapshot carries per-shard revision stamps (captures of
  /// a live ledger do; over()/minus() views do not).
  bool has_shard_stamps() const { return has_shard_stamps_; }

  /// Frozen per-shard revisions (valid only when has_shard_stamps()).
  std::uint64_t shard_revision(std::size_t s) const { return shard_revisions_[s]; }

  /// Compressed stamp of the masked shards at capture time (shard.hpp).
  std::uint64_t shard_stamp(ShardMask mask) const {
    return rota::shard_stamp(shard_revisions_, mask);
  }

  /// Ledger clock (or caller-supplied `now`) at capture time.
  Tick now() const { return now_; }

  /// The availability this snapshot stands for (hull-restricted when built
  /// with a hull).
  const ResourceSet& view() const { return borrowed_ ? *borrowed_ : owned_; }

  /// True when speculation should plan against view() directly (the view is
  /// already narrowed, or the caller asked for no per-request restriction).
  bool pre_restricted() const { return pre_restricted_; }

  /// view() restricted to `window`, memoized. Repeat windows — and windows
  /// contained in any previously cached one — are served from the cache.
  /// Thread-safe; the returned reference lives as long as the snapshot.
  const ResourceSet& restricted(const TimeInterval& window) const;

 private:
  struct Cache;

  const ResourceSet* borrowed_ = nullptr;  // aliases the source when borrowing
  ResourceSet owned_;                      // storage when not borrowing
  std::uint64_t revision_ = kDetachedRevision;
  ShardRevisions shard_revisions_{};       // frozen when has_shard_stamps_
  Tick now_ = 0;
  bool pre_restricted_ = false;
  bool has_shard_stamps_ = false;
  std::shared_ptr<Cache> cache_;  // lazily grown, internally locked
};

}  // namespace rota
