#include "rota/plan/snapshot.hpp"

#include <mutex>
#include <utility>
#include <vector>

#include "rota/admission/ledger.hpp"
#include "rota/logic/planner.hpp"
#include "rota/obs/obs.hpp"

namespace rota {

/// Memoized restricted views. Entries are kept behind unique_ptr so the
/// references handed out stay valid while the vector grows.
struct FeasibilitySnapshot::Cache {
  struct Entry {
    TimeInterval window;
    ResourceSet view;
  };
  std::mutex mutex;
  std::vector<std::unique_ptr<Entry>> entries;
};

FeasibilitySnapshot::FeasibilitySnapshot() : cache_(std::make_shared<Cache>()) {}

FeasibilitySnapshot FeasibilitySnapshot::capture(const CommitmentLedger& ledger) {
  FeasibilitySnapshot snap;
  snap.borrowed_ = &ledger.residual();
  snap.revision_ = ledger.revision();
  snap.shard_revisions_ = ledger.shard_revisions();
  snap.has_shard_stamps_ = true;
  snap.now_ = ledger.now();
  snap.pre_restricted_ = false;
  return snap;
}

FeasibilitySnapshot FeasibilitySnapshot::capture(const CommitmentLedger& ledger,
                                                 const TimeInterval& hull) {
  ROTA_OBS_SPAN("plan.snapshot");
  FeasibilitySnapshot snap;
  if (!hull.empty()) snap.owned_ = ledger.residual().restricted(hull);
  snap.revision_ = ledger.revision();
  snap.shard_revisions_ = ledger.shard_revisions();
  snap.has_shard_stamps_ = true;
  snap.now_ = ledger.now();
  snap.pre_restricted_ = true;
  return snap;
}

FeasibilitySnapshot FeasibilitySnapshot::capture(const CommitmentLedger& ledger,
                                                 const TimeInterval& hull,
                                                 ShardMask mask) {
  ROTA_OBS_SPAN("plan.snapshot");
  FeasibilitySnapshot snap;
  if (!hull.empty()) {
    snap.owned_ = ledger.residual().restricted_if(hull, [mask](const LocatedType& t) {
      return (mask & (static_cast<ShardMask>(1) << shard_of(t))) != 0;
    });
  }
  snap.revision_ = ledger.revision();
  snap.shard_revisions_ = ledger.shard_revisions();
  snap.has_shard_stamps_ = true;
  snap.now_ = ledger.now();
  snap.pre_restricted_ = true;
  return snap;
}

FeasibilitySnapshot FeasibilitySnapshot::over(const ResourceSet& supply, Tick now) {
  FeasibilitySnapshot snap;
  snap.borrowed_ = &supply;
  snap.revision_ = kDetachedRevision;
  snap.now_ = now;
  snap.pre_restricted_ = true;
  return snap;
}

std::optional<FeasibilitySnapshot> FeasibilitySnapshot::minus(
    const ConcurrentPlan& plan) const {
  auto next = view().relative_complement(plan.usage_as_resources());
  if (!next) return std::nullopt;
  FeasibilitySnapshot snap;
  snap.owned_ = std::move(*next);
  snap.revision_ = kDetachedRevision;
  snap.now_ = now_;
  snap.pre_restricted_ = pre_restricted_;
  return snap;
}

const ResourceSet& FeasibilitySnapshot::restricted(const TimeInterval& window) const {
  Cache& cache = *cache_;
  std::lock_guard<std::mutex> lock(cache.mutex);
  // Containment suffices: planning never reads availability outside the
  // requirement window, so a wider cached view plans identically.
  for (const auto& entry : cache.entries) {
    if (entry->window.start() <= window.start() &&
        window.end() <= entry->window.end()) {
      return entry->view;
    }
  }
  auto entry = std::make_unique<Cache::Entry>();
  entry->window = window;
  entry->view = view().restricted(window);
  cache.entries.push_back(std::move(entry));
  return cache.entries.back()->view;
}

}  // namespace rota
