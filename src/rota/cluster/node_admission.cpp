#include "rota/cluster/node_admission.hpp"

#include "rota/cluster/digest.hpp"

namespace rota::cluster {

NodeAdmission::~NodeAdmission() = default;

BatchNodeAdmission::BatchNodeAdmission(CostModel phi, ResourceSet base_supply,
                                       PlanningPolicy policy, std::size_t lanes,
                                       Tick now)
    : phi_(std::move(phi)),
      base_supply_(std::move(base_supply)),
      policy_(policy),
      lanes_(lanes),
      controller_(std::make_unique<BatchAdmissionController>(
          phi_, base_supply_, policy_, lanes_, now)) {}

std::vector<AdmissionDecision> BatchNodeAdmission::admit_batch(
    const std::vector<BatchRequest>& requests) {
  return controller_->admit_batch(requests);
}

PlanResult BatchNodeAdmission::probe(const ConcurrentRequirement& rho,
                                     Tick now) {
  return controller_->kernel().speculate(
      rho, now, FeasibilitySnapshot::capture(controller_->ledger()));
}

AdmissionDecision BatchNodeAdmission::claim(const ConcurrentRequirement& rho,
                                            Tick now) {
  return controller_->request(rho, now);
}

SupplyDigest BatchNodeAdmission::digest(Location site, Tick now,
                                        std::size_t max_segments) {
  return make_digest(controller_->ledger(), site, now, max_segments);
}

void BatchNodeAdmission::drop_state() { controller_.reset(); }

void BatchNodeAdmission::rebuild(Tick now) {
  controller_ = std::make_unique<BatchAdmissionController>(phi_, base_supply_,
                                                           policy_, lanes_, now);
}

}  // namespace rota::cluster
