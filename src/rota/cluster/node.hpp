// One member of the federated admission cluster.
//
// A ClusterNode wraps its own CommitmentLedger behind a
// BatchAdmissionController (same-tick arrivals admit as one parallel batch,
// with the sequential controller's exact FCFS semantics), an AuditLog that
// doubles as the node's write-ahead record for crash recovery, and the
// node-local half of the cluster protocol:
//
//   * local-first admission — jobs submitted here are tried against the
//     node's own ledger; only local rejections with deadline budget left
//     enter the remote path;
//   * remote admission — probe/offer/claim over the fabric: candidates are
//     ranked from gossiped supply digests (MigrationAdvisor::assess on the
//     stale hulls), probed with a per-attempt timeout, the best offer is
//     claimed, and the claim is re-validated against the target's *live*
//     residual — digest staleness can cost a retry, never soundness;
//   * retries — capped exponential backoff between probe rounds, a bounded
//     number of rounds (the hop budget), and a deadline budget: no probe or
//     claim is ever sent to a peer whose transfer delay would already
//     overrun the job's deadline;
//   * gossip — a compact conservative digest of the residual, broadcast on
//     a per-node phase-staggered period;
//   * crash/restart — crash() drops the ledger and every in-flight
//     conversation; restart() rebuilds from base supply, optionally
//     replaying the audit log to recover the pre-crash commitments.
//
// The node is substrate- and ledger-agnostic: messages go through a
// net::Transport (FabricTransport in the sim, SocketTransport between live
// daemons) and admission through a NodeAdmission backend (an owned
// BatchAdmissionController by default, the live AdmissionService's ledger in
// daemon mode). Same node code, two transports.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rota/admission/audit.hpp"
#include "rota/cluster/message.hpp"
#include "rota/cluster/node_admission.hpp"
#include "rota/net/transport.hpp"

namespace rota::cluster {

/// One job entering the cluster: location-independent work (the WorkSpec's
/// home is informational; admission materializes it at whichever node hosts
/// it) plus a cluster-unique id assigned by the submitter.
struct ClusterJob {
  std::uint64_t id = 0;
  WorkSpec work;
};

enum class Placement { kLocal, kRemote, kRejected };

std::string placement_name(Placement p);

/// The origin node's final verdict on one job — the unit of the cluster's
/// deterministic decision sequence.
struct JobDecision {
  std::uint64_t id = 0;
  std::string name;
  NodeId origin = kNoNode;
  Placement outcome = Placement::kRejected;
  NodeId placed = kNoNode;      // valid unless rejected
  Tick decided_at = 0;
  Tick planned_finish = 0;      // valid unless rejected
  std::size_t remote_rounds = 0;  // probe rounds spent (0 = pure local)
  std::string reason;           // rejection cause
  bool lost = false;            // placed node crashed unrecovered pre-finish

  std::string to_string() const;
};

/// A committed admission at some node — what flows into the plan-following
/// Simulator for end-to-end execution.
struct PlacedAdmission {
  std::uint64_t job = 0;
  NodeId node = kNoNode;
  Tick at = 0;
  ConcurrentRequirement rho;
  ConcurrentPlan plan;
  bool lost = false;  // node crashed unrecovered before the plan finished
};

/// Shared event sink: nodes append decisions and placements here in control
/// loop order, which is deterministic for a fixed seed.
struct ClusterEvents {
  std::vector<JobDecision> decisions;
  std::vector<PlacedAdmission> placements;
};

struct NodeConfig {
  std::size_t lanes = 1;            // planning lanes for local batches
  PlanningPolicy policy = PlanningPolicy::kAsap;
  Tick gossip_period = 8;           // 0 disables gossip
  std::size_t digest_max_segments = 8;
  std::size_t fanout = 2;           // probes in flight per job per round
  std::size_t max_remote_rounds = 3;  // hop budget; 0 = local-only admission
  Tick probe_timeout = 4;
  Tick claim_timeout = 6;
  Tick backoff_base = 1;            // first retry delay; doubles per retry
  Tick backoff_cap = 8;
  std::size_t audit_capacity = 4096;
  // Reject any still-pending remote conversation once `now` reaches the
  // job's deadline ("deadline passed while pending"). Off by default: the
  // sim's pinned decision logs predate the check; the daemon turns it on so
  // a peer crash mid-conversation can never strand a client past its
  // deadline budget.
  bool expire_by_deadline = false;
};

class ClusterNode {
 public:
  /// Owned-ledger node (the sim/test configuration): admission runs against
  /// a node-private BatchAdmissionController over `supply`.
  ClusterNode(NodeId id, Location site, CostModel phi, ResourceSet supply,
              NodeConfig config, ClusterEvents* events,
              net::Transport* transport, Tick now = 0);

  /// External-backend node (the daemon configuration): admission runs
  /// against `admission`, whose ledger the caller owns — crash()/restart()
  /// are unavailable in this mode.
  ClusterNode(NodeId id, Location site, CostModel phi, NodeConfig config,
              ClusterEvents* events, net::Transport* transport,
              NodeAdmission* admission);

  NodeId id() const { return id_; }
  Location site() const { return site_; }
  bool down() const { return down_; }

  /// Peers are whoever the driver has told this node about; the latency is
  /// the node's (static) estimate used for deadline budgeting.
  void set_peer(NodeId peer, Tick latency);

  /// Jobs arriving at this node at `now`; same-tick arrivals admit as one
  /// FCFS batch. Local rejections with budget left start the remote path.
  void submit(const std::vector<ClusterJob>& jobs, Tick now);

  /// Enters the remote path directly for a job the caller already rejected
  /// locally (the daemon's federation entry: the service tried its own
  /// ledger first). `local_reason` flows into the decision when no peer is
  /// eligible either.
  void submit_remote(std::uint64_t id, const WorkSpec& work,
                     const std::string& local_reason, Tick now);

  /// Drains the transport and handles every arrived message — the driver's
  /// per-iteration receive step.
  void pump(Tick now);

  /// One delivered message (pump() calls this; tests may inject directly).
  void handle(const Message& m, Tick now);

  /// Per-tick housekeeping: probe/claim timeouts, backoff retries, gossip.
  void on_tick(Tick now);

  /// Fault injection (owned-ledger mode only). crash() loses the ledger and
  /// every pending remote conversation (their jobs are recorded as
  /// rejected); the audit log — the node's durable WAL — survives.
  /// restart() rebuilds the controller from the original base supply and,
  /// when `recover` is set, replays the audit log so the recovered ledger
  /// carries the pre-crash commitments.
  void crash(Tick now);
  void restart(Tick now, bool recover);

  /// Finalizes every still-pending remote conversation as rejected (used at
  /// the simulation horizon so the decision log covers every submitted job).
  void abort_pending(Tick now, const std::string& reason);

  /// Materializes `work` at this node's site and derives its requirement —
  /// the single admission currency used by local batches, probes and claims.
  ConcurrentRequirement localize(const WorkSpec& work) const;

  /// The owned ledger (owned-ledger mode only; throws in external-backend
  /// mode, where the backend's owner mediates all ledger access).
  const CommitmentLedger& ledger() const;
  const AuditLog& audit() const { return audit_; }
  const std::map<NodeId, SupplyDigest>& digests() const { return digests_; }
  std::size_t pending_remote() const { return pending_.size(); }

 private:
  struct PendingJob {
    enum class Phase { kProbing, kClaiming, kBackoff };
    WorkSpec work;
    Tick submitted_at = 0;
    std::vector<NodeId> candidates;  // ranked once, consumed front to back
    std::size_t next_candidate = 0;
    std::size_t rounds = 0;
    Tick backoff = 0;
    Phase phase = Phase::kProbing;
    std::map<NodeId, Tick> probes_out;            // target -> sent_at
    std::vector<std::pair<Tick, NodeId>> offers;  // (finish, node)
    NodeId claim_target = kNoNode;
    Tick probe_deadline = 0;
    Tick claim_deadline = 0;
    Tick retry_at = 0;
  };

  /// Ticks needed to move the job to `peer`: link latency plus state
  /// serialization at one unit per tick.
  Tick transfer_delay(NodeId peer, const WorkSpec& work) const;
  /// `work` as the peer should see it: earliest start pushed past transfer.
  WorkSpec remote_spec(const WorkSpec& work, NodeId peer, Tick now) const;

  std::vector<NodeId> rank_candidates(const WorkSpec& work, Tick now) const;
  /// Starts the remote path for a locally-rejected job, or records the final
  /// rejection when no peer could possibly help.
  void enter_remote_or_reject(std::uint64_t id, const WorkSpec& work,
                              const std::string& local_reason, Tick now);
  void start_remote(std::uint64_t id, const WorkSpec& work, Tick now);
  /// Launches the next probe round; finalizes a rejection when the hop or
  /// deadline budget is exhausted.
  void next_round(std::uint64_t id, PendingJob& job, Tick now);
  void conclude_probe_round(std::uint64_t id, PendingJob& job, Tick now);
  void schedule_retry(std::uint64_t id, PendingJob& job, Tick now,
                      const std::string& cause);
  void finish_remote(std::uint64_t id, PendingJob& job, NodeId placed,
                     Tick finish, Tick now);
  void reject_remote(std::uint64_t id, PendingJob& job, const std::string& reason,
                     Tick now);
  void send(Message m);
  void gossip(Tick now);
  /// Erases jobs resolved while pending_ was being iterated.
  void flush_done();

  NodeId id_;
  Location site_;
  CostModel phi_;
  MigrationAdvisor advisor_;
  NodeConfig config_;
  ClusterEvents* events_;
  net::Transport* transport_;
  std::unique_ptr<BatchNodeAdmission> owned_;  // null in external-backend mode
  NodeAdmission* admission_;                   // owned_.get() or the external one
  AuditLog audit_;
  std::map<NodeId, Tick> peer_latency_;
  std::map<NodeId, SupplyDigest> digests_;
  std::map<std::uint64_t, PendingJob> pending_;
  std::vector<std::uint64_t> done_;  // resolved while iterating pending_
  bool down_ = false;
};

}  // namespace rota::cluster
