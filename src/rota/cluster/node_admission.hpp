// The admission backend a ClusterNode speaks the cluster protocol against.
//
// The protocol half of a node — probe/offer/claim, gossip, retries — needs
// exactly four admission operations. Factoring them behind an interface is
// what lets the *same* node code run in two worlds:
//
//   * BatchNodeAdmission (below): the node owns its ledger via a
//     BatchAdmissionController — the deterministic in-sim configuration,
//     byte-identical to the historical controller-owning ClusterNode;
//   * service::ServiceNodeAdmission: the node borrows the live
//     AdmissionService's sharded ledger, serializing probes and claims
//     through the same mutex the serving lanes use — the daemon
//     configuration, where federation and live traffic must agree on one
//     residual.
//
// The contract mirrors the protocol's semantics: probe() is speculative and
// reserves nothing; claim() re-validates against the live residual and
// commits atomically; admit_batch() is the local-first FCFS path; digest()
// is the conservative residual hull gossip broadcasts.
#pragma once

#include <memory>
#include <vector>

#include "rota/admission/audit.hpp"
#include "rota/cluster/message.hpp"
#include "rota/runtime/batch_controller.hpp"

namespace rota::cluster {

class NodeAdmission {
 public:
  virtual ~NodeAdmission();

  /// Local-first admission of same-tick arrivals, exact FCFS semantics.
  virtual std::vector<AdmissionDecision> admit_batch(
      const std::vector<BatchRequest>& requests) = 0;

  /// Speculative feasibility for a probe: nothing is reserved; the answer may
  /// go stale the moment it is computed.
  virtual PlanResult probe(const ConcurrentRequirement& rho, Tick now) = 0;

  /// Claim-time re-validation: plans against the *live* residual and commits
  /// on success — the step that makes digest staleness cost retries, never
  /// soundness.
  virtual AdmissionDecision claim(const ConcurrentRequirement& rho, Tick now) = 0;

  /// The conservative residual hull to gossip, stamped with revision/tick.
  virtual SupplyDigest digest(Location site, Tick now,
                              std::size_t max_segments) = 0;
};

/// The owned-ledger backend: wraps a BatchAdmissionController, preserving the
/// pre-refactor ClusterNode's admission behavior exactly. Also carries the
/// fault-injection surface (drop / rebuild / recovery ledger) that only makes
/// sense when the node owns its state.
class BatchNodeAdmission final : public NodeAdmission {
 public:
  BatchNodeAdmission(CostModel phi, ResourceSet base_supply,
                     PlanningPolicy policy, std::size_t lanes, Tick now);

  std::vector<AdmissionDecision> admit_batch(
      const std::vector<BatchRequest>& requests) override;
  PlanResult probe(const ConcurrentRequirement& rho, Tick now) override;
  AdmissionDecision claim(const ConcurrentRequirement& rho, Tick now) override;
  SupplyDigest digest(Location site, Tick now,
                      std::size_t max_segments) override;

  // --- fault injection (owned mode only) ---

  /// Crash: the ledger dies with the node.
  void drop_state();
  /// Restart: a fresh controller over the original base supply.
  void rebuild(Tick now);
  bool dropped() const { return controller_ == nullptr; }

  const CommitmentLedger& ledger() const { return controller_->ledger(); }
  /// Mutable ledger for audit-log replay after rebuild().
  CommitmentLedger& ledger_for_recovery() {
    return controller_->ledger_for_recovery();
  }

 private:
  CostModel phi_;
  ResourceSet base_supply_;
  PlanningPolicy policy_;
  std::size_t lanes_;
  std::unique_ptr<BatchAdmissionController> controller_;
};

}  // namespace rota::cluster
