#include "rota/cluster/digest.hpp"

#include <stdexcept>

namespace rota::cluster {

ResourceSet compact_hull(const ResourceSet& supply, std::size_t max_segments) {
  if (max_segments == 0) {
    throw std::invalid_argument("digest needs max_segments >= 1");
  }
  ResourceSet hull;
  for (const LocatedType& type : supply.types()) {
    StepFunction profile = supply.availability(type);
    // Coarsening can only merge segments, so doubling the bucket width
    // converges: a non-zero profile bottoms out at one segment.
    for (Tick factor = 2; profile.segments().size() > max_segments; factor *= 2) {
      profile = profile.coarsened(factor);
    }
    if (!profile.is_zero()) hull.add(type, std::move(profile));
  }
  return hull;
}

SupplyDigest make_digest(const CommitmentLedger& ledger, Location site,
                         Tick now, std::size_t max_segments) {
  SupplyDigest digest;
  digest.site = site;
  digest.free = compact_hull(ledger.residual().from(now), max_segments);
  digest.revision = ledger.revision();
  digest.as_of = now;
  return digest;
}

}  // namespace rota::cluster
