#include "rota/cluster/message.hpp"

#include <stdexcept>

namespace rota::cluster {

std::string msg_kind_name(MsgKind k) {
  switch (k) {
    case MsgKind::kProbe: return "probe";
    case MsgKind::kOffer: return "offer";
    case MsgKind::kNack: return "nack";
    case MsgKind::kClaim: return "claim";
    case MsgKind::kClaimAck: return "claim-ack";
    case MsgKind::kClaimReject: return "claim-reject";
    case MsgKind::kDigest: return "digest";
  }
  throw std::invalid_argument("invalid MsgKind");
}

}  // namespace rota::cluster
