#include "rota/cluster/fabric.hpp"

#include <algorithm>
#include <stdexcept>

#include "rota/obs/obs.hpp"

namespace rota::cluster {

MessageFabric::MessageFabric(std::size_t nodes, std::uint64_t seed,
                             LinkParams defaults)
    : nodes_(nodes),
      defaults_(defaults),
      links_(nodes * nodes, defaults),
      down_(nodes, false),
      rng_(seed) {
  if (defaults.latency < 1) {
    throw std::invalid_argument("fabric latency must be >= 1 tick");
  }
}

NodeId MessageFabric::add_node() {
  const std::size_t n = nodes_ + 1;
  std::vector<LinkParams> grown(n * n, defaults_);
  for (std::size_t f = 0; f < nodes_; ++f) {
    for (std::size_t t = 0; t < nodes_; ++t) {
      grown[f * n + t] = links_[f * nodes_ + t];
    }
  }
  links_ = std::move(grown);
  down_.push_back(false);
  nodes_ = n;
  return static_cast<NodeId>(n - 1);
}

std::size_t MessageFabric::link_index(NodeId from, NodeId to) const {
  if (from >= nodes_ || to >= nodes_) {
    throw std::out_of_range("fabric link endpoint out of range");
  }
  return static_cast<std::size_t>(from) * nodes_ + to;
}

void MessageFabric::set_link(NodeId from, NodeId to, LinkParams params) {
  if (params.latency < 1) {
    throw std::invalid_argument("fabric latency must be >= 1 tick");
  }
  links_[link_index(from, to)] = params;
}

const LinkParams& MessageFabric::link(NodeId from, NodeId to) const {
  return links_[link_index(from, to)];
}

void MessageFabric::partition(NodeId a, NodeId b) {
  const auto cut = std::minmax(a, b);
  if (!partitions_.insert(cut).second) return;  // idempotent: nothing new cut
  // The cut severs the wire, not just the sockets: messages already in
  // flight across the pair are lost too, each counted exactly once. (Down
  // nodes differ — there the *node* died, so its traffic drops at delivery
  // time.) No Rng draws here, so the stream stays aligned with a run that
  // never partitions.
  std::size_t kept = 0;
  const bool metered = obs::metrics_enabled();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (std::minmax(queue_[i].msg.from, queue_[i].msg.to) == cut) {
      ++dropped_;
      if (metered) obs::CoreMetrics::get().fabric_dropped.add();
      continue;
    }
    if (kept != i) queue_[kept] = std::move(queue_[i]);
    ++kept;
  }
  queue_.resize(kept);
}

void MessageFabric::heal(NodeId a, NodeId b) {
  partitions_.erase(std::minmax(a, b));
}

bool MessageFabric::partitioned(NodeId a, NodeId b) const {
  return partitions_.count(std::minmax(a, b)) != 0;
}

void MessageFabric::set_down(NodeId n, bool down) {
  if (n >= nodes_) throw std::out_of_range("fabric node out of range");
  down_[n] = down;
}

bool MessageFabric::down(NodeId n) const {
  if (n >= nodes_) throw std::out_of_range("fabric node out of range");
  return down_[n];
}

void MessageFabric::send(Message m, Tick now) {
  if (m.from == m.to) throw std::invalid_argument("fabric rejects self-sends");
  const LinkParams& p = link(m.from, m.to);
  ++sent_;
  if (obs::metrics_enabled()) obs::CoreMetrics::get().fabric_sent.add();

  // Down endpoints and partitions silently eat traffic; the loss roll is
  // drawn regardless so a partitioned run consumes the same Rng stream as an
  // unpartitioned one up to the partition's first effect.
  const bool lost = p.drop > 0.0 && rng_.chance(p.drop);
  Tick delay = p.latency;
  if (p.jitter > 0) delay += rng_.uniform(0, p.jitter);
  if (p.reorder > 0.0 && rng_.chance(p.reorder)) delay += p.jitter + 1;

  if (lost || down_[m.from] || down_[m.to] || partitioned(m.from, m.to)) {
    ++dropped_;
    if (obs::metrics_enabled()) obs::CoreMetrics::get().fabric_dropped.add();
    return;
  }
  queue_.push_back(InFlight{now, now + delay, next_seq_++, std::move(m)});
}

std::vector<Message> MessageFabric::deliver_due(Tick now) {
  std::vector<InFlight> due;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].deliver_at <= now) {
      due.push_back(std::move(queue_[i]));
    } else {
      if (kept != i) queue_[kept] = std::move(queue_[i]);  // no self-move
      ++kept;
    }
  }
  queue_.resize(kept);
  std::sort(due.begin(), due.end(), [](const InFlight& a, const InFlight& b) {
    return a.deliver_at != b.deliver_at ? a.deliver_at < b.deliver_at
                                        : a.seq < b.seq;
  });

  const bool metered = obs::metrics_enabled();
  std::vector<Message> out;
  out.reserve(due.size());
  for (auto& f : due) {
    if (down_[f.msg.to]) {  // died while the message was on the wire
      ++dropped_;
      if (metered) obs::CoreMetrics::get().fabric_dropped.add();
      continue;
    }
    ++delivered_;
    if (metered) {
      obs::CoreMetrics& m = obs::CoreMetrics::get();
      m.fabric_delivered.add();
      m.fabric_delay_ticks.record(
          static_cast<std::uint64_t>(f.deliver_at - f.sent_at));
    }
    out.push_back(std::move(f.msg));
  }
  return out;
}

}  // namespace rota::cluster
