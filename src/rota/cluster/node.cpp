#include "rota/cluster/node.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "rota/obs/obs.hpp"

namespace rota::cluster {

std::string placement_name(Placement p) {
  switch (p) {
    case Placement::kLocal: return "local";
    case Placement::kRemote: return "remote";
    case Placement::kRejected: return "rejected";
  }
  throw std::invalid_argument("invalid Placement");
}

std::string JobDecision::to_string() const {
  std::ostringstream out;
  out << 'j' << id << ' ' << name << " origin=n" << origin << ' '
      << placement_name(outcome);
  if (outcome != Placement::kRejected) {
    out << " placed=n" << placed << " finish=" << planned_finish;
  } else {
    out << " reason=\"" << reason << '"';
  }
  out << " at=" << decided_at << " rounds=" << remote_rounds;
  if (lost) out << " lost";
  return out.str();
}

ClusterNode::ClusterNode(NodeId id, Location site, CostModel phi,
                         ResourceSet supply, NodeConfig config,
                         ClusterEvents* events, net::Transport* transport,
                         Tick now)
    : id_(id),
      site_(site),
      phi_(phi),
      advisor_(phi, config.policy),
      config_(config),
      events_(events),
      transport_(transport),
      owned_(std::make_unique<BatchNodeAdmission>(
          phi_, std::move(supply), config.policy, config.lanes, now)),
      admission_(owned_.get()),
      audit_(config.audit_capacity) {
  if (events == nullptr) {
    throw std::invalid_argument("ClusterNode needs an event sink");
  }
  if (transport == nullptr) {
    throw std::invalid_argument("ClusterNode needs a transport");
  }
}

ClusterNode::ClusterNode(NodeId id, Location site, CostModel phi,
                         NodeConfig config, ClusterEvents* events,
                         net::Transport* transport, NodeAdmission* admission)
    : id_(id),
      site_(site),
      phi_(phi),
      advisor_(phi, config.policy),
      config_(config),
      events_(events),
      transport_(transport),
      admission_(admission),
      audit_(config.audit_capacity) {
  if (events == nullptr) {
    throw std::invalid_argument("ClusterNode needs an event sink");
  }
  if (transport == nullptr) {
    throw std::invalid_argument("ClusterNode needs a transport");
  }
  if (admission == nullptr) {
    throw std::invalid_argument("ClusterNode needs an admission backend");
  }
}

const CommitmentLedger& ClusterNode::ledger() const {
  if (!owned_) {
    throw std::logic_error(
        "ClusterNode::ledger() is owned-ledger mode only; in daemon mode the "
        "AdmissionService owns the ledger");
  }
  return owned_->ledger();
}

void ClusterNode::set_peer(NodeId peer, Tick latency) {
  if (peer == id_) return;
  peer_latency_[peer] = std::max<Tick>(1, latency);
}

Tick ClusterNode::transfer_delay(NodeId peer, const WorkSpec& work) const {
  const auto it = peer_latency_.find(peer);
  const Tick latency = it == peer_latency_.end() ? 1 : it->second;
  // State ships at one unit per tick on top of the link latency.
  return latency + std::max<std::int64_t>(0, work.state_size);
}

WorkSpec ClusterNode::remote_spec(const WorkSpec& work, NodeId peer,
                                  Tick now) const {
  WorkSpec spec = work;
  spec.earliest_start =
      std::max(work.earliest_start, now + transfer_delay(peer, work));
  return spec;
}

ConcurrentRequirement ClusterNode::localize(const WorkSpec& work) const {
  WorkSpec here = work;
  here.home = site_;
  ActorComputation gamma =
      advisor_.materialize(here, PlacementKind::kStay, site_);
  DistributedComputation lambda(work.actor + "@" + site_.name(), {gamma},
                                here.earliest_start, here.deadline);
  return make_concurrent_requirement(phi_, lambda);
}

void ClusterNode::send(Message m) { transport_->send(std::move(m)); }

void ClusterNode::pump(Tick now) {
  for (const Message& m : transport_->receive()) handle(m, now);
}

std::vector<NodeId> ClusterNode::rank_candidates(const WorkSpec& work,
                                                 Tick now) const {
  struct Scored {
    bool feasible = false;
    Tick finish = 0;
    NodeId peer = kNoNode;
  };
  std::vector<Scored> scored;
  std::vector<NodeId> undigested;  // peers we know but have no digest from

  for (const auto& [peer, latency] : peer_latency_) {
    (void)latency;
    WorkSpec spec = remote_spec(work, peer, now);
    if (spec.earliest_start >= spec.deadline) continue;  // deadline budget
    const auto it = digests_.find(peer);
    if (it == digests_.end()) {
      undigested.push_back(peer);
      continue;
    }
    spec.home = it->second.site;
    const PlacementOption option = advisor_.assess(
        it->second.free, spec, PlacementKind::kStay, it->second.site);
    scored.push_back(
        {option.feasible, option.feasible ? option.finish : spec.deadline, peer});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.feasible != b.feasible) return a.feasible;
    if (a.finish != b.finish) return a.finish < b.finish;
    return a.peer < b.peer;  // deterministic tie: stable order by node id
  });

  std::vector<NodeId> out;
  out.reserve(scored.size() + undigested.size());
  for (const Scored& s : scored) out.push_back(s.peer);
  // Digest-less peers go last, in id order: nothing speaks for them, but a
  // stale-free cluster start (or a long partition) should still degrade to
  // blind probing rather than give up outright.
  out.insert(out.end(), undigested.begin(), undigested.end());
  return out;
}

void ClusterNode::submit(const std::vector<ClusterJob>& jobs, Tick now) {
  if (jobs.empty()) return;
  if (down_) {
    // Jobs arriving at a dead node still get a decision: nobody is home.
    const bool down_metered = obs::metrics_enabled();
    if (down_metered) obs::CoreMetrics::get().cluster_submitted.add(jobs.size());
    for (const ClusterJob& job : jobs) {
      if (down_metered) obs::CoreMetrics::get().cluster_rejects.add();
      events_->decisions.push_back(JobDecision{
          job.id, job.work.actor, id_, Placement::kRejected, kNoNode, now, 0, 0,
          "origin node down", false});
    }
    return;
  }
  ROTA_OBS_SPAN("cluster.submit");
  const bool metered = obs::metrics_enabled();
  if (metered) obs::CoreMetrics::get().cluster_submitted.add(jobs.size());

  std::vector<std::size_t> batched;  // indices with a non-degenerate window
  std::vector<BatchRequest> requests;
  requests.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const WorkSpec& w = jobs[i].work;
    if (w.deadline <= w.earliest_start || w.chunk_weights.empty()) {
      if (metered) obs::CoreMetrics::get().cluster_rejects.add();
      events_->decisions.push_back(JobDecision{
          jobs[i].id, w.actor, id_, Placement::kRejected, kNoNode, now, 0, 0,
          "malformed work spec", false});
      continue;
    }
    batched.push_back(i);
    requests.push_back(BatchRequest{localize(w), now});
  }
  const std::vector<AdmissionDecision> decisions =
      admission_->admit_batch(requests);

  for (std::size_t b = 0; b < batched.size(); ++b) {
    const std::size_t i = batched[b];
    audit_.record(now, requests[b].rho, decisions[b]);
    const ClusterJob& job = jobs[i];
    if (decisions[b].accepted) {
      if (metered) obs::CoreMetrics::get().cluster_local_accepts.add();
      events_->decisions.push_back(JobDecision{
          job.id, job.work.actor, id_, Placement::kLocal, id_, now,
          decisions[b].plan->finish, 0, "", false});
      events_->placements.push_back(PlacedAdmission{
          job.id, id_, now, requests[b].rho, *decisions[b].plan, false});
      continue;
    }
    enter_remote_or_reject(job.id, job.work, decisions[b].reason, now);
  }
  flush_done();
}

void ClusterNode::enter_remote_or_reject(std::uint64_t id, const WorkSpec& work,
                                         const std::string& local_reason,
                                         Tick now) {
  const TimeInterval window(std::max(now, work.earliest_start), work.deadline);
  if (window.empty() || config_.max_remote_rounds == 0 ||
      peer_latency_.empty()) {
    if (obs::metrics_enabled()) obs::CoreMetrics::get().cluster_rejects.add();
    events_->decisions.push_back(JobDecision{
        id, work.actor, id_, Placement::kRejected, kNoNode, now, 0, 0,
        window.empty() ? local_reason : "local: " + local_reason, false});
    return;
  }
  start_remote(id, work, now);
}

void ClusterNode::submit_remote(std::uint64_t id, const WorkSpec& work,
                                const std::string& local_reason, Tick now) {
  if (down_) {
    if (obs::metrics_enabled()) obs::CoreMetrics::get().cluster_rejects.add();
    events_->decisions.push_back(JobDecision{id, work.actor, id_,
                                             Placement::kRejected, kNoNode, now,
                                             0, 0, "origin node down", false});
    return;
  }
  if (obs::metrics_enabled()) obs::CoreMetrics::get().cluster_submitted.add();
  enter_remote_or_reject(id, work, local_reason, now);
  flush_done();
}

void ClusterNode::start_remote(std::uint64_t id, const WorkSpec& work,
                               Tick now) {
  PendingJob job;
  job.work = work;
  job.submitted_at = now;
  job.candidates = rank_candidates(work, now);
  auto [it, inserted] = pending_.emplace(id, std::move(job));
  if (!inserted) throw std::logic_error("duplicate cluster job id");
  next_round(id, it->second, now);
}

void ClusterNode::next_round(std::uint64_t id, PendingJob& job, Tick now) {
  if (job.rounds >= config_.max_remote_rounds) {
    reject_remote(id, job, "remote attempts exhausted", now);
    return;
  }
  job.phase = PendingJob::Phase::kProbing;
  job.offers.clear();
  job.probes_out.clear();

  const bool metered = obs::metrics_enabled();
  std::size_t sent = 0;
  while (sent < config_.fanout && job.next_candidate < job.candidates.size()) {
    const NodeId peer = job.candidates[job.next_candidate++];
    const WorkSpec spec = remote_spec(job.work, peer, now);
    if (spec.earliest_start >= spec.deadline) continue;  // budget: skip peer
    Message m;
    m.kind = MsgKind::kProbe;
    m.from = id_;
    m.to = peer;
    m.job = id;
    m.work = spec;
    send(std::move(m));
    if (metered) obs::CoreMetrics::get().cluster_probes.add();
    job.probes_out[peer] = now;
    ++sent;
  }
  if (sent == 0) {
    reject_remote(id, job,
                  job.rounds == 0 ? "no remote candidate within deadline budget"
                                  : "remote candidates exhausted",
                  now);
    return;
  }
  ++job.rounds;
  job.probe_deadline = now + config_.probe_timeout;
}

void ClusterNode::conclude_probe_round(std::uint64_t id, PendingJob& job,
                                       Tick now) {
  if (job.offers.empty()) {
    schedule_retry(id, job, now, "no offers");
    return;
  }
  const auto best = *std::min_element(job.offers.begin(), job.offers.end());
  const WorkSpec spec = remote_spec(job.work, best.second, now);
  if (spec.earliest_start >= spec.deadline) {
    schedule_retry(id, job, now, "offer outlived the deadline budget");
    return;
  }
  Message m;
  m.kind = MsgKind::kClaim;
  m.from = id_;
  m.to = best.second;
  m.job = id;
  m.work = spec;
  send(std::move(m));
  if (obs::metrics_enabled()) obs::CoreMetrics::get().cluster_claims.add();
  job.phase = PendingJob::Phase::kClaiming;
  job.claim_target = best.second;
  job.claim_deadline = now + config_.claim_timeout;
  job.offers.clear();
}

void ClusterNode::schedule_retry(std::uint64_t id, PendingJob& job, Tick now,
                                 const std::string& cause) {
  if (job.rounds >= config_.max_remote_rounds) {
    reject_remote(id, job, "remote attempts exhausted (last: " + cause + ")",
                  now);
    return;
  }
  if (job.next_candidate >= job.candidates.size()) {
    reject_remote(id, job, "remote candidates exhausted (last: " + cause + ")",
                  now);
    return;
  }
  job.backoff = job.backoff == 0
                    ? std::max<Tick>(1, config_.backoff_base)
                    : std::min(job.backoff * 2, config_.backoff_cap);
  job.retry_at = now + job.backoff;
  job.phase = PendingJob::Phase::kBackoff;
  if (obs::metrics_enabled()) obs::CoreMetrics::get().cluster_retries.add();
}

void ClusterNode::finish_remote(std::uint64_t id, PendingJob& job,
                                NodeId placed, Tick finish, Tick now) {
  if (obs::metrics_enabled()) obs::CoreMetrics::get().cluster_remote_accepts.add();
  events_->decisions.push_back(JobDecision{id, job.work.actor, id_,
                                           Placement::kRemote, placed, now,
                                           finish, job.rounds, "", false});
  done_.push_back(id);
}

void ClusterNode::reject_remote(std::uint64_t id, PendingJob& job,
                                const std::string& reason, Tick now) {
  if (obs::metrics_enabled()) obs::CoreMetrics::get().cluster_rejects.add();
  events_->decisions.push_back(JobDecision{id, job.work.actor, id_,
                                           Placement::kRejected, kNoNode, now, 0,
                                           job.rounds, reason, false});
  done_.push_back(id);
}

void ClusterNode::handle(const Message& m, Tick now) {
  if (down_) return;
  const bool metered = obs::metrics_enabled();
  switch (m.kind) {
    case MsgKind::kProbe: {
      ROTA_OBS_SPAN("cluster.probe");
      Message r;
      r.from = id_;
      r.to = m.from;
      r.job = m.job;
      // Speculative feasibility only — nothing is reserved. The claim
      // re-plans against whatever the residual is then.
      const ConcurrentRequirement rho = localize(m.work);
      const PlanResult result = admission_->probe(rho, now);
      if (result.status == PlanStatus::kDeadlinePassed) {
        r.kind = MsgKind::kNack;
        r.note = "deadline passed in transit";
      } else if (result.feasible()) {
        r.kind = MsgKind::kOffer;
        r.finish = result.plan->finish;
      } else {
        r.kind = MsgKind::kNack;
        r.note = "no capacity";
      }
      send(std::move(r));
      break;
    }
    case MsgKind::kOffer:
    case MsgKind::kNack: {
      const auto it = pending_.find(m.job);
      if (it == pending_.end() ||
          it->second.phase != PendingJob::Phase::kProbing) {
        break;  // late reply; the job moved on
      }
      PendingJob& job = it->second;
      job.probes_out.erase(m.from);
      if (m.kind == MsgKind::kOffer) {
        if (metered) obs::CoreMetrics::get().cluster_offers.add();
        job.offers.emplace_back(m.finish, m.from);
      }
      if (job.probes_out.empty()) conclude_probe_round(m.job, job, now);
      break;
    }
    case MsgKind::kClaim: {
      ROTA_OBS_SPAN("cluster.claim");
      // Re-validate against the live residual: the offer was computed from a
      // snapshot that other claims or local admissions may have consumed.
      const ConcurrentRequirement rho = localize(m.work);
      const AdmissionDecision decision = admission_->claim(rho, now);
      audit_.record(now, rho, decision);
      Message r;
      r.from = id_;
      r.to = m.from;
      r.job = m.job;
      if (decision.accepted) {
        events_->placements.push_back(
            PlacedAdmission{m.job, id_, now, rho, *decision.plan, false});
        r.kind = MsgKind::kClaimAck;
        r.finish = decision.plan->finish;
      } else {
        if (metered) obs::CoreMetrics::get().cluster_claims_stale.add();
        r.kind = MsgKind::kClaimReject;
        r.note = decision.reason;
      }
      send(std::move(r));
      break;
    }
    case MsgKind::kClaimAck: {
      const auto it = pending_.find(m.job);
      if (it == pending_.end() ||
          it->second.phase != PendingJob::Phase::kClaiming ||
          it->second.claim_target != m.from) {
        break;  // orphan ack (we already moved on); see docs/cluster.md
      }
      finish_remote(m.job, it->second, m.from, m.finish, now);
      break;
    }
    case MsgKind::kClaimReject: {
      const auto it = pending_.find(m.job);
      if (it == pending_.end() ||
          it->second.phase != PendingJob::Phase::kClaiming ||
          it->second.claim_target != m.from) {
        break;
      }
      it->second.claim_target = kNoNode;
      schedule_retry(m.job, it->second, now, "claim rejected (stale offer)");
      break;
    }
    case MsgKind::kDigest: {
      auto it = digests_.find(m.from);
      if (it == digests_.end() || it->second.as_of <= m.digest.as_of) {
        digests_[m.from] = m.digest;
      }
      break;
    }
  }
  flush_done();
}

void ClusterNode::on_tick(Tick now) {
  if (down_) return;
  const bool metered = obs::metrics_enabled();
  for (auto& [id, job] : pending_) {
    if (config_.expire_by_deadline && now >= job.work.deadline) {
      // The deadline budget is spent; further probing cannot produce a plan
      // that finishes in time, so answer now instead of letting the
      // conversation limp through more rounds.
      reject_remote(id, job, "deadline passed while pending", now);
      continue;
    }
    switch (job.phase) {
      case PendingJob::Phase::kProbing:
        if (now >= job.probe_deadline && !job.probes_out.empty()) {
          if (metered) {
            obs::CoreMetrics::get().cluster_timeouts.add(job.probes_out.size());
          }
          job.probes_out.clear();
          conclude_probe_round(id, job, now);
        }
        break;
      case PendingJob::Phase::kClaiming:
        if (now >= job.claim_deadline) {
          if (metered) obs::CoreMetrics::get().cluster_timeouts.add();
          job.claim_target = kNoNode;
          schedule_retry(id, job, now, "claim timed out");
        }
        break;
      case PendingJob::Phase::kBackoff:
        if (now >= job.retry_at) next_round(id, job, now);
        break;
    }
  }
  if (config_.gossip_period > 0 && !peer_latency_.empty() &&
      (now + id_) % config_.gossip_period == 0) {
    gossip(now);
  }
  flush_done();
}

void ClusterNode::gossip(Tick now) {
  const SupplyDigest digest =
      admission_->digest(site_, now, config_.digest_max_segments);
  const bool metered = obs::metrics_enabled();
  for (const auto& [peer, latency] : peer_latency_) {
    (void)latency;
    Message m;
    m.kind = MsgKind::kDigest;
    m.from = id_;
    m.to = peer;
    m.digest = digest;
    send(std::move(m));
    if (metered) obs::CoreMetrics::get().cluster_gossip.add();
  }
}

void ClusterNode::crash(Tick now) {
  if (down_) return;
  if (!owned_) {
    throw std::logic_error("crash() is owned-ledger mode only");
  }
  down_ = true;
  owned_->drop_state();
  digests_.clear();
  transport_->drop_pending();
  const bool metered = obs::metrics_enabled();
  for (auto& [id, job] : pending_) {
    if (metered) obs::CoreMetrics::get().cluster_rejects.add();
    events_->decisions.push_back(JobDecision{id, job.work.actor, id_,
                                             Placement::kRejected, kNoNode, now,
                                             0, job.rounds,
                                             "origin node crashed", false});
  }
  pending_.clear();
  done_.clear();
}

void ClusterNode::restart(Tick now, bool recover) {
  if (!down_) throw std::logic_error("restart of a node that is not down");
  if (!owned_) {
    throw std::logic_error("restart() is owned-ledger mode only");
  }
  owned_->rebuild(now);
  down_ = false;
  if (recover) {
    ROTA_OBS_SPAN("cluster.recover");
    audit_.replay_into(owned_->ledger_for_recovery());
    if (obs::metrics_enabled()) obs::CoreMetrics::get().cluster_recoveries.add();
  }
}

void ClusterNode::abort_pending(Tick now, const std::string& reason) {
  for (auto& [id, job] : pending_) reject_remote(id, job, reason, now);
  flush_done();
}

void ClusterNode::flush_done() {
  for (std::uint64_t id : done_) pending_.erase(id);
  done_.clear();
}

}  // namespace rota::cluster
