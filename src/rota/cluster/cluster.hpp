// The cluster control loop: N ClusterNodes federated over a MessageFabric.
//
// ClusterSim owns the nodes, their FabricTransports, the fabric, and a fault
// schedule, and advances everything in one deterministic tick loop:
//
//   faults → deliveries → arrivals → node ticks → transport flush
//
// with every stage iterating nodes in id order. Deliveries are dispatched in
// the fabric's global (deliver_at, seq) order — each message is pushed into
// its destination transport and that node is pumped immediately — and sends
// staged on the transports are flushed to the fabric per node in id order at
// end of tick, so sequence numbers are assigned exactly as the historical
// outbox-drain loop assigned them. All randomness lives in the seeded fabric
// (latency jitter, loss, reorder) and in whatever generator produced the
// arrival list, so two runs with the same seed and schedule produce
// byte-identical decision logs — the property the determinism tests and the
// bench harness assert.
//
// The report separates *control* from *execution*: decisions and committed
// placements come out of the control loop; schedule_into() replays the
// surviving placements into the plan-following Simulator for the end-to-end
// deadline check (admitted ∧ not lost to a crash ⇒ deadline met).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rota/cluster/fabric.hpp"
#include "rota/cluster/node.hpp"
#include "rota/faults/schedule.hpp"
#include "rota/io/scenario.hpp"
#include "rota/sim/simulator.hpp"

namespace rota::cluster {

struct ClusterConfig {
  std::uint64_t seed = 1;
  NodeConfig node;          // defaults for nodes added without an override
  LinkParams default_link;  // defaults for links never set explicitly
};

/// One job entering the cluster at a node.
struct ClusterArrival {
  Tick at = 0;
  NodeId origin = kNoNode;
  ClusterJob job;
};

/// Everything the control loop decided, plus derived rates.
struct ClusterReport {
  std::vector<JobDecision> decisions;
  std::vector<PlacedAdmission> placements;

  // Fabric totals over the run. sent == dropped + delivered + in_flight:
  // every message is accounted exactly once (the `cluster` fuzz family pins
  // this, partitions and crashes included).
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_in_flight = 0;  // still queued at the horizon

  // Closed-loop retries (set_retry_policy): how many rejected jobs were
  // resubmitted, and which root submission each retry id descends from.
  std::uint64_t resubmissions = 0;
  std::map<std::uint64_t, std::uint64_t> retry_root;  // retry id -> root id

  std::size_t submitted() const { return decisions.size(); }
  std::size_t accepted(Placement kind) const;
  std::size_t accepted_total() const;
  std::size_t rejected() const;
  std::size_t lost() const;

  /// Accepted-and-survived over submitted. By plan-following soundness every
  /// surviving placement meets its deadline, so this *is* the deadline-hit
  /// rate (test_cluster.cpp checks the implication end to end).
  double deadline_hit_rate() const;
  /// Remote placements over all accepted — how much the federation moved.
  double forwarded_fraction() const;
  /// Per *root* submission (retries folded into their original): the
  /// fraction whose closed loop ended with a surviving accept. With no
  /// retries this equals deadline_hit_rate().
  double root_hit_rate() const;

  /// Canonical one-line-per-decision log; equal seeds ⇒ equal strings.
  std::string decision_log() const;

  /// Replays every surviving placement into `sim` (plan-following mode).
  void schedule_into(Simulator& sim) const;
};

class ClusterSim {
 public:
  ClusterSim(CostModel phi, ClusterConfig config);

  /// Adds a node hosting `site` with `supply`; returns its id (dense, in
  /// insertion order). All existing nodes learn the new peer and vice versa.
  NodeId add_node(Location site, ResourceSet supply);
  NodeId add_node(Location site, ResourceSet supply, NodeConfig node_config);

  /// Symmetric link override (both directions); also refreshes the latency
  /// estimate each endpoint uses for deadline budgeting.
  void set_link(NodeId a, NodeId b, LinkParams params);

  /// A job arriving at `origin` at `at`; returns the assigned job id.
  std::uint64_t submit(Tick at, NodeId origin, WorkSpec work);

  // Fault schedule. Crashes drop the node's ledger and every in-flight
  // conversation; restarts rebuild from base supply, replaying the audit log
  // when `recover` is set. Partitions cut the wire: traffic between the pair
  // — already in flight included — is dropped until healed, and nodes
  // degrade to timeouts, retries, and finally local-only behaviour.
  void schedule_crash(Tick at, NodeId node);
  void schedule_restart(Tick at, NodeId node, bool recover);
  void schedule_partition(Tick at, NodeId a, NodeId b);
  void schedule_heal(Tick at, NodeId a, NodeId b);

  /// Applies a whole FaultSchedule (validated against this cluster's size).
  /// Events land in schedule order — same-tick events apply as written.
  void apply(const faults::FaultSchedule& schedule);

  /// Enables closed-loop clients: after the run's regular arrivals, every
  /// rejected job is resubmitted at its origin under `policy` (fresh job id,
  /// same spec; earliest start pushed to the resubmission tick), with
  /// backoff jitter drawn from a dedicated Rng seeded with `seed` — retries
  /// never perturb the fabric's stream, so a retry-storm run stays exactly
  /// as replayable as a fault-free one.
  void set_retry_policy(const faults::RetryPolicy& policy, std::uint64_t seed);

  /// Runs the control loop over [0, horizon) and returns the report.
  /// Single-shot: a ClusterSim instance runs once.
  ClusterReport run(Tick horizon);

  std::size_t size() const { return nodes_.size(); }
  ClusterNode& node(NodeId id) { return *nodes_.at(id); }
  const ClusterNode& node(NodeId id) const { return *nodes_.at(id); }
  MessageFabric& fabric() { return fabric_; }
  /// Union of every node's base supply (for building the execution Simulator).
  ResourceSet total_supply() const;

 private:
  struct Fault {
    enum class Kind { kCrash, kRestart, kPartition, kHeal };
    Tick at = 0;
    Kind kind = Kind::kCrash;
    NodeId a = kNoNode;
    NodeId b = kNoNode;  // partition/heal peer
    bool recover = false;
  };

  void apply_faults(Tick now);
  void mark_lost();
  /// End-of-tick retry scan: every decision appended since the last scan
  /// that rejected a job with attempt budget left is queued for
  /// resubmission at a backoff-jittered later tick (skipped when that tick
  /// falls past the horizon — every queued retry gets a decision).
  void scan_for_retries(Tick now, Tick horizon);
  /// Injects the retries due at `now` (after the tick's regular arrivals).
  void inject_retries(Tick now);

  CostModel phi_;
  ClusterConfig config_;
  MessageFabric fabric_;
  /// Heap-held so node back-pointers survive moving the ClusterSim
  /// (cluster_from_scenario returns one by value).
  std::unique_ptr<ClusterEvents> events_ = std::make_unique<ClusterEvents>();
  /// One FabricTransport per node, heap-held for the same reason as nodes_.
  std::vector<std::unique_ptr<FabricTransport>> transports_;
  std::vector<std::unique_ptr<ClusterNode>> nodes_;
  std::vector<ResourceSet> supplies_;  // per node, for total_supply()
  std::vector<ClusterArrival> arrivals_;
  std::vector<Fault> faults_;
  /// Per node: (crash_at, restart_at or kTickMax, recovered) intervals, for
  /// marking placements the crash destroyed.
  std::vector<std::vector<std::tuple<Tick, Tick, bool>>> outages_;
  std::uint64_t next_job_id_ = 0;
  bool ran_ = false;

  // Closed-loop retry engine (inactive until set_retry_policy()).
  bool retries_enabled_ = false;
  faults::RetryPolicy retry_policy_;
  util::Rng retry_rng_;
  std::size_t decisions_seen_ = 0;             // scan cursor into decisions
  std::map<std::uint64_t, WorkSpec> specs_;    // job id -> submitted spec
  std::map<std::uint64_t, NodeId> origins_;    // job id -> origin node
  std::map<std::uint64_t, std::uint64_t> retry_root_;  // retry id -> root id
  std::map<std::uint64_t, std::size_t> attempts_;      // root id -> submissions
  std::map<Tick, std::vector<ClusterArrival>> retry_queue_;
  std::uint64_t resubmissions_ = 0;
};

/// Builds a cluster from a scenario's `node`/`link` section: one ClusterNode
/// per `node` line (in file order, with its declared lanes), links applied
/// symmetrically, and each node's supply = the slice of the scenario supply
/// whose types live at (or depart from) the node's location. Throws
/// std::invalid_argument when the scenario declares no nodes.
ClusterSim cluster_from_scenario(const Scenario& scenario, CostModel phi,
                                 ClusterConfig config);

}  // namespace rota::cluster
