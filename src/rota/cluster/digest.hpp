// Supply digests: the compact, conservative residual hulls nodes gossip.
//
// A digest must be small (it rides in every gossip round) and must never
// overstate capacity (a peer ranks migration targets from it, and an
// optimistic hull would manufacture probe traffic to nodes that cannot
// help). Both follow from building the hull out of StepFunction::coarsened,
// which takes the *minimum* rate inside each bucket: any plan feasible
// against the hull is feasible against the true residual at digest time.
// Staleness is handled upstream — claims re-validate against live state.
#pragma once

#include <cstddef>

#include "rota/admission/ledger.hpp"
#include "rota/cluster/message.hpp"

namespace rota::cluster {

/// Conservative per-type compaction: each availability profile is coarsened
/// (bucket-minimum downsampling, doubling the bucket width) until it fits in
/// `max_segments` segments. The result is dominated by the input everywhere.
ResourceSet compact_hull(const ResourceSet& supply, std::size_t max_segments);

/// The digest a node gossips at `now`: its residual with the past dropped,
/// compacted to at most `max_segments` segments per located type, stamped
/// with the ledger revision and tick.
SupplyDigest make_digest(const CommitmentLedger& ledger, Location site,
                         Tick now, std::size_t max_segments);

}  // namespace rota::cluster
