// The simulated message fabric under the federated admission layer.
//
// Nodes in the cluster exchange probe/offer/claim RPCs and supply-digest
// gossip over this fabric: a deterministic, seeded in-process network with
// per-directed-link latency, jitter, loss and reordering, plus partitions
// and per-node down states for fault injection. Delivery is discrete-time:
// a message sent at tick t on a link with latency L and jitter J arrives at
// t + L + U[0, J] (U drawn from the fabric's own Rng), so two fabrics built
// from the same seed and fed the same send sequence deliver byte-identical
// message sequences — the substrate the cluster's determinism guarantees
// stand on.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "rota/advisor/migration_advisor.hpp"
#include "rota/resource/resource_set.hpp"
#include "rota/time/interval.hpp"
#include "rota/util/rng.hpp"

namespace rota::cluster {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

enum class MsgKind : std::uint8_t {
  kProbe,        // origin -> peer: can you take this job? (no commitment)
  kOffer,        // peer -> origin: yes, estimated finish attached
  kNack,         // peer -> origin: no (reason attached)
  kClaim,        // origin -> peer: commit the probed job (re-validated live)
  kClaimAck,     // peer -> origin: committed; plan finish attached
  kClaimReject,  // peer -> origin: residual moved since the offer (stale)
  kDigest,       // gossip: compact residual hull + revision + age
};

std::string msg_kind_name(MsgKind k);

/// A node's gossiped view of its own free capacity: the residual compacted
/// to a small conservative hull per located type (never overstates what the
/// full residual could supply), stamped with the ledger revision and the
/// tick it was taken at. Receivers rank migration targets from these and
/// re-validate at claim time — rankings are live-but-stale by design.
struct SupplyDigest {
  Location site;
  ResourceSet free;            // conservative hull of the residual
  std::uint64_t revision = 0;  // ledger revision the hull was taken at
  Tick as_of = 0;              // tick the hull was taken at

  bool operator==(const SupplyDigest&) const = default;
};

/// One fabric message. In-process, so payloads ride along as plain fields;
/// which fields are meaningful depends on `kind` (see the enum).
struct Message {
  MsgKind kind = MsgKind::kProbe;
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::uint64_t job = 0;   // origin-assigned correlation id (probe..claim)
  WorkSpec work;           // probe/claim payload; earliest_start already
                           // includes the origin's transfer-delay estimate
  Tick finish = 0;         // offer / claim-ack: planned finish
  std::string note;        // nack / claim-reject: reason
  SupplyDigest digest;     // kDigest payload
};

/// Per-directed-link delivery characteristics.
struct LinkParams {
  Tick latency = 1;       // fixed delivery delay, >= 1 tick
  Tick jitter = 0;        // extra uniform delay in [0, jitter]
  double drop = 0.0;      // per-message loss probability
  double reorder = 0.0;   // probability of an extra (jitter + 1)-tick stall,
                          // enough to overtake later traffic on the link
};

class MessageFabric {
 public:
  MessageFabric(std::size_t nodes, std::uint64_t seed,
                LinkParams defaults = LinkParams{});

  std::size_t nodes() const { return nodes_; }
  /// Grows the fabric by one node (cluster join); new links use defaults.
  NodeId add_node();

  void set_link(NodeId from, NodeId to, LinkParams params);
  const LinkParams& link(NodeId from, NodeId to) const;

  /// Symmetric partition: messages in both directions are dropped until
  /// heal(). Partitioning a pair twice is idempotent.
  void partition(NodeId a, NodeId b);
  void heal(NodeId a, NodeId b);
  bool partitioned(NodeId a, NodeId b) const;

  /// Crashed nodes neither send nor receive; in-flight messages addressed to
  /// a down node are dropped at delivery time (they were on the wire when it
  /// died).
  void set_down(NodeId n, bool down);
  bool down(NodeId n) const;

  /// Queues `m` for delivery, or drops it (loss roll, partition, either
  /// endpoint down). Self-sends are rejected: nodes talk to themselves
  /// directly, not over the network.
  void send(Message m, Tick now);

  /// Removes and returns every message due at or before `now`, ordered by
  /// (delivery tick, send sequence) — a deterministic order in which jitter
  /// and reorder stalls are visible as sequence inversions.
  std::vector<Message> deliver_due(Tick now);

  std::size_t in_flight() const { return queue_.size(); }
  std::uint64_t total_sent() const { return sent_; }
  std::uint64_t total_dropped() const { return dropped_; }
  std::uint64_t total_delivered() const { return delivered_; }

 private:
  struct InFlight {
    Tick sent_at = 0;
    Tick deliver_at = 0;
    std::uint64_t seq = 0;
    Message msg;
  };

  std::size_t link_index(NodeId from, NodeId to) const;

  std::size_t nodes_;
  LinkParams defaults_;
  std::vector<LinkParams> links_;  // nodes_ x nodes_ row-major
  std::set<std::pair<NodeId, NodeId>> partitions_;  // normalized (min, max)
  std::vector<bool> down_;
  std::vector<InFlight> queue_;  // unordered; deliver_due sorts the due slice
  util::Rng rng_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace rota::cluster
