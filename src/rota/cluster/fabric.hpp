// The simulated message fabric under the federated admission layer.
//
// Nodes in the cluster exchange probe/offer/claim RPCs and supply-digest
// gossip over this fabric: a deterministic, seeded in-process network with
// per-directed-link latency, jitter, loss and reordering, plus partitions
// and per-node down states for fault injection. Delivery is discrete-time:
// a message sent at tick t on a link with latency L and jitter J arrives at
// t + L + U[0, J] (U drawn from the fabric's own Rng), so two fabrics built
// from the same seed and fed the same send sequence deliver byte-identical
// message sequences — the substrate the cluster's determinism guarantees
// stand on.
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "rota/cluster/message.hpp"
#include "rota/net/transport.hpp"
#include "rota/util/rng.hpp"

namespace rota::cluster {

/// Per-directed-link delivery characteristics.
struct LinkParams {
  Tick latency = 1;       // fixed delivery delay, >= 1 tick
  Tick jitter = 0;        // extra uniform delay in [0, jitter]
  double drop = 0.0;      // per-message loss probability
  double reorder = 0.0;   // probability of an extra (jitter + 1)-tick stall,
                          // enough to overtake later traffic on the link
};

class MessageFabric {
 public:
  MessageFabric(std::size_t nodes, std::uint64_t seed,
                LinkParams defaults = LinkParams{});

  std::size_t nodes() const { return nodes_; }
  /// Grows the fabric by one node (cluster join); new links use defaults.
  NodeId add_node();

  void set_link(NodeId from, NodeId to, LinkParams params);
  const LinkParams& link(NodeId from, NodeId to) const;

  /// Symmetric partition: messages in both directions are dropped until
  /// heal(), and messages already in flight across the pair are dropped on
  /// the spot (the cut severs the wire; each counts once in total_dropped).
  /// Partitioning a pair twice is idempotent — the second call purges
  /// nothing and draws nothing.
  void partition(NodeId a, NodeId b);
  void heal(NodeId a, NodeId b);
  bool partitioned(NodeId a, NodeId b) const;

  /// Crashed nodes neither send nor receive; in-flight messages addressed to
  /// a down node are dropped at delivery time (they were on the wire when it
  /// died).
  void set_down(NodeId n, bool down);
  bool down(NodeId n) const;

  /// Queues `m` for delivery, or drops it (loss roll, partition, either
  /// endpoint down). Self-sends are rejected: nodes talk to themselves
  /// directly, not over the network.
  void send(Message m, Tick now);

  /// Removes and returns every message due at or before `now`, ordered by
  /// (delivery tick, send sequence) — a deterministic order in which jitter
  /// and reorder stalls are visible as sequence inversions.
  std::vector<Message> deliver_due(Tick now);

  std::size_t in_flight() const { return queue_.size(); }
  std::uint64_t total_sent() const { return sent_; }
  std::uint64_t total_dropped() const { return dropped_; }
  std::uint64_t total_delivered() const { return delivered_; }

 private:
  struct InFlight {
    Tick sent_at = 0;
    Tick deliver_at = 0;
    std::uint64_t seq = 0;
    Message msg;
  };

  std::size_t link_index(NodeId from, NodeId to) const;

  std::size_t nodes_;
  LinkParams defaults_;
  std::vector<LinkParams> links_;  // nodes_ x nodes_ row-major
  std::set<std::pair<NodeId, NodeId>> partitions_;  // normalized (min, max)
  std::vector<bool> down_;
  std::vector<InFlight> queue_;  // unordered; deliver_due sorts the due slice
  util::Rng rng_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t delivered_ = 0;
};

/// The deterministic Transport over MessageFabric: one endpoint's view of the
/// simulated network, driven entirely by ClusterSim's tick loop.
///
/// Determinism contract — this is what keeps the refactored control loop
/// byte-identical to the historical outbox-drain one:
///   * send() only *stages*; ClusterSim calls flush() per node in node-id
///     order at end of tick, so the fabric assigns send-sequence numbers in
///     exactly the order the old loop did (seq breaks delivery-tick ties).
///   * The sim delivers fabric messages in global (deliver_at, seq) order by
///     pushing each one into the destination transport's inbox (deliver())
///     and pumping that node immediately, rather than letting transports
///     poll — per-endpoint polling would erase the cross-node ordering.
class FabricTransport final : public net::Transport {
 public:
  FabricTransport(MessageFabric* fabric, NodeId local)
      : fabric_(fabric), local_(local) {}

  NodeId local() const override { return local_; }
  void send(Message m) override { staged_.push_back(std::move(m)); }
  std::vector<Message> receive() override { return std::exchange(inbox_, {}); }
  Tick now() const override { return now_; }
  void drop_pending() override { staged_.clear(); }
  void close() override { staged_.clear(); inbox_.clear(); }

  // --- sim-side driving surface ---

  /// Hands an arriving message to this endpoint (the sim's delivery loop).
  void deliver(Message m) { inbox_.push_back(std::move(m)); }
  /// Releases staged sends to the fabric in staging order.
  void flush(Tick now) {
    for (Message& m : staged_) fabric_->send(std::move(m), now);
    staged_.clear();
  }
  void set_now(Tick now) { now_ = now; }

 private:
  MessageFabric* fabric_;
  NodeId local_;
  Tick now_ = 0;
  std::vector<Message> staged_;  // sends awaiting the end-of-tick flush
  std::vector<Message> inbox_;   // deliveries awaiting the node's pump
};

}  // namespace rota::cluster
