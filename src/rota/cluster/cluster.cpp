#include "rota/cluster/cluster.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "rota/obs/obs.hpp"

namespace rota::cluster {

std::size_t ClusterReport::accepted(Placement kind) const {
  return static_cast<std::size_t>(
      std::count_if(decisions.begin(), decisions.end(),
                    [kind](const JobDecision& d) { return d.outcome == kind; }));
}

std::size_t ClusterReport::accepted_total() const {
  return accepted(Placement::kLocal) + accepted(Placement::kRemote);
}

std::size_t ClusterReport::rejected() const {
  return accepted(Placement::kRejected);
}

std::size_t ClusterReport::lost() const {
  return static_cast<std::size_t>(
      std::count_if(decisions.begin(), decisions.end(),
                    [](const JobDecision& d) { return d.lost; }));
}

double ClusterReport::deadline_hit_rate() const {
  if (decisions.empty()) return 1.0;
  std::size_t hit = 0;
  for (const JobDecision& d : decisions) {
    if (d.outcome != Placement::kRejected && !d.lost) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(decisions.size());
}

double ClusterReport::forwarded_fraction() const {
  const std::size_t total = accepted_total();
  if (total == 0) return 0.0;
  return static_cast<double>(accepted(Placement::kRemote)) /
         static_cast<double>(total);
}

std::string ClusterReport::decision_log() const {
  std::ostringstream out;
  for (const JobDecision& d : decisions) out << d.to_string() << '\n';
  return out.str();
}

void ClusterReport::schedule_into(Simulator& sim) const {
  for (const PlacedAdmission& p : placements) {
    if (p.lost) continue;
    sim.schedule_admission(p.at, p.rho, p.plan);
  }
}

ClusterSim::ClusterSim(CostModel phi, ClusterConfig config)
    : phi_(std::move(phi)),
      config_(config),
      fabric_(0, config.seed, config.default_link) {}

NodeId ClusterSim::add_node(Location site, ResourceSet supply) {
  return add_node(site, std::move(supply), config_.node);
}

NodeId ClusterSim::add_node(Location site, ResourceSet supply,
                            NodeConfig node_config) {
  if (ran_) throw std::logic_error("cluster already ran");
  const NodeId id = static_cast<NodeId>(nodes_.size());
  fabric_.add_node();
  supplies_.push_back(supply);
  transports_.push_back(std::make_unique<FabricTransport>(&fabric_, id));
  nodes_.push_back(std::make_unique<ClusterNode>(
      id, site, phi_, std::move(supply), node_config, events_.get(),
      transports_.back().get()));
  outages_.emplace_back();
  for (NodeId peer = 0; peer < id; ++peer) {
    nodes_[peer]->set_peer(id, fabric_.link(peer, id).latency);
    nodes_[id]->set_peer(peer, fabric_.link(id, peer).latency);
  }
  return id;
}

void ClusterSim::set_link(NodeId a, NodeId b, LinkParams params) {
  fabric_.set_link(a, b, params);
  fabric_.set_link(b, a, params);
  nodes_.at(a)->set_peer(b, params.latency);
  nodes_.at(b)->set_peer(a, params.latency);
}

std::uint64_t ClusterSim::submit(Tick at, NodeId origin, WorkSpec work) {
  if (origin >= nodes_.size()) throw std::out_of_range("unknown origin node");
  const std::uint64_t id = next_job_id_++;
  arrivals_.push_back(ClusterArrival{at, origin, ClusterJob{id, std::move(work)}});
  return id;
}

void ClusterSim::schedule_crash(Tick at, NodeId node) {
  faults_.push_back(Fault{at, Fault::Kind::kCrash, node, kNoNode, false});
}

void ClusterSim::schedule_restart(Tick at, NodeId node, bool recover) {
  faults_.push_back(Fault{at, Fault::Kind::kRestart, node, kNoNode, recover});
}

void ClusterSim::schedule_partition(Tick at, NodeId a, NodeId b) {
  faults_.push_back(Fault{at, Fault::Kind::kPartition, a, b, false});
}

void ClusterSim::schedule_heal(Tick at, NodeId a, NodeId b) {
  faults_.push_back(Fault{at, Fault::Kind::kHeal, a, b, false});
}

void ClusterSim::apply_faults(Tick now) {
  for (const Fault& f : faults_) {
    if (f.at != now) continue;
    switch (f.kind) {
      case Fault::Kind::kCrash:
        if (!nodes_[f.a]->down()) {
          nodes_[f.a]->crash(now);
          fabric_.set_down(f.a, true);
          outages_[f.a].emplace_back(now, kTickMax, false);
        }
        break;
      case Fault::Kind::kRestart:
        if (nodes_[f.a]->down()) {
          nodes_[f.a]->restart(now, f.recover);
          fabric_.set_down(f.a, false);
          auto& [crash_at, restart_at, recovered] = outages_[f.a].back();
          restart_at = now;
          recovered = f.recover;
        }
        break;
      case Fault::Kind::kPartition:
        fabric_.partition(f.a, f.b);
        break;
      case Fault::Kind::kHeal:
        fabric_.heal(f.a, f.b);
        break;
    }
  }
}

void ClusterSim::mark_lost() {
  // A placement dies with its node: a crash after admission and before the
  // planned finish destroys it unless the restart replayed the audit log.
  for (PlacedAdmission& p : events_->placements) {
    for (const auto& [crash_at, restart_at, recovered] : outages_[p.node]) {
      (void)restart_at;
      if (!recovered && crash_at >= p.at && crash_at < p.plan.finish) {
        p.lost = true;
        break;
      }
    }
  }
  // Decisions inherit loss from the placement that backs them (matched by
  // job id + node; orphan placements from lost claim-acks back no decision).
  for (JobDecision& d : events_->decisions) {
    if (d.outcome == Placement::kRejected) continue;
    for (const PlacedAdmission& p : events_->placements) {
      if (p.job == d.id && p.node == d.placed) {
        d.lost = p.lost;
        break;
      }
    }
  }
}

ClusterReport ClusterSim::run(Tick horizon) {
  if (ran_) throw std::logic_error("cluster already ran");
  if (nodes_.empty()) throw std::logic_error("cluster has no nodes");
  ran_ = true;

  std::stable_sort(arrivals_.begin(), arrivals_.end(),
                   [](const ClusterArrival& a, const ClusterArrival& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return a.origin < b.origin;
                   });
  std::stable_sort(faults_.begin(), faults_.end(),
                   [](const Fault& a, const Fault& b) { return a.at < b.at; });

  std::size_t next_arrival = 0;
  for (Tick now = 0; now < horizon; ++now) {
    apply_faults(now);
    for (auto& transport : transports_) transport->set_now(now);

    // Dispatch in the fabric's global (deliver_at, seq) order: push each
    // message into its destination transport and pump that node immediately,
    // so cross-node delivery interleavings are exactly the historical ones —
    // per-endpoint polling would erase them.
    for (Message& m : fabric_.deliver_due(now)) {
      const NodeId to = m.to;
      if (to < nodes_.size()) {
        transports_[to]->deliver(std::move(m));
        nodes_[to]->pump(now);
      }
    }

    while (next_arrival < arrivals_.size() &&
           arrivals_[next_arrival].at == now) {
      // Same-tick arrivals at one origin admit as one FCFS batch.
      const NodeId origin = arrivals_[next_arrival].origin;
      std::vector<ClusterJob> batch;
      while (next_arrival < arrivals_.size() &&
             arrivals_[next_arrival].at == now &&
             arrivals_[next_arrival].origin == origin) {
        batch.push_back(arrivals_[next_arrival].job);
        ++next_arrival;
      }
      nodes_[origin]->submit(batch, now);
    }

    for (auto& node : nodes_) node->on_tick(now);
    // End-of-tick flush in node-id order: the fabric assigns send-sequence
    // numbers (its delivery tie-break) in exactly the historical order.
    for (auto& transport : transports_) transport->flush(now);
  }
  for (auto& node : nodes_) node->abort_pending(horizon, "horizon reached");

  mark_lost();

  ClusterReport report;
  report.decisions = events_->decisions;
  report.placements = events_->placements;
  report.messages_sent = fabric_.total_sent();
  report.messages_dropped = fabric_.total_dropped();
  report.messages_delivered = fabric_.total_delivered();
  return report;
}

ResourceSet ClusterSim::total_supply() const {
  ResourceSet total;
  for (const ResourceSet& s : supplies_) total.union_with(s);
  return total;
}

ClusterSim cluster_from_scenario(const Scenario& scenario, CostModel phi,
                                 ClusterConfig config) {
  if (scenario.nodes.empty()) {
    throw std::invalid_argument("scenario declares no cluster nodes");
  }
  ClusterSim sim(std::move(phi), config);
  std::map<std::string, NodeId> by_name;
  for (const ScenarioNode& n : scenario.nodes) {
    if (by_name.count(n.name) != 0) {
      throw std::invalid_argument("duplicate cluster node " + n.name);
    }
    const Location site(n.location);
    // The node's share of the scenario supply: everything rooted at its
    // location (node-local resources and outgoing links).
    ResourceSet supply;
    for (const LocatedType& type : scenario.supply.types()) {
      if (type.source() == site) {
        supply.add(type, scenario.supply.availability(type));
      }
    }
    NodeConfig node_config = config.node;
    node_config.lanes = n.lanes;
    by_name[n.name] = sim.add_node(site, std::move(supply), node_config);
  }
  for (const ScenarioLink& l : scenario.links) {
    const auto from = by_name.find(l.from);
    const auto to = by_name.find(l.to);
    if (from == by_name.end() || to == by_name.end()) {
      throw std::invalid_argument("link references unknown node " +
                                  (from == by_name.end() ? l.from : l.to));
    }
    LinkParams params;
    params.latency = l.latency;
    params.jitter = l.jitter;
    params.drop = static_cast<double>(l.drop_permille) / 1000.0;
    sim.set_link(from->second, to->second, params);
  }
  return sim;
}

}  // namespace rota::cluster
