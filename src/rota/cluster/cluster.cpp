#include "rota/cluster/cluster.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "rota/obs/obs.hpp"

namespace rota::cluster {

std::size_t ClusterReport::accepted(Placement kind) const {
  return static_cast<std::size_t>(
      std::count_if(decisions.begin(), decisions.end(),
                    [kind](const JobDecision& d) { return d.outcome == kind; }));
}

std::size_t ClusterReport::accepted_total() const {
  return accepted(Placement::kLocal) + accepted(Placement::kRemote);
}

std::size_t ClusterReport::rejected() const {
  return accepted(Placement::kRejected);
}

std::size_t ClusterReport::lost() const {
  return static_cast<std::size_t>(
      std::count_if(decisions.begin(), decisions.end(),
                    [](const JobDecision& d) { return d.lost; }));
}

double ClusterReport::deadline_hit_rate() const {
  if (decisions.empty()) return 1.0;
  std::size_t hit = 0;
  for (const JobDecision& d : decisions) {
    if (d.outcome != Placement::kRejected && !d.lost) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(decisions.size());
}

double ClusterReport::forwarded_fraction() const {
  const std::size_t total = accepted_total();
  if (total == 0) return 0.0;
  return static_cast<double>(accepted(Placement::kRemote)) /
         static_cast<double>(total);
}

double ClusterReport::root_hit_rate() const {
  if (decisions.empty()) return 1.0;
  std::map<std::uint64_t, bool> hit_by_root;
  for (const JobDecision& d : decisions) {
    const auto it = retry_root.find(d.id);
    const std::uint64_t root = it == retry_root.end() ? d.id : it->second;
    bool& hit = hit_by_root[root];
    hit = hit || (d.outcome != Placement::kRejected && !d.lost);
  }
  std::size_t hits = 0;
  for (const auto& [root, hit] : hit_by_root) {
    (void)root;
    if (hit) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(hit_by_root.size());
}

std::string ClusterReport::decision_log() const {
  std::ostringstream out;
  for (const JobDecision& d : decisions) out << d.to_string() << '\n';
  return out.str();
}

void ClusterReport::schedule_into(Simulator& sim) const {
  for (const PlacedAdmission& p : placements) {
    if (p.lost) continue;
    sim.schedule_admission(p.at, p.rho, p.plan);
  }
}

ClusterSim::ClusterSim(CostModel phi, ClusterConfig config)
    : phi_(std::move(phi)),
      config_(config),
      fabric_(0, config.seed, config.default_link) {}

NodeId ClusterSim::add_node(Location site, ResourceSet supply) {
  return add_node(site, std::move(supply), config_.node);
}

NodeId ClusterSim::add_node(Location site, ResourceSet supply,
                            NodeConfig node_config) {
  if (ran_) throw std::logic_error("cluster already ran");
  const NodeId id = static_cast<NodeId>(nodes_.size());
  fabric_.add_node();
  supplies_.push_back(supply);
  transports_.push_back(std::make_unique<FabricTransport>(&fabric_, id));
  nodes_.push_back(std::make_unique<ClusterNode>(
      id, site, phi_, std::move(supply), node_config, events_.get(),
      transports_.back().get()));
  outages_.emplace_back();
  for (NodeId peer = 0; peer < id; ++peer) {
    nodes_[peer]->set_peer(id, fabric_.link(peer, id).latency);
    nodes_[id]->set_peer(peer, fabric_.link(id, peer).latency);
  }
  return id;
}

void ClusterSim::set_link(NodeId a, NodeId b, LinkParams params) {
  fabric_.set_link(a, b, params);
  fabric_.set_link(b, a, params);
  nodes_.at(a)->set_peer(b, params.latency);
  nodes_.at(b)->set_peer(a, params.latency);
}

std::uint64_t ClusterSim::submit(Tick at, NodeId origin, WorkSpec work) {
  if (origin >= nodes_.size()) throw std::out_of_range("unknown origin node");
  const std::uint64_t id = next_job_id_++;
  arrivals_.push_back(ClusterArrival{at, origin, ClusterJob{id, std::move(work)}});
  return id;
}

void ClusterSim::schedule_crash(Tick at, NodeId node) {
  faults_.push_back(Fault{at, Fault::Kind::kCrash, node, kNoNode, false});
}

void ClusterSim::schedule_restart(Tick at, NodeId node, bool recover) {
  faults_.push_back(Fault{at, Fault::Kind::kRestart, node, kNoNode, recover});
}

void ClusterSim::schedule_partition(Tick at, NodeId a, NodeId b) {
  faults_.push_back(Fault{at, Fault::Kind::kPartition, a, b, false});
}

void ClusterSim::schedule_heal(Tick at, NodeId a, NodeId b) {
  faults_.push_back(Fault{at, Fault::Kind::kHeal, a, b, false});
}

void ClusterSim::apply(const faults::FaultSchedule& schedule) {
  schedule.validate(nodes_.size());
  for (const faults::FaultEvent& e : schedule.events()) {
    switch (e.kind) {
      case faults::FaultEvent::Kind::kCrash:
        schedule_crash(e.at, e.a);
        break;
      case faults::FaultEvent::Kind::kRestart:
        schedule_restart(e.at, e.a, e.recover);
        break;
      case faults::FaultEvent::Kind::kPartition:
        schedule_partition(e.at, e.a, e.b);
        break;
      case faults::FaultEvent::Kind::kHeal:
        schedule_heal(e.at, e.a, e.b);
        break;
    }
  }
}

void ClusterSim::set_retry_policy(const faults::RetryPolicy& policy,
                                  std::uint64_t seed) {
  if (ran_) throw std::logic_error("cluster already ran");
  retries_enabled_ = true;
  retry_policy_ = policy;
  retry_rng_ = util::Rng(seed);
}

void ClusterSim::apply_faults(Tick now) {
  for (const Fault& f : faults_) {
    if (f.at != now) continue;
    switch (f.kind) {
      case Fault::Kind::kCrash:
        if (!nodes_[f.a]->down()) {
          nodes_[f.a]->crash(now);
          fabric_.set_down(f.a, true);
          outages_[f.a].emplace_back(now, kTickMax, false);
        }
        break;
      case Fault::Kind::kRestart:
        if (nodes_[f.a]->down()) {
          nodes_[f.a]->restart(now, f.recover);
          fabric_.set_down(f.a, false);
          auto& [crash_at, restart_at, recovered] = outages_[f.a].back();
          restart_at = now;
          recovered = f.recover;
        }
        break;
      case Fault::Kind::kPartition:
        fabric_.partition(f.a, f.b);
        break;
      case Fault::Kind::kHeal:
        fabric_.heal(f.a, f.b);
        break;
    }
  }
}

void ClusterSim::mark_lost() {
  // A placement dies with its node: a crash after admission and before the
  // planned finish destroys it unless the restart replayed the audit log.
  // Strictly-after comparison on the admission tick: faults apply at tick
  // start, so a placement stamped `at == crash_at` can only exist when the
  // node crashed and restarted earlier that same tick — the admission
  // happened on the *post-restart* ledger and only a later crash can
  // destroy it. (`>=` here once lost such same-tick-bounce placements; the
  // cluster fuzz family's independent loss referee caught it.)
  for (PlacedAdmission& p : events_->placements) {
    for (const auto& [crash_at, restart_at, recovered] : outages_[p.node]) {
      (void)restart_at;
      if (!recovered && crash_at > p.at && crash_at < p.plan.finish) {
        p.lost = true;
        break;
      }
    }
  }
  // Decisions inherit loss from the placement that backs them (matched by
  // job id + node; orphan placements from lost claim-acks back no decision).
  for (JobDecision& d : events_->decisions) {
    if (d.outcome == Placement::kRejected) continue;
    for (const PlacedAdmission& p : events_->placements) {
      if (p.job == d.id && p.node == d.placed) {
        d.lost = p.lost;
        break;
      }
    }
  }
}

void ClusterSim::scan_for_retries(Tick now, Tick horizon) {
  for (; decisions_seen_ < events_->decisions.size(); ++decisions_seen_) {
    const JobDecision& d = events_->decisions[decisions_seen_];
    if (d.outcome != Placement::kRejected) continue;
    const auto spec_it = specs_.find(d.id);
    if (spec_it == specs_.end()) continue;  // not a closed-loop submission
    const auto root_it = retry_root_.find(d.id);
    const std::uint64_t root = root_it == retry_root_.end() ? d.id
                                                            : root_it->second;
    auto& attempts = attempts_[root];
    if (attempts == 0) attempts = 1;  // the root submission itself
    const std::optional<Tick> at = faults::retry_at(
        retry_policy_, attempts, now, spec_it->second.deadline, retry_rng_);
    if (!at || *at >= horizon) continue;  // dead-on-arrival or past the run
    ++attempts;
    ++resubmissions_;
    const std::uint64_t id = next_job_id_++;
    WorkSpec work = spec_it->second;
    work.earliest_start = std::max(work.earliest_start, *at);
    const NodeId origin = origins_.at(d.id);
    specs_[id] = work;
    origins_[id] = origin;
    retry_root_[id] = root;
    retry_queue_[*at].push_back(ClusterArrival{*at, origin, ClusterJob{id, work}});
  }
}

void ClusterSim::inject_retries(Tick now) {
  const auto it = retry_queue_.find(now);
  if (it == retry_queue_.end()) return;
  // Group per origin in queue order — same-tick retries at one origin admit
  // as one FCFS batch, exactly like regular arrivals.
  std::size_t i = 0;
  while (i < it->second.size()) {
    const NodeId origin = it->second[i].origin;
    std::vector<ClusterJob> batch;
    while (i < it->second.size() && it->second[i].origin == origin) {
      batch.push_back(it->second[i].job);
      ++i;
    }
    nodes_[origin]->submit(batch, now);
  }
  retry_queue_.erase(it);
}

ClusterReport ClusterSim::run(Tick horizon) {
  if (ran_) throw std::logic_error("cluster already ran");
  if (nodes_.empty()) throw std::logic_error("cluster has no nodes");
  ran_ = true;

  std::stable_sort(arrivals_.begin(), arrivals_.end(),
                   [](const ClusterArrival& a, const ClusterArrival& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return a.origin < b.origin;
                   });
  std::stable_sort(faults_.begin(), faults_.end(),
                   [](const Fault& a, const Fault& b) { return a.at < b.at; });

  if (retries_enabled_) {
    for (const ClusterArrival& a : arrivals_) {
      specs_[a.job.id] = a.job.work;
      origins_[a.job.id] = a.origin;
    }
  }

  std::size_t next_arrival = 0;
  for (Tick now = 0; now < horizon; ++now) {
    apply_faults(now);
    for (auto& transport : transports_) transport->set_now(now);

    // Dispatch in the fabric's global (deliver_at, seq) order: push each
    // message into its destination transport and pump that node immediately,
    // so cross-node delivery interleavings are exactly the historical ones —
    // per-endpoint polling would erase them.
    for (Message& m : fabric_.deliver_due(now)) {
      const NodeId to = m.to;
      if (to < nodes_.size()) {
        transports_[to]->deliver(std::move(m));
        nodes_[to]->pump(now);
      }
    }

    while (next_arrival < arrivals_.size() &&
           arrivals_[next_arrival].at == now) {
      // Same-tick arrivals at one origin admit as one FCFS batch.
      const NodeId origin = arrivals_[next_arrival].origin;
      std::vector<ClusterJob> batch;
      while (next_arrival < arrivals_.size() &&
             arrivals_[next_arrival].at == now &&
             arrivals_[next_arrival].origin == origin) {
        batch.push_back(arrivals_[next_arrival].job);
        ++next_arrival;
      }
      nodes_[origin]->submit(batch, now);
    }
    if (retries_enabled_) inject_retries(now);

    for (auto& node : nodes_) node->on_tick(now);
    // End-of-tick flush in node-id order: the fabric assigns send-sequence
    // numbers (its delivery tie-break) in exactly the historical order.
    for (auto& transport : transports_) transport->flush(now);
    // Retries are scanned after the flush, so a retry scheduled at tick t is
    // always injected at a strictly later tick (retry_at guarantees >= +2).
    if (retries_enabled_) scan_for_retries(now, horizon);
  }
  for (auto& node : nodes_) node->abort_pending(horizon, "horizon reached");

  mark_lost();

  ClusterReport report;
  report.decisions = events_->decisions;
  report.placements = events_->placements;
  report.messages_sent = fabric_.total_sent();
  report.messages_dropped = fabric_.total_dropped();
  report.messages_delivered = fabric_.total_delivered();
  report.messages_in_flight = fabric_.in_flight();
  report.resubmissions = resubmissions_;
  report.retry_root = retry_root_;
  return report;
}

ResourceSet ClusterSim::total_supply() const {
  ResourceSet total;
  for (const ResourceSet& s : supplies_) total.union_with(s);
  return total;
}

ClusterSim cluster_from_scenario(const Scenario& scenario, CostModel phi,
                                 ClusterConfig config) {
  if (scenario.nodes.empty()) {
    throw std::invalid_argument("scenario declares no cluster nodes");
  }
  ClusterSim sim(std::move(phi), config);
  std::map<std::string, NodeId> by_name;
  for (const ScenarioNode& n : scenario.nodes) {
    if (by_name.count(n.name) != 0) {
      throw std::invalid_argument("duplicate cluster node " + n.name);
    }
    const Location site(n.location);
    // The node's share of the scenario supply: everything rooted at its
    // location (node-local resources and outgoing links).
    ResourceSet supply;
    for (const LocatedType& type : scenario.supply.types()) {
      if (type.source() == site) {
        supply.add(type, scenario.supply.availability(type));
      }
    }
    NodeConfig node_config = config.node;
    node_config.lanes = n.lanes;
    by_name[n.name] = sim.add_node(site, std::move(supply), node_config);
  }
  for (const ScenarioLink& l : scenario.links) {
    const auto from = by_name.find(l.from);
    const auto to = by_name.find(l.to);
    if (from == by_name.end() || to == by_name.end()) {
      throw std::invalid_argument("link references unknown node " +
                                  (from == by_name.end() ? l.from : l.to));
    }
    LinkParams params;
    params.latency = l.latency;
    params.jitter = l.jitter;
    params.drop = static_cast<double>(l.drop_permille) / 1000.0;
    sim.set_link(from->second, to->second, params);
  }
  if (!scenario.faults.empty()) {
    std::vector<std::string> names;
    names.reserve(scenario.nodes.size());
    for (const ScenarioNode& n : scenario.nodes) names.push_back(n.name);
    sim.apply(faults::from_scenario_faults(scenario.faults, names));
  }
  return sim;
}

}  // namespace rota::cluster
