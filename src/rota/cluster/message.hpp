// The cluster protocol's message vocabulary, independent of any substrate.
//
// Probe/offer/claim RPCs and supply-digest gossip are defined here so every
// transport — the deterministic in-sim MessageFabric and the live
// SocketTransport (rota/net/) — moves the same typed messages. The fields
// are plain data: in-process transports pass them by value, the socket
// transport runs them through the versioned wire codec (rota/net/wire.hpp).
#pragma once

#include <cstdint>
#include <string>

#include "rota/advisor/migration_advisor.hpp"
#include "rota/resource/resource_set.hpp"
#include "rota/time/interval.hpp"

namespace rota::cluster {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

enum class MsgKind : std::uint8_t {
  kProbe,        // origin -> peer: can you take this job? (no commitment)
  kOffer,        // peer -> origin: yes, estimated finish attached
  kNack,         // peer -> origin: no (reason attached)
  kClaim,        // origin -> peer: commit the probed job (re-validated live)
  kClaimAck,     // peer -> origin: committed; plan finish attached
  kClaimReject,  // peer -> origin: residual moved since the offer (stale)
  kDigest,       // gossip: compact residual hull + revision + age
};

std::string msg_kind_name(MsgKind k);

/// A node's gossiped view of its own free capacity: the residual compacted
/// to a small conservative hull per located type (never overstates what the
/// full residual could supply), stamped with the ledger revision and the
/// tick it was taken at. Receivers rank migration targets from these and
/// re-validate at claim time — rankings are live-but-stale by design.
struct SupplyDigest {
  Location site;
  ResourceSet free;            // conservative hull of the residual
  std::uint64_t revision = 0;  // ledger revision the hull was taken at
  Tick as_of = 0;              // tick the hull was taken at

  bool operator==(const SupplyDigest&) const = default;
};

/// One cluster message. Typed, so in-process transports pass payloads as
/// plain fields; which fields are meaningful depends on `kind` (see the
/// enum). The socket transport serializes exactly these fields.
struct Message {
  MsgKind kind = MsgKind::kProbe;
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::uint64_t job = 0;   // origin-assigned correlation id (probe..claim)
  WorkSpec work;           // probe/claim payload; earliest_start already
                           // includes the origin's transfer-delay estimate
  Tick finish = 0;         // offer / claim-ack: planned finish
  std::string note;        // nack / claim-reject: reason
  SupplyDigest digest;     // kDigest payload

  bool operator==(const Message&) const = default;
};

}  // namespace rota::cluster
