// The Figure 1 satisfaction semantics: M, σ, t ⊨ ψ.
//
// Evaluation is relative to a computation path σ and a position on it. The
// satisfy() atoms are checked against Θ_expire — the resources that will
// expire unused along σ within the requirement's window (max(s, t), d): these
// are exactly the headroom a new computation could claim without disturbing
// the path's existing commitments.
//
//   satisfy(ρ(γ,s,d))   — f(Θ_expire, ρ): quantities cover the demand;
//   satisfy(ρ(Γ,s,d))   — cut points t1 < … < t(m-1) exist over Θ_expire
//                         (decided constructively by the ASAP planner, which
//                         is complete for a single actor);
//   satisfy(ρ(Λ,s,d))   — a per-actor plan over Θ_expire exists. The
//                         sequential planner decides the common case; when it
//                         fails, the selected FeasibilityEngine ladder takes
//                         over (symbolic cut-point engine, then the
//                         permutation explorer), making the default kAuto
//                         verdict exact for contended multi-actor instances;
//   ¬, ◇, □            — as usual, with ◇/□ ranging over strictly later
//                         positions of the (finite) path, per the paper's
//                         "∃/∀ t' > t".
#pragma once

#include "rota/logic/formula.hpp"
#include "rota/logic/path.hpp"
#include "rota/logic/planner.hpp"
#include "rota/logic/symbolic/feasibility.hpp"

namespace rota {

class ModelChecker {
 public:
  /// The checker borrows the path; it must outlive the checker.
  /// `engine` selects the satisfy(ρ(Λ,s,d)) fallback ladder used when the
  /// sequential planner rejects: kGreedy reproduces the historical
  /// planner-only (incomplete) verdict, kSymbolic/kExplorer pick one exact
  /// rung, kAuto climbs symbolic-then-explorer.
  explicit ModelChecker(const ComputationPath& path,
                        PlanningPolicy policy = PlanningPolicy::kAsap,
                        FeasibilityEngine engine = FeasibilityEngine::kAuto,
                        FeasibilityOptions symbolic = {})
      : path_(path), policy_(policy), engine_(engine), symbolic_(symbolic) {}

  /// M, σ, position ⊨ ψ. `position` indexes the path's states.
  bool satisfies(const Formula& psi, std::size_t position) const;
  bool satisfies(const FormulaPtr& psi, std::size_t position) const {
    return satisfies(*psi, position);
  }

 private:
  ResourceSet expire_within(std::size_t position, const TimeInterval& window) const;

  const ComputationPath& path_;
  PlanningPolicy policy_;
  FeasibilityEngine engine_;
  FeasibilityOptions symbolic_;
};

}  // namespace rota
