// The Figure 1 satisfaction semantics: M, σ, t ⊨ ψ.
//
// Evaluation is relative to a computation path σ and a position on it. The
// satisfy() atoms are checked against Θ_expire — the resources that will
// expire unused along σ within the requirement's window (max(s, t), d): these
// are exactly the headroom a new computation could claim without disturbing
// the path's existing commitments.
//
//   satisfy(ρ(γ,s,d))   — f(Θ_expire, ρ): quantities cover the demand;
//   satisfy(ρ(Γ,s,d))   — cut points t1 < … < t(m-1) exist over Θ_expire
//                         (decided constructively by the ASAP planner, which
//                         is complete for a single actor);
//   satisfy(ρ(Λ,s,d))   — a per-actor plan over Θ_expire exists (decided by
//                         the sequential planner; sound, conservatively
//                         incomplete for contended multi-actor instances);
//   ¬, ◇, □            — as usual, with ◇/□ ranging over strictly later
//                         positions of the (finite) path, per the paper's
//                         "∃/∀ t' > t".
#pragma once

#include "rota/logic/formula.hpp"
#include "rota/logic/path.hpp"
#include "rota/logic/planner.hpp"

namespace rota {

class ModelChecker {
 public:
  /// The checker borrows the path; it must outlive the checker.
  explicit ModelChecker(const ComputationPath& path,
                        PlanningPolicy policy = PlanningPolicy::kAsap)
      : path_(path), policy_(policy) {}

  /// M, σ, position ⊨ ψ. `position` indexes the path's states.
  bool satisfies(const Formula& psi, std::size_t position) const;
  bool satisfies(const FormulaPtr& psi, std::size_t position) const {
    return satisfies(*psi, position);
  }

 private:
  ResourceSet expire_within(std::size_t position, const TimeInterval& window) const;

  const ComputationPath& path_;
  PlanningPolicy policy_;
};

}  // namespace rota
