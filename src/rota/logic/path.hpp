// Computation paths (Definition 2): one branch of the evolution tree.
//
// A path is an initial state plus a sequence of steps; intermediate states
// are cached so formulas can be evaluated at any position. The path also
// answers the two questions the Figure 1 semantics needs:
//   * what does each commitment consume from here on (the consumption
//     profile), and
//   * which resources will therefore *expire unused* along the path
//     (Θ_expire) — the headroom available to accommodate new computations.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "rota/logic/transition.hpp"

namespace rota {

class ComputationPath {
 public:
  explicit ComputationPath(SystemState initial);

  /// Appends a step, applying it to the tip state. Exceptions from rule
  /// validation propagate and leave the path unchanged.
  void apply(const Step& step);

  /// Number of states on the path (= steps + 1).
  std::size_t size() const { return states_.size(); }
  const SystemState& state(std::size_t index) const { return states_.at(index); }
  const SystemState& front() const { return states_.front(); }
  const SystemState& back() const { return states_.back(); }
  const std::vector<Step>& steps() const { return steps_; }

  /// Per-located-type consumption rates of all TickSteps at positions
  /// >= from_index, as step functions over absolute time.
  std::map<LocatedType, StepFunction> consumption_profile(std::size_t from_index) const;

  /// Θ_expire aggregated over the suffix starting at from_index, restricted
  /// to `window`: the supply known at each point of the path that no
  /// commitment consumes — i.e. what would expire unless new computations
  /// use it. Computed as (supply visible along the suffix) − (consumption
  /// along the suffix), which is pointwise non-negative by rule validation.
  ResourceSet expiring_resources(std::size_t from_index, const TimeInterval& window) const;

  std::string to_string() const;

 private:
  std::vector<SystemState> states_;
  std::vector<Step> steps_;
};

}  // namespace rota
