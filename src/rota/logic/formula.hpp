// ROTA well-formed formulas.
//
//   ψ ::= true | false | satisfy(ρ(γ,s,d)) | satisfy(ρ(Γ,s,d)) |
//         satisfy(ρ(Λ,s,d)) | ¬ψ | ◇ψ | □ψ
//
// Formulas are immutable trees shared via shared_ptr; build them with the
// factory functions at the bottom. Evaluation lives in ModelChecker.
#pragma once

#include <memory>
#include <string>
#include <variant>

#include "rota/computation/requirement.hpp"

namespace rota {

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

struct TrueAtom {};
struct FalseAtom {};
struct SatisfySimple {
  SimpleRequirement rho;
};
struct SatisfyComplex {
  ComplexRequirement rho;
};
struct SatisfyConcurrent {
  ConcurrentRequirement rho;
};
struct NotOp {
  FormulaPtr operand;
};
struct EventuallyOp {  // ◇ψ — at some strictly later point on the path
  FormulaPtr operand;
};
struct AlwaysOp {  // □ψ — at every strictly later point on the path
  FormulaPtr operand;
};

class Formula {
 public:
  using Node = std::variant<TrueAtom, FalseAtom, SatisfySimple, SatisfyComplex,
                            SatisfyConcurrent, NotOp, EventuallyOp, AlwaysOp>;

  explicit Formula(Node node) : node_(std::move(node)) {}

  const Node& node() const { return node_; }

  /// Number of nodes in the tree (benchmarking aid).
  std::size_t size() const;

  std::string to_string() const;

 private:
  Node node_;
};

FormulaPtr f_true();
FormulaPtr f_false();
FormulaPtr f_satisfy(SimpleRequirement rho);
FormulaPtr f_satisfy(ComplexRequirement rho);
FormulaPtr f_satisfy(ConcurrentRequirement rho);
FormulaPtr f_not(FormulaPtr operand);
FormulaPtr f_eventually(FormulaPtr operand);
FormulaPtr f_always(FormulaPtr operand);

}  // namespace rota
