#include "rota/logic/model_checker.hpp"

#include <algorithm>
#include <stdexcept>

#include "rota/logic/explorer.hpp"

namespace rota {

namespace {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

}  // namespace

ResourceSet ModelChecker::expire_within(std::size_t position,
                                        const TimeInterval& window) const {
  const Tick t = path_.state(position).now();
  // (max(s, t), d): the requirement window clipped to the present.
  const TimeInterval clipped(std::max(window.start(), t), window.end());
  return path_.expiring_resources(position, clipped);
}

bool ModelChecker::satisfies(const Formula& psi, std::size_t position) const {
  if (position >= path_.size()) {
    throw std::out_of_range("ModelChecker: position beyond path end");
  }
  return std::visit(
      Overloaded{
          [](const TrueAtom&) { return true; },
          [](const FalseAtom&) { return false; },
          [&](const SatisfySimple& s) {
            const ResourceSet expiring = expire_within(position, s.rho.window());
            const Tick t = path_.state(position).now();
            const TimeInterval clipped(std::max(s.rho.window().start(), t),
                                       s.rho.window().end());
            return expiring.satisfies(s.rho.demand(), clipped);
          },
          [&](const SatisfyComplex& s) {
            const Tick t = path_.state(position).now();
            const TimeInterval clipped(std::max(s.rho.window().start(), t),
                                       s.rho.window().end());
            if (clipped.empty()) return false;  // deadline already passed
            const ResourceSet expiring = expire_within(position, s.rho.window());
            const ComplexRequirement clipped_req(s.rho.actor(), s.rho.phases(),
                                                 clipped, s.rho.rate_cap());
            return plan_actor(expiring, clipped_req, policy_).has_value();
          },
          [&](const SatisfyConcurrent& s) {
            const Tick t = path_.state(position).now();
            const TimeInterval clipped(std::max(s.rho.window().start(), t),
                                       s.rho.window().end());
            if (clipped.empty()) return false;
            const ResourceSet expiring = expire_within(position, s.rho.window());
            std::vector<ComplexRequirement> clipped_actors;
            clipped_actors.reserve(s.rho.actors().size());
            for (const auto& a : s.rho.actors()) {
              clipped_actors.emplace_back(a.actor(), a.phases(), clipped, a.rate_cap());
            }
            const ConcurrentRequirement clipped_req(s.rho.name(),
                                                    std::move(clipped_actors), clipped);
            if (plan_concurrent(expiring, clipped_req, policy_)) return true;
            if (engine_ == FeasibilityEngine::kGreedy) return false;
            // The sequential planner plans actors one at a time and is
            // order-sensitive, so its rejection of a contended multi-actor
            // instance may be spurious; climb the selected exact ladder
            // before answering no.
            SystemState probe(expiring, t);
            probe.accommodate(clipped_req);
            if (engine_ != FeasibilityEngine::kExplorer) {
              const FeasibilityResult sym =
                  decide_feasibility(probe, clipped.end(), symbolic_);
              if (sym.verdict != FeasibilityVerdict::kUnknown) {
                return sym.feasible();
              }
              if (engine_ == FeasibilityEngine::kSymbolic) return false;
            }
            SearchOptions fallback;
            fallback.engine = FeasibilityEngine::kExplorer;
            return search_feasible(probe, clipped.end(), fallback).has_value();
          },
          [&](const NotOp& n) { return !satisfies(*n.operand, position); },
          [&](const EventuallyOp& n) {
            for (std::size_t p = position + 1; p < path_.size(); ++p) {
              if (satisfies(*n.operand, p)) return true;
            }
            return false;
          },
          [&](const AlwaysOp& n) {
            for (std::size_t p = position + 1; p < path_.size(); ++p) {
              if (!satisfies(*n.operand, p)) return false;
            }
            return true;
          },
      },
      psi.node());
}

}  // namespace rota
