// Planning requirement DAGs (interacting computations).
//
// Extends the sequential planner to precedence graphs: a segment may start
// only after every segment it waits for has finished. Planning is
// topological ASAP — process nodes in a topological order, give each a start
// time equal to the max of the window start and its predecessors' finishes,
// and plan its phase chain against the remaining availability. This mirrors
// the single-actor result: for a fixed availability profile, finishing every
// ready segment as early as possible only relaxes downstream constraints.
// (With contention between parallel branches the greedy order is a sound
// heuristic, same as plan_concurrent's sequential actor planning.)
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "rota/computation/interaction.hpp"
#include "rota/logic/path.hpp"
#include "rota/logic/planner.hpp"

namespace rota {

struct SegmentPlan {
  std::size_t actor_index = 0;
  std::size_t segment_index = 0;
  std::map<LocatedType, StepFunction> usage;
  std::vector<Tick> cut_points;
  Tick start = 0;
  Tick finish = 0;
};

struct InteractingPlan {
  std::string computation;
  std::vector<SegmentPlan> segments;  // same order as the DAG's nodes
  Tick finish = 0;

  std::map<LocatedType, StepFunction> total_usage() const;
  ResourceSet usage_as_resources() const;
};

/// Plans a requirement DAG against `available`. Returns nullopt when some
/// segment cannot meet the deadline after honouring its waits.
std::optional<InteractingPlan> plan_dag(const ResourceSet& available,
                                        const DagRequirement& dag);

/// Convenience: derive the DAG via Φ and plan it.
std::optional<InteractingPlan> plan_interacting(
    const ResourceSet& available, const CostModel& phi,
    const InteractingComputation& computation);

/// Replays an interacting plan through the transition rules: each segment
/// becomes a commitment windowed at its planned start (so consuming before a
/// gate releases is a rule violation), and every tick's labels come from the
/// plan's usage. Throws std::logic_error if the plan breaks any rule or
/// fails to drain — the same soundness oracle realize_plan provides for
/// concurrent plans. Returns the validated path.
ComputationPath realize_interacting_plan(const ResourceSet& theta,
                                         const DagRequirement& dag,
                                         const InteractingPlan& plan,
                                         Tick start_time);

}  // namespace rota
