#include "rota/logic/explorer.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <numeric>
#include <stdexcept>

#include "rota/obs/obs.hpp"
#include "rota/runtime/thread_pool.hpp"

namespace rota {

std::string priority_name(PriorityOrder order) {
  switch (order) {
    case PriorityOrder::kFcfs: return "fcfs";
    case PriorityOrder::kEdf: return "edf";
    case PriorityOrder::kLeastLaxity: return "least-laxity";
    case PriorityOrder::kProportional: return "proportional";
  }
  throw std::invalid_argument("invalid PriorityOrder");
}

namespace {

std::vector<std::size_t> ranked_commitments(const SystemState& state,
                                            PriorityOrder order) {
  std::vector<std::size_t> ranked(state.commitments().size());
  std::iota(ranked.begin(), ranked.end(), 0);
  const Tick now = state.now();
  switch (order) {
    case PriorityOrder::kFcfs:
    case PriorityOrder::kProportional:  // handled by water_fill_labels
      break;
    case PriorityOrder::kEdf:
      std::stable_sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
        return state.commitments()[a].window.end() < state.commitments()[b].window.end();
      });
      break;
    case PriorityOrder::kLeastLaxity:
      std::stable_sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
        const auto& pa = state.commitments()[a];
        const auto& pb = state.commitments()[b];
        const Tick la = pa.window.end() - now - pa.remaining_total();
        const Tick lb = pb.window.end() - now - pb.remaining_total();
        return la < lb;
      });
      break;
  }
  return ranked;
}

/// Per-tick scratch reused across ticks: a sorted flat capacity vector (the
/// greedy path's hot lookup) and the label buffer.
struct TickScratch {
  std::vector<std::pair<LocatedType, Rate>> capacity;  // sorted by type
  std::vector<ConsumptionLabel> labels;
};

/// Maximal-consumption labels for one tick under a fixed commitment ranking.
const std::vector<ConsumptionLabel>& greedy_labels(const SystemState& state,
                                                   const std::vector<std::size_t>& ranked,
                                                   TickScratch& scratch) {
  scratch.capacity.clear();
  scratch.labels.clear();
  const Tick now = state.now();

  auto capacity_left = [&](const LocatedType& type) -> Rate& {
    auto it = std::lower_bound(
        scratch.capacity.begin(), scratch.capacity.end(), type,
        [](const std::pair<LocatedType, Rate>& e, const LocatedType& t) {
          return e.first < t;
        });
    if (it == scratch.capacity.end() || !(it->first == type)) {
      it = scratch.capacity.emplace(
          it, type, state.theta().availability(type).value_at(now));
    }
    return it->second;
  };

  for (std::size_t index : ranked) {
    const ActorProgress& p = state.commitments()[index];
    if (!p.active_at(now)) continue;
    for (const auto& [type, q] : p.remaining.amounts()) {
      Rate& cap = capacity_left(type);
      Rate grab = std::min<Rate>(cap, q);
      if (p.rate_cap > 0) grab = std::min(grab, p.rate_cap);
      if (grab <= 0) continue;
      scratch.labels.push_back(ConsumptionLabel{index, type, grab});
      cap -= grab;
    }
  }
  return scratch.labels;
}

/// `metered` suppresses the per-run greedy counter for permutation-sweep
/// probes (the sweep accounts for its runs deterministically afterwards, so
/// sequential and parallel sweeps report identical counts). `cancelled` is
/// polled every tick; once it fires the run abandons with all_met = false —
/// an abandoned run can never be mistaken for a witness.
RunResult run_with_ranking(SystemState start, Tick horizon,
                           const std::optional<std::vector<std::size_t>>& fixed_ranking,
                           PriorityOrder order, bool metered = true,
                           const std::function<bool()>& cancelled = {}) {
  ROTA_OBS_SPAN("explorer.run");
  if (metered && obs::metrics_enabled()) {
    obs::CoreMetrics::get().explorer_greedy_runs.add();
  }
  ComputationPath path(std::move(start));
  TickScratch scratch;
  std::map<LocatedType, Rate> capacity_left;  // water-fill scratch
  while (!path.back().all_finished() && path.back().now() < horizon) {
    if (cancelled && cancelled()) {
      const Tick abandoned_at = path.back().now();
      return RunResult{std::move(path), false, abandoned_at};
    }
    const std::vector<std::size_t> ranked =
        fixed_ranking ? *fixed_ranking : ranked_commitments(path.back(), order);
    if (!fixed_ranking && order == PriorityOrder::kProportional) {
      capacity_left.clear();
      path.apply(TickStep{water_fill_labels(path.back(), ranked, capacity_left)});
    } else {
      path.apply(TickStep{greedy_labels(path.back(), ranked, scratch)});
    }
  }

  RunResult result{std::move(path), false, 0};
  const SystemState& tip = result.path.back();
  result.finished_at = tip.now();
  result.all_met = tip.all_finished();
  for (const auto& p : tip.commitments()) {
    if (!p.finished() || *p.finished_at > p.window.end()) {
      result.all_met = false;
    } else {
      result.finished_at = std::max(result.finished_at, *p.finished_at);
    }
  }
  if (tip.commitments().empty()) result.all_met = true;
  return result;
}

}  // namespace

RunResult run_greedy(SystemState start, Tick horizon, PriorityOrder order) {
  return run_with_ranking(std::move(start), horizon, std::nullopt, order);
}

std::vector<ConsumptionLabel> water_fill_labels(
    const SystemState& state, const std::vector<std::size_t>& participants,
    std::map<LocatedType, Rate>& capacity_left) {
  const Tick now = state.now();

  // Who wants what this tick, per type, capped by demand and absorption rate.
  struct Claim {
    std::size_t commitment;
    Rate want;
    Rate given = 0;
  };
  std::map<LocatedType, std::vector<Claim>> claims;
  for (std::size_t index : participants) {
    const ActorProgress& p = state.commitments()[index];
    if (!p.active_at(now)) continue;
    for (const auto& [type, q] : p.remaining.amounts()) {
      Rate want = q;
      if (p.rate_cap > 0) want = std::min(want, p.rate_cap);
      if (want > 0) claims[type].push_back(Claim{index, want});
    }
  }

  std::vector<ConsumptionLabel> labels;
  for (auto& [type, list] : claims) {
    // Remainder units go to claimants positionally, so the split must not
    // depend on the caller's participant enumeration order: canonicalize by
    // commitment index before distributing.
    std::sort(list.begin(), list.end(), [](const Claim& a, const Claim& b) {
      return a.commitment < b.commitment;
    });
    auto [it, inserted] = capacity_left.try_emplace(type, 0);
    if (inserted) it->second = state.theta().availability(type).value_at(now);
    Rate& cap = it->second;

    // Water-fill: rounds of equal shares among still-thirsty claimants.
    // Terminates because each productive round strictly reduces cap or the
    // number of thirsty claimants.
    while (cap > 0) {
      std::vector<Claim*> thirsty;
      for (Claim& c : list) {
        if (c.given < c.want) thirsty.push_back(&c);
      }
      if (thirsty.empty()) break;
      const Rate share =
          std::max<Rate>(1, cap / static_cast<Rate>(thirsty.size()));
      bool progressed = false;
      for (Claim* c : thirsty) {
        const Rate grab = std::min({share, c->want - c->given, cap});
        if (grab <= 0) continue;
        c->given += grab;
        cap -= grab;
        progressed = true;
        if (cap == 0) break;
      }
      if (!progressed) break;
    }
    for (const Claim& c : list) {
      if (c.given > 0) labels.push_back(ConsumptionLabel{c.commitment, type, c.given});
    }
  }
  return labels;
}

namespace {

/// Permutation sweep over static priority rankings. Sequential and parallel
/// sweeps return the identical path (lexicographically first feasible
/// permutation) and report identical counter values: `explorer_permutations`
/// and `explorer_greedy_runs` both advance by the number of runs the
/// *sequential* sweep would execute — winner index + 1, or the full
/// factorial on failure.
std::optional<ComputationPath> permutation_sweep(const SystemState& start,
                                                 Tick horizon, ThreadPool* pool) {
  std::vector<std::size_t> perm(start.commitments().size());
  std::iota(perm.begin(), perm.end(), 0);

  auto account = [](std::size_t runs) {
    if (!obs::metrics_enabled()) return;
    obs::count(obs::CoreMetrics::get().explorer_permutations, runs);
    obs::count(obs::CoreMetrics::get().explorer_greedy_runs, runs);
  };

  if (pool == nullptr || pool->concurrency() <= 1) {
    std::size_t tried = 0;
    do {
      ++tried;
      RunResult r = run_with_ranking(start, horizon, perm, PriorityOrder::kFcfs,
                                     /*metered=*/false);
      if (r.all_met) {
        account(tried);
        return std::move(r.path);
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
    account(tried);
    return std::nullopt;
  }

  // Parallel sweep: race the lanes over the materialized permutations,
  // keeping the smallest feasible index so the winner is the permutation the
  // sequential sweep would have returned. Lanes poll `best` every tick and
  // abandon once a smaller index has already won — the smallest feasible
  // index can never be cancelled (only smaller feasible indices cancel, and
  // there are none), and an abandoned run reports all_met = false, so the
  // race cannot change the result.
  std::vector<std::vector<std::size_t>> perms;
  do {
    perms.push_back(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));

  std::atomic<std::size_t> best{perms.size()};
  std::mutex winner_mutex;
  std::optional<RunResult> winner;
  pool->parallel_for(perms.size(), [&](std::size_t i) {
    const auto beaten = [&] { return i >= best.load(std::memory_order_relaxed); };
    if (beaten()) return;
    RunResult r = run_with_ranking(start, horizon, perms[i], PriorityOrder::kFcfs,
                                   /*metered=*/false, beaten);
    if (!r.all_met) return;
    std::scoped_lock lock(winner_mutex);
    if (i < best.load(std::memory_order_relaxed)) {
      best.store(i, std::memory_order_relaxed);
      winner = std::move(r);
    }
  });
  const std::size_t best_idx = best.load();
  account(best_idx < perms.size() ? best_idx + 1 : perms.size());
  if (!winner) return std::nullopt;
  return std::move(winner->path);
}

}  // namespace

std::optional<ComputationPath> search_feasible(const SystemState& start, Tick horizon,
                                               const SearchOptions& options) {
  ROTA_OBS_SPAN("explorer.search_feasible");
  for (PriorityOrder order :
       {PriorityOrder::kEdf, PriorityOrder::kLeastLaxity, PriorityOrder::kFcfs}) {
    RunResult r = run_greedy(start, horizon, order);
    if (r.all_met) return std::move(r.path);
  }
  if (options.engine == FeasibilityEngine::kGreedy) return std::nullopt;

  if (options.engine == FeasibilityEngine::kAuto ||
      options.engine == FeasibilityEngine::kSymbolic) {
    const FeasibilityResult sym =
        decide_feasibility(start, horizon, options.symbolic);
    if (sym.verdict == FeasibilityVerdict::kInfeasible) return std::nullopt;
    if (sym.feasible()) {
      if (auto path = realize_feasibility(start, sym)) return path;
      // A witness that fails to replay would be an engine bug (the fuzz
      // harness pins exactly this); treat it as undecided rather than
      // mis-report either verdict.
    }
    if (options.engine == FeasibilityEngine::kSymbolic) return std::nullopt;
  }

  if (start.commitments().size() > options.max_permuted) return std::nullopt;
  return permutation_sweep(start, horizon, options.pool);
}

std::optional<ComputationPath> search_feasible(const SystemState& start, Tick horizon,
                                               std::size_t max_permuted,
                                               ThreadPool* pool) {
  SearchOptions options;
  options.max_permuted = max_permuted;
  options.pool = pool;
  return search_feasible(start, horizon, options);
}

}  // namespace rota
