#include "rota/logic/formula.hpp"

#include <stdexcept>

namespace rota {

namespace {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

}  // namespace

std::size_t Formula::size() const {
  return std::visit(
      Overloaded{
          [](const NotOp& n) { return 1 + n.operand->size(); },
          [](const EventuallyOp& n) { return 1 + n.operand->size(); },
          [](const AlwaysOp& n) { return 1 + n.operand->size(); },
          [](const auto&) { return std::size_t{1}; },
      },
      node_);
}

std::string Formula::to_string() const {
  return std::visit(
      Overloaded{
          [](const TrueAtom&) { return std::string("true"); },
          [](const FalseAtom&) { return std::string("false"); },
          [](const SatisfySimple& s) { return "satisfy(" + s.rho.to_string() + ")"; },
          [](const SatisfyComplex& s) { return "satisfy(" + s.rho.to_string() + ")"; },
          [](const SatisfyConcurrent& s) {
            return "satisfy(" + s.rho.to_string() + ")";
          },
          [](const NotOp& n) { return "!(" + n.operand->to_string() + ")"; },
          [](const EventuallyOp& n) { return "<>(" + n.operand->to_string() + ")"; },
          [](const AlwaysOp& n) { return "[](" + n.operand->to_string() + ")"; },
      },
      node_);
}

FormulaPtr f_true() { return std::make_shared<const Formula>(Formula::Node{TrueAtom{}}); }
FormulaPtr f_false() {
  return std::make_shared<const Formula>(Formula::Node{FalseAtom{}});
}
FormulaPtr f_satisfy(SimpleRequirement rho) {
  return std::make_shared<const Formula>(Formula::Node{SatisfySimple{std::move(rho)}});
}
FormulaPtr f_satisfy(ComplexRequirement rho) {
  return std::make_shared<const Formula>(Formula::Node{SatisfyComplex{std::move(rho)}});
}
FormulaPtr f_satisfy(ConcurrentRequirement rho) {
  return std::make_shared<const Formula>(
      Formula::Node{SatisfyConcurrent{std::move(rho)}});
}
FormulaPtr f_not(FormulaPtr operand) {
  if (!operand) throw std::invalid_argument("f_not: null operand");
  return std::make_shared<const Formula>(Formula::Node{NotOp{std::move(operand)}});
}
FormulaPtr f_eventually(FormulaPtr operand) {
  if (!operand) throw std::invalid_argument("f_eventually: null operand");
  return std::make_shared<const Formula>(Formula::Node{EventuallyOp{std::move(operand)}});
}
FormulaPtr f_always(FormulaPtr operand) {
  if (!operand) throw std::invalid_argument("f_always: null operand");
  return std::make_shared<const Formula>(Formula::Node{AlwaysOp{std::move(operand)}});
}

}  // namespace rota
