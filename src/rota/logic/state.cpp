#include "rota/logic/state.hpp"

#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rota {

Quantity ActorProgress::remaining_total() const {
  Quantity total = remaining.total();
  for (std::size_t i = phase_index + 1; i < phases.size(); ++i) {
    total += phases[i].demand.total();
  }
  return total;
}

std::string ConsumptionLabel::to_string() const {
  std::ostringstream out;
  out << type.to_string() << " ->[" << rate << "] #" << commitment;
  return out.str();
}

void SystemState::join(const ResourceSet& joined) { theta_ = theta_.unioned(joined); }

void SystemState::accommodate(const ConcurrentRequirement& rho) {
  if (now_ >= rho.window().end()) {
    throw std::logic_error("cannot accommodate " + rho.name() +
                           ": its deadline has passed");
  }
  for (const auto& actor_req : rho.actors()) {
    ActorProgress progress;
    progress.computation = rho.name();
    progress.actor = actor_req.actor();
    progress.window = actor_req.window();
    progress.phases = actor_req.phases();
    progress.rate_cap = actor_req.rate_cap();
    if (progress.phases.empty()) {
      progress.finished_at = now_;  // empty computation is vacuously done
      progress.phase_index = 0;
    } else {
      progress.remaining = progress.phases.front().demand;
    }
    commitments_.push_back(std::move(progress));
  }
}

bool SystemState::leave(const std::string& computation) {
  bool found = false;
  for (const auto& p : commitments_) {
    if (p.computation != computation) continue;
    found = true;
    if (now_ >= p.window.start()) {
      throw std::logic_error("computation " + computation +
                             " has already started and may not leave");
    }
  }
  if (!found) return false;
  std::erase_if(commitments_,
                [&](const ActorProgress& p) { return p.computation == computation; });
  return true;
}

void SystemState::advance(const std::vector<ConsumptionLabel>& labels) {
  // Validate aggregate supply per type at the current tick.
  std::map<LocatedType, Rate> claimed;
  std::map<std::pair<std::size_t, LocatedType>, Rate> claimed_by_commitment;
  for (const auto& label : labels) {
    if (label.commitment >= commitments_.size()) {
      throw std::logic_error("consumption label names commitment #" +
                             std::to_string(label.commitment) + " of " +
                             std::to_string(commitments_.size()));
    }
    if (label.rate <= 0) {
      throw std::logic_error("consumption rate must be positive: " + label.to_string());
    }
    const ActorProgress& p = commitments_[label.commitment];
    if (p.finished()) {
      throw std::logic_error("finished commitment cannot consume: " + label.to_string());
    }
    if (now_ < p.window.start()) {
      throw std::logic_error(p.actor + " may not consume before its start time " +
                             std::to_string(p.window.start()));
    }
    if (p.remaining.of(label.type) < label.rate) {
      throw std::logic_error("consumption overshoots remaining demand: " +
                             label.to_string());
    }
    Rate& by_actor = claimed_by_commitment[{label.commitment, label.type}];
    by_actor += label.rate;
    if (p.rate_cap > 0 && by_actor > p.rate_cap) {
      throw std::logic_error(p.actor + " exceeds its absorption rate cap of " +
                             std::to_string(p.rate_cap) + ": " + label.to_string());
    }
    claimed[label.type] += label.rate;
  }
  for (const auto& [type, rate] : claimed) {
    const Rate available = theta_.availability(type).value_at(now_);
    if (rate > available) {
      throw std::logic_error("claims on " + type.to_string() + " total " +
                             std::to_string(rate) + " but only " +
                             std::to_string(available) + " is available at t=" +
                             std::to_string(now_));
    }
  }

  // Apply consumption; phase completion promotes the next phase.
  for (const auto& label : labels) {
    ActorProgress& p = commitments_[label.commitment];
    p.remaining.subtract(label.type, label.rate);  // rate × Δt with Δt = 1
    while (p.remaining.empty() && !p.finished()) {
      ++p.phase_index;
      if (p.finished()) {
        p.finished_at = now_ + 1;  // done once this slice elapses
      } else {
        p.remaining = p.phases[p.phase_index].demand;
      }
    }
  }
  ++now_;  // everything unclaimed at the previous tick has now expired
}

void SystemState::garbage_collect() { theta_ = theta_.from(now_); }

bool SystemState::all_finished() const {
  for (const auto& p : commitments_) {
    if (!p.finished()) return false;
  }
  return true;
}

bool SystemState::any_missed() const {
  for (const auto& p : commitments_) {
    if (p.missed_by(now_)) return true;
  }
  return false;
}

std::size_t SystemState::unfinished_count() const {
  std::size_t n = 0;
  for (const auto& p : commitments_) n += p.finished() ? 0 : 1;
  return n;
}

std::string SystemState::to_string() const {
  std::ostringstream out;
  out << "S(t=" << now_ << ", |theta|=" << theta_.term_count() << " terms, "
      << commitments_.size() << " commitments, " << unfinished_count()
      << " unfinished)";
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const SystemState& s) {
  return os << s.to_string();
}

}  // namespace rota
