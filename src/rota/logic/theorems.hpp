// The paper's four theorems as constructive algorithms.
//
// Each function decides the theorem's condition and, where the theorem is
// existential, returns the witness it constructs (cut points, a plan, or a
// transition-rule path), so callers — and the test suite — can check the
// witness independently rather than trust the verdict.
#pragma once

#include <optional>
#include <vector>

#include "rota/logic/explorer.hpp"
#include "rota/logic/path.hpp"
#include "rota/logic/planner.hpp"

namespace rota {

/// Theorem 1 (Single Action Accommodation): a single-action computation
/// (γ, s, d) can be accommodated iff f(Θ, ρ(γ, s, d)) is true. (The "γ is a
/// possible action" premise is structural: a single action is its actor's
/// first action.)
bool theorem1_single_action(const ResourceSet& theta, const SimpleRequirement& rho);

/// Theorem 2 (Sequential Computation Accommodation): a sequential computation
/// (Γ, s, d) can be accommodated iff cut points t1 < … < t(m-1) exist that
/// split (s, d) into subintervals each satisfying its phase's simple
/// requirement. Returns the interior cut points on success (empty vector for
/// a single-phase Γ), nullopt if no cut points exist. Decided by the ASAP
/// planner, which is complete for one actor against a fixed availability.
std::optional<std::vector<Tick>> theorem2_cut_points(const ResourceSet& theta,
                                                     const ComplexRequirement& rho);

/// Theorem 3 (Meet Deadline): from S0' = (Θ, ρ(Γ, t, d), t), the computation
/// can complete by d iff a computation path reaches a state with the
/// requirement drained before d. Returns such a witness path (built from
/// transition-rule steps, so applying it re-validates every side condition),
/// or nullopt when neither the planner nor the schedule search finds one.
std::optional<ComputationPath> theorem3_witness(const ResourceSet& theta,
                                                const ConcurrentRequirement& rho,
                                                PlanningPolicy policy = PlanningPolicy::kAsap);

/// Realizes a concurrent plan as an actual transition-rule path starting at
/// `start_time` (plans only say who consumes what when; this replays them
/// through SystemState::advance, which re-checks every rule condition).
/// Throws std::logic_error if the plan violates a rule — i.e. if the planner
/// is buggy; used heavily by tests as a soundness oracle.
ComputationPath realize_plan(const ResourceSet& theta, const ConcurrentRequirement& rho,
                             const ConcurrentPlan& plan, Tick start_time);

/// Theorem 4 (Accommodate Additional Computation): a new computation can be
/// admitted without disturbing σ's existing commitments if the resources
/// expiring along σ within (s, d) satisfy its requirement. Returns the
/// admission plan carved entirely out of expiring resources, or nullopt.
std::optional<ConcurrentPlan> theorem4_accommodate(const ComputationPath& sigma,
                                                   std::size_t position,
                                                   const ConcurrentRequirement& new_rho,
                                                   PlanningPolicy policy = PlanningPolicy::kAsap);

}  // namespace rota
