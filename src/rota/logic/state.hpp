// System states S = (Θ, ρ, t) and the ROTA transition rules.
//
// Θ is the set of future-available resources, ρ the requirements of the
// computations the system has committed to, and t the current time. The
// paper's rules are realized as mutating operations:
//   * advance(labels)  — the general transition rule (Δt = 1 tick): each
//     label ξ → a burns rate × Δt of ξ's supply against commitment a's
//     current phase; supply not named in any label expires (the resource
//     expiration rule is the labels = {} case);
//   * join(Θ_join)     — the resource acquisition rule (leaving is encoded
//     at join time via the term's interval, exactly as in the paper);
//   * accommodate(ρ')  — the computation accommodation rule (requires t < d);
//   * leave(name)      — the computation leave rule (requires t < s).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "rota/computation/requirement.hpp"
#include "rota/resource/resource_set.hpp"

namespace rota {

/// The live progress of one committed actor computation: which phase it is
/// in and how much of that phase's demand remains.
struct ActorProgress {
  std::string computation;
  std::string actor;
  TimeInterval window;
  std::vector<Phase> phases;
  std::size_t phase_index = 0;
  DemandSet remaining;                 // of phases[phase_index]; empty iff finished
  std::optional<Tick> finished_at;     // first tick at which all phases were done
  Rate rate_cap = 0;                   // max per-type absorption per tick; 0 = unbounded

  bool finished() const { return phase_index >= phases.size(); }
  /// May this actor consume at tick t? (Definition 1 plus the window's s.)
  bool active_at(Tick t) const { return !finished() && t >= window.start(); }
  /// Unfinished at its deadline.
  bool missed_by(Tick t) const { return !finished() && t >= window.end(); }
  Quantity remaining_total() const;

  bool operator==(const ActorProgress&) const = default;
};

/// One ξ → a consumption in a transition label: `commitment` indexes the
/// state's commitment list.
struct ConsumptionLabel {
  std::size_t commitment = 0;
  LocatedType type;
  Rate rate = 0;

  bool operator==(const ConsumptionLabel&) const = default;
  std::string to_string() const;
};

class SystemState {
 public:
  SystemState() = default;
  SystemState(ResourceSet theta, Tick now) : theta_(std::move(theta)), now_(now) {}

  const ResourceSet& theta() const { return theta_; }
  Tick now() const { return now_; }
  const std::vector<ActorProgress>& commitments() const { return commitments_; }

  /// Resource acquisition rule: Θ ← Θ ∪ Θ_join. Supply entirely in the past
  /// is accepted but irrelevant (it can only expire).
  void join(const ResourceSet& joined);

  /// Computation accommodation rule: adds one ActorProgress per member actor.
  /// Throws std::logic_error when t >= d (cannot accommodate past deadline).
  void accommodate(const ConcurrentRequirement& rho);

  /// Computation leave rule: removes all commitments of the named
  /// computation. Throws std::logic_error when the computation has started
  /// (t >= s) — started computations may not leave. Returns false if no such
  /// computation is committed.
  bool leave(const std::string& computation);

  /// General transition rule: consume per the labels, then advance Δt = 1.
  /// Validates the paper's side conditions and throws std::logic_error on:
  ///   * a label naming a finished/out-of-range commitment,
  ///   * consumption before the commitment's start time,
  ///   * consumption exceeding the phase's remaining demand,
  ///   * consumption exceeding the commitment's absorption rate cap,
  ///   * aggregate consumption of a type exceeding its available rate now.
  /// Supply at the current tick not claimed by any label expires.
  void advance(const std::vector<ConsumptionLabel>& labels);

  /// Pure expiration step (labels = {}).
  void advance_idle() { advance({}); }

  /// Drops supply strictly before `now` from Θ — semantics-neutral (past
  /// supply can never be consumed) but keeps term counts small on long runs.
  void garbage_collect();

  bool all_finished() const;
  bool any_missed() const;
  std::size_t unfinished_count() const;

  bool operator==(const SystemState&) const = default;

  std::string to_string() const;

 private:
  ResourceSet theta_;
  std::vector<ActorProgress> commitments_;
  Tick now_ = 0;
};

std::ostream& operator<<(std::ostream& os, const SystemState& s);

}  // namespace rota
