#include "rota/logic/transition.hpp"

#include <sstream>

namespace rota {

void apply_step(SystemState& state, const Step& step) {
  std::visit(
      [&state](const auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, TickStep>) {
          state.advance(s.consumptions);
        } else if constexpr (std::is_same_v<T, JoinStep>) {
          state.join(s.joined);
        } else if constexpr (std::is_same_v<T, AccommodateStep>) {
          state.accommodate(s.rho);
        } else {
          state.leave(s.computation);
        }
      },
      step);
}

std::string step_to_string(const Step& step) {
  std::ostringstream out;
  std::visit(
      [&out](const auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, TickStep>) {
          out << "tick{";
          for (std::size_t i = 0; i < s.consumptions.size(); ++i) {
            if (i != 0) out << ", ";
            out << s.consumptions[i].to_string();
          }
          out << '}';
        } else if constexpr (std::is_same_v<T, JoinStep>) {
          out << "join" << s.joined.to_string();
        } else if constexpr (std::is_same_v<T, AccommodateStep>) {
          out << "accommodate(" << s.rho.name() << ')';
        } else {
          out << "leave(" << s.computation << ')';
        }
      },
      step);
  return out.str();
}

}  // namespace rota
