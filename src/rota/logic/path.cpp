#include "rota/logic/path.hpp"

#include <sstream>

namespace rota {

ComputationPath::ComputationPath(SystemState initial) {
  states_.push_back(std::move(initial));
}

void ComputationPath::apply(const Step& step) {
  SystemState next = states_.back();
  apply_step(next, step);  // throws on rule violation, leaving the path intact
  states_.push_back(std::move(next));
  steps_.push_back(step);
}

std::map<LocatedType, StepFunction> ComputationPath::consumption_profile(
    std::size_t from_index) const {
  // Accumulate per-type per-tick rates, then compress into step functions.
  std::map<LocatedType, std::map<Tick, Rate>> rates;
  for (std::size_t i = from_index; i < steps_.size(); ++i) {
    const auto* tick_step = std::get_if<TickStep>(&steps_[i]);
    if (tick_step == nullptr) continue;
    const Tick t = states_[i].now();  // the tick this step consumed during
    for (const auto& label : tick_step->consumptions) {
      rates[label.type][t] += label.rate;
    }
  }

  std::map<LocatedType, StepFunction> out;
  for (const auto& [type, by_tick] : rates) {
    StepFunction f;
    // Merge runs of equal consecutive rates before delegating to add(): the
    // per-tick map is sorted, so a single linear pass suffices.
    auto it = by_tick.begin();
    while (it != by_tick.end()) {
      const Tick run_start = it->first;
      const Rate rate = it->second;
      Tick run_end = run_start + 1;
      ++it;
      while (it != by_tick.end() && it->first == run_end && it->second == rate) {
        ++run_end;
        ++it;
      }
      f.add(TimeInterval(run_start, run_end), rate);
    }
    out.emplace(type, std::move(f));
  }
  return out;
}

ResourceSet ComputationPath::expiring_resources(std::size_t from_index,
                                                const TimeInterval& window) const {
  const SystemState& origin = states_.at(from_index);

  // Supply visible along the suffix: the origin's Θ (future part) plus any
  // joins applied later on the path, each visible from its join time.
  ResourceSet supply = origin.theta().from(origin.now());
  for (std::size_t i = from_index; i < steps_.size(); ++i) {
    const auto* join = std::get_if<JoinStep>(&steps_[i]);
    if (join == nullptr) continue;
    supply = supply.unioned(join->joined.from(states_[i].now()));
  }

  // Remove what the path's commitments consume; the remainder expires.
  const auto consumed = consumption_profile(from_index);
  ResourceSet expiring;
  for (const LocatedType& type : supply.types()) {
    StepFunction residual = supply.availability(type);
    auto it = consumed.find(type);
    if (it != consumed.end()) residual = residual.minus(it->second);
    // Rule validation keeps consumption within supply, so the clamp is a
    // defensive no-op unless a caller mixed paths and states incorrectly.
    residual = residual.clamped_nonnegative().restricted(window);
    for (const auto& seg : residual.segments()) {
      expiring.add(seg.value, seg.interval, type);
    }
  }
  return expiring;
}

std::string ComputationPath::to_string() const {
  std::ostringstream out;
  out << states_.front().to_string();
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    out << "\n  --" << step_to_string(steps_[i]) << "--> " << states_[i + 1].to_string();
  }
  return out.str();
}

}  // namespace rota
