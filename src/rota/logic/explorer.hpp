// Path exploration: generating branches of the evolution tree.
//
// Definition 2's tree of all possible evolutions is far too large to build;
// what the theorems need is (a) witness paths — produced by running a
// priority-ordered maximal-consumption schedule through the transition rules
// — and (b) for small instances, a search over schedules that tries many
// priority orders, used to probe how much completeness the greedy witness
// generator gives up.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "rota/logic/path.hpp"
#include "rota/logic/symbolic/feasibility.hpp"

namespace rota {

class ThreadPool;  // rota/runtime/thread_pool.hpp

/// How contended supply is ordered among unfinished commitments each tick.
enum class PriorityOrder {
  kFcfs,          // commitment (arrival) order
  kEdf,           // earliest deadline first
  kLeastLaxity,   // smallest (deadline − now − remaining work) first
  kProportional,  // fair share: each tick's rate split evenly among claimants
};

std::string priority_name(PriorityOrder order);

struct RunResult {
  ComputationPath path;
  bool all_met = false;        // every commitment finished by its deadline
  Tick finished_at = 0;        // tick when the last commitment finished (or horizon)
};

/// Runs the general transition rule with maximal consumption under the given
/// priority order until all commitments finish or `horizon` is reached.
/// Every tick consumes as much of each type as the order allows; unclaimed
/// supply expires, exactly as in the paper's general rule.
RunResult run_greedy(SystemState start, Tick horizon, PriorityOrder order);

/// Fair-share (water-filling) consumption labels for one tick: each type's
/// capacity is split as evenly as integer rates allow among the listed
/// commitments that currently want it, honouring remaining demand and rate
/// caps. Types missing from `capacity_left` are initialized from the state's
/// supply at the current tick; present entries are respected (callers may
/// pre-subtract reservations). Used by PriorityOrder::kProportional and by
/// the simulator's fair-share discipline.
std::vector<ConsumptionLabel> water_fill_labels(
    const SystemState& state, const std::vector<std::size_t>& participants,
    std::map<LocatedType, Rate>& capacity_left);

/// Knobs for search_feasible: which feasibility ladder to climb and how far
/// the permutation rung may go.
struct SearchOptions {
  /// Permutation-sweep ceiling: above this many commitments the sweep rung
  /// refuses (factorial blowup). The symbolic rung has no such ceiling.
  std::size_t max_permuted = 6;
  /// Lanes for the permutation sweep; nullptr runs it sequentially. Either
  /// way the result is deterministic — the lexicographically first feasible
  /// permutation wins and `explorer_permutations` counts the same number of
  /// sweep runs.
  ThreadPool* pool = nullptr;
  FeasibilityEngine engine = FeasibilityEngine::kAuto;
  FeasibilityOptions symbolic;
};

/// Tries the three greedy priority orders, then climbs the ladder selected by
/// `options.engine`: the symbolic cut-point engine (exact; no commitment
/// ceiling) and/or the static-permutation sweep. Returns a deadline-meeting
/// path if the selected rungs find one.
std::optional<ComputationPath> search_feasible(const SystemState& start, Tick horizon,
                                               const SearchOptions& options);

/// Ladder with defaults (kAuto): greedy → symbolic → permutation fallback.
std::optional<ComputationPath> search_feasible(const SystemState& start, Tick horizon,
                                               std::size_t max_permuted = 6,
                                               ThreadPool* pool = nullptr);

}  // namespace rota
