#include "rota/logic/planner.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace rota {

std::string policy_name(PlanningPolicy p) {
  switch (p) {
    case PlanningPolicy::kAsap: return "asap";
    case PlanningPolicy::kAlap: return "alap";
    case PlanningPolicy::kUniform: return "uniform";
  }
  throw std::invalid_argument("invalid PlanningPolicy");
}

Quantity ActorPlan::total_consumption() const {
  Quantity total = 0;
  for (const auto& [type, f] : usage) total += f.integral();
  return total;
}

std::map<LocatedType, StepFunction> ConcurrentPlan::total_usage() const {
  std::map<LocatedType, StepFunction> out;
  for (const auto& a : actors) {
    for (const auto& [type, f] : a.usage) {
      auto [it, inserted] = out.emplace(type, f);
      if (!inserted) it->second = it->second.plus(f);
    }
  }
  return out;
}

ResourceSet ConcurrentPlan::usage_as_resources() const {
  ResourceSet out;
  for (auto& [type, f] : total_usage()) out.add(type, std::move(f));
  return out;
}

namespace {

struct Consumption {
  StepFunction usage;
  Tick boundary = 0;  // finish for forward planning, start for backward
};

/// Availability as one actor sees it: pointwise-capped by the actor's
/// absorption rate (a serial actor cannot drink a node dry in one tick).
/// Capped copies are cached per type.
class CappedView {
 public:
  CappedView(const ResourceSet& available, const TimeInterval& window, Rate cap)
      : available_(available), window_(window), cap_(cap) {}

  const StepFunction& of(const LocatedType& type) {
    if (cap_ <= 0) return available_.availability(type);
    auto it = cache_.find(type);
    if (it == cache_.end()) {
      it = cache_
               .emplace(type, available_.availability(type).min(
                                  StepFunction(window_, cap_)))
               .first;
    }
    return it->second;
  }

 private:
  const ResourceSet& available_;
  TimeInterval window_;
  Rate cap_;
  std::map<LocatedType, StepFunction> cache_;
};

/// Consume quantity q as early as possible from `avail` within `window`.
std::optional<Consumption> consume_asap(const StepFunction& avail,
                                        const TimeInterval& window, Quantity q) {
  Consumption out;
  if (q == 0) {
    out.boundary = window.start();
    return out;
  }
  Quantity remaining = q;
  for (const auto& seg : avail.segments()) {
    if (seg.value <= 0) continue;
    const TimeInterval x = seg.interval.intersection(window);
    if (x.empty()) continue;
    const Quantity covers = static_cast<Quantity>(x.length()) * seg.value;
    if (covers < remaining) {
      out.usage.add(x, seg.value);
      remaining -= covers;
      continue;
    }
    const Tick full_ticks = remaining / seg.value;
    const Quantity partial = remaining - full_ticks * seg.value;
    if (full_ticks > 0) {
      out.usage.add(TimeInterval(x.start(), x.start() + full_ticks), seg.value);
    }
    if (partial > 0) {
      out.usage.add(TimeInterval(x.start() + full_ticks, x.start() + full_ticks + 1),
                    partial);
    }
    out.boundary = x.start() + full_ticks + (partial > 0 ? 1 : 0);
    return out;
  }
  return std::nullopt;
}

/// Consume quantity q as late as possible from `avail` within `window`.
std::optional<Consumption> consume_alap(const StepFunction& avail,
                                        const TimeInterval& window, Quantity q) {
  Consumption out;
  if (q == 0) {
    out.boundary = window.end();
    return out;
  }
  Quantity remaining = q;
  const auto& segs = avail.segments();
  for (auto it = segs.rbegin(); it != segs.rend(); ++it) {
    if (it->value <= 0) continue;
    const TimeInterval x = it->interval.intersection(window);
    if (x.empty()) continue;
    const Quantity covers = static_cast<Quantity>(x.length()) * it->value;
    if (covers < remaining) {
      out.usage.add(x, it->value);
      remaining -= covers;
      continue;
    }
    const Tick full_ticks = remaining / it->value;
    const Quantity partial = remaining - full_ticks * it->value;
    if (full_ticks > 0) {
      out.usage.add(TimeInterval(x.end() - full_ticks, x.end()), it->value);
    }
    if (partial > 0) {
      out.usage.add(TimeInterval(x.end() - full_ticks - 1, x.end() - full_ticks),
                    partial);
    }
    out.boundary = x.end() - full_ticks - (partial > 0 ? 1 : 0);
    return out;
  }
  return std::nullopt;
}

std::optional<ActorPlan> plan_asap(const ResourceSet& available,
                                   const ComplexRequirement& req) {
  ActorPlan plan;
  plan.actor = req.actor();
  plan.start = req.window().start();
  Tick cursor = req.window().start();
  const Tick deadline = req.window().end();
  CappedView view(available, req.window(), req.rate_cap());

  for (std::size_t i = 0; i < req.phases().size(); ++i) {
    const Phase& phase = req.phases()[i];
    const TimeInterval slot(cursor, deadline);
    Tick phase_end = cursor;
    std::vector<std::pair<LocatedType, Consumption>> pieces;
    for (const auto& [type, q] : phase.demand.amounts()) {
      auto piece = consume_asap(view.of(type), slot, q);
      if (!piece) return std::nullopt;
      phase_end = std::max(phase_end, piece->boundary);
      pieces.emplace_back(type, std::move(*piece));
    }
    for (auto& [type, piece] : pieces) {
      auto [it, inserted] = plan.usage.emplace(type, piece.usage);
      if (!inserted) it->second = it->second.plus(piece.usage);
    }
    if (i + 1 < req.phases().size()) plan.cut_points.push_back(phase_end);
    cursor = phase_end;
  }
  if (cursor > deadline) return std::nullopt;  // cannot happen, but guard
  plan.finish = cursor;
  return plan;
}

std::optional<ActorPlan> plan_alap(const ResourceSet& available,
                                   const ComplexRequirement& req) {
  ActorPlan plan;
  plan.actor = req.actor();
  Tick cursor = req.window().end();
  const Tick start = req.window().start();
  CappedView view(available, req.window(), req.rate_cap());

  for (std::size_t i = req.phases().size(); i-- > 0;) {
    const Phase& phase = req.phases()[i];
    const TimeInterval slot(start, cursor);
    Tick phase_start = cursor;
    std::vector<std::pair<LocatedType, Consumption>> pieces;
    for (const auto& [type, q] : phase.demand.amounts()) {
      auto piece = consume_alap(view.of(type), slot, q);
      if (!piece) return std::nullopt;
      phase_start = std::min(phase_start, piece->boundary);
      pieces.emplace_back(type, std::move(*piece));
    }
    for (auto& [type, piece] : pieces) {
      auto [it, inserted] = plan.usage.emplace(type, piece.usage);
      if (!inserted) it->second = it->second.plus(piece.usage);
    }
    if (i > 0) plan.cut_points.push_back(phase_start);
    cursor = phase_start;
  }
  if (cursor < start) return std::nullopt;  // cannot happen, but guard
  plan.start = cursor;
  plan.finish = req.window().end();
  std::reverse(plan.cut_points.begin(), plan.cut_points.end());
  return plan;
}

std::optional<ActorPlan> plan_uniform(const ResourceSet& available,
                                      const ComplexRequirement& req) {
  // Slice the window across phases in proportion to total demand (each phase
  // gets at least one tick), then consume eagerly inside each slice.
  const Quantity total = req.total_demand().total();
  const Tick window_len = req.window().length();
  const auto m = static_cast<Tick>(req.phases().size());
  if (m > window_len) return std::nullopt;

  ActorPlan plan;
  plan.actor = req.actor();
  plan.start = req.window().start();
  Tick cursor = req.window().start();
  CappedView view(available, req.window(), req.rate_cap());

  for (std::size_t i = 0; i < req.phases().size(); ++i) {
    const Phase& phase = req.phases()[i];
    Tick slice_len;
    if (i + 1 == req.phases().size()) {
      slice_len = req.window().end() - cursor;  // last slice absorbs rounding
    } else {
      slice_len = total == 0
                      ? window_len / m
                      : (window_len * phase.demand.total()) / total;
      slice_len = std::max<Tick>(slice_len, 1);
      slice_len = std::min(slice_len, req.window().end() - cursor -
                                          static_cast<Tick>(req.phases().size() - i - 1));
      if (slice_len <= 0) return std::nullopt;
    }
    const TimeInterval slot(cursor, cursor + slice_len);
    Tick phase_end = cursor;
    for (const auto& [type, q] : phase.demand.amounts()) {
      auto piece = consume_asap(view.of(type), slot, q);
      if (!piece) return std::nullopt;
      phase_end = std::max(phase_end, piece->boundary);
      auto [it, inserted] = plan.usage.emplace(type, piece->usage);
      if (!inserted) it->second = it->second.plus(piece->usage);
    }
    if (i + 1 < req.phases().size()) plan.cut_points.push_back(slot.end());
    cursor = slot.end();
  }
  plan.finish = req.phases().empty() ? plan.start : req.window().end();
  return plan;
}

}  // namespace

std::optional<ActorPlan> plan_actor(const ResourceSet& available,
                                    const ComplexRequirement& requirement,
                                    PlanningPolicy policy) {
  if (requirement.phases().empty()) {
    ActorPlan trivial;
    trivial.actor = requirement.actor();
    trivial.start = requirement.window().start();
    trivial.finish = requirement.window().start();
    return trivial;
  }
  switch (policy) {
    case PlanningPolicy::kAsap: return plan_asap(available, requirement);
    case PlanningPolicy::kAlap: return plan_alap(available, requirement);
    case PlanningPolicy::kUniform: return plan_uniform(available, requirement);
  }
  throw std::invalid_argument("invalid PlanningPolicy");
}

std::optional<ConcurrentPlan> plan_concurrent(const ResourceSet& available,
                                              const ConcurrentRequirement& requirement,
                                              PlanningPolicy policy,
                                              const std::vector<std::size_t>& order) {
  std::vector<std::size_t> sequence(requirement.actors().size());
  std::iota(sequence.begin(), sequence.end(), 0);
  if (!order.empty()) {
    if (order.size() != sequence.size()) {
      throw std::invalid_argument("plan_concurrent: order must permute all actors");
    }
    sequence = order;
  }

  ConcurrentPlan plan;
  plan.computation = requirement.name();
  plan.actors.resize(requirement.actors().size());
  plan.finish = requirement.window().start();

  ResourceSet residual = available;
  for (std::size_t idx : sequence) {
    const ComplexRequirement& actor_req = requirement.actors().at(idx);
    auto actor_plan = plan_actor(residual, actor_req, policy);
    if (!actor_plan) return std::nullopt;

    // Subtract this actor's usage before planning the next one.
    ResourceSet used;
    for (const auto& [type, f] : actor_plan->usage) used.add(type, f);
    auto next_residual = residual.relative_complement(used);
    if (!next_residual) {
      throw std::logic_error("planner produced usage exceeding availability");
    }
    residual = std::move(*next_residual);

    plan.finish = std::max(plan.finish, actor_plan->finish);
    plan.actors[idx] = std::move(*actor_plan);
  }
  return plan;
}

}  // namespace rota
