#include "rota/logic/dag_planner.hpp"

#include <algorithm>
#include <stdexcept>

namespace rota {

std::map<LocatedType, StepFunction> InteractingPlan::total_usage() const {
  std::map<LocatedType, StepFunction> out;
  for (const auto& seg : segments) {
    for (const auto& [type, f] : seg.usage) {
      auto [it, inserted] = out.emplace(type, f);
      if (!inserted) it->second = it->second.plus(f);
    }
  }
  return out;
}

ResourceSet InteractingPlan::usage_as_resources() const {
  ResourceSet out;
  for (const auto& [type, f] : total_usage()) {
    for (const auto& seg : f.segments()) out.add(seg.value, seg.interval, type);
  }
  return out;
}

std::optional<InteractingPlan> plan_dag(const ResourceSet& available,
                                        const DagRequirement& dag) {
  const std::size_t n = dag.nodes.size();

  // Kahn topological order over the waits_for edges.
  std::vector<std::size_t> indegree(n, 0);
  std::vector<std::vector<std::size_t>> dependents(n);
  for (std::size_t i = 0; i < n; ++i) {
    indegree[i] = dag.nodes[i].waits_for.size();
    for (std::size_t dep : dag.nodes[i].waits_for) {
      if (dep >= n) throw std::invalid_argument("plan_dag: dependency out of range");
      dependents[dep].push_back(i);
    }
  }
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }

  InteractingPlan plan;
  plan.computation = dag.name;
  plan.segments.resize(n);
  plan.finish = dag.window.start();

  std::vector<Tick> finish_time(n, dag.window.start());
  ResourceSet residual = available;
  std::size_t processed = 0;

  while (!ready.empty()) {
    // Earliest-start-first keeps the greedy close to a global ASAP schedule.
    auto it = std::min_element(
        ready.begin(), ready.end(), [&](std::size_t a, std::size_t b) {
          Tick sa = dag.window.start(), sb = dag.window.start();
          for (std::size_t d : dag.nodes[a].waits_for) sa = std::max(sa, finish_time[d]);
          for (std::size_t d : dag.nodes[b].waits_for) sb = std::max(sb, finish_time[d]);
          return sa < sb;
        });
    const std::size_t node = *it;
    ready.erase(it);
    ++processed;

    Tick start = dag.window.start();
    for (std::size_t dep : dag.nodes[node].waits_for) {
      start = std::max(start, finish_time[dep]);
    }
    if (start >= dag.window.end()) return std::nullopt;  // gate past the deadline

    const ComplexRequirement& base = dag.nodes[node].requirement;
    const ComplexRequirement clipped(base.actor(), base.phases(),
                                     TimeInterval(start, dag.window.end()),
                                     base.rate_cap());
    auto seg_plan = plan_actor(residual, clipped, PlanningPolicy::kAsap);
    if (!seg_plan) return std::nullopt;

    ResourceSet used;
    for (const auto& [type, f] : seg_plan->usage) {
      for (const auto& seg : f.segments()) used.add(seg.value, seg.interval, type);
    }
    auto next_residual = residual.relative_complement(used);
    if (!next_residual) {
      throw std::logic_error("plan_dag: planner produced usage exceeding availability");
    }
    residual = std::move(*next_residual);

    SegmentPlan& out = plan.segments[node];
    out.actor_index = dag.nodes[node].actor_index;
    out.segment_index = dag.nodes[node].segment_index;
    out.usage = std::move(seg_plan->usage);
    out.cut_points = std::move(seg_plan->cut_points);
    out.start = start;
    out.finish = seg_plan->finish;
    finish_time[node] = seg_plan->finish;
    plan.finish = std::max(plan.finish, seg_plan->finish);

    for (std::size_t dep : dependents[node]) {
      if (--indegree[dep] == 0) ready.push_back(dep);
    }
  }

  if (processed != n) {
    // Unreachable for validated InteractingComputations (cycles rejected at
    // construction), but hand-built DagRequirements can be cyclic.
    return std::nullopt;
  }
  return plan;
}

std::optional<InteractingPlan> plan_interacting(
    const ResourceSet& available, const CostModel& phi,
    const InteractingComputation& computation) {
  return plan_dag(available, make_dag_requirement(phi, computation));
}

ComputationPath realize_interacting_plan(const ResourceSet& theta,
                                         const DagRequirement& dag,
                                         const InteractingPlan& plan,
                                         Tick start_time) {
  if (plan.segments.size() != dag.nodes.size()) {
    throw std::logic_error("realize_interacting_plan: plan does not match DAG arity");
  }
  // One commitment per segment, windowed at the segment's planned start so
  // premature consumption (before the gate releases) trips rule validation.
  std::vector<ComplexRequirement> as_actors;
  as_actors.reserve(dag.nodes.size());
  for (std::size_t i = 0; i < dag.nodes.size(); ++i) {
    const ComplexRequirement& base = dag.nodes[i].requirement;
    as_actors.emplace_back(base.actor(), base.phases(),
                           TimeInterval(plan.segments[i].start, dag.window.end()),
                           base.rate_cap());
  }
  const ConcurrentRequirement rho(dag.name, std::move(as_actors), dag.window);

  ComputationPath path(SystemState(theta, start_time));
  path.apply(AccommodateStep{rho});

  const Tick end = std::max(plan.finish, start_time);
  for (Tick t = start_time; t < end; ++t) {
    std::vector<ConsumptionLabel> labels;
    for (std::size_t i = 0; i < plan.segments.size(); ++i) {
      for (const auto& [type, f] : plan.segments[i].usage) {
        const Rate r = f.value_at(t);
        if (r > 0) labels.push_back(ConsumptionLabel{i, type, r});
      }
    }
    path.apply(TickStep{std::move(labels)});
  }
  if (!path.back().all_finished()) {
    throw std::logic_error("realize_interacting_plan: plan did not drain the DAG");
  }
  return path;
}

}  // namespace rota
