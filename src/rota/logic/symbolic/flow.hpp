// Dinic max-flow over the small transportation graphs the symbolic
// feasibility engine builds (supply ticks → phase intervals → demands).
//
// Capacities are integers, so a maximum flow is integral and a saturating
// flow decomposes directly into per-tick consumption rates — the witness
// labels the engine hands back. Graphs here are tiny (a few hundred nodes:
// one per tick in the window plus one per pending phase), so a plain Dinic
// with adjacency vectors is both fast and allocation-light.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rota::symbolic {

class MaxFlow {
 public:
  explicit MaxFlow(std::size_t nodes)
      : adj_(nodes), level_(nodes), iter_(nodes) {}

  /// Adds a directed edge with the given capacity; returns an id usable with
  /// flow_on() after solve(). Capacity must be non-negative.
  std::size_t add_edge(std::size_t from, std::size_t to, std::int64_t capacity);

  /// Maximum source→sink flow. Call once per instance.
  std::int64_t solve(std::size_t source, std::size_t sink);

  /// Flow pushed through edge `edge_id` by solve().
  std::int64_t flow_on(std::size_t edge_id) const;

 private:
  struct Edge {
    std::size_t to = 0;
    std::size_t rev = 0;   // index of the paired reverse edge in adj_[to]
    std::int64_t cap = 0;  // residual capacity
  };

  bool bfs(std::size_t s, std::size_t t);
  std::int64_t dfs(std::size_t v, std::size_t t, std::int64_t limit);

  std::vector<std::vector<Edge>> adj_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  std::vector<std::pair<std::size_t, std::size_t>> edges_;  // id → (from, pos)
  std::vector<std::int64_t> caps_;                          // id → original cap
};

}  // namespace rota::symbolic
