// Symbolic cut-point feasibility engine for multi-actor satisfy(ρ(Λ,s,d)).
//
// The brute-force explorer decides multi-actor accommodation by sweeping
// priority permutations — factorial in the number of commitments, so it caps
// out at `max_permuted`. This engine decides the same question by searching
// over *cut-points* instead of schedules:
//
//   For each unfinished commitment, the pending phases must complete in
//   order inside the commitment's window. Fix the boundary ticks
//   c_0 ≤ c_1 ≤ … ≤ c_m (c_0 = release, c_m = deadline); phase i then
//   consumes only within [c_i, c_{i+1}). Once every commitment's boundaries
//   are fixed, the remaining question — can per-tick supply cover every
//   phase's demand under the per-commitment rate caps? — decomposes per
//   located type into a transportation problem (supply ticks → phases),
//   answered exactly by a small integral max-flow. The search over cut
//   assignments is a DFS with interval propagation: ASAP/ALAP bounds from
//   earliest_cover/latest_cover_start prune each commitment's boundary
//   domains, and a relaxed flow check (unassigned commitments keep their
//   full boundary hulls) prunes partial assignments. Single-phase
//   commitments contribute *no* free cut-points, so the common case — n
//   single-phase actors that the explorer needs n! permutations for — is a
//   single polynomial flow check.
//
// Decision class: one phase per actor per tick, i.e. exactly the schedules
// the greedy/permutation explorer can reach. (SystemState::advance would
// technically allow a second label to land in the *next* phase within one
// tick after a mid-tick promotion; neither the explorer nor the planner
// ever emits such schedules, and the equivalence gate in the fuzz harness
// pins this engine against the explorer, so that latent extra freedom is
// deliberately out of scope.) Witnesses are per-tick label lists that replay
// through SystemState::advance, so every kFeasible verdict is checkable.
//
// Verdicts are exact (kFeasible / kInfeasible) unless the node budget or the
// tick ceiling is exceeded, in which case kUnknown tells callers to fall
// back to the permutation sweep.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rota/logic/path.hpp"
#include "rota/logic/planner.hpp"

namespace rota {

/// Which rungs of the feasibility ladder a caller wants. Greedy priority
/// orders always run first (cheap, and they yield witness paths directly);
/// the selector picks what happens when they fail.
enum class FeasibilityEngine {
  kAuto,      // greedy → symbolic → permutation sweep on kUnknown
  kGreedy,    // greedy orders only (sound but incomplete)
  kSymbolic,  // greedy → symbolic; kUnknown means undecided (no sweep)
  kExplorer,  // greedy → permutation sweep (the historical brute force)
};

std::string feasibility_engine_name(FeasibilityEngine engine);

enum class FeasibilityVerdict { kFeasible, kInfeasible, kUnknown };

std::string feasibility_verdict_name(FeasibilityVerdict verdict);

struct FeasibilityOptions {
  /// Cut-assignment DFS nodes (boundary values tried) before giving up with
  /// kUnknown. Single-phase-only instances never spend a node.
  std::uint64_t node_budget = 50'000;
  /// Widest window (max deadline − now, in ticks) the encoding will attempt;
  /// wider instances return kUnknown immediately.
  Tick max_ticks = 512;
};

struct FeasibilityStats {
  std::uint64_t nodes = 0;        // boundary values enumerated by the DFS
  std::uint64_t flow_checks = 0;  // transportation relaxations solved
  std::size_t free_cuts = 0;      // interior boundaries searched over
  Tick ticks = 0;                 // window width of the encoding
};

struct FeasibilityResult {
  FeasibilityVerdict verdict = FeasibilityVerdict::kUnknown;
  /// kFeasible only: labels to apply at now, now+1, … (possibly empty lists
  /// for idle ticks). Replays through SystemState::advance.
  std::vector<std::vector<ConsumptionLabel>> schedule;
  /// kFeasible only: per input commitment, the chosen boundaries
  /// c_0 … c_m (empty for already-finished commitments).
  std::vector<std::vector<Tick>> boundaries;
  FeasibilityStats stats;

  bool feasible() const { return verdict == FeasibilityVerdict::kFeasible; }
};

/// Decides whether some label sequence from `start` finishes every commitment
/// by its deadline, consuming nothing at or beyond `horizon`.
FeasibilityResult decide_feasibility(const SystemState& start, Tick horizon,
                                     const FeasibilityOptions& options = {});

/// Replays a kFeasible result from `start`, returning the witness path, or
/// nullopt if the schedule does not validate (which would be an engine bug —
/// the fuzz harness checks exactly this).
std::optional<ComputationPath> realize_feasibility(const SystemState& start,
                                                   const FeasibilityResult& result);

/// decide + realize in one step: a witness path, or nullopt unless feasible.
std::optional<ComputationPath> feasibility_witness_path(
    const SystemState& start, Tick horizon, const FeasibilityOptions& options = {});

/// Admission-probe adapter: accommodates `rho` against `available` at `now`
/// and, when the engine proves feasibility, converts the witness schedule
/// into a ConcurrentPlan (per-actor usage step functions + cut points) that
/// a CommitmentLedger can admit. nullopt on kInfeasible *and* kUnknown.
std::optional<ConcurrentPlan> symbolic_concurrent_plan(
    const ResourceSet& available, const ConcurrentRequirement& rho, Tick now,
    const FeasibilityOptions& options = {});

}  // namespace rota
