#include "rota/logic/symbolic/feasibility.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>
#include <utility>

#include "rota/logic/symbolic/flow.hpp"

namespace rota {

std::string feasibility_engine_name(FeasibilityEngine engine) {
  switch (engine) {
    case FeasibilityEngine::kAuto: return "auto";
    case FeasibilityEngine::kGreedy: return "greedy";
    case FeasibilityEngine::kSymbolic: return "symbolic";
    case FeasibilityEngine::kExplorer: return "explorer";
  }
  return "?";
}

std::string feasibility_verdict_name(FeasibilityVerdict verdict) {
  switch (verdict) {
    case FeasibilityVerdict::kFeasible: return "feasible";
    case FeasibilityVerdict::kInfeasible: return "infeasible";
    case FeasibilityVerdict::kUnknown: return "unknown";
  }
  return "?";
}

namespace {

/// One pending phase of one unfinished commitment, flattened. `lo`/`hi` are
/// the relaxed ASAP/ALAP hull [e_i, l_{i+1}); the DFS narrows an actor's
/// phases to exact [c_i, c_{i+1}) windows once its boundaries are assigned.
struct PhaseVar {
  std::size_t actor = 0;           // index into ActorVars
  std::size_t index = 0;           // position among the actor's pending phases
  const DemandSet* demand = nullptr;
  Tick lo = 0;
  Tick hi = 0;
};

struct ActorVar {
  std::size_t commitment = 0;  // index into start.commitments()
  Tick release = 0;            // max(now, window.start)
  Tick deadline = 0;           // min(window.end, horizon)
  Rate rate_cap = 0;           // 0 = unbounded
  std::vector<std::size_t> phases;  // indices into the flat phase list
  std::vector<const DemandSet*> pending;
  std::vector<Tick> earliest;  // e_0 … e_m (boundary lower bounds)
  std::vector<Tick> latest;    // l_0 … l_m (boundary upper bounds)
  std::vector<Tick> cuts;      // c_0 … c_m once assigned
  bool assigned = false;
  // availability min'd with the commitment's rate cap, per demanded type,
  // restricted to [release, deadline)
  std::vector<std::pair<LocatedType, StepFunction>> capped;

  const StepFunction& capped_for(const LocatedType& type) const {
    for (const auto& [t, f] : capped) {
      if (t == type) return f;
    }
    throw std::logic_error("symbolic: no capped profile for type");
  }
};

struct Encoding {
  Tick now = 0;
  Tick end = 0;  // max deadline; ticks span [now, end)
  std::vector<ActorVar> actors;
  std::vector<PhaseVar> phases;
  // per located type, availability at each tick in [now, end), sorted by type
  // so flow construction (and hence witnesses) is deterministic
  std::vector<std::pair<LocatedType, std::vector<Rate>>> supply;
};

struct Search {
  const FeasibilityOptions& options;
  Encoding enc;
  FeasibilityStats stats;
  bool exhausted = false;

  /// Window phase `p` may consume in under the current partial assignment.
  std::pair<Tick, Tick> phase_window(const PhaseVar& p) const {
    const ActorVar& a = enc.actors[p.actor];
    if (a.assigned) return {a.cuts[p.index], a.cuts[p.index + 1]};
    return {p.lo, p.hi};
  }

  /// Per-type transportation relaxation. Exact when every actor is assigned.
  /// With `schedule` non-null (all-assigned only), decomposes the saturating
  /// flow into per-tick witness labels.
  bool flow_feasible(std::vector<std::vector<ConsumptionLabel>>* schedule) {
    ++stats.flow_checks;
    const std::size_t ticks = static_cast<std::size_t>(enc.end - enc.now);
    for (const auto& [type, avail] : enc.supply) {
      // phases demanding this type
      std::vector<std::pair<std::size_t, Quantity>> want;  // (phase idx, q)
      Quantity total = 0;
      for (std::size_t pi = 0; pi < enc.phases.size(); ++pi) {
        const Quantity q = enc.phases[pi].demand->of(type);
        if (q > 0) {
          want.emplace_back(pi, q);
          total += q;
        }
      }
      if (total == 0) continue;
      // nodes: 0 = source, 1..ticks = supply ticks, then phases, then sink
      const std::size_t sink = 1 + ticks + want.size();
      symbolic::MaxFlow mf(sink + 1);
      for (std::size_t k = 0; k < ticks; ++k) {
        if (avail[k] > 0) mf.add_edge(0, 1 + k, avail[k]);
      }
      struct TickEdge {
        Tick tick;
        std::size_t phase;
        std::size_t edge;
      };
      std::vector<TickEdge> tick_edges;
      for (std::size_t w = 0; w < want.size(); ++w) {
        const auto& [pi, q] = want[w];
        const PhaseVar& p = enc.phases[pi];
        const ActorVar& a = enc.actors[p.actor];
        const auto [w_lo, w_hi] = phase_window(p);
        const Rate cap = a.rate_cap > 0 ? a.rate_cap : q;
        for (Tick t = w_lo; t < w_hi; ++t) {
          const std::size_t k = static_cast<std::size_t>(t - enc.now);
          if (avail[k] <= 0) continue;
          const std::size_t id = mf.add_edge(1 + k, 1 + ticks + w, cap);
          if (schedule != nullptr) tick_edges.push_back({t, pi, id});
        }
        mf.add_edge(1 + ticks + w, sink, q);
      }
      if (mf.solve(0, sink) < total) return false;
      if (schedule != nullptr) {
        for (const TickEdge& te : tick_edges) {
          const std::int64_t f = mf.flow_on(te.edge);
          if (f <= 0) continue;
          const PhaseVar& p = enc.phases[te.phase];
          (*schedule)[static_cast<std::size_t>(te.tick - enc.now)].push_back(
              ConsumptionLabel{enc.actors[p.actor].commitment, type, f});
        }
      }
    }
    return true;
  }

  /// DFS over actors in index order; each actor's interior boundaries are
  /// enumerated ascending, so the first witness found is deterministic.
  bool search(std::size_t ai) {
    if (ai == enc.actors.size()) return true;
    return assign_boundary(ai, 1);
  }

  bool assign_boundary(std::size_t ai, std::size_t b) {
    ActorVar& a = enc.actors[ai];
    const std::size_t m = a.phases.size();
    if (b == 1) {
      a.cuts.assign(m + 1, 0);
      a.cuts[0] = a.release;
      a.cuts[m] = a.deadline;
    }
    if (b == m) {
      // Per-actor coverage of every phase is guaranteed by construction (the
      // enumeration lower bound covers phases 0..m-2, the ALAP bound on
      // c_{m-1} covers the last); what is left is cross-actor contention,
      // which the relaxation checks (exactly, once every actor is assigned).
      a.assigned = true;
      if (flow_feasible(nullptr) && search(ai + 1)) return true;
      a.assigned = false;
      return false;
    }
    // Earliest completion of phase b-1 when it starts at cuts[b-1]: the
    // boundary after it can come no sooner.
    Tick lb = std::max(a.cuts[b - 1], a.earliest[b]);
    for (const auto& [type, q] : a.pending[b - 1]->amounts()) {
      const auto t = a.capped_for(type).earliest_cover(
          TimeInterval(a.cuts[b - 1], a.deadline), q);
      if (!t) return false;
      lb = std::max(lb, *t);
    }
    for (Tick c = lb; c <= a.latest[b]; ++c) {
      if (++stats.nodes > options.node_budget) {
        exhausted = true;
        return false;
      }
      a.cuts[b] = c;
      if (assign_boundary(ai, b + 1)) return true;
      if (exhausted) return false;
    }
    return false;
  }
};

}  // namespace

FeasibilityResult decide_feasibility(const SystemState& start, Tick horizon,
                                     const FeasibilityOptions& options) {
  FeasibilityResult result;
  result.boundaries.resize(start.commitments().size());

  // A commitment that already finished past its deadline keeps the explorer's
  // all_met false forever; no future schedule can repair it.
  for (const auto& p : start.commitments()) {
    if (p.finished() && p.finished_at && *p.finished_at > p.window.end()) {
      result.verdict = FeasibilityVerdict::kInfeasible;
      return result;
    }
  }

  Search s{options, {}, {}, false};
  Encoding& enc = s.enc;
  enc.now = start.now();
  enc.end = enc.now;

  for (std::size_t c = 0; c < start.commitments().size(); ++c) {
    const ActorProgress& p = start.commitments()[c];
    if (p.finished()) continue;
    ActorVar a;
    a.commitment = c;
    a.release = std::max(enc.now, p.window.start());
    a.deadline = std::min(p.window.end(), horizon);
    a.rate_cap = p.rate_cap;
    if (a.release >= a.deadline) {
      result.verdict = FeasibilityVerdict::kInfeasible;
      return result;
    }
    // Pending demands: the current phase's remainder, then the untouched
    // tail. Empty *later* phases auto-promote inside advance() and need no
    // window; an empty *current* remainder on an unfinished commitment can
    // never promote (promotion only happens under consumption), so the
    // commitment can never finish.
    if (p.remaining.empty()) {
      result.verdict = FeasibilityVerdict::kInfeasible;
      return result;
    }
    a.pending.push_back(&p.remaining);
    for (std::size_t i = p.phase_index + 1; i < p.phases.size(); ++i) {
      if (!p.phases[i].demand.empty()) a.pending.push_back(&p.phases[i].demand);
    }
    // Per-type availability clamped by the commitment's absorption cap: the
    // most this commitment could draw at each tick, the basis for its
    // ASAP/ALAP boundary bounds.
    const TimeInterval span(a.release, a.deadline);
    for (const DemandSet* ds : a.pending) {
      for (const auto& [type, q] : ds->amounts()) {
        const bool seen =
            std::any_of(a.capped.begin(), a.capped.end(),
                        [&](const auto& kv) { return kv.first == type; });
        if (seen) continue;
        // clamped: joins can leave locally negative availability, which must
        // read as "nothing to draw", not as negative cover.
        StepFunction f =
            start.theta().availability(type).restricted(span).clamped_nonnegative();
        if (a.rate_cap > 0) f = f.min(StepFunction(span, a.rate_cap));
        a.capped.emplace_back(type, std::move(f));
      }
    }
    // ASAP pass: e_{i+1} = earliest tick by which phase i can complete when
    // everything before it ran as early as possible.
    const std::size_t m = a.pending.size();
    a.earliest.assign(m + 1, a.release);
    for (std::size_t i = 0; i < m; ++i) {
      Tick next = a.earliest[i];
      for (const auto& [type, q] : a.pending[i]->amounts()) {
        const auto t = a.capped_for(type).earliest_cover(
            TimeInterval(a.earliest[i], a.deadline), q);
        if (!t) {
          result.verdict = FeasibilityVerdict::kInfeasible;
          return result;
        }
        next = std::max(next, *t);
      }
      a.earliest[i + 1] = next;
    }
    // ALAP pass: l_i = latest boundary from which the suffix still fits.
    a.latest.assign(m + 1, a.deadline);
    for (std::size_t i = m; i-- > 0;) {
      Tick prev = a.latest[i + 1];
      for (const auto& [type, q] : a.pending[i]->amounts()) {
        const auto t = a.capped_for(type).latest_cover_start(
            TimeInterval(a.release, a.latest[i + 1]), q);
        if (!t) {
          result.verdict = FeasibilityVerdict::kInfeasible;
          return result;
        }
        prev = std::min(prev, *t);
      }
      a.latest[i] = prev;
    }
    for (std::size_t i = 0; i <= m; ++i) {
      if (a.earliest[i] > a.latest[i]) {
        result.verdict = FeasibilityVerdict::kInfeasible;
        return result;
      }
    }
    s.stats.free_cuts += m - 1;
    enc.end = std::max(enc.end, a.deadline);
    enc.actors.push_back(std::move(a));
  }

  if (enc.actors.empty()) {
    result.verdict = FeasibilityVerdict::kFeasible;
    return result;
  }
  result.stats = s.stats;
  result.stats.ticks = enc.end - enc.now;
  if (enc.end - enc.now > options.max_ticks) {
    result.verdict = FeasibilityVerdict::kUnknown;
    return result;
  }

  // Flatten phases (actor-major, phase order) and collect per-tick supply for
  // every demanded type, sorted by type for determinism.
  for (std::size_t ai = 0; ai < enc.actors.size(); ++ai) {
    ActorVar& a = enc.actors[ai];
    for (std::size_t i = 0; i < a.pending.size(); ++i) {
      a.phases.push_back(enc.phases.size());
      enc.phases.push_back(PhaseVar{ai, i, a.pending[i],
                                    a.earliest[i], a.latest[i + 1]});
    }
  }
  {
    std::map<LocatedType, std::vector<Rate>> supply;
    const std::size_t ticks = static_cast<std::size_t>(enc.end - enc.now);
    for (const PhaseVar& p : enc.phases) {
      for (const auto& [type, q] : p.demand->amounts()) {
        auto [it, inserted] = supply.try_emplace(type);
        if (!inserted) continue;
        it->second.resize(ticks);
        const StepFunction& f = start.theta().availability(type);
        for (std::size_t k = 0; k < ticks; ++k) {
          it->second[k] = std::max<Rate>(0, f.value_at(enc.now + static_cast<Tick>(k)));
        }
      }
    }
    enc.supply.assign(supply.begin(), supply.end());
  }

  // All-relaxed root check: if even the boundary hulls cannot transport the
  // demand, the instance is infeasible without any search.
  if (!s.flow_feasible(nullptr)) {
    result.verdict = FeasibilityVerdict::kInfeasible;
    result.stats = s.stats;
    result.stats.ticks = enc.end - enc.now;
    return result;
  }

  const bool found = s.search(0);
  result.stats = s.stats;
  result.stats.ticks = enc.end - enc.now;
  if (!found) {
    result.verdict = s.exhausted ? FeasibilityVerdict::kUnknown
                                 : FeasibilityVerdict::kInfeasible;
    return result;
  }

  // Every actor is assigned: re-solve the (now exact) flows and decompose
  // into the witness schedule.
  std::vector<std::vector<ConsumptionLabel>> schedule(
      static_cast<std::size_t>(enc.end - enc.now));
  if (!s.flow_feasible(&schedule)) {
    // The last in-search check passed with identical windows; disagreement
    // here would be a solver bug.
    throw std::logic_error("symbolic: witness flow disagreed with search");
  }
  while (!schedule.empty() && schedule.back().empty()) schedule.pop_back();
  result.schedule = std::move(schedule);
  for (const ActorVar& a : enc.actors) {
    result.boundaries[a.commitment] = a.cuts;
  }
  result.verdict = FeasibilityVerdict::kFeasible;
  return result;
}

std::optional<ComputationPath> realize_feasibility(const SystemState& start,
                                                   const FeasibilityResult& result) {
  if (!result.feasible()) return std::nullopt;
  ComputationPath path(start);
  try {
    for (const auto& labels : result.schedule) {
      path.apply(TickStep{labels});
    }
  } catch (const std::logic_error&) {
    return std::nullopt;
  }
  const SystemState& tip = path.back();
  if (!tip.all_finished()) return std::nullopt;
  for (const ActorProgress& p : tip.commitments()) {
    if (p.finished_at && *p.finished_at > p.window.end()) return std::nullopt;
  }
  return path;
}

std::optional<ComputationPath> feasibility_witness_path(
    const SystemState& start, Tick horizon, const FeasibilityOptions& options) {
  return realize_feasibility(start, decide_feasibility(start, horizon, options));
}

std::optional<ConcurrentPlan> symbolic_concurrent_plan(
    const ResourceSet& available, const ConcurrentRequirement& rho, Tick now,
    const FeasibilityOptions& options) {
  if (now >= rho.window().end()) return std::nullopt;
  SystemState probe(available, now);
  try {
    probe.accommodate(rho);
  } catch (const std::logic_error&) {
    return std::nullopt;
  }
  const FeasibilityResult result =
      decide_feasibility(probe, rho.window().end(), options);
  if (!result.feasible()) return std::nullopt;

  ConcurrentPlan plan;
  plan.computation = rho.name();
  plan.actors.resize(rho.actors().size());
  plan.finish = now;
  std::vector<Tick> finishes(rho.actors().size(), now);
  for (std::size_t i = 0; i < rho.actors().size(); ++i) {
    ActorPlan& ap = plan.actors[i];
    ap.actor = rho.actors()[i].actor();
    const auto& cuts = result.boundaries[i];
    ap.start = cuts.empty() ? now : cuts.front();
    finishes[i] = ap.start;
    if (cuts.size() > 2) {
      ap.cut_points.assign(cuts.begin() + 1, cuts.end() - 1);
    }
  }
  for (std::size_t k = 0; k < result.schedule.size(); ++k) {
    const Tick t = now + static_cast<Tick>(k);
    for (const ConsumptionLabel& label : result.schedule[k]) {
      ActorPlan& ap = plan.actors[label.commitment];
      ap.usage[label.type].add(TimeInterval(t, t + 1), label.rate);
      finishes[label.commitment] = std::max(finishes[label.commitment], t + 1);
    }
  }
  for (std::size_t i = 0; i < plan.actors.size(); ++i) {
    plan.actors[i].finish = finishes[i];
    plan.finish = std::max(plan.finish, finishes[i]);
  }
  return plan;
}

}  // namespace rota
