#include "rota/logic/symbolic/flow.hpp"

#include <algorithm>
#include <deque>
#include <limits>

namespace rota::symbolic {

std::size_t MaxFlow::add_edge(std::size_t from, std::size_t to,
                              std::int64_t capacity) {
  const std::size_t id = edges_.size();
  edges_.emplace_back(from, adj_[from].size());
  caps_.push_back(capacity);
  adj_[from].push_back(Edge{to, adj_[to].size(), capacity});
  adj_[to].push_back(Edge{from, adj_[from].size() - 1, 0});
  return id;
}

bool MaxFlow::bfs(std::size_t s, std::size_t t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::deque<std::size_t> queue;
  level_[s] = 0;
  queue.push_back(s);
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop_front();
    for (const Edge& e : adj_[v]) {
      if (e.cap <= 0 || level_[e.to] >= 0) continue;
      level_[e.to] = level_[v] + 1;
      queue.push_back(e.to);
    }
  }
  return level_[t] >= 0;
}

std::int64_t MaxFlow::dfs(std::size_t v, std::size_t t, std::int64_t limit) {
  if (v == t) return limit;
  for (std::size_t& i = iter_[v]; i < adj_[v].size(); ++i) {
    Edge& e = adj_[v][i];
    if (e.cap <= 0 || level_[e.to] != level_[v] + 1) continue;
    const std::int64_t pushed = dfs(e.to, t, std::min(limit, e.cap));
    if (pushed <= 0) continue;
    e.cap -= pushed;
    adj_[e.to][e.rev].cap += pushed;
    return pushed;
  }
  return 0;
}

std::int64_t MaxFlow::solve(std::size_t source, std::size_t sink) {
  std::int64_t total = 0;
  while (bfs(source, sink)) {
    std::fill(iter_.begin(), iter_.end(), 0);
    while (const std::int64_t pushed =
               dfs(source, sink, std::numeric_limits<std::int64_t>::max() / 2)) {
      total += pushed;
    }
  }
  return total;
}

std::int64_t MaxFlow::flow_on(std::size_t edge_id) const {
  const auto& [from, pos] = edges_[edge_id];
  return caps_[edge_id] - adj_[from][pos].cap;
}

}  // namespace rota::symbolic
