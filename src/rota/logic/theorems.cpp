#include "rota/logic/theorems.hpp"

#include <algorithm>
#include <stdexcept>

namespace rota {

bool theorem1_single_action(const ResourceSet& theta, const SimpleRequirement& rho) {
  return rho.satisfied_by(theta);
}

std::optional<std::vector<Tick>> theorem2_cut_points(const ResourceSet& theta,
                                                     const ComplexRequirement& rho) {
  auto plan = plan_actor(theta, rho, PlanningPolicy::kAsap);
  if (!plan) return std::nullopt;
  return plan->cut_points;
}

std::optional<ComputationPath> theorem3_witness(const ResourceSet& theta,
                                                const ConcurrentRequirement& rho,
                                                PlanningPolicy policy) {
  const Tick start = rho.window().start();
  if (auto plan = plan_concurrent(theta, rho, policy)) {
    return realize_plan(theta, rho, *plan, start);
  }
  // Planner found nothing; fall back to schedule search over the transition
  // rules (may recover contended multi-actor instances the sequential
  // planner rejects).
  SystemState s0(theta, start);
  s0.accommodate(rho);
  return search_feasible(s0, rho.window().end());
}

ComputationPath realize_plan(const ResourceSet& theta, const ConcurrentRequirement& rho,
                             const ConcurrentPlan& plan, Tick start_time) {
  if (plan.actors.size() != rho.actors().size()) {
    throw std::logic_error("realize_plan: plan does not match requirement arity");
  }
  SystemState s0(theta, start_time);
  ComputationPath path(std::move(s0));
  path.apply(AccommodateStep{rho});

  const Tick end = std::max(plan.finish, start_time);
  for (Tick t = start_time; t < end; ++t) {
    std::vector<ConsumptionLabel> labels;
    for (std::size_t i = 0; i < plan.actors.size(); ++i) {
      for (const auto& [type, f] : plan.actors[i].usage) {
        const Rate r = f.value_at(t);
        if (r > 0) labels.push_back(ConsumptionLabel{i, type, r});
      }
    }
    path.apply(TickStep{std::move(labels)});
  }

  if (!path.back().all_finished()) {
    throw std::logic_error("realize_plan: plan did not drain the requirement");
  }
  return path;
}

std::optional<ConcurrentPlan> theorem4_accommodate(const ComputationPath& sigma,
                                                   std::size_t position,
                                                   const ConcurrentRequirement& new_rho,
                                                   PlanningPolicy policy) {
  const Tick t = sigma.state(position).now();
  const TimeInterval window(std::max(new_rho.window().start(), t),
                            new_rho.window().end());
  if (window.empty()) return std::nullopt;  // deadline passed

  const ResourceSet expiring = sigma.expiring_resources(position, window);
  std::vector<ComplexRequirement> clipped;
  clipped.reserve(new_rho.actors().size());
  for (const auto& a : new_rho.actors()) {
    clipped.emplace_back(a.actor(), a.phases(), window, a.rate_cap());
  }
  return plan_concurrent(expiring,
                         ConcurrentRequirement(new_rho.name(), std::move(clipped), window),
                         policy);
}

}  // namespace rota
