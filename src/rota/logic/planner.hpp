// Consumption planning: constructive witnesses for Theorems 2–4.
//
// A *plan* assigns each committed actor a consumption profile (a step
// function per located type) and the cut points t1 < … < t(m-1) between its
// phases, such that the profile (a) stays within the offered availability,
// (b) respects phase order, and (c) finishes by the deadline. The existence
// of such a plan is exactly the paper's satisfaction condition for complex
// requirements; realizing the plan as transition-rule labels yields the
// witness computation path of Theorem 3.
//
// Three policies are provided:
//   * kAsap    — earliest-finish greedy. For a single actor against a fixed
//     availability profile this is *complete*: each phase's finish time is
//     minimized given the previous one, and a later phase can only benefit
//     from an earlier start (exchange argument), so if ASAP fails, no cut
//     points exist.
//   * kAlap    — latest-start mirror of ASAP; finishes exactly at the
//     deadline. Leaves early supply (most at risk of expiring) unused.
//   * kUniform — splits the window across phases in proportion to demand and
//     consumes eagerly inside each slice; a deliberately simple policy for
//     the ablation study (it can reject computations ASAP accepts).
//
// For multiple actors sharing resources, actors are planned one at a time
// against the remaining availability (the paper's "accommodate one more
// computation at a time"); the planning order is the caller's choice and is
// itself an ablation axis.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rota/computation/requirement.hpp"
#include "rota/resource/resource_set.hpp"

namespace rota {

enum class PlanningPolicy { kAsap, kAlap, kUniform };

std::string policy_name(PlanningPolicy p);

/// One actor's planned consumption.
struct ActorPlan {
  std::string actor;
  std::map<LocatedType, StepFunction> usage;  // consumption rate per type
  std::vector<Tick> cut_points;               // interior phase boundaries
  Tick start = 0;
  Tick finish = 0;  // first tick by which every phase is complete

  /// Total quantity this plan consumes (all types).
  Quantity total_consumption() const;

  bool operator==(const ActorPlan&) const = default;
};

/// A plan for a whole concurrent requirement.
struct ConcurrentPlan {
  std::string computation;
  std::vector<ActorPlan> actors;
  Tick finish = 0;  // max over actors

  /// Aggregate usage across actors, per type.
  std::map<LocatedType, StepFunction> total_usage() const;

  /// The plan's usage as a resource set (for subtracting from availability).
  ResourceSet usage_as_resources() const;

  bool operator==(const ConcurrentPlan&) const = default;
};

/// Plans one actor's complex requirement against `available`. Returns nullopt
/// when the policy finds no feasible schedule within the requirement window.
std::optional<ActorPlan> plan_actor(const ResourceSet& available,
                                    const ComplexRequirement& requirement,
                                    PlanningPolicy policy);

/// Plans every actor of a concurrent requirement, each against availability
/// net of previously planned actors, in the order given (or `order` if
/// non-empty: a permutation of actor indices).
std::optional<ConcurrentPlan> plan_concurrent(const ResourceSet& available,
                                              const ConcurrentRequirement& requirement,
                                              PlanningPolicy policy,
                                              const std::vector<std::size_t>& order = {});

}  // namespace rota
