// Labeled transitions between system states.
//
// A Step is the label on one edge of the system's evolution tree: either a
// timed step (the general transition rule — a set of ξ → a consumptions, with
// everything unclaimed expiring, advancing t by Δt) or one of the three
// instantaneous rules (resource acquisition, computation accommodation,
// computation leave).
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "rota/computation/requirement.hpp"
#include "rota/logic/state.hpp"
#include "rota/resource/resource_set.hpp"

namespace rota {

/// The general transition rule. An empty `consumptions` vector is the pure
/// resource-expiration rule.
struct TickStep {
  std::vector<ConsumptionLabel> consumptions;
  bool operator==(const TickStep&) const = default;
};

/// The resource acquisition rule (Θ_join, with any future departure encoded
/// in the joined terms' intervals).
struct JoinStep {
  ResourceSet joined;
  bool operator==(const JoinStep&) const = default;
};

/// The computation accommodation rule.
struct AccommodateStep {
  ConcurrentRequirement rho;
  bool operator==(const AccommodateStep&) const = default;
};

/// The computation leave rule.
struct LeaveStep {
  std::string computation;
  bool operator==(const LeaveStep&) const = default;
};

using Step = std::variant<TickStep, JoinStep, AccommodateStep, LeaveStep>;

/// Applies a step to a state in place (dispatching to the matching rule).
void apply_step(SystemState& state, const Step& step);

std::string step_to_string(const Step& step);

}  // namespace rota
