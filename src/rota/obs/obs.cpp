#include "rota/obs/obs.hpp"

#include <cstdlib>

namespace rota::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}

void enable_metrics(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

std::optional<std::string> trace_path_from_env() {
  const char* path = std::getenv("ROTA_TRACE");
  if (path == nullptr || *path == '\0') return std::nullopt;
  return std::string(path);
}

CoreMetrics& CoreMetrics::get() {
  static CoreMetrics metrics = [] {
    MetricsRegistry& r = MetricsRegistry::global();
    return CoreMetrics{
        r.counter("plan.speculate.count"),
        r.counter("plan.speculate.feasible"),
        r.counter("plan.speculate.rescued"),
        r.counter("plan.commit.accepted"),
        r.counter("plan.commit.rejected.deadline_passed"),
        r.counter("plan.commit.rejected.no_plan"),
        r.counter("plan.commit.rejected.conflict"),
        r.counter("plan.commit.stale"),
        r.counter("plan.commit.shard_salvaged"),
        r.counter("batch.rounds"),
        r.counter("batch.speculations_wasted"),
        r.gauge("batch.lanes"),
        r.histogram("batch.round_ns"),
        r.counter("ledger.joins"),
        r.counter("ledger.admits"),
        r.counter("ledger.releases"),
        r.gauge("ledger.revision"),
        r.counter("sim.ticks"),
        r.counter("sim.labels"),
        r.counter("sim.joins"),
        r.counter("sim.admissions"),
        r.counter("sim.gc_runs"),
        r.counter("explorer.greedy_runs"),
        r.counter("explorer.permutations"),
        r.counter("cluster.submitted"),
        r.counter("cluster.accepted.local"),
        r.counter("cluster.accepted.remote"),
        r.counter("cluster.rejected"),
        r.counter("cluster.probes"),
        r.counter("cluster.offers"),
        r.counter("cluster.claims"),
        r.counter("cluster.claims.stale"),
        r.counter("cluster.timeouts"),
        r.counter("cluster.retries"),
        r.counter("cluster.gossip"),
        r.counter("cluster.recoveries"),
        r.counter("fabric.sent"),
        r.counter("fabric.dropped"),
        r.counter("fabric.delivered"),
        r.histogram("fabric.delay_ticks"),
        r.counter("transport.sent"),
        r.counter("transport.dropped"),
        r.counter("transport.received"),
        r.counter("transport.connects"),
        r.counter("transport.auth_failures"),
        r.counter("service.requests"),
        r.counter("service.shed"),
        r.counter("service.accepted"),
        r.counter("service.rejected"),
        r.counter("service.demotions"),
        r.counter("service.promotions"),
        r.counter("service.budget_cancels"),
        r.counter("service.revalidations_failed"),
        r.counter("service.forwarded"),
        r.counter("service.forward_accepts"),
        r.counter("service.peer_claims"),
        r.gauge("service.queue_depth"),
        r.gauge("service.level"),
        r.histogram("service.latency.exact_ns"),
        r.histogram("service.latency.digest_ns"),
        r.histogram("service.latency.greedy_ns"),
        r.histogram("service.queue_ns"),
    };
  }();
  return metrics;
}

}  // namespace rota::obs
