// Scoped spans with a Chrome-trace-format exporter.
//
// A TraceRecorder collects B/E (duration begin/end) and i (instant) events
// into per-thread buffers: recording takes one steady-clock read and one
// push_back into a thread-local vector, with no locking — a mutex is taken
// only the first time a thread touches a given recorder. install() makes a
// recorder the process-global sink; with no sink installed the Span guard in
// rota/obs/obs.hpp compiles down to one relaxed pointer load and a branch.
//
// to_chrome_json() renders the buffers as Chrome trace format JSON
// ({"traceEvents": [...]}) loadable in chrome://tracing or Perfetto
// (ui.perfetto.dev). Timestamps are microseconds from the recorder's epoch
// (steady clock), so spans from different threads line up on one axis and
// are monotone per thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rota::obs {

struct MetricsSnapshot;  // rota/obs/metrics.hpp

struct TraceEvent {
  const char* name = "";  // must outlive the recorder; use string literals
  char phase = 'B';       // 'B' begin, 'E' end, 'i' instant
  std::uint64_t ts_ns = 0;
  std::string args;  // optional JSON object *body*, e.g. "\"revision\": 3"
};

class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Makes this recorder the process-global sink (replacing any other).
  /// The caller keeps ownership and must uninstall() (or destroy the
  /// recorder, which uninstalls) once every recording thread is quiescent.
  void install();
  /// Clears the global sink if this recorder is it.
  void uninstall();
  static TraceRecorder* current() {
    return g_current.load(std::memory_order_acquire);
  }

  void begin(const char* name, std::string args = {});
  void end(const char* name);
  void instant(const char* name, std::string args = {});

  std::size_t event_count() const;

  /// Chrome trace format. When `metrics` is given, the snapshot is embedded
  /// as a top-level "metrics" object next to "traceEvents" (extra top-level
  /// keys are legal and ignored by trace viewers).
  std::string to_chrome_json(const MetricsSnapshot* metrics = nullptr) const;
  bool write_chrome_json(const std::string& path,
                         const MetricsSnapshot* metrics = nullptr) const;

 private:
  struct ThreadLog {
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  ThreadLog& local_log();
  void record(const char* name, char phase, std::string args);

  static std::atomic<TraceRecorder*> g_current;

  const std::uint64_t generation_;  // distinguishes recorders across reuse
  const std::uint64_t epoch_ns_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadLog>> logs_;
};

}  // namespace rota::obs
