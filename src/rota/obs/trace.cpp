#include "rota/obs/trace.hpp"

#include <chrono>
#include <fstream>
#include <sstream>

#include "rota/obs/metrics.hpp"

namespace rota::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t next_generation() {
  static std::atomic<std::uint64_t> gen{1};
  return gen.fetch_add(1, std::memory_order_relaxed);
}

/// Per-thread cache of "my log inside recorder generation G". A thread keeps
/// appending lock-free as long as it talks to the same recorder; switching
/// recorders (or a new recorder reusing the address) re-registers under the
/// recorder's mutex because the generation differs.
struct ThreadCache {
  std::uint64_t generation = 0;
  void* log = nullptr;
};
thread_local ThreadCache t_cache;

std::uint32_t next_tid() {
  static std::atomic<std::uint32_t> tid{1};
  return tid.fetch_add(1, std::memory_order_relaxed);
}
thread_local const std::uint32_t t_tid = next_tid();

}  // namespace

std::atomic<TraceRecorder*> TraceRecorder::g_current{nullptr};

TraceRecorder::TraceRecorder()
    : generation_(next_generation()), epoch_ns_(steady_now_ns()) {}

TraceRecorder::~TraceRecorder() { uninstall(); }

void TraceRecorder::install() {
  g_current.store(this, std::memory_order_release);
}

void TraceRecorder::uninstall() {
  TraceRecorder* expected = this;
  g_current.compare_exchange_strong(expected, nullptr,
                                    std::memory_order_acq_rel);
}

TraceRecorder::ThreadLog& TraceRecorder::local_log() {
  if (t_cache.generation == generation_) {
    return *static_cast<ThreadLog*>(t_cache.log);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  logs_.push_back(std::make_unique<ThreadLog>());
  ThreadLog& log = *logs_.back();
  log.tid = t_tid;
  log.events.reserve(256);
  t_cache.generation = generation_;
  t_cache.log = &log;
  return log;
}

void TraceRecorder::record(const char* name, char phase, std::string args) {
  local_log().events.push_back(
      TraceEvent{name, phase, steady_now_ns() - epoch_ns_, std::move(args)});
}

void TraceRecorder::begin(const char* name, std::string args) {
  record(name, 'B', std::move(args));
}

void TraceRecorder::end(const char* name) { record(name, 'E', {}); }

void TraceRecorder::instant(const char* name, std::string args) {
  record(name, 'i', std::move(args));
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& log : logs_) n += log->events.size();
  return n;
}

std::string TraceRecorder::to_chrome_json(const MetricsSnapshot* metrics) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"traceEvents\": [\n";
  bool first = true;
  for (const auto& log : logs_) {
    for (const TraceEvent& e : log->events) {
      if (!first) out << ",\n";
      first = false;
      // Chrome trace ts is in microseconds; keep sub-µs precision as a
      // fraction so short spans stay distinguishable.
      const std::uint64_t us = e.ts_ns / 1000;
      const std::uint64_t frac = e.ts_ns % 1000;
      out << "  {\"name\": \"" << e.name << "\", \"ph\": \"" << e.phase
          << "\", \"ts\": " << us << '.' << static_cast<char>('0' + frac / 100)
          << static_cast<char>('0' + (frac / 10) % 10)
          << static_cast<char>('0' + frac % 10) << ", \"pid\": 1, \"tid\": "
          << log->tid;
      if (e.phase == 'i') out << ", \"s\": \"t\"";
      if (!e.args.empty()) out << ", \"args\": {" << e.args << "}";
      out << "}";
    }
  }
  out << "\n]";
  if (metrics != nullptr) out << ",\n\"metrics\": " << metrics->to_json();
  out << "}\n";
  return out.str();
}

bool TraceRecorder::write_chrome_json(const std::string& path,
                                      const MetricsSnapshot* metrics) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_chrome_json(metrics);
  return out.good();
}

}  // namespace rota::obs
