#include "rota/obs/metrics.hpp"

#include <sstream>

namespace rota::obs {

std::size_t metric_shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return index;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.count.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::sum() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() {
  for (auto& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::buckets() const {
  std::array<std::uint64_t, kBuckets> out{};
  for (const auto& s : shards_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      out[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t HistogramSnapshot::quantile_upper_bound(double p) const {
  if (count == 0) return 0;
  const double target = p * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (static_cast<double>(seen) >= target) return Histogram::bucket_upper(b);
  }
  return Histogram::bucket_upper(buckets.empty() ? 0 : buckets.size() - 1);
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out << (first ? "" : ", ") << '"' << name << "\": " << v;
    first = false;
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out << (first ? "" : ", ") << '"' << name << "\": " << v;
    first = false;
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out << (first ? "" : ", ") << '"' << name << "\": {\"count\": " << h.count
        << ", \"sum\": " << h.sum << ", \"mean\": " << h.mean()
        << ", \"p50_le\": " << h.quantile_upper_bound(0.50)
        << ", \"p99_le\": " << h.quantile_upper_bound(0.99) << ", \"buckets_le\": [";
    // Trailing empty buckets carry no information; stop at the last non-zero.
    std::size_t last = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] != 0) last = b;
    }
    for (std::size_t b = 0; b <= last && b < h.buckets.size(); ++b) {
      out << (b ? ", " : "") << "[" << Histogram::bucket_upper(b) << ", "
          << h.buckets[b] << "]";
    }
    out << "]}";
    first = false;
  }
  out << "}}";
  return out.str();
}

std::string MetricsSnapshot::to_string() const {
  std::ostringstream out;
  for (const auto& [name, v] : counters) out << name << " = " << v << "\n";
  for (const auto& [name, v] : gauges) out << name << " = " << v << "\n";
  for (const auto& [name, h] : histograms) {
    out << name << ": count=" << h.count << " mean=" << h.mean()
        << " p99<=" << h.quantile_upper_bound(0.99) << "\n";
  }
  return out.str();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    const auto buckets = h->buckets();
    hs.buckets.assign(buckets.begin(), buckets.end());
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace rota::obs
