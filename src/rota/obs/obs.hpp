// Observability front door: hot-path guards, toggles, and the core
// instrument set threaded through admission, the ledger, the simulator and
// the explorer.
//
// Disabled is the default and costs almost nothing: ROTA_OBS_SPAN compiles
// to one relaxed atomic load and a branch when no TraceRecorder is
// installed, and metrics sites pay the same gate via metrics_enabled().
// tests/test_obs_overhead.cpp holds that to < 2% of batched-admission
// per-request cost.
//
// Enabling:
//   * metrics — obs::enable_metrics(true); instruments live in
//     MetricsRegistry::global() (snapshot() / reset() at will);
//   * tracing — construct a TraceRecorder and install() it; spans flow in
//     from every instrumented scope until uninstall();
//   * env     — obs::trace_path_from_env() reads ROTA_TRACE; binaries that
//     honor it (bench/e15_throughput, examples) enable both and write the
//     Chrome-trace JSON artifact to that path.
//
// Metric names and the span taxonomy are documented in docs/observability.md.
#pragma once

#include <atomic>
#include <optional>
#include <string>

#include "rota/obs/metrics.hpp"
#include "rota/obs/trace.hpp"

namespace rota::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}

/// True when metric recording is on (one relaxed load).
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void enable_metrics(bool on);

/// True when a trace sink is installed (one relaxed-ish load).
inline bool tracing_enabled() { return TraceRecorder::current() != nullptr; }

/// Gated counter bump: no-op unless metrics are enabled.
inline void count(Counter& c, std::uint64_t n = 1) {
  if (metrics_enabled()) c.add(n);
}

/// The ROTA_TRACE environment variable: when set and non-empty, its value is
/// the path a traced run should write its Chrome-trace JSON to.
std::optional<std::string> trace_path_from_env();

/// RAII span: emits a B event on construction and the matching E on scope
/// exit, into the installed recorder. Free when no recorder is installed.
class Span {
 public:
  explicit Span(const char* name) : rec_(TraceRecorder::current()) {
    if (rec_ != nullptr) {
      name_ = name;
      rec_->begin(name);
    }
  }
  /// `args` is a JSON object body, e.g. "\"lanes\": 4" (built only when a
  /// recorder is installed — pass via lambda to defer formatting).
  template <typename ArgsFn>
  Span(const char* name, ArgsFn&& args_fn) : rec_(TraceRecorder::current()) {
    if (rec_ != nullptr) {
      name_ = name;
      rec_->begin(name, args_fn());
    }
  }
  ~Span() {
    if (rec_ != nullptr) rec_->end(name_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceRecorder* rec_;
  const char* name_ = nullptr;
};

#define ROTA_OBS_CONCAT_IMPL(a, b) a##b
#define ROTA_OBS_CONCAT(a, b) ROTA_OBS_CONCAT_IMPL(a, b)
/// Scoped span covering the rest of the enclosing block.
#define ROTA_OBS_SPAN(name) \
  ::rota::obs::Span ROTA_OBS_CONCAT(rota_obs_span_, __LINE__)(name)
#define ROTA_OBS_SPAN_ARGS(name, args_fn) \
  ::rota::obs::Span ROTA_OBS_CONCAT(rota_obs_span_, __LINE__)(name, args_fn)

/// Handles to the instruments the built-in instrumentation uses, resolved
/// once from MetricsRegistry::global() (references stay valid for the
/// process lifetime). Names are the single source of truth for
/// docs/observability.md.
struct CoreMetrics {
  // Planning kernel — the single choke point every admission surface
  // (sequential, batch, baselines, negotiation, periodic, cluster
  // probe/claim, audit replay) routes through.
  Counter& plan_speculations;           // plans attempted against a snapshot
  Counter& plan_speculations_feasible;  // speculations that found a plan
  Counter& plan_speculations_rescued;   // greedy planner rejected, symbolic
                                        // feasibility engine found a plan
  Counter& plan_commit_accepted;
  Counter& plan_commit_rejected_deadline;  // window empty: deadline passed
  Counter& plan_commit_rejected_no_plan;   // planner found no feasible plan
  Counter& plan_commit_rejected_conflict;  // ledger refused at commit (defensive)
  Counter& plan_commit_stale;  // revision moved since speculation; redone
  Counter& plan_commit_shard_salvaged;  // global revision moved, but the
                                        // speculation's shard footprint did
                                        // not — committed without a redo

  // Batched pipeline, per round (speculation counts live in plan.*).
  Counter& batch_rounds;
  Counter& batch_speculations_wasted;  // attempted, then discarded by an accept
  Gauge& batch_lanes;                  // planning lanes of the last controller
  Histogram& batch_round_ns;           // wall time per snapshot+speculate+commit

  // Commitment ledger.
  Counter& ledger_joins;
  Counter& ledger_admits;
  Counter& ledger_releases;
  Gauge& ledger_revision;  // last observed residual revision

  // Simulator.
  Counter& sim_ticks;
  Counter& sim_labels;  // consumption labels applied
  Counter& sim_joins;
  Counter& sim_admissions;
  Counter& sim_gc_runs;

  // Explorer.
  Counter& explorer_greedy_runs;   // full greedy executions (any ranking)
  Counter& explorer_permutations;  // permutations tried by search_feasible

  // Cluster layer: per-node admission outcomes and protocol traffic.
  Counter& cluster_submitted;       // jobs entering a node's admission path
  Counter& cluster_local_accepts;   // admitted by the origin's own ledger
  Counter& cluster_remote_accepts;  // admitted via probe/offer/claim
  Counter& cluster_rejects;         // final rejections (all causes)
  Counter& cluster_probes;          // probe RPCs sent
  Counter& cluster_offers;          // offers received by origins
  Counter& cluster_claims;          // claim RPCs sent
  Counter& cluster_claims_stale;    // claims rejected: residual moved
  Counter& cluster_timeouts;        // probe/claim attempts that timed out
  Counter& cluster_retries;         // backoff retries started
  Counter& cluster_gossip;          // digest messages sent
  Counter& cluster_recoveries;      // node restarts that replayed an audit log

  // Message fabric.
  Counter& fabric_sent;
  Counter& fabric_dropped;          // loss roll, partition, or down endpoint
  Counter& fabric_delivered;
  Histogram& fabric_delay_ticks;    // per-delivered-message latency (ticks)

  // Socket transport (live federation peers; the fabric counts itself above).
  Counter& transport_sent;          // messages written to a peer socket
  Counter& transport_dropped;       // unreachable peer / dead connection
  Counter& transport_received;      // messages decoded off peer sockets
  Counter& transport_connects;      // outbound peer connections established
  Counter& transport_auth_failures; // inbound sessions refused (bad hello)

  // Admission service (the long-running daemon in rota/service/).
  Counter& service_requests;        // requests accepted into the queue
  Counter& service_shed;            // kOverloaded responses (queue full, or
                                    // budget exhausted before any verdict)
  Counter& service_accepted;        // admission accepts served
  Counter& service_rejected;        // admission rejects served
  Counter& service_demotions;       // governor moved down the ladder
  Counter& service_promotions;      // governor moved back up
  Counter& service_budget_cancels;  // speculations cancelled mid-flight
  Counter& service_revalidations_failed;  // degraded accept refused by the
                                          // ledger at commit (must stay 0)
  Counter& service_forwarded;       // locally-shed work handed to the cluster
  Counter& service_forward_accepts; // forwarded work a peer admitted
  Counter& service_peer_claims;     // claims admitted here for remote peers
  Gauge& service_queue_depth;       // admission queue depth (backpressure in)
  Gauge& service_level;             // governor ladder rung (0 exact..2 greedy)
  Histogram& service_latency_exact_ns;   // planning wall time per strategy
  Histogram& service_latency_digest_ns;
  Histogram& service_latency_greedy_ns;
  Histogram& service_queue_ns;      // per-request time spent queued

  static CoreMetrics& get();
};

}  // namespace rota::obs
