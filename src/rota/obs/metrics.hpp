// Metrics: named counters, gauges and fixed-bucket histograms.
//
// The registry is the passive half of the observability layer (the active
// half — spans — lives in rota/obs/trace.hpp). Instruments are sharded per
// thread so the admission pipeline's planning lanes never contend on a cache
// line: each increment touches one of kShards cache-line-aligned slots chosen
// by a stable per-thread index, and reads sum the shards. All reads and
// writes are relaxed atomics — counters are monotone statistics, not
// synchronization; a snapshot taken while writers run is a consistent
// "some recent value" per instrument.
//
// Recording is gated by the process-wide toggle in rota/obs/obs.hpp; with
// metrics disabled an instrumented hot path pays one relaxed load and a
// predictable branch.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rota::obs {

/// Number of per-thread shards per instrument. A power of two; more threads
/// than shards just share slots (still correct, mildly more contended).
inline constexpr std::size_t kMetricShards = 16;

/// Stable shard index for the calling thread, assigned round-robin on first
/// use so the pool's lanes land on distinct shards.
std::size_t metric_shard_index();

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    shards_[metric_shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-writer-wins instantaneous value (e.g. a revision, a lane count).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed log2-bucket histogram for non-negative samples (latencies in ns,
/// batch sizes, ...). Bucket i counts samples whose value v satisfies
/// 2^(i-1) < v <= 2^i (bucket 0 counts v <= 1); values past the last bucket
/// clamp into it. No allocation, no locks on the record path.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 48;  // covers > 3 days in ns

  void record(std::uint64_t v) {
    Shard& s = shards_[metric_shard_index()];
    s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  static std::size_t bucket_of(std::uint64_t v) {
    std::size_t b = 0;
    while (b + 1 < kBuckets && v > (std::uint64_t{1} << b)) ++b;
    return b;
  }
  /// Inclusive upper edge of bucket `b` (2^b).
  static std::uint64_t bucket_upper(std::size_t b) { return std::uint64_t{1} << b; }

  std::uint64_t count() const;
  std::uint64_t sum() const;
  void reset();

  /// Summed per-bucket counts.
  std::array<std::uint64_t, kBuckets> buckets() const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

struct HistogramSnapshot {
  std::vector<std::uint64_t> buckets;  // kBuckets entries
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper bound (bucket edge) below which at least fraction `p` of the
  /// samples fall; 0 when empty. p in [0, 1].
  std::uint64_t quantile_upper_bound(double p) const;

  bool operator==(const HistogramSnapshot&) const = default;
};

/// A point-in-time copy of every registered instrument.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const { return counters.empty() && gauges.empty() && histograms.empty(); }
  /// counters[name], 0 when absent — convenient for test assertions.
  std::uint64_t counter(const std::string& name) const;

  /// Stable-field-order JSON object (dependency-free, like rota/io/trace).
  std::string to_json() const;
  std::string to_string() const;

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Named instruments, created on first use and alive for the registry's
/// lifetime (storage is node-stable: handles returned by counter()/gauge()/
/// histogram() never move). Lookup takes a mutex — resolve handles once,
/// outside hot loops.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;
  /// Zeroes every instrument; registrations (and handles) stay valid.
  void reset();

  /// The process-wide registry the built-in instrumentation records into.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace rota::obs
