#include "rota/net/wire.hpp"

#include <charconv>
#include <sstream>
#include <vector>

namespace rota::net {

namespace {

using cluster::Message;
using cluster::MsgKind;
using cluster::msg_kind_name;

std::uint64_t parse_u64(std::string_view token, const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    throw CodecError(std::string("malformed ") + what + ": '" +
                     std::string(token) + "'");
  }
  return value;
}

std::int64_t parse_i64(std::string_view token, const char* what) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    throw CodecError(std::string("malformed ") + what + ": '" +
                     std::string(token) + "'");
  }
  return value;
}

std::vector<std::string_view> tokens_of(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ') ++j;
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

/// Locations travel by name; the default ("nowhere") location is spelled `-`
/// because re-interning its display name would mint a fresh id.
std::string location_token(const Location& loc) {
  if (loc.id() == 0) return "-";
  const std::string name = loc.name();
  if (name.find(' ') != std::string::npos ||
      name.find('\n') != std::string::npos) {
    throw CodecError("location name '" + name + "' is not wire-safe");
  }
  return name;
}

Location parse_location(std::string_view token) {
  if (token == "-") return Location();
  return Location(std::string(token));
}

std::string name_token(const std::string& name, const char* what) {
  if (name.empty()) return "-";
  if (name.find(' ') != std::string::npos ||
      name.find('\n') != std::string::npos) {
    throw CodecError(std::string(what) + " '" + name + "' is not wire-safe");
  }
  return name;
}

ResourceKind parse_kind(std::string_view token) {
  if (token == "cpu") return ResourceKind::kCpu;
  if (token == "network") return ResourceKind::kNetwork;
  if (token == "memory") return ResourceKind::kMemory;
  if (token == "disk") return ResourceKind::kDisk;
  if (token == "custom") return ResourceKind::kCustom;
  throw CodecError("unknown resource kind '" + std::string(token) + "'");
}

MsgKind parse_msg_kind(std::string_view token) {
  for (const MsgKind k :
       {MsgKind::kProbe, MsgKind::kOffer, MsgKind::kNack, MsgKind::kClaim,
        MsgKind::kClaimAck, MsgKind::kClaimReject, MsgKind::kDigest}) {
    if (token == msg_kind_name(k)) return k;
  }
  throw CodecError("unknown message kind '" + std::string(token) + "'");
}

void check_version(std::string_view token) {
  const std::uint64_t version = parse_u64(token, "wire version");
  if (version != kWireVersion) {
    throw CodecError("unsupported wire version " + std::to_string(version) +
                     " (this build speaks " + std::to_string(kWireVersion) + ")");
  }
}

}  // namespace

std::string encode_message(const Message& m) {
  std::ostringstream out;
  out << "rotamsg " << kWireVersion << ' ' << msg_kind_name(m.kind) << ' '
      << m.from << ' ' << m.to << ' ' << m.job << ' ' << m.finish << '\n';
  out << "work " << name_token(m.work.actor, "actor name") << ' '
      << location_token(m.work.home) << ' ' << m.work.state_size << ' '
      << m.work.earliest_start << ' ' << m.work.deadline << ' '
      << m.work.chunk_weights.size();
  for (const std::int64_t w : m.work.chunk_weights) out << ' ' << w;
  out << '\n';
  const std::vector<ResourceTerm> terms = m.digest.free.terms();
  out << "digest " << location_token(m.digest.site) << ' ' << m.digest.revision
      << ' ' << m.digest.as_of << ' ' << terms.size() << '\n';
  for (const ResourceTerm& t : terms) {
    out << "term " << kind_name(t.type().kind()) << ' '
        << location_token(t.type().source()) << ' '
        << location_token(t.type().destination()) << ' ' << t.rate() << ' '
        << t.interval().start() << ' ' << t.interval().end() << '\n';
  }
  if (!m.note.empty()) {
    if (m.note.find('\n') != std::string::npos) {
      throw CodecError("message note must be a single line");
    }
    out << "note " << m.note << '\n';
  }
  return out.str();
}

Message decode_message(const std::string& payload) {
  Message m;
  std::istringstream in(payload);
  std::string line;

  if (!std::getline(in, line)) throw CodecError("empty message payload");
  const auto header = tokens_of(line);
  if (header.size() != 7 || header[0] != "rotamsg") {
    throw CodecError(
        "message header must be 'rotamsg <v> <kind> <from> <to> <job> <finish>'");
  }
  check_version(header[1]);
  m.kind = parse_msg_kind(header[2]);
  m.from = static_cast<cluster::NodeId>(parse_u64(header[3], "from node"));
  m.to = static_cast<cluster::NodeId>(parse_u64(header[4], "to node"));
  m.job = parse_u64(header[5], "job id");
  m.finish = static_cast<Tick>(parse_i64(header[6], "finish tick"));

  std::size_t terms_expected = 0;
  bool saw_work = false;
  bool saw_digest = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("note ", 0) == 0) {
      m.note = line.substr(5);
      continue;
    }
    const auto t = tokens_of(line);
    if (t.empty()) continue;
    if (t[0] == "work") {
      if (t.size() < 7) {
        throw CodecError("work line must be "
                         "'work <actor> <home> <state> <start> <deadline> <n> w…'");
      }
      m.work.actor = t[1] == "-" ? std::string() : std::string(t[1]);
      m.work.home = parse_location(t[2]);
      m.work.state_size = parse_i64(t[3], "state size");
      m.work.earliest_start = static_cast<Tick>(parse_i64(t[4], "earliest start"));
      m.work.deadline = static_cast<Tick>(parse_i64(t[5], "deadline"));
      const std::size_t n = parse_u64(t[6], "chunk count");
      if (t.size() != 7 + n) {
        throw CodecError("work line announces " + std::to_string(n) +
                         " chunks but carries " + std::to_string(t.size() - 7));
      }
      m.work.chunk_weights.clear();
      m.work.chunk_weights.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        m.work.chunk_weights.push_back(parse_i64(t[7 + i], "chunk weight"));
      }
      saw_work = true;
    } else if (t[0] == "digest") {
      if (t.size() != 5) {
        throw CodecError(
            "digest line must be 'digest <site> <revision> <as_of> <nterms>'");
      }
      m.digest.site = parse_location(t[1]);
      m.digest.revision = parse_u64(t[2], "digest revision");
      m.digest.as_of = static_cast<Tick>(parse_i64(t[3], "digest as_of"));
      terms_expected = parse_u64(t[4], "term count");
      saw_digest = true;
    } else if (t[0] == "term") {
      if (t.size() != 7) {
        throw CodecError(
            "term line must be 'term <kind> <src> <dst> <rate> <from> <to>'");
      }
      if (terms_expected == 0) {
        throw CodecError("term line outside its digest's announced count");
      }
      --terms_expected;
      const ResourceKind kind = parse_kind(t[1]);
      const Location src = parse_location(t[2]);
      const Location dst = parse_location(t[3]);
      const Rate rate = static_cast<Rate>(parse_i64(t[4], "term rate"));
      const Tick from = static_cast<Tick>(parse_i64(t[5], "term from"));
      const Tick to = static_cast<Tick>(parse_i64(t[6], "term to"));
      const LocatedType type = src == dst ? LocatedType::node(kind, src)
                                          : LocatedType::link(kind, src, dst);
      m.digest.free.add(rate, TimeInterval(from, to), type);
    } else {
      throw CodecError("unknown message line '" + std::string(t[0]) + "'");
    }
  }
  if (!saw_work || !saw_digest) {
    throw CodecError("message payload missing work/digest sections");
  }
  if (terms_expected != 0) {
    throw CodecError("digest announces more terms than the payload carries");
  }
  return m;
}

bool is_message_payload(std::string_view payload) {
  return payload.rfind("rotamsg ", 0) == 0;
}

std::string encode_hello(const Hello& hello) {
  std::ostringstream out;
  out << "hello " << kWireVersion << ' ' << hello.node << ' ';
  if (hello.token.empty()) {
    out << '-';
  } else {
    if (hello.token.find(' ') != std::string::npos ||
        hello.token.find('\n') != std::string::npos) {
      throw CodecError("session token must be free of whitespace");
    }
    out << hello.token;
  }
  out << '\n';
  return out.str();
}

Hello decode_hello(const std::string& payload) {
  std::string_view line = payload;
  if (!line.empty() && line.back() == '\n') line.remove_suffix(1);
  const auto t = tokens_of(line);
  if (t.size() != 4 || t[0] != "hello") {
    throw CodecError("hello frame must be 'hello <v> <node_id> <token|->'");
  }
  check_version(t[1]);
  Hello hello;
  hello.node = static_cast<cluster::NodeId>(parse_u64(t[2], "node id"));
  hello.token = t[3] == "-" ? std::string() : std::string(t[3]);
  return hello;
}

bool is_hello_payload(std::string_view payload) {
  return payload.rfind("hello ", 0) == 0;
}

}  // namespace rota::net
