#include "rota/net/socket_transport.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <utility>

#include "rota/net/sockets.hpp"
#include "rota/net/wire.hpp"
#include "rota/obs/obs.hpp"

namespace rota::net {

namespace {

struct Address {
  bool is_unix = false;
  std::string path;
  std::uint16_t port = 0;
};

Address parse_address(const std::string& spec) {
  Address addr;
  if (spec.rfind("unix:", 0) == 0) {
    addr.is_unix = true;
    addr.path = spec.substr(5);
    if (addr.path.empty()) {
      throw std::invalid_argument("empty unix socket path: " + spec);
    }
    return addr;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string digits = spec.substr(4);
    if (digits.empty()) throw std::invalid_argument("empty tcp port: " + spec);
    unsigned long port = 0;
    for (char c : digits) {
      if (c < '0' || c > '9') {
        throw std::invalid_argument("bad tcp port: " + spec);
      }
      port = port * 10 + static_cast<unsigned long>(c - '0');
      if (port > 65535) throw std::invalid_argument("tcp port too large: " + spec);
    }
    addr.port = static_cast<std::uint16_t>(port);
    return addr;
  }
  throw std::invalid_argument("address must be unix:<path> or tcp:<port>: " +
                              spec);
}

/// Reads one complete frame off `fd` (bounded by the fd's recv timeout).
/// False on EOF, error, timeout, or an over-long frame.
bool read_one_frame(int fd, std::string& out) {
  FrameReader reader;
  char buf[4096];
  for (;;) {
    if (auto payload = reader.next()) {
      out = std::move(*payload);
      return true;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    try {
      reader.feed(buf, static_cast<std::size_t>(n));
    } catch (const CodecError&) {
      return false;
    }
  }
}

}  // namespace

SocketTransport::SocketTransport(SocketTransportConfig config)
    : config_(std::move(config)), start_(std::chrono::steady_clock::now()) {
  if (config_.local == cluster::kNoNode) {
    throw std::invalid_argument("SocketTransport needs a local node id");
  }
  if (config_.tick_ms <= 0) {
    throw std::invalid_argument("SocketTransport tick_ms must be positive");
  }
  for (const auto& [id, spec] : config_.peers) {
    parse_address(spec);  // fail fast on malformed peer addresses
    peers_[id] = Peer{spec, -1, {}};
  }
  if (!config_.listen.empty()) {
    const Address addr = parse_address(config_.listen);
    if (addr.is_unix) {
      listen_fd_ = make_unix_listener(addr.path);
      listen_path_ = addr.path;
    } else {
      listen_fd_ = make_tcp_listener(addr.port, bound_port_);
    }
    accept_thread_ = std::thread([this] { accept_loop(); });
  }
}

SocketTransport::~SocketTransport() { close(); }

Tick SocketTransport::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count();
  return static_cast<Tick>(ms / config_.tick_ms);
}

void SocketTransport::enqueue_locked(Peer& peer, std::string framed) {
  if (peer.backlog.size() >= config_.backlog_frames) {
    peer.backlog.erase(peer.backlog.begin());  // oldest frame gives way
    obs::count(obs::CoreMetrics::get().transport_dropped);
  }
  peer.backlog.push_back(std::move(framed));
}

int SocketTransport::peer_fd_locked(Peer& peer) {
  if (peer.fd >= 0) return peer.fd;
  const auto now = std::chrono::steady_clock::now();
  if (now < peer.next_attempt) return -1;
  peer.next_attempt =
      now + std::chrono::milliseconds(config_.reconnect_backoff_ms);

  const Address addr = parse_address(peer.address);
  const int fd = addr.is_unix
                     ? connect_unix_fd(addr.path, config_.connect_timeout_ms)
                     : connect_tcp_fd(addr.port, config_.connect_timeout_ms);
  if (fd < 0) return -1;

  // Session open: hello, then wait (bounded) for the listener's verdict.
  const std::string hello_frame =
      frame(encode_hello(Hello{config_.local, config_.secret}));
  set_recv_timeout(fd, config_.connect_timeout_ms);
  std::string reply;
  if (!send_all(fd, hello_frame.data(), hello_frame.size()) ||
      !read_one_frame(fd, reply) || reply != "ok") {
    ::close(fd);
    return -1;
  }
  peer.fd = fd;
  obs::count(obs::CoreMetrics::get().transport_connects);

  // Flush, in order, what queued while the peer was unreachable. A one-shot
  // protocol send (a probe round) racing the peer's bind rides this out
  // instead of waiting for a full round-trip timeout.
  std::vector<std::string> backlog = std::move(peer.backlog);
  peer.backlog.clear();
  for (std::size_t i = 0; i < backlog.size(); ++i) {
    if (!send_all(fd, backlog[i].data(), backlog[i].size())) {
      ::close(fd);
      peer.fd = -1;
      peer.next_attempt =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(config_.reconnect_backoff_ms);
      peer.backlog.assign(std::make_move_iterator(backlog.begin() +
                                                  static_cast<std::ptrdiff_t>(i)),
                          std::make_move_iterator(backlog.end()));
      return -1;
    }
    obs::count(obs::CoreMetrics::get().transport_sent);
  }
  return fd;
}

void SocketTransport::send(cluster::Message m) {
  std::string framed;
  try {
    framed = frame(encode_message(m));
  } catch (const CodecError&) {
    obs::count(obs::CoreMetrics::get().transport_dropped);
    return;
  }

  std::lock_guard<std::mutex> lock(peers_mutex_);
  auto it = peers_.find(m.to);
  if (it == peers_.end()) {
    obs::count(obs::CoreMetrics::get().transport_dropped);
    return;
  }
  const int fd = peer_fd_locked(it->second);
  if (fd < 0) {
    enqueue_locked(it->second, std::move(framed));
    return;
  }
  if (!send_all(fd, framed.data(), framed.size())) {
    ::close(fd);
    it->second.fd = -1;
    it->second.next_attempt =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(config_.reconnect_backoff_ms);
    obs::count(obs::CoreMetrics::get().transport_dropped);
    return;
  }
  obs::count(obs::CoreMetrics::get().transport_sent);
}

std::vector<cluster::Message> SocketTransport::receive() {
  std::lock_guard<std::mutex> lock(inbox_mutex_);
  return std::exchange(inbox_, {});
}

void SocketTransport::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or broken): stop accepting
    }

    // The hello must arrive promptly; a silent connection is hung up on.
    set_recv_timeout(fd, config_.connect_timeout_ms > 0
                             ? config_.connect_timeout_ms
                             : 1000);
    std::string payload;
    Hello hello;
    bool ok = read_one_frame(fd, payload) && is_hello_payload(payload);
    if (ok) {
      try {
        hello = decode_hello(payload);
      } catch (const CodecError&) {
        ok = false;
      }
    }
    if (ok && !config_.secret.empty() && hello.token != config_.secret) {
      const std::string err = frame("err unauthorized");
      send_all(fd, err.data(), err.size());
      obs::count(obs::CoreMetrics::get().transport_auth_failures);
      ok = false;
    }
    if (!ok) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
      continue;
    }
    const std::string ack = frame("ok");
    if (!send_all(fd, ack.data(), ack.size())) {
      ::close(fd);
      continue;
    }
    set_recv_timeout(fd, 0);  // the message stream blocks until close()

    std::lock_guard<std::mutex> lock(inbox_mutex_);
    if (closed_) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
      return;
    }
    session_fds_.push_back(fd);
    readers_.emplace_back([this, fd] { reader_loop(fd); });
  }
}

void SocketTransport::reader_loop(int fd) {
  FrameReader reader;
  char buf[4096];
  for (;;) {
    std::optional<std::string> payload;
    try {
      payload = reader.next();
    } catch (const CodecError&) {
      break;
    }
    if (payload) {
      if (!is_message_payload(*payload)) break;  // protocol violation: hang up
      try {
        cluster::Message m = decode_message(*payload);
        std::lock_guard<std::mutex> lock(inbox_mutex_);
        if (closed_) return;
        inbox_.push_back(std::move(m));
      } catch (const CodecError&) {
        break;
      }
      obs::count(obs::CoreMetrics::get().transport_received);
      continue;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // peer went away (or close() shut us down)
    }
    try {
      reader.feed(buf, static_cast<std::size_t>(n));
    } catch (const CodecError&) {
      break;
    }
  }
  ::shutdown(fd, SHUT_RDWR);
}

void SocketTransport::close() {
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    if (closed_) return;
    closed_ = true;
  }

  // Stop accepting, then the accept thread can be joined.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!listen_path_.empty()) ::unlink(listen_path_.c_str());

  // Wake blocked readers, join them, then release their fds.
  std::vector<std::thread> readers;
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    for (int fd : session_fds_) ::shutdown(fd, SHUT_RDWR);
    readers = std::move(readers_);
    fds = std::move(session_fds_);
    readers_.clear();
    session_fds_.clear();
  }
  for (std::thread& t : readers) {
    if (t.joinable()) t.join();
  }
  for (int fd : fds) ::close(fd);

  std::lock_guard<std::mutex> lock(peers_mutex_);
  for (auto& [id, peer] : peers_) {
    if (peer.fd >= 0) {
      ::close(peer.fd);
      peer.fd = -1;
    }
  }
}

}  // namespace rota::net
