// Transport: the one message spine under the federated admission layer.
//
// A Transport is one endpoint's connection to its peers. ClusterNode speaks
// only this interface, so the same node code runs over two very different
// substrates:
//
//   * cluster::FabricTransport — the deterministic in-sim implementation
//     over MessageFabric (seeded latency/jitter/loss/partitions). Sends are
//     *staged* and released by ClusterSim's end-of-tick flush in node-id
//     order, which is what keeps the fabric's send-sequence numbers — and
//     therefore every delivery tie-break — byte-identical to the historical
//     outbox-drain control loop.
//
//   * net::SocketTransport — the live implementation: length-prefixed
//     frames (rota/net/frame.hpp, the same codec the admission service
//     speaks) carrying wire-encoded messages (rota/net/wire.hpp) over
//     unix/TCP sockets between daemons. Sends hit the wire immediately;
//     an unreachable peer drops the message, exactly like fabric loss —
//     the cluster protocol's probe/claim timeouts and retries are the
//     recovery story on both substrates.
//
// Time: the cluster protocol thinks in ticks. now() maps the transport's
// clock onto ticks — the sim sets it explicitly; the socket transport
// derives it from a steady clock at a configured tick duration. Drivers
// call ClusterNode::on_tick(transport.now()) on their own cadence.
#pragma once

#include <utility>
#include <vector>

#include "rota/cluster/message.hpp"
#include "rota/time/tick.hpp"

namespace rota::net {

class Transport {
 public:
  virtual ~Transport();

  /// The endpoint this transport speaks for.
  virtual cluster::NodeId local() const = 0;

  /// Queues `m` (from the local endpoint) for transmission. When it hits the
  /// wire is implementation-defined: staged until the sim flush (fabric) or
  /// written immediately (sockets). Undeliverable messages are dropped, never
  /// blocked on — loss is a first-class outcome the protocol already absorbs.
  virtual void send(cluster::Message m) = 0;

  /// Drains every message that has arrived for the local endpoint since the
  /// last call, in arrival order.
  virtual std::vector<cluster::Message> receive() = 0;

  /// The transport's clock, in protocol ticks.
  virtual Tick now() const = 0;

  /// Discards messages queued but not yet on the wire (a crashing node's
  /// unsent traffic dies with it). No-op for transports that send eagerly.
  virtual void drop_pending() {}

  /// Stops timers/readers and severs peers. Idempotent; receive() after
  /// close() returns whatever already arrived, then nothing.
  virtual void close() = 0;
};

/// Trivial in-memory endpoint: sends accumulate until the driver drains
/// them, deliveries are injected by the driver. The unit-test workhorse —
/// a node under test speaks the real interface while the test plays the
/// network by hand.
class QueueTransport final : public Transport {
 public:
  explicit QueueTransport(cluster::NodeId local) : local_(local) {}

  cluster::NodeId local() const override { return local_; }
  void send(cluster::Message m) override { sent_.push_back(std::move(m)); }
  std::vector<cluster::Message> receive() override {
    return std::exchange(inbox_, {});
  }
  Tick now() const override { return now_; }
  void drop_pending() override { sent_.clear(); }
  void close() override { sent_.clear(); inbox_.clear(); }

  /// Hands an arriving message to the endpoint.
  void deliver(cluster::Message m) { inbox_.push_back(std::move(m)); }
  /// Everything sent since the last drain, in send order.
  std::vector<cluster::Message> drain_sent() { return std::exchange(sent_, {}); }
  void set_now(Tick now) { now_ = now; }

 private:
  cluster::NodeId local_;
  Tick now_ = 0;
  std::vector<cluster::Message> sent_;
  std::vector<cluster::Message> inbox_;
};

}  // namespace rota::net
