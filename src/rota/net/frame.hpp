// Length-prefixed framing: the byte-stream layer every ROTA socket speaks.
//
// A frame is a 4-byte little-endian payload length followed by the payload.
// Length-prefixed framing keeps stream reassembly trivial (FrameReader below
// is a few lines and allocation-light) and leaves the payload free to be
// text — the admission service's request/response codec (rota/service/codec)
// and the cluster wire codec (rota/net/wire) both ride on it, so a service
// client and a federation peer are the same kind of byte stream.
//
// This lived in rota/service/codec before the transport spine refactor;
// service/codec re-exports these names, so existing includes keep working.
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace rota::net {

/// Hard ceiling on a frame payload. A peer announcing more is malformed or
/// hostile; the reader throws instead of buffering unboundedly.
inline constexpr std::size_t kMaxFramePayload = 1 << 20;

/// Malformed frames and payloads, at any protocol layer above the stream.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& message) : std::runtime_error(message) {}
};

/// Wraps a payload in a length-prefixed frame.
std::string frame(std::string_view payload);

/// Incremental frame reassembly over an arbitrary byte stream: feed() the
/// chunks the socket yields, drain complete payloads with next(). Throws
/// CodecError when a frame announces more than kMaxFramePayload.
class FrameReader {
 public:
  void feed(const char* data, std::size_t n);
  /// The next complete payload, or nullopt when more bytes are needed.
  std::optional<std::string> next();
  /// Bytes buffered but not yet returned (diagnostics).
  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

}  // namespace rota::net
