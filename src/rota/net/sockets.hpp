// Low-level POSIX socket helpers shared by every ROTA socket surface: the
// admission service's server and client and the federation SocketTransport.
// Unix sockets and loopback-only TCP; nothing here knows about frames or
// payloads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace rota::net {

/// Throws std::system_error from errno.
[[noreturn]] void throw_errno(const char* what);

/// Listening sockets. Throw on failure. The unix variant unlinks a stale
/// socket file first; the TCP variant binds loopback only (by design — TLS
/// is out of scope, see docs/service.md) and reports the bound port (useful
/// with port 0).
int make_unix_listener(const std::string& path);
int make_tcp_listener(std::uint16_t port, std::uint16_t& bound_port);

/// Connect with a bounded wait. `timeout_ms <= 0` means block indefinitely.
/// Return the connected fd, or -1 on failure/timeout (errno describes why).
int connect_unix_fd(const std::string& path, int timeout_ms);
int connect_tcp_fd(std::uint16_t port, int timeout_ms);

/// Bounds every subsequent recv() on `fd` to `timeout_ms` (0 clears the
/// bound). A timed-out recv returns -1 with errno EAGAIN/EWOULDBLOCK.
void set_recv_timeout(int fd, int timeout_ms);

/// Writes all of `data`, retrying short writes; false on a broken peer.
bool send_all(int fd, const char* data, std::size_t n);

}  // namespace rota::net
