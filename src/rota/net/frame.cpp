#include "rota/net/frame.hpp"

#include <cstdint>

namespace rota::net {

std::string frame(std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw CodecError("frame payload exceeds " +
                     std::to_string(kMaxFramePayload) + " bytes");
  }
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>(n & 0xff));
  out.push_back(static_cast<char>((n >> 8) & 0xff));
  out.push_back(static_cast<char>((n >> 16) & 0xff));
  out.push_back(static_cast<char>((n >> 24) & 0xff));
  out.append(payload);
  return out;
}

void FrameReader::feed(const char* data, std::size_t n) {
  buffer_.append(data, n);
}

std::optional<std::string> FrameReader::next() {
  if (buffer_.size() < 4) return std::nullopt;
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(buffer_[i]));
  };
  const std::uint32_t length = b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
  if (length > kMaxFramePayload) {
    throw CodecError("incoming frame announces " + std::to_string(length) +
                     " bytes (max " + std::to_string(kMaxFramePayload) + ")");
  }
  if (buffer_.size() < 4 + static_cast<std::size_t>(length)) return std::nullopt;
  std::string payload = buffer_.substr(4, length);
  buffer_.erase(0, 4 + static_cast<std::size_t>(length));
  return payload;
}

}  // namespace rota::net
