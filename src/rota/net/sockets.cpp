#include "rota/net/sockets.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace rota::net {

namespace {

/// Connects `fd` to `addr` within `timeout_ms` (<= 0: block). Returns false
/// on failure with errno set; the caller owns closing the fd.
bool connect_bounded(int fd, const sockaddr* addr, socklen_t len,
                     int timeout_ms) {
  if (timeout_ms <= 0) {
    for (;;) {
      if (::connect(fd, addr, len) == 0) return true;
      if (errno == EINTR) continue;
      return false;
    }
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return false;
  if (::connect(fd, addr, len) == 0) {
    ::fcntl(fd, F_SETFL, flags);
    return true;
  }
  if (errno != EINPROGRESS && errno != EAGAIN) return false;
  pollfd pfd{fd, POLLOUT, 0};
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) {
      if (ready == 0) errno = ETIMEDOUT;
      return false;
    }
    break;
  }
  int err = 0;
  socklen_t err_len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0) return false;
  if (err != 0) {
    errno = err;
    return false;
  }
  ::fcntl(fd, F_SETFL, flags);
  return true;
}

}  // namespace

void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

int make_unix_listener(const std::string& path) {
  if (path.size() + 1 > sizeof(sockaddr_un::sun_path)) {
    throw std::invalid_argument("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  ::unlink(path.c_str());  // stale socket from a previous run
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("bind(unix)");
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    throw_errno("listen(unix)");
  }
  return fd;
}

int make_tcp_listener(std::uint16_t port, std::uint16_t& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("bind(tcp)");
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    throw_errno("listen(tcp)");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    ::close(fd);
    throw_errno("getsockname(tcp)");
  }
  bound_port = ntohs(bound.sin_port);
  return fd;
}

int connect_unix_fd(const std::string& path, int timeout_ms) {
  if (path.size() + 1 > sizeof(sockaddr_un::sun_path)) {
    throw std::invalid_argument("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (!connect_bounded(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr), timeout_ms)) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

int connect_tcp_fd(std::uint16_t port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (!connect_bounded(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr), timeout_ms)) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

void set_recv_timeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

bool send_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      return false;
    }
    data += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

}  // namespace rota::net
