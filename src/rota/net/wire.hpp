// Versioned wire codec for cluster messages.
//
// SocketTransport moves cluster::Message values between daemons as text
// payloads inside the same length-prefixed frames the admission service
// speaks (rota/net/frame.hpp). The encoding is line-oriented and versioned:
//
//   rotamsg 1 <kind> <from> <to> <job> <finish>
//   work <actor|-> <home|-> <state_size> <earliest_start> <deadline> <n> w1 … wn
//   digest <site|-> <revision> <as_of> <nterms>
//   term <kind> <src> <dst> <rate> <ifrom> <ito>        (nterms times)
//   note <free text to end of line>                     (omitted when empty)
//
// Locations travel by *name* (they are interned per process, so ids are not
// portable); the distinguished nowhere location is spelled `-`. Node-local
// resource terms repeat the location in <dst>. A peer speaking a newer
// version is rejected with CodecError — mixed-version federations must be
// drained, not guessed at.
//
// The session-open handshake shares the codec:
//
//   hello 1 <node_id> <token|->
//
// sent as the first frame of every peer connection; the listener checks the
// token (when configured) before reading anything else.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "rota/cluster/message.hpp"
#include "rota/net/frame.hpp"

namespace rota::net {

/// Wire version this build writes. Decoders accept exactly this version.
inline constexpr std::uint32_t kWireVersion = 1;

std::string encode_message(const cluster::Message& m);
/// Throws CodecError on malformed input or a version mismatch.
cluster::Message decode_message(const std::string& payload);

/// True when `payload` is a cluster message frame (dispatch on first token).
bool is_message_payload(std::string_view payload);

/// Session-open handshake: the connecting peer announces who it is and (when
/// the listener requires one) the shared secret. Tokens must be free of
/// whitespace; `-` encodes "no token".
struct Hello {
  cluster::NodeId node = cluster::kNoNode;
  std::string token;

  bool operator==(const Hello&) const = default;
};

std::string encode_hello(const Hello& hello);
/// Throws CodecError on malformed input or a version mismatch.
Hello decode_hello(const std::string& payload);
bool is_hello_payload(std::string_view payload);

}  // namespace rota::net
