// SocketTransport: the live Transport — cluster messages over real sockets.
//
// Each daemon runs one SocketTransport. It listens on a unix path or a
// loopback TCP port, keeps one persistent outbound connection per configured
// peer, and moves cluster::Message values as wire-encoded text payloads
// (rota/net/wire.hpp) inside the admission service's length-prefixed frames
// (rota/net/frame.hpp).
//
// Session open: the connecting side sends `hello 1 <node_id> <token|->` as
// its first frame. The listener checks the token when a shared secret is
// configured — a wrong token is answered with a framed `err unauthorized`
// and a hang-up (and counts transport.auth_failures); a good hello gets a
// framed `ok` and the connection becomes a one-way message stream from that
// peer.
//
// Loss model: sends are eager. A mid-write failure or a peer with no
// configured address drops the message — the same first-class loss the
// fabric simulates — and a dead peer schedules a reconnect attempt with a
// bounded backoff. While a peer is unreachable, up to `backlog_frames`
// outbound frames are queued (oldest dropped beyond that) and flushed, in
// order, on the next successful connect: daemons come up in some order, and
// a one-shot protocol send (a probe round) must survive racing the peer's
// bind without waiting out a full round-trip timeout. The cluster
// protocol's probe/claim timeouts and retries remain the recovery story for
// everything past that bounded buffer, identical on both substrates.
//
// Time: now() is (steady_clock - start) / tick_ms. Drivers poll
// receive()/now() on their own cadence; arrival order within a peer is
// stream order, across peers it is lock-acquisition order.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rota/net/frame.hpp"
#include "rota/net/transport.hpp"

namespace rota::net {

/// A peer address: "unix:<path>" or "tcp:<port>" (loopback). Listen
/// addresses use the same spelling.
struct SocketTransportConfig {
  cluster::NodeId local = cluster::kNoNode;
  std::string listen;                            // e.g. "unix:/tmp/rota-0.sock"
  std::map<cluster::NodeId, std::string> peers;  // peer id -> address
  std::string secret;        // "" = open; else hello tokens must match
  int connect_timeout_ms = 500;
  int reconnect_backoff_ms = 500;  // wait after a failed connect/dead peer
  std::size_t backlog_frames = 64;  // outbound frames queued per unreachable peer
  std::int64_t tick_ms = 10;        // protocol-tick duration for now()
};

class SocketTransport final : public Transport {
 public:
  /// Binds the listener and starts the accept thread. Throws
  /// std::system_error when the listen address cannot be bound and
  /// std::invalid_argument on a malformed config.
  explicit SocketTransport(SocketTransportConfig config);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  cluster::NodeId local() const override { return config_.local; }
  void send(cluster::Message m) override;
  std::vector<cluster::Message> receive() override;
  Tick now() const override;
  void close() override;

  /// The TCP port actually bound (after "tcp:0"), or 0 for unix listeners.
  std::uint16_t bound_port() const { return bound_port_; }

 private:
  struct Peer {
    std::string address;
    int fd = -1;
    std::chrono::steady_clock::time_point next_attempt{};  // backoff gate
    std::vector<std::string> backlog;  // framed bytes awaiting a connection
  };

  /// Returns a connected, hello'd fd for `peer`, (re)connecting if the
  /// backoff allows and flushing the peer's backlog after a reconnect; -1
  /// when the peer is unreachable right now.
  int peer_fd_locked(Peer& peer);
  /// Queues a framed message for an unreachable peer, evicting the oldest
  /// frame beyond `backlog_frames`.
  void enqueue_locked(Peer& peer, std::string framed);
  void accept_loop();
  void reader_loop(int fd);

  SocketTransportConfig config_;
  std::chrono::steady_clock::time_point start_;
  std::uint16_t bound_port_ = 0;

  int listen_fd_ = -1;
  std::string listen_path_;  // unix socket file to unlink on close
  std::thread accept_thread_;

  std::mutex peers_mutex_;  // guards peers_ (outbound side)
  std::map<cluster::NodeId, Peer> peers_;

  std::mutex inbox_mutex_;  // guards inbox_, readers_, sessions_, closed_
  std::vector<cluster::Message> inbox_;
  std::vector<std::thread> readers_;
  std::vector<int> session_fds_;  // accepted fds, shut down on close
  bool closed_ = false;
};

}  // namespace rota::net
