#include "rota/net/transport.hpp"

namespace rota::net {

// Key function: anchors the vtable so the interface header stays light.
Transport::~Transport() = default;

}  // namespace rota::net
