#include "rota/computation/interaction.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rota {

SegmentedActorBuilder& SegmentedActorBuilder::evaluate(std::int64_t weight) {
  current_.push_back(Action::evaluate(here_, weight));
  return *this;
}

SegmentedActorBuilder& SegmentedActorBuilder::send(Location to,
                                                   std::int64_t message_size) {
  current_.push_back(Action::send(here_, to, message_size));
  return *this;
}

SegmentedActorBuilder& SegmentedActorBuilder::create(std::int64_t behaviour_size) {
  current_.push_back(Action::create(here_, behaviour_size));
  return *this;
}

SegmentedActorBuilder& SegmentedActorBuilder::ready() {
  current_.push_back(Action::ready(here_));
  return *this;
}

SegmentedActorBuilder& SegmentedActorBuilder::migrate(Location to,
                                                      std::int64_t state_size) {
  current_.push_back(Action::migrate(here_, to, state_size));
  here_ = to;
  return *this;
}

std::size_t SegmentedActorBuilder::await() {
  closed_.push_back(std::move(current_));
  current_.clear();
  return closed_.size() - 1;
}

SegmentedActor SegmentedActorBuilder::build() && {
  if (!current_.empty()) closed_.push_back(std::move(current_));
  return SegmentedActor(std::move(actor_), std::move(closed_));
}

namespace {

/// Node index of (actor, segment) in actor-major order.
std::size_t node_index(const std::vector<SegmentedActor>& actors, std::size_t actor,
                       std::size_t segment) {
  std::size_t base = 0;
  for (std::size_t a = 0; a < actor; ++a) base += actors[a].segment_count();
  return base + segment;
}

/// Depth-first cycle check over the dependency graph (intra-actor order plus
/// message gates).
bool has_cycle(const std::vector<std::vector<std::size_t>>& waits) {
  enum class Mark : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<Mark> marks(waits.size(), Mark::kWhite);

  // Iterative DFS; an edge into a grey node closes a cycle.
  for (std::size_t root = 0; root < waits.size(); ++root) {
    if (marks[root] != Mark::kWhite) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack{{root, 0}};
    marks[root] = Mark::kGrey;
    while (!stack.empty()) {
      auto& [node, next_edge] = stack.back();
      if (next_edge < waits[node].size()) {
        const std::size_t dep = waits[node][next_edge++];
        if (marks[dep] == Mark::kGrey) return true;
        if (marks[dep] == Mark::kWhite) {
          marks[dep] = Mark::kGrey;
          stack.emplace_back(dep, 0);
        }
      } else {
        marks[node] = Mark::kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

std::vector<std::vector<std::size_t>> dependency_lists(
    const std::vector<SegmentedActor>& actors,
    const std::vector<MessageDependency>& dependencies) {
  std::size_t total = 0;
  for (const auto& a : actors) total += a.segment_count();
  std::vector<std::vector<std::size_t>> waits(total);

  // Intra-actor sequencing: each segment waits for its predecessor.
  for (std::size_t a = 0; a < actors.size(); ++a) {
    for (std::size_t s = 1; s < actors[a].segment_count(); ++s) {
      waits[node_index(actors, a, s)].push_back(node_index(actors, a, s - 1));
    }
  }
  // Cross-actor message gates.
  for (const auto& d : dependencies) {
    waits[node_index(actors, d.to_actor, d.to_segment)].push_back(
        node_index(actors, d.from_actor, d.from_segment));
  }
  return waits;
}

}  // namespace

InteractingComputation::InteractingComputation(
    std::string name, std::vector<SegmentedActor> actors,
    std::vector<MessageDependency> dependencies, Tick earliest_start, Tick deadline)
    : name_(std::move(name)),
      actors_(std::move(actors)),
      dependencies_(std::move(dependencies)),
      earliest_start_(earliest_start),
      deadline_(deadline) {
  if (deadline_ <= earliest_start_) {
    throw std::invalid_argument("computation " + name_ +
                                ": deadline must lie after the earliest start");
  }
  for (const auto& d : dependencies_) {
    if (d.from_actor >= actors_.size() || d.to_actor >= actors_.size() ||
        d.from_segment >= actors_[d.from_actor].segment_count() ||
        d.to_segment >= actors_[d.to_actor].segment_count()) {
      throw std::invalid_argument("computation " + name_ +
                                  ": dependency references a missing segment");
    }
    if (d.from_actor == d.to_actor && d.from_segment >= d.to_segment) {
      throw std::invalid_argument(
          "computation " + name_ +
          ": intra-actor dependency must point forward in the segment order");
    }
  }
  if (has_cycle(dependency_lists(actors_, dependencies_))) {
    throw std::invalid_argument("computation " + name_ +
                                ": dependency cycle — actors wait on each other "
                                "forever");
  }
}

std::size_t InteractingComputation::total_segments() const {
  std::size_t n = 0;
  for (const auto& a : actors_) n += a.segment_count();
  return n;
}

std::string InteractingComputation::to_string() const {
  std::ostringstream out;
  out << '(' << name_ << ", s=" << earliest_start_ << ", d=" << deadline_ << ", "
      << actors_.size() << " actors / " << total_segments() << " segments, "
      << dependencies_.size() << " message gates)";
  return out.str();
}

DemandSet DagRequirement::total_demand() const {
  DemandSet out;
  for (const auto& node : nodes) out.merge(node.requirement.total_demand());
  return out;
}

DagRequirement make_dag_requirement(const CostModel& phi,
                                    const InteractingComputation& computation) {
  DagRequirement dag;
  dag.name = computation.name();
  dag.window = computation.window();

  const auto waits = dependency_lists(computation.actors(), computation.dependencies());
  std::size_t node = 0;
  for (std::size_t a = 0; a < computation.actors().size(); ++a) {
    const SegmentedActor& actor = computation.actors()[a];
    for (std::size_t s = 0; s < actor.segment_count(); ++s, ++node) {
      SegmentRequirement req;
      req.actor_index = a;
      req.segment_index = s;
      req.requirement = ComplexRequirement(
          actor.actor() + "#" + std::to_string(s),
          decompose_phases(phi, actor.segments()[s]), computation.window());
      req.waits_for = waits[node];
      dag.nodes.push_back(std::move(req));
    }
  }
  return dag;
}

std::ostream& operator<<(std::ostream& os, const InteractingComputation& c) {
  return os << c.to_string();
}

}  // namespace rota
