#include "rota/computation/cost_model.hpp"

#include <stdexcept>

namespace rota {

void CostModel::set_cpu_multiplier(Location at, std::int64_t multiplier) {
  if (multiplier <= 0) throw std::invalid_argument("cpu multiplier must be positive");
  cpu_multiplier_[at] = multiplier;
}

Quantity CostModel::scaled_cpu(Location at, Quantity base) const {
  auto it = cpu_multiplier_.find(at);
  return it == cpu_multiplier_.end() ? base : base * it->second;
}

DemandSet CostModel::cost(const Action& action) const {
  DemandSet out;
  switch (action.kind) {
    case ActionKind::kEvaluate:
      out.add(LocatedType::cpu(action.at),
              scaled_cpu(action.at, params_.evaluate_per_weight * action.size));
      break;
    case ActionKind::kSend:
      if (action.at == action.to) {
        out.add(LocatedType::cpu(action.at),
                scaled_cpu(action.at, params_.local_send_cpu));
      } else {
        out.add(LocatedType::network(action.at, action.to),
                params_.send_base + params_.send_per_size * (action.size - 1));
      }
      break;
    case ActionKind::kCreate:
      out.add(LocatedType::cpu(action.at),
              scaled_cpu(action.at, params_.create_base +
                                        params_.create_per_size * (action.size - 1)));
      break;
    case ActionKind::kReady:
      out.add(LocatedType::cpu(action.at), scaled_cpu(action.at, params_.ready_cost));
      break;
    case ActionKind::kMigrate: {
      if (action.at == action.to) {
        throw std::invalid_argument("migrate requires a distinct destination");
      }
      out.add(LocatedType::cpu(action.at),
              scaled_cpu(action.at, params_.migrate_cpu_each_side));
      out.add(LocatedType::network(action.at, action.to),
              params_.migrate_network_base +
                  params_.migrate_network_per_size * (action.size - 1));
      out.add(LocatedType::cpu(action.to),
              scaled_cpu(action.to, params_.migrate_cpu_each_side));
      break;
    }
  }
  return out;
}

DemandSet CostModel::total_cost(const std::vector<Action>& actions) const {
  DemandSet out;
  for (const auto& a : actions) out.merge(cost(a));
  return out;
}

}  // namespace rota
