// Actor actions.
//
// ROTA views a distributed computation through the actor model: an actor's
// behaviour is a sequence of five primitive kinds of action — evaluate an
// expression, send a message, create an actor, become ready for the next
// message, or migrate to another location. ROTA abstracts away everything
// about an action except the resources it needs, which the CostModel (Φ)
// derives from the fields recorded here.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "rota/resource/located_type.hpp"

namespace rota {

enum class ActionKind : std::uint8_t {
  kEvaluate = 0,  // local computation of some weight
  kSend,          // message to another actor (possibly co-located)
  kCreate,        // spawn a new actor locally
  kReady,         // finish processing, accept next message
  kMigrate,       // serialize, ship, resume at another location
};

std::string action_kind_name(ActionKind k);

/// One action, annotated with where the actor is when it executes (`at`) and,
/// for send/migrate, the other endpoint (`to`). The `size` field scales cost:
/// expression weight for evaluate, message size for send, behaviour size for
/// create, state size for migrate; unused (1) for ready.
struct Action {
  ActionKind kind = ActionKind::kEvaluate;
  Location at;
  Location to;  // == at unless kind is kSend or kMigrate
  std::int64_t size = 1;

  static Action evaluate(Location at, std::int64_t weight = 1) {
    return {ActionKind::kEvaluate, at, at, weight};
  }
  static Action send(Location from, Location to, std::int64_t message_size = 1) {
    return {ActionKind::kSend, from, to, message_size};
  }
  static Action create(Location at, std::int64_t behaviour_size = 1) {
    return {ActionKind::kCreate, at, at, behaviour_size};
  }
  static Action ready(Location at) { return {ActionKind::kReady, at, at, 1}; }
  static Action migrate(Location from, Location to, std::int64_t state_size = 1) {
    return {ActionKind::kMigrate, from, to, state_size};
  }

  bool operator==(const Action&) const = default;

  std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const Action& a);

}  // namespace rota
