#include "rota/computation/requirement.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace rota {

std::string SimpleRequirement::to_string() const {
  return "rho(" + demand_.to_string() + ", " + window_.to_string() + ")";
}

DemandSet ComplexRequirement::total_demand() const {
  DemandSet out;
  for (const auto& p : phases_) out.merge(p.demand);
  return out;
}

std::string ComplexRequirement::to_string() const {
  std::ostringstream out;
  out << "rho(" << actor_ << ", " << window_.to_string() << "): ";
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (i != 0) out << " ; ";
    out << phases_[i].demand.to_string();
  }
  return out.str();
}

DemandSet ConcurrentRequirement::total_demand() const {
  DemandSet out;
  for (const auto& a : actors_) out.merge(a.total_demand());
  return out;
}

std::size_t ConcurrentRequirement::total_phases() const {
  std::size_t n = 0;
  for (const auto& a : actors_) n += a.phase_count();
  return n;
}

std::string ConcurrentRequirement::to_string() const {
  std::ostringstream out;
  out << "rho(" << name_ << ", " << window_.to_string() << ") over "
      << actors_.size() << " actors / " << total_phases() << " phases";
  return out.str();
}

SimpleRequirement make_simple_requirement(const CostModel& phi, const Action& action,
                                          const TimeInterval& window) {
  return SimpleRequirement(phi.cost(action), window);
}

namespace {

/// Two demand sets have the same signature when they draw on exactly the
/// same located types.
bool same_signature(const DemandSet& a, const DemandSet& b) {
  if (a.size() != b.size()) return false;
  auto ia = a.amounts().begin();
  auto ib = b.amounts().begin();
  for (; ia != a.amounts().end(); ++ia, ++ib) {
    if (!(ia->first == ib->first)) return false;
  }
  return true;
}

}  // namespace

std::vector<Phase> decompose_phases(const CostModel& phi,
                                    const std::vector<Action>& actions) {
  std::vector<Phase> phases;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    DemandSet d = phi.cost(actions[i]);
    if (d.empty()) continue;  // zero-cost action constrains nothing
    if (!phases.empty() && same_signature(phases.back().demand, d)) {
      phases.back().demand.merge(d);
      phases.back().action_count += 1;
    } else {
      phases.push_back(Phase{std::move(d), i, 1});
    }
  }
  return phases;
}

ComplexRequirement make_complex_requirement(const CostModel& phi,
                                            const ActorComputation& gamma,
                                            const TimeInterval& window,
                                            Rate rate_cap) {
  return ComplexRequirement(gamma.actor(), decompose_phases(phi, gamma.actions()),
                            window, rate_cap);
}

ConcurrentRequirement make_concurrent_requirement(const CostModel& phi,
                                                  const DistributedComputation& lambda,
                                                  Rate rate_cap) {
  std::vector<ComplexRequirement> actors;
  actors.reserve(lambda.actors().size());
  for (const auto& gamma : lambda.actors()) {
    actors.push_back(make_complex_requirement(phi, gamma, lambda.window(), rate_cap));
  }
  return ConcurrentRequirement(lambda.name(), std::move(actors), lambda.window());
}

std::ostream& operator<<(std::ostream& os, const SimpleRequirement& r) {
  return os << r.to_string();
}
std::ostream& operator<<(std::ostream& os, const ComplexRequirement& r) {
  return os << r.to_string();
}
std::ostream& operator<<(std::ostream& os, const ConcurrentRequirement& r) {
  return os << r.to_string();
}

}  // namespace rota
