#include "rota/computation/actor_computation.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rota {

std::string ActorComputation::to_string() const {
  std::ostringstream out;
  out << actor_ << ": [";
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    if (i != 0) out << ", ";
    out << actions_[i].to_string();
  }
  out << ']';
  return out.str();
}

ActorComputationBuilder& ActorComputationBuilder::evaluate(std::int64_t weight) {
  actions_.push_back(Action::evaluate(here_, weight));
  return *this;
}

ActorComputationBuilder& ActorComputationBuilder::send(Location to,
                                                       std::int64_t message_size) {
  actions_.push_back(Action::send(here_, to, message_size));
  return *this;
}

ActorComputationBuilder& ActorComputationBuilder::create(std::int64_t behaviour_size) {
  actions_.push_back(Action::create(here_, behaviour_size));
  return *this;
}

ActorComputationBuilder& ActorComputationBuilder::ready() {
  actions_.push_back(Action::ready(here_));
  return *this;
}

ActorComputationBuilder& ActorComputationBuilder::migrate(Location to,
                                                          std::int64_t state_size) {
  actions_.push_back(Action::migrate(here_, to, state_size));
  here_ = to;
  return *this;
}

DistributedComputation::DistributedComputation(std::string name,
                                               std::vector<ActorComputation> actors,
                                               Tick earliest_start, Tick deadline)
    : name_(std::move(name)),
      actors_(std::move(actors)),
      earliest_start_(earliest_start),
      deadline_(deadline) {
  if (deadline <= earliest_start) {
    throw std::invalid_argument("computation " + name_ +
                                ": deadline must lie after the earliest start");
  }
}

std::size_t DistributedComputation::total_actions() const {
  std::size_t n = 0;
  for (const auto& g : actors_) n += g.action_count();
  return n;
}

std::string DistributedComputation::to_string() const {
  std::ostringstream out;
  out << '(' << name_ << ", s=" << earliest_start_ << ", d=" << deadline_ << ", "
      << actors_.size() << " actors, " << total_actions() << " actions)";
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const ActorComputation& g) {
  return os << g.to_string();
}
std::ostream& operator<<(std::ostream& os, const DistributedComputation& c) {
  return os << c.to_string();
}

}  // namespace rota
