#include "rota/computation/action.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rota {

std::string action_kind_name(ActionKind k) {
  switch (k) {
    case ActionKind::kEvaluate: return "evaluate";
    case ActionKind::kSend: return "send";
    case ActionKind::kCreate: return "create";
    case ActionKind::kReady: return "ready";
    case ActionKind::kMigrate: return "migrate";
  }
  throw std::invalid_argument("invalid ActionKind");
}

std::string Action::to_string() const {
  std::ostringstream out;
  out << action_kind_name(kind) << "@" << at.name();
  if (kind == ActionKind::kSend || kind == ActionKind::kMigrate) {
    out << "->" << to.name();
  }
  if (size != 1) out << " size=" << size;
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Action& a) {
  return os << a.to_string();
}

}  // namespace rota
