// The cost function Φ: actions → located resource demands.
//
// The paper posits a function Φ that, given an actor and the computation it
// is to perform, returns the required resource amounts, and notes (footnote
// 3) that estimates suffice in practice. This CostModel is that estimator:
// deterministic, configurable per action kind, with size scaling and optional
// per-location CPU cost multipliers for heterogeneous nodes. Default
// parameters reproduce the paper's §IV worked examples:
//   Φ(a1, send(a2, m))  = {4}_<network, l(a1)->l(a2)>
//   Φ(a1, evaluate(e))  = {8}_<cpu, l(a1)>
//   Φ(a1, create(b))    = {5}_<cpu, l(a1)>
//   Φ(a1, ready(b))     = {1}_<cpu, l(a1)>
//   Φ(a1, migrate(l2))  = {3}_<cpu, l(a1)>, {6}_<network, l(a1)->l2>, {3}_<cpu, l2>
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rota/computation/action.hpp"
#include "rota/resource/demand.hpp"

namespace rota {

struct CostParameters {
  // Per-unit-size costs; the paper's examples use size 1 throughout.
  Quantity evaluate_per_weight = 8;
  Quantity send_base = 4;          // network units for a remote send of size 1
  Quantity send_per_size = 0;      // extra network units per additional size unit
  Quantity local_send_cpu = 1;     // co-located delivery costs a little cpu instead
  Quantity create_base = 5;
  Quantity create_per_size = 0;
  Quantity ready_cost = 1;
  Quantity migrate_cpu_each_side = 3;  // serialize / deserialize
  Quantity migrate_network_base = 6;
  Quantity migrate_network_per_size = 0;
};

class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(CostParameters params) : params_(params) {}

  const CostParameters& parameters() const { return params_; }

  /// CPU work at `at` costs `multiplier` × the homogeneous amount (slower
  /// nodes need more delivered cycles; multiplier must be >= 1... strictly,
  /// just positive).
  void set_cpu_multiplier(Location at, std::int64_t multiplier);

  /// Φ(a, γ): the resources action γ requires. The actor's identity enters
  /// only through the action's recorded locations, matching the paper's use.
  DemandSet cost(const Action& action) const;

  /// Total demand of an action sequence (order-insensitive aggregate).
  DemandSet total_cost(const std::vector<Action>& actions) const;

 private:
  Quantity scaled_cpu(Location at, Quantity base) const;

  CostParameters params_;
  std::unordered_map<Location, std::int64_t> cpu_multiplier_;
};

}  // namespace rota
