// Interacting actor computations — the paper's first future-work direction.
//
// §VI: "it would be better to break down an actor's computation into
// sequences of independent computations separated by states in which it is
// waiting to hear back from a blocking operation." This module does exactly
// that: an actor's behaviour becomes a sequence of *segments* (independent
// action runs), and cross-actor message dependencies gate when a segment may
// start — segment t of actor B that processes a message from actor A cannot
// begin before A's sending segment has completed. The result is a DAG of
// complex requirements; rota/logic/dag_planner.hpp plans it.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "rota/computation/actor_computation.hpp"
#include "rota/computation/cost_model.hpp"
#include "rota/computation/requirement.hpp"

namespace rota {

/// One actor whose behaviour is split into blocking-operation-separated
/// segments. Within a segment, actions are strictly ordered as usual; between
/// segments the actor is waiting (consuming nothing).
class SegmentedActor {
 public:
  SegmentedActor() = default;
  SegmentedActor(std::string actor, std::vector<std::vector<Action>> segments)
      : actor_(std::move(actor)), segments_(std::move(segments)) {}

  const std::string& actor() const { return actor_; }
  const std::vector<std::vector<Action>>& segments() const { return segments_; }
  std::size_t segment_count() const { return segments_.size(); }

  bool operator==(const SegmentedActor&) const = default;

 private:
  std::string actor_;
  std::vector<std::vector<Action>> segments_;
};

/// Builder that grows an actor segment by segment: record actions, then call
/// await() at each blocking point to close the current segment.
class SegmentedActorBuilder {
 public:
  SegmentedActorBuilder(std::string actor, Location start_at)
      : actor_(std::move(actor)), here_(start_at) {}

  SegmentedActorBuilder& evaluate(std::int64_t weight = 1);
  SegmentedActorBuilder& send(Location to, std::int64_t message_size = 1);
  SegmentedActorBuilder& create(std::int64_t behaviour_size = 1);
  SegmentedActorBuilder& ready();
  SegmentedActorBuilder& migrate(Location to, std::int64_t state_size = 1);

  /// Closes the current segment: the actor now blocks until a dependency
  /// releases the next segment. Returns the index of the *closed* segment.
  std::size_t await();

  Location current_location() const { return here_; }
  SegmentedActor build() &&;

 private:
  std::string actor_;
  Location here_;
  std::vector<std::vector<Action>> closed_;
  std::vector<Action> current_;
};

/// "Segment `to_segment` of actor `to_actor` may start only after segment
/// `from_segment` of actor `from_actor` has completed" — the message-arrival
/// gate. Indices refer to the computation's actor list.
struct MessageDependency {
  std::size_t from_actor = 0;
  std::size_t from_segment = 0;
  std::size_t to_actor = 0;
  std::size_t to_segment = 0;

  bool operator==(const MessageDependency&) const = default;
};

/// (Λ, s, d) where Λ's actors interact through blocking messages.
class InteractingComputation {
 public:
  InteractingComputation() = default;

  /// Validates indices and rejects dependency cycles (a cyclic wait can
  /// never complete) by throwing std::invalid_argument.
  InteractingComputation(std::string name, std::vector<SegmentedActor> actors,
                         std::vector<MessageDependency> dependencies,
                         Tick earliest_start, Tick deadline);

  const std::string& name() const { return name_; }
  const std::vector<SegmentedActor>& actors() const { return actors_; }
  const std::vector<MessageDependency>& dependencies() const { return dependencies_; }
  Tick earliest_start() const { return earliest_start_; }
  Tick deadline() const { return deadline_; }
  TimeInterval window() const { return TimeInterval(earliest_start_, deadline_); }

  std::size_t total_segments() const;

  bool operator==(const InteractingComputation&) const = default;

  std::string to_string() const;

 private:
  std::string name_;
  std::vector<SegmentedActor> actors_;
  std::vector<MessageDependency> dependencies_;
  Tick earliest_start_ = 0;
  Tick deadline_ = 0;
};

/// A node of the derived requirement DAG: one segment's complex requirement
/// plus the node indices it must wait for.
struct SegmentRequirement {
  std::size_t actor_index = 0;
  std::size_t segment_index = 0;
  ComplexRequirement requirement;  // window == the whole computation window
  std::vector<std::size_t> waits_for;  // indices into the DAG's node list
};

/// The requirement DAG of an interacting computation under Φ. Nodes are in
/// actor-major order (actor 0's segments first). Intra-actor sequencing is
/// encoded as dependencies alongside the cross-actor message gates.
struct DagRequirement {
  std::string name;
  TimeInterval window;
  std::vector<SegmentRequirement> nodes;

  DemandSet total_demand() const;
};

DagRequirement make_dag_requirement(const CostModel& phi,
                                    const InteractingComputation& computation);

std::ostream& operator<<(std::ostream& os, const InteractingComputation& c);

}  // namespace rota
