// Actor computations (Γ) and distributed computations (Λ, s, d).
//
// An actor computation is a named, strictly ordered action sequence: an
// action is *possible* only when all of its predecessors have completed
// (Definition 1). A distributed computation bundles independent actor
// computations with an earliest start s and a deadline d.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "rota/computation/action.hpp"
#include "rota/time/interval.hpp"

namespace rota {

class ActorComputation {
 public:
  ActorComputation() = default;
  ActorComputation(std::string actor, std::vector<Action> actions)
      : actor_(std::move(actor)), actions_(std::move(actions)) {}

  const std::string& actor() const { return actor_; }
  const std::vector<Action>& actions() const { return actions_; }
  std::size_t action_count() const { return actions_.size(); }
  bool empty() const { return actions_.empty(); }

  void append(const Action& a) { actions_.push_back(a); }

  /// Definition 1: action `index` is possible once `completed` predecessors
  /// are done (i.e. completed == index).
  bool is_possible(std::size_t index, std::size_t completed) const {
    return index < actions_.size() && completed == index;
  }

  bool operator==(const ActorComputation&) const = default;

  std::string to_string() const;

 private:
  std::string actor_;
  std::vector<Action> actions_;
};

/// Fluent builder that tracks the actor's current location across migrations,
/// so call sites read like the behaviour script the paper describes.
class ActorComputationBuilder {
 public:
  ActorComputationBuilder(std::string actor, Location start_at)
      : actor_(std::move(actor)), here_(start_at) {}

  ActorComputationBuilder& evaluate(std::int64_t weight = 1);
  ActorComputationBuilder& send(Location to, std::int64_t message_size = 1);
  ActorComputationBuilder& create(std::int64_t behaviour_size = 1);
  ActorComputationBuilder& ready();
  ActorComputationBuilder& migrate(Location to, std::int64_t state_size = 1);

  Location current_location() const { return here_; }
  ActorComputation build() && { return ActorComputation(std::move(actor_), std::move(actions_)); }
  ActorComputation build() const& { return ActorComputation(actor_, actions_); }

 private:
  std::string actor_;
  Location here_;
  std::vector<Action> actions_;
};

/// (Λ, s, d): independent actor computations that all may start at s and must
/// finish by d. "Actors are created en masse at the beginning and never wait
/// for messages from other actors."
class DistributedComputation {
 public:
  DistributedComputation() = default;
  DistributedComputation(std::string name, std::vector<ActorComputation> actors,
                         Tick earliest_start, Tick deadline);

  const std::string& name() const { return name_; }
  const std::vector<ActorComputation>& actors() const { return actors_; }
  Tick earliest_start() const { return earliest_start_; }
  Tick deadline() const { return deadline_; }
  TimeInterval window() const { return TimeInterval(earliest_start_, deadline_); }

  std::size_t total_actions() const;

  bool operator==(const DistributedComputation&) const = default;

  std::string to_string() const;

 private:
  std::string name_;
  std::vector<ActorComputation> actors_;
  Tick earliest_start_ = 0;
  Tick deadline_ = 0;
};

std::ostream& operator<<(std::ostream& os, const ActorComputation& g);
std::ostream& operator<<(std::ostream& os, const DistributedComputation& c);

}  // namespace rota
