// Resource requirements (ρ): simple, complex (sequential), and concurrent.
//
// ρ(γ, s, d)  — a simple requirement: one action's demand within a window.
// ρ(Γ, s, d)  — a complex requirement: an ordered sequence of phases, each a
//               demand set, whose cut points t1 < … < t(m-1) are free.
// ρ(Λ, s, d)  — a concurrent requirement: one complex requirement per actor,
//               all sharing the window.
//
// Phase decomposition follows the paper's rule: consecutive actions that
// draw on the same located types need not be separated ("a sequence of
// actions which require the same single type of resource need not be broken
// down"), because a quantity check over one window already guarantees them;
// a change in the demand signature forces a new phase, because order across
// different resources matters.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "rota/computation/actor_computation.hpp"
#include "rota/computation/cost_model.hpp"
#include "rota/resource/demand.hpp"
#include "rota/resource/resource_set.hpp"
#include "rota/time/interval.hpp"

namespace rota {

/// ρ(γ, s, d): the total amount of resource required for one action during
/// (s, d).
class SimpleRequirement {
 public:
  SimpleRequirement() = default;
  SimpleRequirement(DemandSet demand, const TimeInterval& window)
      : demand_(std::move(demand)), window_(window) {}

  const DemandSet& demand() const { return demand_; }
  const TimeInterval& window() const { return window_; }

  /// The paper's f(Θ, ρ(γ, s, d)): does the union of Θ's supply within the
  /// window cover the demand, type by type?
  bool satisfied_by(const ResourceSet& theta) const {
    return theta.satisfies(demand_, window_);
  }

  bool operator==(const SimpleRequirement&) const = default;

  std::string to_string() const;

 private:
  DemandSet demand_;
  TimeInterval window_;
};

/// One phase of a complex requirement: the merged demand of a maximal run of
/// same-signature actions, plus bookkeeping about which actions it covers.
struct Phase {
  DemandSet demand;
  std::size_t first_action = 0;  // index range [first_action, first_action + action_count)
  std::size_t action_count = 0;

  bool operator==(const Phase&) const = default;
};

/// ρ(Γ, s, d): ordered phases within a window. Satisfaction requires cut
/// points; see rota/logic/theorems.hpp for the feasibility algorithms.
///
/// `rate_cap` bounds how fast the actor can absorb each located type (units
/// per tick); 0 means unbounded — the paper's model, where an actor soaks up
/// whatever rate exists. A cap of 1 models a strictly serial actor that a
/// 10-units/tick node cannot speed up.
class ComplexRequirement {
 public:
  ComplexRequirement() = default;
  ComplexRequirement(std::string actor, std::vector<Phase> phases,
                     const TimeInterval& window, Rate rate_cap = 0)
      : actor_(std::move(actor)),
        phases_(std::move(phases)),
        window_(window),
        rate_cap_(rate_cap) {}

  const std::string& actor() const { return actor_; }
  const std::vector<Phase>& phases() const { return phases_; }
  const TimeInterval& window() const { return window_; }
  std::size_t phase_count() const { return phases_.size(); }
  bool empty() const { return phases_.empty(); }
  /// 0 = unbounded (the paper's default).
  Rate rate_cap() const { return rate_cap_; }

  /// Aggregate demand across all phases (what a naive total-quantity check
  /// would look at — necessary but not sufficient).
  DemandSet total_demand() const;

  bool operator==(const ComplexRequirement&) const = default;

  std::string to_string() const;

 private:
  std::string actor_;
  std::vector<Phase> phases_;
  TimeInterval window_;
  Rate rate_cap_ = 0;
};

/// ρ(Λ, s, d): the union of the member actors' complex requirements.
class ConcurrentRequirement {
 public:
  ConcurrentRequirement() = default;
  ConcurrentRequirement(std::string name, std::vector<ComplexRequirement> actors,
                        const TimeInterval& window)
      : name_(std::move(name)), actors_(std::move(actors)), window_(window) {}

  const std::string& name() const { return name_; }
  const std::vector<ComplexRequirement>& actors() const { return actors_; }
  const TimeInterval& window() const { return window_; }

  DemandSet total_demand() const;
  std::size_t total_phases() const;

  bool operator==(const ConcurrentRequirement&) const = default;

  std::string to_string() const;

 private:
  std::string name_;
  std::vector<ComplexRequirement> actors_;
  TimeInterval window_;
};

/// Builds ρ(γ, s, d) from one action via Φ.
SimpleRequirement make_simple_requirement(const CostModel& phi, const Action& action,
                                          const TimeInterval& window);

/// Phase decomposition of an action sequence under Φ.
std::vector<Phase> decompose_phases(const CostModel& phi,
                                    const std::vector<Action>& actions);

/// Builds ρ(Γ, s, d). `rate_cap` bounds per-type absorption (0 = unbounded).
ComplexRequirement make_complex_requirement(const CostModel& phi,
                                            const ActorComputation& gamma,
                                            const TimeInterval& window,
                                            Rate rate_cap = 0);

/// Builds ρ(Λ, s, d) using Λ's own window; `rate_cap` applies to every actor.
ConcurrentRequirement make_concurrent_requirement(const CostModel& phi,
                                                  const DistributedComputation& lambda,
                                                  Rate rate_cap = 0);

std::ostream& operator<<(std::ostream& os, const SimpleRequirement& r);
std::ostream& operator<<(std::ostream& os, const ComplexRequirement& r);
std::ostream& operator<<(std::ostream& os, const ConcurrentRequirement& r);

}  // namespace rota
