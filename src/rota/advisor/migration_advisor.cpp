#include "rota/advisor/migration_advisor.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace rota {

std::string placement_kind_name(PlacementKind k) {
  switch (k) {
    case PlacementKind::kStay: return "stay";
    case PlacementKind::kMigrateOnce: return "migrate-once";
    case PlacementKind::kMigrateAndReturn: return "migrate-and-return";
  }
  throw std::invalid_argument("invalid PlacementKind");
}

std::string PlacementOption::to_string() const {
  std::ostringstream out;
  out << placement_kind_name(kind);
  if (kind != PlacementKind::kStay) out << " via " << site.name();
  if (feasible) {
    out << " (finish t=" << finish << ')';
  } else {
    out << " (infeasible)";
  }
  return out.str();
}

ActorComputation MigrationAdvisor::materialize(const WorkSpec& spec,
                                               PlacementKind kind,
                                               Location site) const {
  if (spec.chunk_weights.empty()) {
    throw std::invalid_argument("WorkSpec needs at least one chunk");
  }
  ActorComputationBuilder builder(spec.actor, spec.home);
  switch (kind) {
    case PlacementKind::kStay:
      for (std::int64_t w : spec.chunk_weights) builder.evaluate(w);
      builder.ready();
      break;
    case PlacementKind::kMigrateOnce:
      builder.migrate(site, spec.state_size);
      for (std::int64_t w : spec.chunk_weights) builder.evaluate(w);
      builder.ready();
      break;
    case PlacementKind::kMigrateAndReturn:
      builder.migrate(site, spec.state_size);
      for (std::size_t i = 0; i + 1 < spec.chunk_weights.size(); ++i) {
        builder.evaluate(spec.chunk_weights[i]);
      }
      builder.migrate(spec.home, spec.state_size);
      builder.evaluate(spec.chunk_weights.back());
      builder.ready();
      break;
  }
  return std::move(builder).build();
}

PlacementOption MigrationAdvisor::assess(const ResourceSet& supply,
                                         const WorkSpec& spec, PlacementKind kind,
                                         Location site) const {
  PlacementOption option;
  option.kind = kind;
  option.site = site;
  option.computation = materialize(spec, kind, site);

  const ComplexRequirement rho = make_complex_requirement(
      phi_, option.computation, TimeInterval(spec.earliest_start, spec.deadline));
  auto plan = plan_actor(supply, rho, policy_);
  if (plan) {
    option.feasible = true;
    option.finish = plan->finish;
    option.plan = std::move(*plan);
  }
  return option;
}

std::vector<PlacementOption> MigrationAdvisor::evaluate(
    const ResourceSet& supply, const WorkSpec& spec,
    const std::vector<Location>& sites) const {
  if (spec.deadline <= spec.earliest_start) {
    throw std::invalid_argument("WorkSpec deadline must follow its earliest start");
  }
  std::vector<PlacementOption> options;
  options.push_back(assess(supply, spec, PlacementKind::kStay, spec.home));
  for (const Location& site : sites) {
    if (site == spec.home) continue;
    options.push_back(assess(supply, spec, PlacementKind::kMigrateOnce, site));
    if (spec.chunk_weights.size() > 1) {
      options.push_back(assess(supply, spec, PlacementKind::kMigrateAndReturn, site));
    }
  }
  std::stable_sort(options.begin(), options.end(),
                   [](const PlacementOption& a, const PlacementOption& b) {
                     if (a.feasible != b.feasible) return a.feasible;
                     return a.feasible && a.finish < b.finish;
                   });
  return options;
}

std::optional<PlacementOption> MigrationAdvisor::best(
    const ResourceSet& supply, const WorkSpec& spec,
    const std::vector<Location>& sites) const {
  std::vector<PlacementOption> options = evaluate(supply, spec, sites);
  if (options.empty() || !options.front().feasible) return std::nullopt;
  return std::move(options.front());
}

}  // namespace rota
