#include "rota/advisor/migration_advisor.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace rota {

std::string placement_kind_name(PlacementKind k) {
  switch (k) {
    case PlacementKind::kStay: return "stay";
    case PlacementKind::kMigrateOnce: return "migrate-once";
    case PlacementKind::kMigrateAndReturn: return "migrate-and-return";
  }
  throw std::invalid_argument("invalid PlacementKind");
}

std::string PlacementOption::to_string() const {
  std::ostringstream out;
  out << placement_kind_name(kind);
  if (kind != PlacementKind::kStay) out << " via " << site.name();
  if (feasible) {
    out << " (finish t=" << finish << ')';
  } else {
    out << " (infeasible)";
  }
  return out.str();
}

ActorComputation MigrationAdvisor::materialize(const WorkSpec& spec,
                                               PlacementKind kind,
                                               Location site) const {
  if (spec.chunk_weights.empty()) {
    throw std::invalid_argument("WorkSpec needs at least one chunk");
  }
  // Every placement is the same itinerary, differently parameterized: an
  // optional hop out, `away` chunks at the site, an optional hop back, and
  // the remaining chunks at home.
  const std::size_t n = spec.chunk_weights.size();
  const bool hop_out = kind != PlacementKind::kStay;
  const bool hop_back = kind == PlacementKind::kMigrateAndReturn;
  const std::size_t away = !hop_out ? 0 : hop_back ? n - 1 : n;

  ActorComputationBuilder builder(spec.actor, spec.home);
  if (hop_out) builder.migrate(site, spec.state_size);
  for (std::size_t i = 0; i < away; ++i) builder.evaluate(spec.chunk_weights[i]);
  if (hop_back) builder.migrate(spec.home, spec.state_size);
  for (std::size_t i = away; i < n; ++i) builder.evaluate(spec.chunk_weights[i]);
  builder.ready();
  return std::move(builder).build();
}

PlacementOption MigrationAdvisor::assess(const FeasibilitySnapshot& snapshot,
                                         const WorkSpec& spec, PlacementKind kind,
                                         Location site) const {
  if (spec.deadline <= spec.earliest_start) {
    throw std::invalid_argument("WorkSpec deadline must follow its earliest start");
  }
  PlacementOption option;
  option.kind = kind;
  option.site = site;
  option.computation = materialize(spec, kind, site);

  const ComplexRequirement rho = make_complex_requirement(
      phi_, option.computation, TimeInterval(spec.earliest_start, spec.deadline));
  auto plan = kernel_.speculate_actor(rho, snapshot);
  if (plan) {
    option.feasible = true;
    option.finish = plan->finish;
    option.plan = std::move(*plan);
  }
  return option;
}

void MigrationAdvisor::rank(std::vector<PlacementOption>& options) {
  std::sort(options.begin(), options.end(),
            [](const PlacementOption& a, const PlacementOption& b) {
              if (a.feasible != b.feasible) return a.feasible;
              if (a.feasible && a.finish != b.finish) return a.finish < b.finish;
              if (a.site.id() != b.site.id()) return a.site.id() < b.site.id();
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
}

std::vector<PlacementOption> MigrationAdvisor::evaluate(
    const ResourceSet& supply, const WorkSpec& spec,
    const std::vector<Location>& sites) const {
  std::vector<PlacementOption> options;
  options.push_back(assess(supply, spec, PlacementKind::kStay, spec.home));
  for (const Location& site : sites) {
    if (site == spec.home) continue;
    options.push_back(assess(supply, spec, PlacementKind::kMigrateOnce, site));
    if (spec.chunk_weights.size() > 1) {
      options.push_back(assess(supply, spec, PlacementKind::kMigrateAndReturn, site));
    }
  }
  rank(options);
  return options;
}

std::vector<PlacementOption> MigrationAdvisor::evaluate(
    const ResourceSet& home_supply, const WorkSpec& spec,
    const std::vector<SiteSupply>& sites) const {
  std::vector<PlacementOption> options;
  options.push_back(assess(home_supply, spec, PlacementKind::kStay, spec.home));
  for (const SiteSupply& s : sites) {
    if (s.site == spec.home) continue;
    const ResourceSet view = home_supply.unioned(s.supply);
    options.push_back(assess(view, spec, PlacementKind::kMigrateOnce, s.site));
    if (spec.chunk_weights.size() > 1) {
      options.push_back(assess(view, spec, PlacementKind::kMigrateAndReturn, s.site));
    }
  }
  rank(options);
  return options;
}

std::optional<PlacementOption> MigrationAdvisor::best(
    const ResourceSet& supply, const WorkSpec& spec,
    const std::vector<Location>& sites) const {
  std::vector<PlacementOption> options = evaluate(supply, spec, sites);
  if (options.empty() || !options.front().feasible) return std::nullopt;
  return std::move(options.front());
}

}  // namespace rota
