// Migration choice reasoning — the paper's second future-work direction.
//
// §VI: "an actor could continue to execute at its current location or
// migrate elsewhere, carry out part of its computation, and then return and
// resume. Comparing these choices presents some interesting challenges."
// The advisor makes the comparison mechanical: given work expressed as
// location-independent chunks, it materializes the candidate behaviours —
// stay home, migrate once, or migrate / work / return — runs each through
// the planner, and ranks the feasible ones by earliest finish. This is the
// paper's "computations choosing between various courses of action, allowing
// them to avoid attempting infeasible pursuits" made executable.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "rota/computation/cost_model.hpp"
#include "rota/computation/requirement.hpp"
#include "rota/logic/planner.hpp"

namespace rota {

/// Location-independent description of the work an actor must get done:
/// evaluation chunks (in order) plus the deadline constraint.
struct WorkSpec {
  std::string actor;
  Location home;
  std::vector<std::int64_t> chunk_weights;  // evaluate() weights, in order
  std::int64_t state_size = 1;              // migration payload
  Tick earliest_start = 0;
  Tick deadline = 0;
};

enum class PlacementKind {
  kStay,              // all chunks at home
  kMigrateOnce,       // hop to a site, finish there
  kMigrateAndReturn,  // hop, run all but the last chunk, hop back, finish home
};

std::string placement_kind_name(PlacementKind k);

struct PlacementOption {
  PlacementKind kind = PlacementKind::kStay;
  Location site;                  // == home for kStay
  ActorComputation computation;   // the materialized behaviour
  bool feasible = false;
  Tick finish = 0;                // valid when feasible
  std::optional<ActorPlan> plan;  // valid when feasible

  std::string to_string() const;
};

class MigrationAdvisor {
 public:
  explicit MigrationAdvisor(CostModel phi,
                            PlanningPolicy policy = PlanningPolicy::kAsap)
      : phi_(std::move(phi)), policy_(policy) {}

  /// Materializes one candidate behaviour.
  ActorComputation materialize(const WorkSpec& spec, PlacementKind kind,
                               Location site) const;

  /// Evaluates every candidate: stay home, plus migrate-once and
  /// migrate-and-return for each listed site. Options are returned ranked —
  /// feasible ones first by finish time, infeasible ones after.
  std::vector<PlacementOption> evaluate(const ResourceSet& supply,
                                        const WorkSpec& spec,
                                        const std::vector<Location>& sites) const;

  /// The winning option, if any course of action meets the deadline.
  std::optional<PlacementOption> best(const ResourceSet& supply, const WorkSpec& spec,
                                      const std::vector<Location>& sites) const;

 private:
  PlacementOption assess(const ResourceSet& supply, const WorkSpec& spec,
                         PlacementKind kind, Location site) const;

  CostModel phi_;
  PlanningPolicy policy_;
};

}  // namespace rota
