// Migration choice reasoning — the paper's second future-work direction.
//
// §VI: "an actor could continue to execute at its current location or
// migrate elsewhere, carry out part of its computation, and then return and
// resume. Comparing these choices presents some interesting challenges."
// The advisor makes the comparison mechanical: given work expressed as
// location-independent chunks, it materializes the candidate behaviours —
// stay home, migrate once, or migrate / work / return — runs each through
// the planner, and ranks the feasible ones by earliest finish. This is the
// paper's "computations choosing between various courses of action, allowing
// them to avoid attempting infeasible pursuits" made executable.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "rota/computation/cost_model.hpp"
#include "rota/computation/requirement.hpp"
#include "rota/plan/kernel.hpp"

namespace rota {

/// Location-independent description of the work an actor must get done:
/// evaluation chunks (in order) plus the deadline constraint.
struct WorkSpec {
  std::string actor;
  Location home;
  std::vector<std::int64_t> chunk_weights;  // evaluate() weights, in order
  std::int64_t state_size = 1;              // migration payload
  Tick earliest_start = 0;
  Tick deadline = 0;

  bool operator==(const WorkSpec&) const = default;
};

enum class PlacementKind {
  kStay,              // all chunks at home
  kMigrateOnce,       // hop to a site, finish there
  kMigrateAndReturn,  // hop, run all but the last chunk, hop back, finish home
};

std::string placement_kind_name(PlacementKind k);

struct PlacementOption {
  PlacementKind kind = PlacementKind::kStay;
  Location site;                  // == home for kStay
  ActorComputation computation;   // the materialized behaviour
  bool feasible = false;
  Tick finish = 0;                // valid when feasible
  std::optional<ActorPlan> plan;  // valid when feasible

  std::string to_string() const;
};

/// What the advisor knows about one candidate site. With oracle access the
/// supply is the site's true availability; in the cluster layer it is the
/// site's last gossiped digest — conservative but stale, which is why claims
/// re-validate against live state (see rota/cluster/).
struct SiteSupply {
  Location site;
  ResourceSet supply;

  bool operator==(const SiteSupply&) const = default;
};

class MigrationAdvisor {
 public:
  explicit MigrationAdvisor(CostModel phi,
                            PlanningPolicy policy = PlanningPolicy::kAsap)
      : phi_(std::move(phi)), kernel_(policy) {}

  /// Materializes one candidate behaviour.
  ActorComputation materialize(const WorkSpec& spec, PlacementKind kind,
                               Location site) const;

  /// The one cost helper behind every option-evaluation path: materializes
  /// the candidate, derives its requirement, and speculates it through the
  /// planning kernel against the snapshot (a live residual, an oracle
  /// availability, or a gossiped digest — the scoring is agnostic).
  PlacementOption assess(const FeasibilitySnapshot& snapshot, const WorkSpec& spec,
                         PlacementKind kind, Location site) const;

  /// Convenience overload over a bare availability.
  PlacementOption assess(const ResourceSet& supply, const WorkSpec& spec,
                         PlacementKind kind, Location site) const {
    return assess(FeasibilitySnapshot::over(supply), spec, kind, site);
  }

  /// Evaluates every candidate: stay home, plus migrate-once and
  /// migrate-and-return for each listed site. Options are returned ranked —
  /// feasible ones first by finish time, infeasible ones after; ties are
  /// deterministic (site id, then kind).
  std::vector<PlacementOption> evaluate(const ResourceSet& supply,
                                        const WorkSpec& spec,
                                        const std::vector<Location>& sites) const;

  /// Digest-driven evaluation: each remote candidate is assessed against the
  /// union of the home view and that site's (possibly stale) digest; the
  /// stay-home option against the home view alone. Same ranking rules.
  std::vector<PlacementOption> evaluate(const ResourceSet& home_supply,
                                        const WorkSpec& spec,
                                        const std::vector<SiteSupply>& sites) const;

  /// The winning option, if any course of action meets the deadline.
  std::optional<PlacementOption> best(const ResourceSet& supply, const WorkSpec& spec,
                                      const std::vector<Location>& sites) const;

  /// Ranking shared by both evaluate overloads: feasible before infeasible,
  /// then earliest finish, then site id, then kind — a total order, so equal
  /// inputs always rank identically.
  static void rank(std::vector<PlacementOption>& options);

 private:
  CostModel phi_;
  PlanningKernel kernel_;
};

}  // namespace rota
