// Sets of time ticks represented as sorted disjoint intervals.
//
// The paper permits set operations (∪, ∩, \) on time intervals; the result of
// such an operation is in general a union of disjoint intervals, which this
// class represents canonically (sorted, disjoint, non-touching, non-empty
// members).
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "rota/time/interval.hpp"

namespace rota {

class IntervalSet {
 public:
  IntervalSet() = default;
  explicit IntervalSet(const TimeInterval& iv) { insert(iv); }
  IntervalSet(std::initializer_list<TimeInterval> ivs) {
    for (const auto& iv : ivs) insert(iv);
  }

  /// Adds the ticks of `iv`, coalescing with existing members.
  void insert(const TimeInterval& iv);

  bool empty() const { return intervals_.empty(); }
  bool contains(Tick t) const;
  /// True when every tick of `iv` is in the set.
  bool covers(const TimeInterval& iv) const;
  /// Total number of ticks in the set.
  Tick measure() const;
  /// Smallest interval containing the whole set; empty if the set is empty.
  TimeInterval hull() const;

  IntervalSet unioned(const IntervalSet& other) const;
  IntervalSet intersected(const IntervalSet& other) const;
  IntervalSet intersected(const TimeInterval& window) const;
  /// Relative complement: ticks in this set but not in `other`.
  IntervalSet subtracted(const IntervalSet& other) const;

  const std::vector<TimeInterval>& intervals() const { return intervals_; }

  bool operator==(const IntervalSet&) const = default;

  std::string to_string() const;

 private:
  std::vector<TimeInterval> intervals_;  // canonical: sorted, disjoint, gaps > 0
};

std::ostream& operator<<(std::ostream& os, const IntervalSet& s);

}  // namespace rota
