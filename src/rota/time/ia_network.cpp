#include "rota/time/ia_network.hpp"

#include <algorithm>
#include <deque>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace rota {

IaNetwork::IaNetwork(std::size_t n) : n_(n), edges_(n * n, AllenRelationSet::all()) {
  if (n == 0) throw std::invalid_argument("IaNetwork requires at least one variable");
  for (std::size_t i = 0; i < n_; ++i) {
    edge(i, i) = AllenRelationSet(AllenRelation::kEquals);
  }
}

AllenRelationSet& IaNetwork::edge(std::size_t i, std::size_t j) {
  return edges_[i * n_ + j];
}
const AllenRelationSet& IaNetwork::edge(std::size_t i, std::size_t j) const {
  return edges_[i * n_ + j];
}

void IaNetwork::constrain(std::size_t i, std::size_t j, AllenRelationSet rel) {
  if (i >= n_ || j >= n_) throw std::out_of_range("IaNetwork::constrain index");
  edge(i, j) = edge(i, j) & rel;
  edge(j, i) = edge(j, i) & rel.inverted();
}

AllenRelationSet IaNetwork::relation(std::size_t i, std::size_t j) const {
  if (i >= n_ || j >= n_) throw std::out_of_range("IaNetwork::relation index");
  return edge(i, j);
}

bool IaNetwork::propagate() {
  // Queue-based PC-2 style closure: when an edge tightens, re-examine every
  // triangle through it.
  std::deque<std::pair<std::size_t, std::size_t>> queue;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (i != j) queue.emplace_back(i, j);
    }
  }

  auto tighten = [&](std::size_t i, std::size_t j, AllenRelationSet tighter) -> bool {
    const AllenRelationSet updated = edge(i, j) & tighter;
    if (updated == edge(i, j)) return false;
    edge(i, j) = updated;
    edge(j, i) = updated.inverted();
    queue.emplace_back(i, j);
    return true;
  };

  while (!queue.empty()) {
    const auto [i, j] = queue.front();
    queue.pop_front();
    if (edge(i, j).empty()) return false;
    for (std::size_t k = 0; k < n_; ++k) {
      if (k == i || k == j) continue;
      // i—j—k path constrains (i, k); k—i—j path constrains (k, j).
      tighten(i, k, compose(edge(i, j), edge(j, k)));
      tighten(k, j, compose(edge(k, i), edge(i, j)));
      if (edge(i, k).empty() || edge(k, j).empty()) return false;
    }
  }
  return true;
}

bool IaNetwork::arc_consistent() const {
  for (const auto& e : edges_) {
    if (e.empty()) return false;
  }
  return true;
}

bool IaNetwork::solve_scenario() {
  if (!propagate()) return false;
  // Find an undecided edge (|relations| > 1); if none, the network is a
  // consistent atomic scenario (path consistency on atomic IA networks is
  // complete).
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      const AllenRelationSet options = edge(i, j);
      if (options.size() <= 1) continue;
      for (AllenRelation r : options.to_vector()) {
        IaNetwork trial = *this;
        trial.constrain(i, j, r);
        if (trial.solve_scenario()) {
          *this = std::move(trial);
          return true;
        }
      }
      return false;  // every branch failed
    }
  }
  return true;
}

std::optional<std::vector<TimeInterval>> IaNetwork::realize_intervals() const {
  // Endpoint variables: 2i = start of interval i, 2i+1 = its end.
  const std::size_t vars = 2 * n_;

  // Union-find over endpoint equalities.
  std::vector<std::size_t> parent(vars);
  for (std::size_t v = 0; v < vars; ++v) parent[v] = v;
  auto find = [&](std::size_t v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  auto unite = [&](std::size_t a, std::size_t b) { parent[find(a)] = find(b); };

  struct Less {
    std::size_t lo;
    std::size_t hi;
  };
  std::vector<Less> orderings;
  auto less = [&orderings](std::size_t lo, std::size_t hi) {
    orderings.push_back({lo, hi});
  };

  const auto S = [](std::size_t i) { return 2 * i; };
  const auto E = [](std::size_t i) { return 2 * i + 1; };
  for (std::size_t i = 0; i < n_; ++i) less(S(i), E(i));  // non-empty intervals

  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      const AllenRelationSet rel = edge(i, j);
      if (rel.size() != 1) {
        throw std::logic_error("realize_intervals requires an atomic network");
      }
      switch (rel.to_vector().front()) {
        case AllenRelation::kBefore: less(E(i), S(j)); break;
        case AllenRelation::kAfter: less(E(j), S(i)); break;
        case AllenRelation::kMeets: unite(E(i), S(j)); break;
        case AllenRelation::kMetBy: unite(E(j), S(i)); break;
        case AllenRelation::kOverlaps:
          less(S(i), S(j));
          less(S(j), E(i));
          less(E(i), E(j));
          break;
        case AllenRelation::kOverlappedBy:
          less(S(j), S(i));
          less(S(i), E(j));
          less(E(j), E(i));
          break;
        case AllenRelation::kStarts:
          unite(S(i), S(j));
          less(E(i), E(j));
          break;
        case AllenRelation::kStartedBy:
          unite(S(i), S(j));
          less(E(j), E(i));
          break;
        case AllenRelation::kDuring:
          less(S(j), S(i));
          less(E(i), E(j));
          break;
        case AllenRelation::kContains:
          less(S(i), S(j));
          less(E(j), E(i));
          break;
        case AllenRelation::kFinishes:
          unite(E(i), E(j));
          less(S(j), S(i));
          break;
        case AllenRelation::kFinishedBy:
          unite(E(i), E(j));
          less(S(i), S(j));
          break;
        case AllenRelation::kEquals:
          unite(S(i), S(j));
          unite(E(i), E(j));
          break;
      }
    }
  }

  // Longest-path level assignment over representatives (Kahn's algorithm).
  std::vector<std::vector<std::size_t>> succ(vars);
  std::vector<std::size_t> indegree(vars, 0);
  for (const Less& o : orderings) {
    const std::size_t a = find(o.lo), b = find(o.hi);
    if (a == b) return std::nullopt;  // x < x: cyclic
    succ[a].push_back(b);
    ++indegree[b];
  }
  std::vector<Tick> level(vars, 0);
  std::vector<std::size_t> ready;
  std::size_t live = 0;
  for (std::size_t v = 0; v < vars; ++v) {
    if (find(v) != v) continue;
    ++live;
    if (indegree[v] == 0) ready.push_back(v);
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    const std::size_t v = ready.back();
    ready.pop_back();
    ++processed;
    for (std::size_t w : succ[v]) {
      level[w] = std::max(level[w], level[v] + 1);
      if (--indegree[w] == 0) ready.push_back(w);
    }
  }
  if (processed != live) return std::nullopt;  // ordering cycle

  std::vector<TimeInterval> out;
  out.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    out.emplace_back(level[find(S(i))], level[find(E(i))]);
  }
  return out;
}

std::string IaNetwork::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (i == j) continue;
      out << 'I' << i << ' ' << edge(i, j).to_string() << " I" << j << '\n';
    }
  }
  return out.str();
}

}  // namespace rota
