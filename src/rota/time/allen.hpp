// Allen's Interval Algebra (the paper's Table I).
//
// ROTA formalizes relations between the time intervals of resource terms
// using Interval Algebra: seven base relations and their inverses, thirteen
// in all (equals is its own inverse). This module computes the relation
// between two concrete intervals, provides relation sets (disjunctions) and
// the full composition table. The composition table is *derived* at first use
// by enumerating small concrete intervals rather than transcribed from the
// literature, so it is self-verifying against the relation definition.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "rota/time/interval.hpp"

namespace rota {

/// The thirteen Allen relations. Order groups each base relation with its
/// inverse; Equals sits alone.
enum class AllenRelation : std::uint8_t {
  kBefore = 0,        // τ1 < τ2 : τ1 ends strictly before τ2 starts
  kAfter,             // inverse of Before
  kMeets,             // τ2 starts immediately after τ1 ends
  kMetBy,             // inverse of Meets
  kOverlaps,          // proper overlap, τ1 starts first and ends inside τ2
  kOverlappedBy,      // inverse of Overlaps
  kStarts,            // same start, τ1 ends first
  kStartedBy,         // inverse of Starts
  kDuring,            // τ1 strictly inside τ2
  kContains,          // inverse of During
  kFinishes,          // same end, τ1 starts later
  kFinishedBy,        // inverse of Finishes
  kEquals,            // identical endpoints
};

inline constexpr int kNumAllenRelations = 13;

/// All thirteen relations in enum order, for iteration.
constexpr std::array<AllenRelation, kNumAllenRelations> all_allen_relations() {
  return {AllenRelation::kBefore,   AllenRelation::kAfter,
          AllenRelation::kMeets,    AllenRelation::kMetBy,
          AllenRelation::kOverlaps, AllenRelation::kOverlappedBy,
          AllenRelation::kStarts,   AllenRelation::kStartedBy,
          AllenRelation::kDuring,   AllenRelation::kContains,
          AllenRelation::kFinishes, AllenRelation::kFinishedBy,
          AllenRelation::kEquals};
}

/// Computes the unique Allen relation between two non-empty intervals.
/// Throws std::invalid_argument if either interval is empty (the algebra is
/// defined over proper intervals only).
AllenRelation allen_relation(const TimeInterval& a, const TimeInterval& b);

/// The inverse relation: allen_relation(b, a) == inverse(allen_relation(a, b)).
AllenRelation inverse(AllenRelation r);

/// Symbol used in the paper's Table I (ASCII rendering), e.g. "<" for Before.
std::string allen_symbol(AllenRelation r);

/// Human-readable name, e.g. "before".
std::string allen_name(AllenRelation r);

/// Convenience predicates mirroring the paper's vocabulary.
bool before(const TimeInterval& a, const TimeInterval& b);
bool meets(const TimeInterval& a, const TimeInterval& b);
bool overlaps(const TimeInterval& a, const TimeInterval& b);
bool starts(const TimeInterval& a, const TimeInterval& b);
/// "τ1 during τ2" in the *inclusive* sense the paper's domination order uses:
/// every instant of a lies within b (a ⊆ b). Note this is weaker than the
/// strict Allen kDuring relation, which excludes shared endpoints.
bool within(const TimeInterval& a, const TimeInterval& b);
bool finishes(const TimeInterval& a, const TimeInterval& b);

/// A set of Allen relations (a disjunction), the element type of the interval
/// algebra's composition operation and of qualitative constraint networks.
class AllenRelationSet {
 public:
  constexpr AllenRelationSet() = default;
  constexpr explicit AllenRelationSet(AllenRelation r) : bits_(bit(r)) {}

  static constexpr AllenRelationSet none() { return AllenRelationSet(); }
  static constexpr AllenRelationSet all() {
    AllenRelationSet s;
    s.bits_ = (1u << kNumAllenRelations) - 1;
    return s;
  }

  constexpr bool contains(AllenRelation r) const { return (bits_ & bit(r)) != 0; }
  constexpr bool empty() const { return bits_ == 0; }
  constexpr int size() const {
    int n = 0;
    for (std::uint16_t b = bits_; b != 0; b &= (b - 1)) ++n;
    return n;
  }

  constexpr void insert(AllenRelation r) { bits_ |= bit(r); }
  constexpr void erase(AllenRelation r) { bits_ &= static_cast<std::uint16_t>(~bit(r)); }

  constexpr AllenRelationSet operator|(AllenRelationSet o) const {
    AllenRelationSet s;
    s.bits_ = bits_ | o.bits_;
    return s;
  }
  constexpr AllenRelationSet operator&(AllenRelationSet o) const {
    AllenRelationSet s;
    s.bits_ = bits_ & o.bits_;
    return s;
  }
  constexpr bool operator==(const AllenRelationSet&) const = default;

  /// The set of inverses of every member.
  AllenRelationSet inverted() const;

  std::vector<AllenRelation> to_vector() const;
  std::string to_string() const;

  constexpr std::uint16_t raw_bits() const { return bits_; }

 private:
  static constexpr std::uint16_t bit(AllenRelation r) {
    return static_cast<std::uint16_t>(1u << static_cast<unsigned>(r));
  }
  std::uint16_t bits_ = 0;
};

/// Composition r1 ∘ r2: the set of relations possible between A and C given
/// A r1 B and B r2 C. Backed by a table derived by enumeration on first use.
AllenRelationSet compose(AllenRelation r1, AllenRelation r2);

/// Composition lifted to relation sets (union over member compositions).
AllenRelationSet compose(AllenRelationSet s1, AllenRelationSet s2);

std::ostream& operator<<(std::ostream& os, AllenRelation r);
std::ostream& operator<<(std::ostream& os, const AllenRelationSet& s);

}  // namespace rota
