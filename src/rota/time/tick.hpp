// Discrete time base for the ROTA calculus.
//
// The paper's transition rules advance the system by a smallest accountable
// time slice Δt ("In practice, Δt can be defined according to the desired
// control granularity"). We fix Δt = 1 tick and use 64-bit integer ticks so
// that every quantity the logic reasons about is exact.
#pragma once

#include <cstdint>

namespace rota {

/// A point in discrete time. Tick 0 is an arbitrary epoch; negative ticks are
/// legal (useful for relative scheduling in tests).
using Tick = std::int64_t;

/// A rate of resource availability or consumption, in resource units per tick.
using Rate = std::int64_t;

/// An amount of resource: the integral of a Rate over ticks.
using Quantity = std::int64_t;

/// Sentinel for "unbounded future" horizons. Not a valid interval endpoint;
/// interval endpoints must be finite.
inline constexpr Tick kTickMax = INT64_MAX / 4;

}  // namespace rota
