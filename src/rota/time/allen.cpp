#include "rota/time/allen.hpp"

#include <array>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rota {

AllenRelation allen_relation(const TimeInterval& a, const TimeInterval& b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("Allen relations are defined over non-empty intervals");
  }
  const Tick as = a.start(), ae = a.end(), bs = b.start(), be = b.end();
  if (ae < bs) return AllenRelation::kBefore;
  if (be < as) return AllenRelation::kAfter;
  if (ae == bs) return AllenRelation::kMeets;
  if (be == as) return AllenRelation::kMetBy;
  if (as == bs && ae == be) return AllenRelation::kEquals;
  if (as == bs) return ae < be ? AllenRelation::kStarts : AllenRelation::kStartedBy;
  if (ae == be) return as > bs ? AllenRelation::kFinishes : AllenRelation::kFinishedBy;
  if (as > bs && ae < be) return AllenRelation::kDuring;
  if (as < bs && ae > be) return AllenRelation::kContains;
  if (as < bs) return AllenRelation::kOverlaps;  // as < bs < ae < be
  return AllenRelation::kOverlappedBy;           // bs < as < be < ae
}

AllenRelation inverse(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore: return AllenRelation::kAfter;
    case AllenRelation::kAfter: return AllenRelation::kBefore;
    case AllenRelation::kMeets: return AllenRelation::kMetBy;
    case AllenRelation::kMetBy: return AllenRelation::kMeets;
    case AllenRelation::kOverlaps: return AllenRelation::kOverlappedBy;
    case AllenRelation::kOverlappedBy: return AllenRelation::kOverlaps;
    case AllenRelation::kStarts: return AllenRelation::kStartedBy;
    case AllenRelation::kStartedBy: return AllenRelation::kStarts;
    case AllenRelation::kDuring: return AllenRelation::kContains;
    case AllenRelation::kContains: return AllenRelation::kDuring;
    case AllenRelation::kFinishes: return AllenRelation::kFinishedBy;
    case AllenRelation::kFinishedBy: return AllenRelation::kFinishes;
    case AllenRelation::kEquals: return AllenRelation::kEquals;
  }
  throw std::invalid_argument("invalid AllenRelation");
}

std::string allen_symbol(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore: return "<";
    case AllenRelation::kAfter: return ">";
    case AllenRelation::kMeets: return "m";
    case AllenRelation::kMetBy: return "mi";
    case AllenRelation::kOverlaps: return "o";
    case AllenRelation::kOverlappedBy: return "oi";
    case AllenRelation::kStarts: return "s";
    case AllenRelation::kStartedBy: return "si";
    case AllenRelation::kDuring: return "d";
    case AllenRelation::kContains: return "di";
    case AllenRelation::kFinishes: return "f";
    case AllenRelation::kFinishedBy: return "fi";
    case AllenRelation::kEquals: return "=";
  }
  throw std::invalid_argument("invalid AllenRelation");
}

std::string allen_name(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore: return "before";
    case AllenRelation::kAfter: return "after";
    case AllenRelation::kMeets: return "meets";
    case AllenRelation::kMetBy: return "met-by";
    case AllenRelation::kOverlaps: return "overlaps";
    case AllenRelation::kOverlappedBy: return "overlapped-by";
    case AllenRelation::kStarts: return "starts";
    case AllenRelation::kStartedBy: return "started-by";
    case AllenRelation::kDuring: return "during";
    case AllenRelation::kContains: return "contains";
    case AllenRelation::kFinishes: return "finishes";
    case AllenRelation::kFinishedBy: return "finished-by";
    case AllenRelation::kEquals: return "equals";
  }
  throw std::invalid_argument("invalid AllenRelation");
}

bool before(const TimeInterval& a, const TimeInterval& b) {
  return allen_relation(a, b) == AllenRelation::kBefore;
}
bool meets(const TimeInterval& a, const TimeInterval& b) {
  return allen_relation(a, b) == AllenRelation::kMeets;
}
bool overlaps(const TimeInterval& a, const TimeInterval& b) {
  return allen_relation(a, b) == AllenRelation::kOverlaps;
}
bool starts(const TimeInterval& a, const TimeInterval& b) {
  const auto r = allen_relation(a, b);
  return r == AllenRelation::kStarts || r == AllenRelation::kEquals;
}
bool within(const TimeInterval& a, const TimeInterval& b) { return b.covers(a); }
bool finishes(const TimeInterval& a, const TimeInterval& b) {
  const auto r = allen_relation(a, b);
  return r == AllenRelation::kFinishes || r == AllenRelation::kEquals;
}

AllenRelationSet AllenRelationSet::inverted() const {
  AllenRelationSet out;
  for (AllenRelation r : all_allen_relations()) {
    if (contains(r)) out.insert(inverse(r));
  }
  return out;
}

std::vector<AllenRelation> AllenRelationSet::to_vector() const {
  std::vector<AllenRelation> out;
  for (AllenRelation r : all_allen_relations()) {
    if (contains(r)) out.push_back(r);
  }
  return out;
}

std::string AllenRelationSet::to_string() const {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (AllenRelation r : to_vector()) {
    if (!first) out << ' ';
    out << allen_symbol(r);
    first = false;
  }
  out << '}';
  return out.str();
}

namespace {

// The composition table is derived rather than transcribed: over discrete
// endpoints, every Allen relation between intervals with endpoints in a small
// window is realizable, and composition is determined by the relation pattern
// alone (relations are qualitative). Enumerating all interval triples with
// endpoints in [0, W) therefore discovers the complete table, provided W is
// large enough to realize every (r1, r2) pair; W = 10 gives each interval
// room for the four distinct endpoints plus strict gaps that the most
// demanding compositions need. The result is verified structurally in tests
// (identity row/column, inverse symmetry, known entries).
constexpr Tick kEnumWindow = 10;

using CompositionTable =
    std::array<std::array<AllenRelationSet, kNumAllenRelations>, kNumAllenRelations>;

CompositionTable derive_composition_table() {
  std::vector<TimeInterval> intervals;
  for (Tick s = 0; s < kEnumWindow; ++s) {
    for (Tick e = s + 1; e <= kEnumWindow; ++e) intervals.emplace_back(s, e);
  }

  CompositionTable table{};  // all cells start empty
  for (const auto& a : intervals) {
    for (const auto& b : intervals) {
      const auto r1 = static_cast<unsigned>(allen_relation(a, b));
      for (const auto& c : intervals) {
        const auto r2 = static_cast<unsigned>(allen_relation(b, c));
        table[r1][r2].insert(allen_relation(a, c));
      }
    }
  }
  return table;
}

const CompositionTable& composition_table() {
  static const CompositionTable table = derive_composition_table();
  return table;
}

}  // namespace

AllenRelationSet compose(AllenRelation r1, AllenRelation r2) {
  return composition_table()[static_cast<unsigned>(r1)][static_cast<unsigned>(r2)];
}

AllenRelationSet compose(AllenRelationSet s1, AllenRelationSet s2) {
  AllenRelationSet out;
  for (AllenRelation a : s1.to_vector()) {
    for (AllenRelation b : s2.to_vector()) {
      out = out | compose(a, b);
    }
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, AllenRelation r) {
  return os << allen_name(r);
}

std::ostream& operator<<(std::ostream& os, const AllenRelationSet& s) {
  return os << s.to_string();
}

}  // namespace rota
