#include "rota/time/interval.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rota {

TimeInterval TimeInterval::hull_union(const TimeInterval& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  // Touching (meets) or overlapping intervals coalesce into one.
  if (start_ > other.end_ || other.start_ > end_) {
    throw std::invalid_argument("hull_union of disjoint intervals: " + to_string() +
                                " and " + other.to_string());
  }
  return TimeInterval(start_ < other.start_ ? start_ : other.start_,
                      end_ > other.end_ ? end_ : other.end_);
}

std::string TimeInterval::to_string() const {
  if (empty()) return "[)";
  std::ostringstream out;
  out << '[' << start_ << ", " << end_ << ')';
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const TimeInterval& iv) {
  return os << iv.to_string();
}

}  // namespace rota
