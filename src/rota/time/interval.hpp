// Time intervals (τ in the paper).
//
// The paper writes an interval as (t_start, t_end). We realize intervals as
// half-open ranges [start, end) over discrete ticks: half-openness makes the
// "meets" relation of the interval algebra coincide with seamless resource
// aggregation (a supply on [0,3) followed by one on [3,5) covers [0,5) with
// no gap and no double-counted instant).
#pragma once

#include <compare>
#include <iosfwd>
#include <string>

#include "rota/time/tick.hpp"

namespace rota {

class TimeInterval {
 public:
  /// The empty interval (canonically [0, 0)).
  constexpr TimeInterval() = default;

  /// Constructs [start, end). If end <= start the interval is empty and is
  /// canonicalized to [0, 0) so that all empty intervals compare equal.
  constexpr TimeInterval(Tick start, Tick end)
      : start_(end <= start ? 0 : start), end_(end <= start ? 0 : end) {}

  constexpr Tick start() const { return start_; }
  constexpr Tick end() const { return end_; }
  constexpr bool empty() const { return start_ == end_; }
  constexpr Tick length() const { return end_ - start_; }

  constexpr bool contains(Tick t) const { return start_ <= t && t < end_; }
  /// True when `other` lies entirely inside this interval (inclusive ends).
  constexpr bool covers(const TimeInterval& other) const {
    return other.empty() || (start_ <= other.start_ && other.end_ <= end_);
  }
  constexpr bool intersects(const TimeInterval& other) const {
    return start_ < other.end_ && other.start_ < end_;
  }

  /// Set intersection; empty if disjoint.
  constexpr TimeInterval intersection(const TimeInterval& other) const {
    const Tick s = start_ > other.start_ ? start_ : other.start_;
    const Tick e = end_ < other.end_ ? end_ : other.end_;
    return TimeInterval(s, e);
  }

  /// Union when the two intervals touch or overlap; throws otherwise (the
  /// union of disjoint intervals is not an interval — use IntervalSet, or
  /// hull_with when covering the gap is intended).
  TimeInterval hull_union(const TimeInterval& other) const;

  /// Convex hull: the smallest interval containing both. Total — disjoint
  /// inputs are legal and the gap between them is covered; the empty
  /// interval is the identity.
  constexpr TimeInterval hull_with(const TimeInterval& other) const {
    if (empty()) return other;
    if (other.empty()) return *this;
    return TimeInterval(start_ < other.start_ ? start_ : other.start_,
                        end_ > other.end_ ? end_ : other.end_);
  }

  /// Translate by dt ticks.
  constexpr TimeInterval shifted(Tick dt) const {
    return empty() ? TimeInterval() : TimeInterval(start_ + dt, end_ + dt);
  }

  friend constexpr auto operator<=>(const TimeInterval&, const TimeInterval&) = default;

  /// "[start, end)" or "∅".
  std::string to_string() const;

 private:
  Tick start_ = 0;
  Tick end_ = 0;
};

std::ostream& operator<<(std::ostream& os, const TimeInterval& iv);

}  // namespace rota
