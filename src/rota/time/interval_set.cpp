#include "rota/time/interval_set.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace rota {

void IntervalSet::insert(const TimeInterval& iv) {
  if (iv.empty()) return;
  // Find the insertion window: all members that touch or overlap iv coalesce.
  Tick s = iv.start(), e = iv.end();
  std::vector<TimeInterval> merged;
  merged.reserve(intervals_.size() + 1);
  bool placed = false;
  for (const auto& cur : intervals_) {
    if (cur.end() < s) {
      merged.push_back(cur);
    } else if (cur.start() > e) {
      if (!placed) {
        merged.emplace_back(s, e);
        placed = true;
      }
      merged.push_back(cur);
    } else {
      s = std::min(s, cur.start());
      e = std::max(e, cur.end());
    }
  }
  if (!placed) merged.emplace_back(s, e);
  intervals_ = std::move(merged);
}

bool IntervalSet::contains(Tick t) const {
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](Tick v, const TimeInterval& iv) { return v < iv.start(); });
  if (it == intervals_.begin()) return false;
  return std::prev(it)->contains(t);
}

bool IntervalSet::covers(const TimeInterval& iv) const {
  if (iv.empty()) return true;
  for (const auto& cur : intervals_) {
    if (cur.covers(iv)) return true;
  }
  return false;
}

Tick IntervalSet::measure() const {
  Tick total = 0;
  for (const auto& iv : intervals_) total += iv.length();
  return total;
}

TimeInterval IntervalSet::hull() const {
  if (intervals_.empty()) return TimeInterval();
  return intervals_.front().hull_with(intervals_.back());
}

IntervalSet IntervalSet::unioned(const IntervalSet& other) const {
  IntervalSet out = *this;
  for (const auto& iv : other.intervals_) out.insert(iv);
  return out;
}

IntervalSet IntervalSet::intersected(const IntervalSet& other) const {
  IntervalSet out;
  auto a = intervals_.begin();
  auto b = other.intervals_.begin();
  while (a != intervals_.end() && b != other.intervals_.end()) {
    const TimeInterval x = a->intersection(*b);
    if (!x.empty()) out.intervals_.push_back(x);  // order preserved, disjoint
    if (a->end() < b->end()) {
      ++a;
    } else {
      ++b;
    }
  }
  return out;
}

IntervalSet IntervalSet::intersected(const TimeInterval& window) const {
  return intersected(IntervalSet(window));
}

IntervalSet IntervalSet::subtracted(const IntervalSet& other) const {
  IntervalSet out;
  auto b = other.intervals_.begin();
  for (const auto& a : intervals_) {
    Tick cursor = a.start();
    while (b != other.intervals_.end() && b->end() <= cursor) ++b;
    auto cut = b;
    while (cut != other.intervals_.end() && cut->start() < a.end()) {
      if (cut->start() > cursor) out.intervals_.emplace_back(cursor, cut->start());
      cursor = std::max(cursor, cut->end());
      if (cut->end() >= a.end()) break;
      ++cut;
    }
    if (cursor < a.end()) out.intervals_.emplace_back(cursor, a.end());
  }
  return out;
}

std::string IntervalSet::to_string() const {
  std::ostringstream out;
  out << '{';
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    if (i != 0) out << ", ";
    out << intervals_[i].to_string();
  }
  out << '}';
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& s) {
  return os << s.to_string();
}

}  // namespace rota
