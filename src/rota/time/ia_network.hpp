// Qualitative constraint networks over Allen's Interval Algebra.
//
// ROTA leans on Interval Algebra [Allen 1983] to formalize relations between
// the time intervals of resource terms. Reasoning with *partially known*
// interval relations — "requirement A must run before B, both during supply
// window W" — is the constraint-network side of that algebra: nodes are
// intervals, edges carry disjunctions of the thirteen base relations, and
// path consistency (the algebraic closure algorithm) prunes impossible
// relations via the composition table.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "rota/time/allen.hpp"

namespace rota {

class IaNetwork {
 public:
  /// A network over `n` interval variables; all edges start fully unknown
  /// (the universal relation set).
  explicit IaNetwork(std::size_t n);

  std::size_t size() const { return n_; }

  /// Asserts that interval i relates to interval j by some member of `rel`
  /// (intersected with whatever is already known). The inverse edge is kept
  /// consistent automatically.
  void constrain(std::size_t i, std::size_t j, AllenRelationSet rel);
  void constrain(std::size_t i, std::size_t j, AllenRelation rel) {
    constrain(i, j, AllenRelationSet(rel));
  }

  AllenRelationSet relation(std::size_t i, std::size_t j) const;

  /// Runs path consistency (Allen's algorithm): repeatedly tightens
  /// R(i,j) ← R(i,j) ∩ (R(i,k) ∘ R(k,j)) to a fixpoint.
  /// Returns false iff some edge became empty (the network is inconsistent).
  /// Note path consistency is complete for pointizable subclasses but only
  /// a necessary condition in general — exactly Allen's original setting.
  bool propagate();

  /// True when no edge is empty. (Meaningful after propagate().)
  bool arc_consistent() const;

  /// Tries to find concrete intervals realizing the network by backtracking
  /// over base relations with propagation; intended for small networks
  /// (search is exponential in the worst case). On success each edge holds a
  /// single base relation. Returns false if no consistent scenario exists.
  bool solve_scenario();

  /// For an *atomic* network (every edge a single base relation — e.g. after
  /// solve_scenario()), constructs concrete integer intervals realizing
  /// every relation: endpoint equalities are unified, strict orderings
  /// become a DAG, and levels are assigned by longest path. Returns nullopt
  /// when the endpoint ordering is cyclic (the atomic network lied about
  /// consistency); throws std::logic_error if some edge is not atomic.
  std::optional<std::vector<TimeInterval>> realize_intervals() const;

  std::string to_string() const;

 private:
  AllenRelationSet& edge(std::size_t i, std::size_t j);
  const AllenRelationSet& edge(std::size_t i, std::size_t j) const;

  std::size_t n_;
  std::vector<AllenRelationSet> edges_;  // row-major n×n
};

}  // namespace rota
