// FaultSchedule: a deterministic timeline of hostile-conditions events.
//
// The cluster sim has always had crash/restart/partition/heal hooks; this
// module gives them a first-class, seeded, DSL-round-trippable value:
//
//   * a FaultSchedule is an ordered list of FaultEvents — the same event
//     applied to two identically-seeded ClusterSims produces byte-identical
//     decision logs (the `cluster` fuzz family replays every schedule twice
//     and pins exactly that);
//   * make_fault_schedule() draws a well-formed schedule from a seeded Rng
//     and a FaultProfile (fault intensity knobs), so hostile sweeps are as
//     reproducible as the workloads they run against;
//   * to_scenario_faults() / from_scenario_faults() translate to the
//     scenario DSL's `fault ...` statements (see rota/io/scenario.hpp), so a
//     fuzz-found schedule can be written down, committed as a regression
//     scenario, and parsed back equal.
//
// RetryPolicy lives here too: the closed-loop client knob shared by the
// ClusterSim retry engine, the workload generator's ClosedLoopClient, and
// the daemon retry-storm tests. This header is a leaf — it depends only on
// ticks and the Rng — so cluster, workload and io can all include it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rota/time/tick.hpp"
#include "rota/util/rng.hpp"

namespace rota {
struct ScenarioFault;  // rota/io/scenario.hpp
}

namespace rota::faults {

struct FaultEvent {
  enum class Kind { kCrash, kRestart, kPartition, kHeal };

  Kind kind = Kind::kCrash;
  Tick at = 0;
  std::uint32_t a = 0;    // the node (crash/restart) or one endpoint
  std::uint32_t b = 0;    // the other endpoint (partition/heal only)
  bool recover = false;   // restart only: replay the audit log?

  bool operator==(const FaultEvent&) const = default;

  std::string to_string() const;
};

/// An ordered fault timeline. Events keep insertion order (ClusterSim
/// stable-sorts by tick at run time, so same-tick events apply in schedule
/// order — crash-then-restart at one tick means the node bounces within the
/// tick). Equality is structural, which is what the DSL round trip pins.
class FaultSchedule {
 public:
  void crash(Tick at, std::uint32_t node);
  void restart(Tick at, std::uint32_t node, bool recover);
  void partition(Tick at, std::uint32_t a, std::uint32_t b);
  void heal(Tick at, std::uint32_t a, std::uint32_t b);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Structural sanity against a cluster of `nodes` members. Throws
  /// std::invalid_argument on: an endpoint >= nodes, a self-partition, a
  /// negative tick, a restart with no earlier un-restarted crash of the same
  /// node, or a second crash of a node that was never restarted. (ClusterSim
  /// would silently ignore the nonsensical events; validating keeps
  /// generated and hand-written schedules honest instead.)
  void validate(std::size_t nodes) const;

  /// One event per line, in schedule order — the debugging/log form.
  std::string to_string() const;

  bool operator==(const FaultSchedule&) const = default;

 private:
  std::vector<FaultEvent> events_;
};

/// Fault intensity knobs for make_fault_schedule(). The defaults are a
/// moderate storm; zero the rates for a fault-free schedule.
struct FaultProfile {
  double crash_rate = 0.5;         // P(a given node crashes at all)
  double restart_probability = 0.9;  // P(a crash gets a restart)
  double recover_probability = 0.6;  // P(that restart replays the audit log)
  Tick min_outage = 2;             // restart delay drawn from [min, max];
                                   // 0 allows a same-tick crash→restart bounce
  Tick max_outage = 12;
  double partition_rate = 0.4;     // P(a given node pair gets partitioned)
  Tick min_cut = 3;                // heal delay drawn from [min, max]
  Tick max_cut = 16;
  double heal_probability = 0.8;   // P(a partition heals before the horizon)
};

/// Draws a well-formed schedule (validate(nodes) passes) over [0, horizon):
/// per-node crash→restart chains and per-pair partition→heal windows, every
/// tick and coin from `rng` — one seed, one schedule.
FaultSchedule make_fault_schedule(util::Rng& rng, std::size_t nodes,
                                  Tick horizon, const FaultProfile& profile);

/// Closed-loop client retry behaviour: a rejected/shed submission is retried
/// after a capped exponential backoff plus uniform jitter, up to
/// max_attempts total submissions and never past the job's deadline.
struct RetryPolicy {
  std::size_t max_attempts = 3;  // total submissions, the original included
  Tick backoff_base = 1;         // first retry delay; doubles per attempt
  Tick backoff_cap = 8;
  Tick jitter = 2;               // extra uniform [0, jitter] per retry

  bool operator==(const RetryPolicy&) const = default;
};

/// When the closed loop resubmits after its `attempts_so_far`-th submission
/// was rejected at `now`: now + 1 + min(cap, base·2^(attempts-1)) + U[0,
/// jitter], or nullopt when the attempt budget is spent or the resubmission
/// would land at/after the deadline (a dead-on-arrival retry). The +1 keeps
/// every retry at least one tick after the rejection, so a sim can inject it
/// on a later tick. All randomness comes from the caller's `rng`.
std::optional<Tick> retry_at(const RetryPolicy& policy,
                             std::size_t attempts_so_far, Tick now,
                             Tick deadline, util::Rng& rng);

/// DSL bridge: the schedule as scenario `fault` statements, node indices
/// mapped through `node_names` (scenario declaration order). Throws
/// std::invalid_argument when an event references an index without a name.
std::vector<ScenarioFault> to_scenario_faults(
    const FaultSchedule& schedule, const std::vector<std::string>& node_names);

/// The inverse: scenario statements back to an index-based schedule. Throws
/// std::invalid_argument on an unknown node name or fault kind.
FaultSchedule from_scenario_faults(const std::vector<ScenarioFault>& faults,
                                   const std::vector<std::string>& node_names);

}  // namespace rota::faults
