#include "rota/faults/schedule.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "rota/io/scenario.hpp"

namespace rota::faults {

namespace {

const char* kind_word(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kCrash: return "crash";
    case FaultEvent::Kind::kRestart: return "restart";
    case FaultEvent::Kind::kPartition: return "partition";
    case FaultEvent::Kind::kHeal: return "heal";
  }
  throw std::invalid_argument("invalid FaultEvent::Kind");
}

}  // namespace

std::string FaultEvent::to_string() const {
  std::ostringstream out;
  out << kind_word(kind) << " n" << a;
  if (kind == Kind::kPartition || kind == Kind::kHeal) out << "|n" << b;
  out << " at " << at;
  if (kind == Kind::kRestart) out << (recover ? " recover" : " fresh");
  return out.str();
}

void FaultSchedule::crash(Tick at, std::uint32_t node) {
  events_.push_back({FaultEvent::Kind::kCrash, at, node, node, false});
}

void FaultSchedule::restart(Tick at, std::uint32_t node, bool recover) {
  events_.push_back({FaultEvent::Kind::kRestart, at, node, node, recover});
}

void FaultSchedule::partition(Tick at, std::uint32_t a, std::uint32_t b) {
  events_.push_back({FaultEvent::Kind::kPartition, at, a, b, false});
}

void FaultSchedule::heal(Tick at, std::uint32_t a, std::uint32_t b) {
  events_.push_back({FaultEvent::Kind::kHeal, at, a, b, false});
}

void FaultSchedule::validate(std::size_t nodes) const {
  // Replay the crash/restart chains in schedule order, ticks taken as the
  // sim takes them (stable sort by tick keeps same-tick schedule order).
  std::vector<FaultEvent> ordered = events_;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.at < y.at;
                   });
  std::vector<bool> down(nodes, false);
  for (const FaultEvent& e : ordered) {
    if (e.at < 0) {
      throw std::invalid_argument("fault scheduled at negative tick: " +
                                  e.to_string());
    }
    if (e.a >= nodes || e.b >= nodes) {
      throw std::invalid_argument("fault references node out of range: " +
                                  e.to_string());
    }
    switch (e.kind) {
      case FaultEvent::Kind::kCrash:
        if (down[e.a]) {
          throw std::invalid_argument("crash of an already-down node: " +
                                      e.to_string());
        }
        down[e.a] = true;
        break;
      case FaultEvent::Kind::kRestart:
        if (!down[e.a]) {
          throw std::invalid_argument("restart without a preceding crash: " +
                                      e.to_string());
        }
        down[e.a] = false;
        break;
      case FaultEvent::Kind::kPartition:
      case FaultEvent::Kind::kHeal:
        if (e.a == e.b) {
          throw std::invalid_argument("partition needs two distinct nodes: " +
                                      e.to_string());
        }
        break;
    }
  }
}

std::string FaultSchedule::to_string() const {
  std::ostringstream out;
  for (const FaultEvent& e : events_) out << e.to_string() << '\n';
  return out.str();
}

FaultSchedule make_fault_schedule(util::Rng& rng, std::size_t nodes,
                                  Tick horizon, const FaultProfile& profile) {
  FaultSchedule schedule;
  if (nodes == 0 || horizon < 2) return schedule;

  // Per-node crash→restart chains. The restart may land past the horizon —
  // an unrecovered outage as far as the run is concerned, but the event
  // round-trips through the DSL like any other.
  for (std::uint32_t n = 0; n < nodes; ++n) {
    if (profile.crash_rate <= 0.0 || !rng.chance(profile.crash_rate)) continue;
    const Tick at = rng.uniform(0, horizon - 2);
    schedule.crash(at, n);
    if (!rng.chance(profile.restart_probability)) continue;
    // A zero-tick outage is legal: crash-then-restart within one tick (the
    // sim applies same-tick events in schedule order) — the bounce that
    // exercises the admitted-the-tick-of-a-crash corner of loss marking.
    const Tick lo_outage = std::max<Tick>(0, profile.min_outage);
    const Tick outage =
        rng.uniform(lo_outage, std::max(lo_outage, profile.max_outage));
    schedule.restart(at + outage, n, rng.chance(profile.recover_probability));
  }

  // Per-pair partition→heal windows, pairs walked in a fixed order so the
  // draw sequence is a function of (seed, nodes) alone.
  for (std::uint32_t a = 0; a < nodes; ++a) {
    for (std::uint32_t b = a + 1; b < nodes; ++b) {
      if (profile.partition_rate <= 0.0 || !rng.chance(profile.partition_rate)) {
        continue;
      }
      const Tick at = rng.uniform(0, horizon - 2);
      schedule.partition(at, a, b);
      if (!rng.chance(profile.heal_probability)) continue;
      // A zero-tick cut still purges the pair's in-flight traffic — a blip.
      const Tick lo_cut = std::max<Tick>(0, profile.min_cut);
      const Tick cut = rng.uniform(lo_cut, std::max(lo_cut, profile.max_cut));
      schedule.heal(at + cut, a, b);
    }
  }
  return schedule;
}

std::optional<Tick> retry_at(const RetryPolicy& policy,
                             std::size_t attempts_so_far, Tick now,
                             Tick deadline, util::Rng& rng) {
  if (attempts_so_far >= policy.max_attempts) return std::nullopt;
  Tick backoff = policy.backoff_base;
  for (std::size_t i = 1; i < attempts_so_far && backoff < policy.backoff_cap;
       ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, policy.backoff_cap);
  Tick delay = 1 + backoff;
  if (policy.jitter > 0) delay += rng.uniform(0, policy.jitter);
  const Tick t = now + delay;
  if (t >= deadline) return std::nullopt;
  return t;
}

std::vector<ScenarioFault> to_scenario_faults(
    const FaultSchedule& schedule, const std::vector<std::string>& node_names) {
  const auto name_of = [&](std::uint32_t n) -> const std::string& {
    if (n >= node_names.size()) {
      throw std::invalid_argument(
          "fault references node index " + std::to_string(n) + " but only " +
          std::to_string(node_names.size()) + " names were given");
    }
    return node_names[n];
  };
  std::vector<ScenarioFault> out;
  out.reserve(schedule.size());
  for (const FaultEvent& e : schedule.events()) {
    ScenarioFault f;
    f.kind = kind_word(e.kind);
    f.a = name_of(e.a);
    if (e.kind == FaultEvent::Kind::kPartition ||
        e.kind == FaultEvent::Kind::kHeal) {
      f.b = name_of(e.b);
    }
    f.at = e.at;
    f.recover = e.recover;
    out.push_back(std::move(f));
  }
  return out;
}

FaultSchedule from_scenario_faults(const std::vector<ScenarioFault>& faults,
                                   const std::vector<std::string>& node_names) {
  std::map<std::string, std::uint32_t> by_name;
  for (std::size_t i = 0; i < node_names.size(); ++i) {
    by_name[node_names[i]] = static_cast<std::uint32_t>(i);
  }
  const auto index_of = [&](const std::string& name) {
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw std::invalid_argument("fault references unknown node '" + name + "'");
    }
    return it->second;
  };
  FaultSchedule schedule;
  for (const ScenarioFault& f : faults) {
    if (f.kind == "crash") {
      schedule.crash(f.at, index_of(f.a));
    } else if (f.kind == "restart") {
      schedule.restart(f.at, index_of(f.a), f.recover);
    } else if (f.kind == "partition") {
      schedule.partition(f.at, index_of(f.a), index_of(f.b));
    } else if (f.kind == "heal") {
      schedule.heal(f.at, index_of(f.a), index_of(f.b));
    } else {
      throw std::invalid_argument("unknown fault kind '" + f.kind + "'");
    }
  }
  return schedule;
}

}  // namespace rota::faults
