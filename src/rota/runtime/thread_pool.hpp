// A fixed-size worker pool for the admission runtime.
//
// Deliberately work-stealing-free: tasks are pulled from one shared queue
// under a mutex. The runtime's units of work (planning one admission request,
// running one schedule permutation) each cost microseconds to milliseconds,
// so a single queue is nowhere near contention-bound, and the simplicity
// keeps the pool easy to reason about under ThreadSanitizer.
//
// `parallel_for` is the primary entry point: the calling thread participates
// in the loop (a pool constructed with `concurrency` n uses n-1 workers plus
// the caller), so concurrency 1 means strictly inline execution with zero
// synchronization — callers need no special-casing for the sequential case.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rota {

class ThreadPool {
 public:
  /// A pool delivering `concurrency` total lanes of parallelism (caller
  /// inclusive): spawns `concurrency - 1` workers. 0 is treated as 1.
  explicit ThreadPool(std::size_t concurrency);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes including the calling thread.
  std::size_t concurrency() const { return workers_.size() + 1; }

  /// Enqueues one task; runs inline when the pool has no workers.
  void submit(std::function<void()> task);

  /// Runs body(i) for every i in [0, n), spread over the workers and the
  /// calling thread; returns when all iterations finished. The first
  /// exception thrown by any iteration is rethrown on the caller (remaining
  /// iterations are still drained). Iterations must not touch the pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable ready_;
  bool stopping_ = false;
};

}  // namespace rota
