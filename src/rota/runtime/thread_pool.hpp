// A fixed-size worker pool for the admission runtime.
//
// Deliberately work-stealing-free: tasks are pulled from one shared queue
// under a mutex. The runtime's units of work (planning one admission request,
// running one schedule permutation) each cost microseconds to milliseconds,
// so a single queue is nowhere near contention-bound, and the simplicity
// keeps the pool easy to reason about under ThreadSanitizer.
//
// `parallel_for` is the primary entry point: the calling thread participates
// in the loop (a pool constructed with `concurrency` n uses n-1 workers plus
// the caller), so concurrency 1 means strictly inline execution with zero
// synchronization — callers need no special-casing for the sequential case.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rota {

class ThreadPool {
 public:
  /// A pool delivering `concurrency` total lanes of parallelism (caller
  /// inclusive): spawns `concurrency - 1` workers. 0 is treated as 1.
  explicit ThreadPool(std::size_t concurrency);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes including the calling thread (stable across shutdown()).
  std::size_t concurrency() const { return lanes_; }

  /// Enqueues one task; runs inline when the pool has no workers. Returns
  /// false — task dropped, never run — once shutdown() has begun: a stopping
  /// server must not accept work it cannot finish.
  bool submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is mid-flight. Does not
  /// stop intake: a quiesce point, not a terminal state (callers wanting
  /// terminal semantics use shutdown()).
  void drain();

  /// Clean shutdown: refuses new submissions, drains queued and in-flight
  /// work to completion, then joins the workers. Safe to call from a
  /// signal-driven stop path and idempotent; the destructor calls it.
  void shutdown();

  /// Runs body(i) for every i in [0, n), spread over the workers and the
  /// calling thread; returns when all iterations finished. The first
  /// exception thrown by any iteration is rethrown on the caller (remaining
  /// iterations are still drained). Iterations must not touch the pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::size_t lanes_ = 1;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable ready_;
  std::condition_variable idle_;   // signaled when queue empty and active_ == 0
  std::size_t active_ = 0;         // tasks popped but not yet finished
  bool draining_ = false;          // shutdown() begun: submit() refuses
  bool stopping_ = false;          // workers exit once the queue is empty
};

}  // namespace rota
