#include "rota/runtime/batch_controller.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>

#include "rota/obs/obs.hpp"

namespace rota {

namespace {

std::uint64_t round_clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::vector<AdmissionDecision> BatchAdmissionController::admit_batch(
    const std::vector<BatchRequest>& requests) {
  ROTA_OBS_SPAN("batch.admit_batch");
  const bool metered = obs::metrics_enabled();
  if (metered) {
    obs::CoreMetrics::get().batch_lanes.set(
        static_cast<std::int64_t>(pool_.concurrency()));
  }
  const std::size_t n = requests.size();
  std::vector<AdmissionDecision> decisions(n);

  // Deep lookahead is nearly free: the pool hands out indices in order and
  // lanes stop planning past the first would-be accept (see below), so the
  // wasted speculation per accepted request is bounded by the lanes in
  // flight, not by the lookahead. Concurrency 1 never speculates ahead and
  // degenerates to the sequential controller exactly.
  const std::size_t lookahead =
      pool_.concurrency() <= 1 ? 1 : 8 * pool_.concurrency();

  std::size_t next = 0;
  std::vector<PlanResult> spec(lookahead);
  std::vector<unsigned char> planned(lookahead);
  while (next < n) {
    const std::size_t base = next;
    const std::size_t end = std::min(n, base + lookahead);
    const std::uint64_t round_t0 = metered ? round_clock_ns() : 0;
    ROTA_OBS_SPAN_ARGS("batch.round", [&] {
      std::ostringstream args;
      args << "\"base\": " << base << ", \"pending\": " << (end - base)
           << ", \"snapshot_revision\": " << ledger_.revision()
           << ", \"lanes\": " << pool_.concurrency();
      return args.str();
    });

    // Windows are clipped by each request's own arrival tick, exactly as the
    // kernel's sequential decide() does — the ledger clock never affects
    // decisions. The round shares one snapshot restricted to the hull of its
    // windows (see FeasibilitySnapshot::capture).
    TimeInterval hull;
    for (std::size_t i = base; i < end; ++i) {
      hull = hull.hull_with(effective_window(requests[i].rho, requests[i].at));
    }
    const FeasibilitySnapshot snapshot =
        FeasibilitySnapshot::capture(ledger_, hull);

    // Speculate: plan pending requests in parallel against the frozen
    // snapshot. The ledger is not touched until every lane has finished. A
    // feasible speculation is a would-be accept; everything behind it will
    // be re-speculated against the post-accept residual anyway, so later
    // lanes skip planning once `first_accept` is set (indices are handed out
    // in order, making the skip almost always effective).
    std::atomic<std::size_t> first_accept{end};
    const auto speculate = [&](std::size_t k) {
      const std::size_t i = base + k;
      if (i > first_accept.load(std::memory_order_relaxed)) {
        planned[k] = 0;
        return;
      }
      planned[k] = 1;
      spec[k] = kernel_.speculate(requests[i].rho, requests[i].at, snapshot);
      if (spec[k].feasible()) {
        std::size_t cur = first_accept.load(std::memory_order_relaxed);
        while (i < cur && !first_accept.compare_exchange_weak(
                              cur, i, std::memory_order_relaxed)) {
        }
      }
    };
    if (pool_.concurrency() <= 1) {
      for (std::size_t k = 0; k < end - base; ++k) speculate(k);
    } else {
      pool_.parallel_for(end - base, speculate);
    }

    // Commit in order. Rejections leave the residual untouched, so their
    // revision stamps stay valid; the first accept bumps the revision and
    // the kernel flags the next speculation as stale, ending the round —
    // stale work is redone against a fresh snapshot, never committed.
    ROTA_OBS_SPAN("batch.commit");
    while (next < end) {
      const std::size_t i = next;
      if (!planned[i - base]) break;  // unreachable: skips sit past the accept
      if (kernel_.commit(spec[i - base], ledger_, decisions[i]) ==
          CommitStatus::kStale) {
        break;
      }
      ++next;
    }

    if (metered) {
      obs::CoreMetrics& m = obs::CoreMetrics::get();
      m.batch_rounds.add();
      std::uint64_t wasted = 0;
      for (std::size_t k = 0; k < end - base; ++k) {
        if (!planned[k] || spec[k].status == PlanStatus::kDeadlinePassed) continue;
        // Planned, then discarded by the accept: redone next round.
        if (base + k >= next) ++wasted;
      }
      m.batch_speculations_wasted.add(wasted);
      m.batch_round_ns.record(round_clock_ns() - round_t0);
    }
  }
  return decisions;
}

}  // namespace rota
