#include "rota/runtime/batch_controller.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <sstream>

#include "rota/obs/obs.hpp"

namespace rota {

namespace {

std::uint64_t round_clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One cell of the round's lock-free MPSC commit queue. A lane fills
/// `result` (or `error`) and then publishes with a release store to `state`;
/// the committer's acquire load of `state` is the only synchronization the
/// payload needs. Each index is claimed by exactly one lane (the atomic
/// cursor hands indices out once), so there is never a write-write race on a
/// slot, and the committer reads a slot only after observing kReady/kError.
struct SpecSlot {
  static constexpr int kEmpty = 0;
  static constexpr int kReady = 1;
  static constexpr int kError = 2;
  static constexpr int kSkipped = 3;

  PlanResult result;
  std::exception_ptr error;
  std::atomic<int> state{kEmpty};
};

}  // namespace

std::vector<AdmissionDecision> BatchAdmissionController::admit_batch(
    const std::vector<BatchRequest>& requests) {
  ROTA_OBS_SPAN("batch.admit_batch");
  const bool metered = obs::metrics_enabled();
  const std::size_t lanes = pool_.concurrency();
  if (metered) {
    obs::CoreMetrics::get().batch_lanes.set(static_cast<std::int64_t>(lanes));
  }
  const std::size_t n = requests.size();
  std::vector<AdmissionDecision> decisions(n);

  // Deep lookahead amortizes the per-round snapshot copy — requests arrive
  // clustered in time, so one hull+shard-filtered capture copies each
  // overlapping residual segment once instead of once per request. That pays
  // even at one lane (inline speculation, zero synchronization), which is
  // why the floor is a full round, not 1. Shard salvage keeps the deep
  // speculation useful: an accept only invalidates same-shard results, so
  // far-ahead work on other locations still commits.
  const std::size_t lookahead = std::max<std::size_t>(16, 8 * lanes);

  std::size_t next = 0;
  while (next < n) {
    const std::size_t base = next;
    const std::size_t end = std::min(n, base + lookahead);
    const std::uint64_t round_t0 = metered ? round_clock_ns() : 0;
    ROTA_OBS_SPAN_ARGS("batch.round", [&] {
      std::ostringstream args;
      args << "\"base\": " << base << ", \"pending\": " << (end - base)
           << ", \"snapshot_revision\": " << ledger_.revision()
           << ", \"lanes\": " << lanes;
      return args.str();
    });

    // Windows are clipped by each request's own arrival tick, exactly as the
    // kernel's sequential decide() does — the ledger clock never affects
    // decisions. The round shares one owned snapshot restricted to the hull
    // of its windows and the union of its shard footprints; owning the view
    // is what lets the committer mutate the ledger while lanes are still
    // speculating against the frozen copy.
    TimeInterval hull;
    ShardMask round_mask = 0;
    for (std::size_t i = base; i < end; ++i) {
      hull = hull.hull_with(effective_window(requests[i].rho, requests[i].at));
      round_mask |= touched_shard_mask(requests[i].rho);
    }
    const FeasibilitySnapshot snapshot =
        FeasibilitySnapshot::capture(ledger_, hull, round_mask);

    std::vector<SpecSlot> slots(end - base);
    std::atomic<std::size_t> cursor{base};  // next index to speculate
    std::atomic<bool> cancel{false};
    std::atomic<std::size_t> active{0};  // workers still inside the round
    // Shards touched by feasible (would-be-accept) speculations so far.
    // Indices are claimed in order, so by the time a lane claims i every
    // mask accumulated here belongs to some j < i: if i's own footprint
    // intersects, the accept at j is ahead of it in FCFS order and i's
    // speculation is doomed to read pre-accept residual — skip planning it.
    // Foreign-shard indices keep planning; salvage commits them through the
    // accept. The filter errs only toward planning (a stale skip aborts the
    // round exactly like a stale result), never toward wrong decisions.
    std::atomic<ShardMask> accepted_mask{0};

    // Claim one pending index and speculate it against the round snapshot.
    // Returns false when the round has no unclaimed work left.
    const auto speculate_one = [&]() -> bool {
      if (cancel.load(std::memory_order_relaxed)) return false;
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return false;
      SpecSlot& slot = slots[i - base];
      try {
        const ShardMask mask = touched_shard_mask(requests[i].rho);
        if ((mask & accepted_mask.load(std::memory_order_relaxed)) != 0) {
          // The committer will end the round here at the latest (claims are
          // ordered, so every earlier index is already in flight) — claiming
          // anything past this point is pure waste. Stop the round's claims.
          cancel.store(true, std::memory_order_relaxed);
          slot.state.store(SpecSlot::kSkipped, std::memory_order_release);
        } else {
          slot.result =
              kernel_.speculate(requests[i].rho, requests[i].at, snapshot);
          if (slot.result.feasible()) {
            accepted_mask.fetch_or(mask, std::memory_order_relaxed);
          }
          slot.state.store(SpecSlot::kReady, std::memory_order_release);
        }
      } catch (...) {
        slot.error = std::current_exception();
        cancel.store(true, std::memory_order_relaxed);
        slot.state.store(SpecSlot::kError, std::memory_order_release);
      }
      // Wake the committer if it is blocked on this slot. notify_one on an
      // atomic with no waiters is a couple of loads — no syscall.
      slot.state.notify_one();
      return true;
    };

    const std::size_t spawned = std::min(lanes - 1, end - base);
    active.store(spawned, std::memory_order_relaxed);
    for (std::size_t w = 0; w < spawned; ++w) {
      pool_.submit([&] {
        while (speculate_one()) {
        }
        active.fetch_sub(1, std::memory_order_release);
        active.notify_one();
      });
    }

    // Drain the queue in FCFS order. The committer is also a speculation
    // lane: while the head slot is in flight it claims work of its own
    // instead of blocking, so lanes == 2 does not halve the speculation
    // bandwidth.
    std::exception_ptr first_error;
    std::size_t aborted_at = end;  // first round index not committed
    {
      ROTA_OBS_SPAN("batch.commit");
      for (std::size_t i = base; i < end; ++i) {
        SpecSlot& slot = slots[i - base];
        int state;
        while ((state = slot.state.load(std::memory_order_acquire)) ==
               SpecSlot::kEmpty) {
          // Help speculate while the head slot is in flight; once the
          // round's claims are exhausted, block on the slot word instead of
          // spinning — on an oversubscribed host a yield loop burns the
          // very timeslice the owning lane needs to finish.
          if (!speculate_one()) slot.state.wait(SpecSlot::kEmpty, std::memory_order_acquire);
        }
        if (state == SpecSlot::kError) {
          first_error = slot.error;
          break;
        }
        if (state == SpecSlot::kSkipped ||
            kernel_.commit(slot.result, ledger_, decisions[i]) ==
                CommitStatus::kStale) {
          // This request's shard footprint moved underneath it — an earlier
          // accept in this round touched one of its shards (kSkipped is the
          // same fact detected at claim time). End the round here: the tail
          // re-speculates against a fresh snapshot next round at amortized
          // round cost, which beats redoing each stale result inline against
          // the full residual. `next` already points at this request.
          aborted_at = i;
          cancel.store(true, std::memory_order_relaxed);
          break;
        }
        ++next;
      }
    }

    // The round's state lives on this stack frame: workers must be out
    // before it unwinds. Claims are exhausted (or cancelled), so this is a
    // bounded tail wait, not a barrier on useful work.
    for (std::size_t v = active.load(std::memory_order_acquire); v != 0;
         v = active.load(std::memory_order_acquire)) {
      active.wait(v, std::memory_order_acquire);
    }
    if (first_error) std::rethrow_exception(first_error);

    if (metered) {
      obs::CoreMetrics& m = obs::CoreMetrics::get();
      m.batch_rounds.add();
      // Wasted = planned past the abort point and discarded. Skipped and
      // never-claimed indices cost (almost) nothing and are not counted.
      std::uint64_t wasted = 0;
      for (std::size_t i = aborted_at; i < end; ++i) {
        if (slots[i - base].state.load(std::memory_order_relaxed) ==
            SpecSlot::kReady) {
          ++wasted;
        }
      }
      m.batch_speculations_wasted.add(wasted);
      m.batch_round_ns.record(round_clock_ns() - round_t0);
    }
  }
  return decisions;
}

}  // namespace rota
