#include "rota/runtime/batch_controller.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <sstream>

#include "rota/obs/obs.hpp"

namespace rota {

namespace {

std::uint64_t round_clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::vector<AdmissionDecision> BatchAdmissionController::admit_batch(
    const std::vector<BatchRequest>& requests) {
  ROTA_OBS_SPAN("batch.admit_batch");
  const bool metered = obs::metrics_enabled();
  if (metered) {
    obs::CoreMetrics::get().batch_lanes.set(
        static_cast<std::int64_t>(pool_.concurrency()));
  }
  const std::size_t n = requests.size();
  std::vector<AdmissionDecision> decisions(n);

  // Deep lookahead is nearly free: the pool hands out indices in order and
  // lanes stop planning past the first would-be accept (see below), so the
  // wasted speculation per accepted request is bounded by the lanes in
  // flight, not by the lookahead. Concurrency 1 never speculates ahead and
  // degenerates to the sequential controller exactly.
  const std::size_t lookahead =
      pool_.concurrency() <= 1 ? 1 : 8 * pool_.concurrency();

  std::size_t next = 0;
  std::vector<std::optional<ConcurrentPlan>> spec(lookahead);
  std::vector<unsigned char> planned(lookahead);
  std::vector<TimeInterval> windows(lookahead);
  while (next < n) {
    const std::size_t base = next;
    const std::size_t end = std::min(n, base + lookahead);
    const std::uint64_t round_t0 = metered ? round_clock_ns() : 0;
    ROTA_OBS_SPAN_ARGS("batch.round", [&] {
      std::ostringstream args;
      args << "\"base\": " << base << ", \"pending\": " << (end - base)
           << ", \"snapshot_revision\": " << ledger_.revision()
           << ", \"lanes\": " << pool_.concurrency();
      return args.str();
    });

    // Windows are clipped by each request's own arrival tick, exactly as
    // decide_request does — the ledger clock never affects decisions. The
    // round shares one residual view restricted to the hull of its windows:
    // planning only ever reads the residual inside the request's window, so
    // the hull view yields the same plan as the per-request restriction the
    // sequential controller computes, at one residual scan per round instead
    // of one per request.
    TimeInterval hull;
    for (std::size_t i = base; i < end; ++i) {
      const TimeInterval w = effective_window(requests[i].rho, requests[i].at);
      windows[i - base] = w;
      hull = hull.hull_with(w);
    }
    ResourceSet view;
    {
      ROTA_OBS_SPAN("batch.snapshot");
      if (!hull.empty()) view = ledger_.residual().restricted(hull);
    }

    // Speculate: plan pending requests in parallel against the frozen view.
    // The ledger is not touched until every lane has finished. A found plan
    // is a would-be accept; everything behind it will be re-speculated
    // against the post-accept residual anyway, so later lanes skip planning
    // once `first_accept` is set (indices are handed out in order, making
    // the skip almost always effective).
    std::atomic<std::size_t> first_accept{end};
    const auto speculate = [&](std::size_t k) {
      const std::size_t i = base + k;
      spec[k].reset();
      if (i > first_accept.load(std::memory_order_relaxed)) {
        planned[k] = 0;
        return;
      }
      planned[k] = 1;
      const TimeInterval& window = windows[k];
      if (window.empty()) return;  // rejected at commit, no plan needed
      ROTA_OBS_SPAN("batch.speculate");
      spec[k] = plan_concurrent(view, clip_requirement(requests[i].rho, window),
                                policy_);
      if (spec[k]) {
        std::size_t cur = first_accept.load(std::memory_order_relaxed);
        while (i < cur && !first_accept.compare_exchange_weak(
                              cur, i, std::memory_order_relaxed)) {
        }
      }
    };
    if (pool_.concurrency() <= 1) {
      for (std::size_t k = 0; k < end - base; ++k) speculate(k);
    } else {
      pool_.parallel_for(end - base, speculate);
    }

    // Commit in order. Rejections leave the residual (and thus the validity
    // of the remaining speculation) untouched; the first accept ends the
    // round so the rest is re-speculated against the new residual.
    ROTA_OBS_SPAN("batch.commit");
    bool residual_changed = false;
    while (next < end && !residual_changed) {
      const std::size_t i = next;
      if (!planned[i - base]) break;  // unreachable: skips sit past the accept
      ++next;
      ledger_.advance_to(std::max(requests[i].at, ledger_.now()));
      AdmissionDecision& decision = decisions[i];
      const TimeInterval& window = windows[i - base];
      if (window.empty()) {
        decision.reason = "deadline has already passed";
        if (metered) obs::CoreMetrics::get().admission_rejected_deadline.add();
        continue;
      }
      std::optional<ConcurrentPlan>& plan = spec[i - base];
      if (!plan) {
        decision.reason = "no feasible plan over expiring resources";
        if (metered) obs::CoreMetrics::get().admission_rejected_no_plan.add();
        continue;
      }
      if (!ledger_.admit(requests[i].rho.name(), window, *plan)) {
        decision.reason = "plan no longer fits residual";  // defensive; not expected
        if (metered) obs::CoreMetrics::get().admission_rejected_conflict.add();
        continue;
      }
      decision.accepted = true;
      decision.plan = std::move(*plan);
      if (metered) obs::CoreMetrics::get().admission_accepted.add();
      residual_changed = true;
    }

    if (metered) {
      obs::CoreMetrics& m = obs::CoreMetrics::get();
      m.batch_rounds.add();
      std::uint64_t speculated = 0, wasted = 0;
      for (std::size_t k = 0; k < end - base; ++k) {
        if (!planned[k] || windows[k].empty()) continue;
        ++speculated;
        if (base + k >= next) ++wasted;  // planned, then discarded by the accept
      }
      m.batch_speculations.add(speculated);
      m.batch_speculations_wasted.add(wasted);
      m.batch_round_ns.record(round_clock_ns() - round_t0);
    }
  }
  return decisions;
}

}  // namespace rota
