#include "rota/runtime/batch_controller.hpp"

#include <algorithm>
#include <atomic>
#include <optional>

namespace rota {

std::vector<AdmissionDecision> BatchAdmissionController::admit_batch(
    const std::vector<BatchRequest>& requests) {
  const std::size_t n = requests.size();
  std::vector<AdmissionDecision> decisions(n);

  // Deep lookahead is nearly free: the pool hands out indices in order and
  // lanes stop planning past the first would-be accept (see below), so the
  // wasted speculation per accepted request is bounded by the lanes in
  // flight, not by the lookahead. Concurrency 1 never speculates ahead and
  // degenerates to the sequential controller exactly.
  const std::size_t lookahead =
      pool_.concurrency() <= 1 ? 1 : 8 * pool_.concurrency();

  std::size_t next = 0;
  std::vector<std::optional<ConcurrentPlan>> spec(lookahead);
  std::vector<unsigned char> planned(lookahead);
  std::vector<TimeInterval> windows(lookahead);
  while (next < n) {
    const std::size_t base = next;
    const std::size_t end = std::min(n, base + lookahead);

    // Windows are clipped by each request's own arrival tick, exactly as
    // decide_request does — the ledger clock never affects decisions. The
    // round shares one residual view restricted to the hull of its windows:
    // planning only ever reads the residual inside the request's window, so
    // the hull view yields the same plan as the per-request restriction the
    // sequential controller computes, at one residual scan per round instead
    // of one per request.
    std::optional<TimeInterval> hull;
    for (std::size_t i = base; i < end; ++i) {
      const TimeInterval w = effective_window(requests[i].rho, requests[i].at);
      windows[i - base] = w;
      if (!w.empty()) {
        hull = hull ? TimeInterval(std::min(hull->start(), w.start()),
                                   std::max(hull->end(), w.end()))
                    : w;
      }
    }
    const ResourceSet view =
        hull ? ledger_.residual().restricted(*hull) : ResourceSet();

    // Speculate: plan pending requests in parallel against the frozen view.
    // The ledger is not touched until every lane has finished. A found plan
    // is a would-be accept; everything behind it will be re-speculated
    // against the post-accept residual anyway, so later lanes skip planning
    // once `first_accept` is set (indices are handed out in order, making
    // the skip almost always effective).
    std::atomic<std::size_t> first_accept{end};
    const auto speculate = [&](std::size_t k) {
      const std::size_t i = base + k;
      spec[k].reset();
      if (i > first_accept.load(std::memory_order_relaxed)) {
        planned[k] = 0;
        return;
      }
      planned[k] = 1;
      const TimeInterval& window = windows[k];
      if (window.empty()) return;  // rejected at commit, no plan needed
      spec[k] = plan_concurrent(view, clip_requirement(requests[i].rho, window),
                                policy_);
      if (spec[k]) {
        std::size_t cur = first_accept.load(std::memory_order_relaxed);
        while (i < cur && !first_accept.compare_exchange_weak(
                              cur, i, std::memory_order_relaxed)) {
        }
      }
    };
    if (pool_.concurrency() <= 1) {
      for (std::size_t k = 0; k < end - base; ++k) speculate(k);
    } else {
      pool_.parallel_for(end - base, speculate);
    }

    // Commit in order. Rejections leave the residual (and thus the validity
    // of the remaining speculation) untouched; the first accept ends the
    // round so the rest is re-speculated against the new residual.
    bool residual_changed = false;
    while (next < end && !residual_changed) {
      const std::size_t i = next;
      if (!planned[i - base]) break;  // unreachable: skips sit past the accept
      ++next;
      ledger_.advance_to(std::max(requests[i].at, ledger_.now()));
      AdmissionDecision& decision = decisions[i];
      const TimeInterval& window = windows[i - base];
      if (window.empty()) {
        decision.reason = "deadline has already passed";
        continue;
      }
      std::optional<ConcurrentPlan>& plan = spec[i - base];
      if (!plan) {
        decision.reason = "no feasible plan over expiring resources";
        continue;
      }
      if (!ledger_.admit(requests[i].rho.name(), window, *plan)) {
        decision.reason = "plan no longer fits residual";  // defensive; not expected
        continue;
      }
      decision.accepted = true;
      decision.plan = std::move(*plan);
      residual_changed = true;
    }
  }
  return decisions;
}

}  // namespace rota
