// A bounded MPMC queue: the admission service's waiting room.
//
// Unbounded queues turn overload into unbounded latency; a bounded queue
// turns it into an explicit, observable shed decision at the front door
// (try_push fails, the caller answers kOverloaded immediately). Producers
// are session threads, consumers the planning lanes on the runtime's
// ThreadPool — the same few-microseconds-to-milliseconds work units the
// pool's single-mutex design is already sized for, so a mutex plus one
// condition variable is nowhere near contention-bound here either, and it
// keeps the queue trivially correct under ThreadSanitizer.
//
// close() wakes every blocked consumer; pops continue to drain what was
// accepted before the close (clean shutdown never abandons admitted work),
// then return nullopt.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace rota {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Current number of queued items (racy by nature; a metrics gauge, and a
  /// backpressure signal for the governor).
  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// Non-blocking push. False — item not enqueued — when full or closed:
  /// the caller sheds explicitly instead of waiting. Takes an rvalue
  /// reference rather than a value so a refused item is NOT consumed — the
  /// caller still owns it (and, in the service, its response callback) and
  /// can answer kOverloaded with it.
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and* drained;
  /// nullopt only in the latter case.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stops intake and wakes every blocked consumer. Items already accepted
  /// keep draining through pop(). Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace rota
