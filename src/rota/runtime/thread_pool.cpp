#include "rota/runtime/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <memory>

namespace rota {

ThreadPool::ThreadPool(std::size_t concurrency)
    : lanes_(concurrency > 0 ? concurrency : 1) {
  const std::size_t workers = lanes_ - 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (draining_) return false;
      ++active_;  // visible to drain() even though the caller runs it inline
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (active_ == 0 && queue_.empty()) idle_.notify_all();
    }
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) return false;
    queue_.push_back(std::move(task));
  }
  ready_.notify_one();
  return true;
}

void ThreadPool::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::shutdown() {
  {
    // Refuse new work first, then wait out everything queued or mid-flight:
    // nothing accepted is ever abandoned, and nothing late sneaks in.
    std::unique_lock<std::mutex> lock(mutex_);
    draining_ = true;
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    stopping_ = true;
  }
  ready_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (active_ == 0 && queue_.empty()) idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  struct Sweep {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> live{0};
    std::mutex m;
    std::condition_variable done;
    std::exception_ptr error;  // guarded by m
  };
  auto sweep = std::make_shared<Sweep>();

  auto drain = [sweep, &body, n] {
    for (;;) {
      const std::size_t i = sweep->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(sweep->m);
        if (!sweep->error) sweep->error = std::current_exception();
      }
    }
  };

  // One helper per worker, capped by the iteration count (the caller lane
  // covers the rest). `body` is captured by reference: the caller blocks
  // below until every helper has finished, so the reference stays valid.
  const std::size_t helpers = std::min(workers_.size(), n - 1);
  sweep->live.store(helpers, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t h = 0; h < helpers; ++h) {
      queue_.push_back([sweep, drain] {
        drain();
        if (sweep->live.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> done_lock(sweep->m);
          sweep->done.notify_all();
        }
      });
    }
  }
  if (helpers == 1) {
    ready_.notify_one();
  } else {
    ready_.notify_all();
  }

  drain();  // caller participates
  std::unique_lock<std::mutex> lock(sweep->m);
  sweep->done.wait(lock, [&] { return sweep->live.load(std::memory_order_acquire) == 0; });
  if (sweep->error) std::rethrow_exception(sweep->error);
}

}  // namespace rota
