// Batched admission: the sequential FCFS controller's semantics at pipeline
// throughput.
//
// A batch of (Λ, s, d) requests is admitted in three repeating stages, all
// expressed in the planning kernel's vocabulary (rota/plan/):
//
//   snapshot  — FeasibilitySnapshot::capture(ledger, hull) freezes the
//               residual restricted to the hull of the round's windows: one
//               restriction per round instead of one per request, yielding
//               bit-identical plans (the planner never reads outside a
//               request's window).
//   speculate — every pending request is planned *in parallel* against the
//               snapshot by the worker pool via PlanningKernel::speculate —
//               pure and thread-safe, so lanes share the snapshot freely.
//   commit    — PlanningKernel::commit issues decisions strictly in FCFS
//               order. The first accept bumps the ledger revision, so the
//               kernel reports every later same-round speculation as stale;
//               the round ends there and the remainder is redone against a
//               fresh snapshot (optimistic concurrency with bounded
//               lookahead — stale speculations are redone, never committed).
//
// Rejections — the common case under heavy traffic — never mutate the
// residual, so arbitrarily long reject runs are decided from one snapshot
// with full parallelism. The decision sequence (accept set, plans, reasons)
// is identical, decision for decision, to RotaAdmissionController processing
// the same requests one at a time.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "rota/admission/controller.hpp"
#include "rota/runtime/thread_pool.hpp"

namespace rota {

/// One queued admission request: an already-derived requirement plus its
/// arrival tick (the `now` the sequential controller would see).
struct BatchRequest {
  ConcurrentRequirement rho;
  Tick at = 0;
};

class BatchAdmissionController {
 public:
  /// `concurrency` is the total number of planning lanes (1 = strictly
  /// sequential, no worker threads, no lookahead waste).
  BatchAdmissionController(CostModel phi, ResourceSet initial_supply,
                           PlanningPolicy policy = PlanningPolicy::kAsap,
                           std::size_t concurrency = 1, Tick now = 0)
      : phi_(std::move(phi)),
        ledger_(std::move(initial_supply), now),
        kernel_(policy),
        pool_(concurrency) {}

  /// Admits the requests in the given (FCFS) order. Returns one decision per
  /// request, positionally.
  std::vector<AdmissionDecision> admit_batch(const std::vector<BatchRequest>& requests);

  /// Derives ρ(Λ, s, d) via this controller's Φ (for building batches).
  ConcurrentRequirement derive(const DistributedComputation& lambda) const {
    return make_concurrent_requirement(phi_, lambda);
  }

  /// Single-request path — identical to the sequential controller.
  AdmissionDecision request(const ConcurrentRequirement& rho, Tick now) {
    return kernel_.decide(ledger_, rho, now);
  }

  /// Commits a speculation produced against a snapshot of this controller's
  /// ledger; nullopt when the speculation went stale (re-speculate).
  std::optional<AdmissionDecision> commit(const PlanResult& result) {
    AdmissionDecision decision;
    if (kernel_.commit(result, ledger_, decision) != CommitStatus::kCommitted) {
      return std::nullopt;
    }
    return decision;
  }

  /// Resource acquisition rule.
  void on_join(const ResourceSet& joined) { ledger_.join(joined); }

  /// Computation leave rule (only before the computation starts).
  bool release(const std::string& name) { return ledger_.release(name); }

  const CommitmentLedger& ledger() const { return ledger_; }
  /// Mutable ledger access for recovery paths (audit-log replay after a
  /// crash rebuilds commitments directly). Not for use between admit_batch
  /// rounds on live traffic — decisions must flow through admission.
  CommitmentLedger& ledger_for_recovery() { return ledger_; }
  const CostModel& phi() const { return phi_; }
  const PlanningKernel& kernel() const { return kernel_; }
  PlanningPolicy policy() const { return kernel_.policy(); }
  std::size_t concurrency() const { return pool_.concurrency(); }

 private:
  CostModel phi_;
  CommitmentLedger ledger_;
  PlanningKernel kernel_;
  ThreadPool pool_;
};

}  // namespace rota
