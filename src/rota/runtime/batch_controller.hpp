// Batched admission: the sequential FCFS controller's semantics at pipeline
// throughput.
//
// A batch of (Λ, s, d) requests is admitted in rounds, all expressed in the
// planning kernel's vocabulary (rota/plan/):
//
//   snapshot  — FeasibilitySnapshot::capture(ledger, hull, mask) freezes one
//               *owned* view of the residual per round, restricted to the
//               hull of the round's windows and to the location shards the
//               round's demands touch: one filtered copy per round instead
//               of one restriction per request, yielding bit-identical plans
//               (the planner never reads outside a request's window or
//               demand types).
//   speculate — lanes claim round indices from an atomic cursor (in FCFS
//               order) and plan them against the shared snapshot via
//               PlanningKernel::speculate — pure and thread-safe. Each lane
//               publishes its finished PlanResult into a per-request slot
//               with a release store; the slots form a lock-free MPSC queue
//               in request order. A lane that claims an index whose shard
//               footprint intersects an earlier feasible (would-be-accept)
//               speculation marks the slot skipped instead of planning it —
//               that result could only come out stale — and stops the
//               round's remaining claims, which are equally doomed.
//   commit    — the calling thread is the single committer: it consumes
//               slots strictly in FCFS order (acquire loads), committing
//               each through PlanningKernel::commit. Thanks to per-shard
//               revision stamps, an accept only invalidates later
//               speculations that touch the *same location shards*; results
//               on foreign shards are salvaged and committed as-is. The
//               first stale (or skipped) slot ends the round: the tail is
//               re-speculated against a fresh snapshot next round at
//               amortized cost — redone, never committed stale. While the
//               head slot is still in flight the committer helps speculate
//               instead of blocking.
//
// Rejections — the common case under heavy traffic — never mutate the
// residual, so arbitrarily long reject runs are decided from one snapshot
// with full parallelism; and with shard salvage, accept traffic on one
// location no longer serializes speculation on the others. The decision
// sequence (accept set, plans, reasons) is identical, decision for decision,
// to RotaAdmissionController processing the same requests one at a time.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "rota/admission/controller.hpp"
#include "rota/runtime/thread_pool.hpp"

namespace rota {

/// One queued admission request: an already-derived requirement plus its
/// arrival tick (the `now` the sequential controller would see).
struct BatchRequest {
  ConcurrentRequirement rho;
  Tick at = 0;
};

class BatchAdmissionController {
 public:
  /// `concurrency` is the total number of planning lanes (1 = no worker
  /// threads; speculation runs inline but still in lookahead rounds, which
  /// amortize the snapshot scan — decisions are identical at any lane
  /// count).
  BatchAdmissionController(CostModel phi, ResourceSet initial_supply,
                           PlanningPolicy policy = PlanningPolicy::kAsap,
                           std::size_t concurrency = 1, Tick now = 0)
      : phi_(std::move(phi)),
        ledger_(std::move(initial_supply), now),
        kernel_(policy),
        pool_(concurrency) {}

  /// Admits the requests in the given (FCFS) order. Returns one decision per
  /// request, positionally.
  std::vector<AdmissionDecision> admit_batch(const std::vector<BatchRequest>& requests);

  /// Derives ρ(Λ, s, d) via this controller's Φ (for building batches).
  ConcurrentRequirement derive(const DistributedComputation& lambda) const {
    return make_concurrent_requirement(phi_, lambda);
  }

  /// Single-request path — identical to the sequential controller.
  AdmissionDecision request(const ConcurrentRequirement& rho, Tick now) {
    return kernel_.decide(ledger_, rho, now);
  }

  /// Commits a speculation produced against a snapshot of this controller's
  /// ledger; nullopt when the speculation went stale (re-speculate).
  std::optional<AdmissionDecision> commit(const PlanResult& result) {
    AdmissionDecision decision;
    if (kernel_.commit(result, ledger_, decision) != CommitStatus::kCommitted) {
      return std::nullopt;
    }
    return decision;
  }

  /// Resource acquisition rule.
  void on_join(const ResourceSet& joined) { ledger_.join(joined); }

  /// Computation leave rule (only before the computation starts).
  bool release(const std::string& name) { return ledger_.release(name); }

  const CommitmentLedger& ledger() const { return ledger_; }
  /// Mutable ledger access for recovery paths (audit-log replay after a
  /// crash rebuilds commitments directly). Not for use between admit_batch
  /// rounds on live traffic — decisions must flow through admission.
  CommitmentLedger& ledger_for_recovery() { return ledger_; }
  const CostModel& phi() const { return phi_; }
  const PlanningKernel& kernel() const { return kernel_; }
  PlanningPolicy policy() const { return kernel_.policy(); }
  std::size_t concurrency() const { return pool_.concurrency(); }

 private:
  CostModel phi_;
  CommitmentLedger ledger_;
  PlanningKernel kernel_;
  ThreadPool pool_;
};

}  // namespace rota
