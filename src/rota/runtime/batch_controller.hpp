// Batched admission: the sequential FCFS controller's semantics at pipeline
// throughput.
//
// A batch of (Λ, s, d) requests is admitted in three repeating stages:
//
//   snapshot  — the ledger's cached residual is frozen (it is immutable
//               between commits; a revision counter certifies that),
//   speculate — every pending request is planned *in parallel* against the
//               snapshot by the worker pool. Planning is a pure function of
//               the residual restricted to the request window, so
//               speculation against the unrestricted snapshot produces
//               exactly the plan the sequential controller would compute —
//               without the per-request restricted() copy it pays.
//   commit    — decisions are issued strictly in FCFS order. A request whose
//               speculation used the current residual commits (or rejects)
//               directly; the first accepted request changes the residual
//               and thereby invalidates the remaining speculation, which is
//               redone against a fresh snapshot in the next round
//               (optimistic concurrency with bounded lookahead, so wasted
//               speculative work per accept is capped).
//
// Rejections — the common case under heavy traffic — never mutate the
// residual, so arbitrarily long reject runs are decided from one snapshot
// with full parallelism. The decision sequence (accept set, plans, reasons)
// is identical, decision for decision, to RotaAdmissionController processing
// the same requests one at a time.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rota/admission/controller.hpp"
#include "rota/runtime/thread_pool.hpp"

namespace rota {

/// One queued admission request: an already-derived requirement plus its
/// arrival tick (the `now` the sequential controller would see).
struct BatchRequest {
  ConcurrentRequirement rho;
  Tick at = 0;
};

class BatchAdmissionController {
 public:
  /// `concurrency` is the total number of planning lanes (1 = strictly
  /// sequential, no worker threads, no lookahead waste).
  BatchAdmissionController(CostModel phi, ResourceSet initial_supply,
                           PlanningPolicy policy = PlanningPolicy::kAsap,
                           std::size_t concurrency = 1, Tick now = 0)
      : phi_(std::move(phi)),
        ledger_(std::move(initial_supply), now),
        policy_(policy),
        pool_(concurrency) {}

  /// Admits the requests in the given (FCFS) order. Returns one decision per
  /// request, positionally.
  std::vector<AdmissionDecision> admit_batch(const std::vector<BatchRequest>& requests);

  /// Derives ρ(Λ, s, d) via this controller's Φ (for building batches).
  ConcurrentRequirement derive(const DistributedComputation& lambda) const {
    return make_concurrent_requirement(phi_, lambda);
  }

  /// Single-request path — identical to the sequential controller.
  AdmissionDecision request(const ConcurrentRequirement& rho, Tick now) {
    return decide_request(ledger_, rho, now, policy_);
  }

  /// Resource acquisition rule.
  void on_join(const ResourceSet& joined) { ledger_.join(joined); }

  /// Computation leave rule (only before the computation starts).
  bool release(const std::string& name) { return ledger_.release(name); }

  const CommitmentLedger& ledger() const { return ledger_; }
  /// Mutable ledger access for recovery paths (audit-log replay after a
  /// crash rebuilds commitments directly). Not for use between admit_batch
  /// rounds on live traffic — decisions must flow through admission.
  CommitmentLedger& ledger_for_recovery() { return ledger_; }
  const CostModel& phi() const { return phi_; }
  PlanningPolicy policy() const { return policy_; }
  std::size_t concurrency() const { return pool_.concurrency(); }

 private:
  CostModel phi_;
  CommitmentLedger ledger_;
  PlanningPolicy policy_;
  ThreadPool pool_;
};

}  // namespace rota
