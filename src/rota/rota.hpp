// Umbrella header: the full public API of the ROTA library.
//
// ROTA (Resource-Oriented Temporal logic for Accommodation) reproduces
// "Temporal Reasoning about Resources for Deadline Assurance in Distributed
// Systems" (Zhao & Jamali, 2010). See README.md for a tour and DESIGN.md for
// the module map.
#pragma once

#include "rota/obs/obs.hpp"
#include "rota/time/tick.hpp"
#include "rota/time/interval.hpp"
#include "rota/time/allen.hpp"
#include "rota/time/interval_set.hpp"
#include "rota/time/ia_network.hpp"

#include "rota/resource/located_type.hpp"
#include "rota/resource/step_function.hpp"
#include "rota/resource/demand.hpp"
#include "rota/resource/resource_term.hpp"
#include "rota/resource/resource_set.hpp"

#include "rota/computation/action.hpp"
#include "rota/computation/cost_model.hpp"
#include "rota/computation/actor_computation.hpp"
#include "rota/computation/requirement.hpp"
#include "rota/computation/interaction.hpp"

#include "rota/logic/state.hpp"
#include "rota/logic/transition.hpp"
#include "rota/logic/path.hpp"
#include "rota/logic/planner.hpp"
#include "rota/logic/dag_planner.hpp"
#include "rota/logic/explorer.hpp"
#include "rota/logic/formula.hpp"
#include "rota/logic/model_checker.hpp"
#include "rota/logic/theorems.hpp"

#include "rota/admission/ledger.hpp"
#include "rota/admission/controller.hpp"
#include "rota/runtime/thread_pool.hpp"
#include "rota/runtime/batch_controller.hpp"
#include "rota/admission/baselines.hpp"
#include "rota/admission/negotiation.hpp"
#include "rota/admission/audit.hpp"
#include "rota/admission/periodic.hpp"

#include "rota/cyberorgs/cyberorg.hpp"
#include "rota/advisor/migration_advisor.hpp"
#include "rota/io/scenario.hpp"
#include "rota/io/formula_parser.hpp"
#include "rota/io/trace.hpp"
#include "rota/io/dot.hpp"

#include "rota/sim/churn.hpp"
#include "rota/sim/simulator.hpp"
#include "rota/sim/metrics.hpp"

#include "rota/workload/generator.hpp"
#include "rota/workload/scenarios.hpp"

#include "rota/cluster/fabric.hpp"
#include "rota/cluster/digest.hpp"
#include "rota/cluster/node.hpp"
#include "rota/cluster/cluster.hpp"
