// The ROTA admission controller: Theorem 4 as an online service.
//
// On each request the controller derives ρ(Λ, s, d) via Φ and hands it to
// the planning kernel: speculate against a snapshot of the ledger's
// residual, commit the result. Every admitted computation therefore has a
// concrete consumption plan that provably fits alongside all earlier
// admissions — the deadline assurance the paper is after. The controller
// itself is a thin wrapper: the accept/reject semantics live entirely in
// rota/plan/ (one audited code path shared by every admission surface).
#pragma once

#include <optional>
#include <string>

#include "rota/admission/ledger.hpp"
#include "rota/computation/requirement.hpp"
#include "rota/plan/kernel.hpp"

namespace rota {

class RotaAdmissionController {
 public:
  RotaAdmissionController(CostModel phi, ResourceSet initial_supply,
                          PlanningPolicy policy = PlanningPolicy::kAsap,
                          Tick now = 0)
      : phi_(std::move(phi)),
        ledger_(std::move(initial_supply), now),
        kernel_(policy) {}

  /// Decides (Λ, s, d) at time `now`. Advances the ledger clock.
  AdmissionDecision request(const DistributedComputation& lambda, Tick now);

  /// Decides an already-derived requirement (for callers with their own Φ).
  AdmissionDecision request(const ConcurrentRequirement& rho, Tick now) {
    return kernel_.decide(ledger_, rho, now);
  }

  /// Commits a speculation produced against a snapshot of this controller's
  /// ledger; nullopt when the speculation went stale (re-speculate).
  std::optional<AdmissionDecision> commit(const PlanResult& result) {
    AdmissionDecision decision;
    if (kernel_.commit(result, ledger_, decision) != CommitStatus::kCommitted) {
      return std::nullopt;
    }
    return decision;
  }

  /// Resource acquisition rule.
  void on_join(const ResourceSet& joined) { ledger_.join(joined); }

  /// Computation leave rule (only before the computation starts).
  bool release(const std::string& name) { return ledger_.release(name); }

  /// Gives away part of the uncommitted supply (CyberOrgs isolation); false
  /// if the residual does not cover the slice.
  bool carve(const ResourceSet& slice) { return ledger_.carve(slice); }

  /// Absorbs another controller's supply and commitments (CyberOrgs
  /// assimilation); the other controller is left empty.
  void absorb(RotaAdmissionController&& other) {
    ledger_.merge(std::move(other.ledger_));
  }

  const CommitmentLedger& ledger() const { return ledger_; }
  const CostModel& phi() const { return phi_; }
  const PlanningKernel& kernel() const { return kernel_; }
  PlanningPolicy policy() const { return kernel_.policy(); }

 private:
  CostModel phi_;
  CommitmentLedger ledger_;
  PlanningKernel kernel_;
};

}  // namespace rota
