// The ROTA admission controller: Theorem 4 as an online service.
//
// On each request the controller derives ρ(Λ, s, d) via Φ, clips the window
// to the present, plans it against the ledger's residual (= the expiring
// resources of the committed path), and admits exactly when a plan exists.
// Every admitted computation therefore has a concrete consumption plan that
// provably fits alongside all earlier admissions — the deadline assurance
// the paper is after.
#pragma once

#include <optional>
#include <string>

#include "rota/admission/ledger.hpp"
#include "rota/computation/requirement.hpp"
#include "rota/logic/planner.hpp"

namespace rota {

struct AdmissionDecision {
  bool accepted = false;
  std::optional<ConcurrentPlan> plan;  // present iff accepted
  std::string reason;                  // human-readable rejection cause
};

/// The requirement's window clipped to the present (empty ⇔ deadline passed).
TimeInterval effective_window(const ConcurrentRequirement& rho, Tick now);

/// `rho` with every actor's window replaced by `window` — the controller's
/// re-clip for requests whose earliest start is already behind the clock.
ConcurrentRequirement clip_requirement(const ConcurrentRequirement& rho,
                                       const TimeInterval& window);

/// One admission step: advance the ledger clock, clip the window, plan
/// against the residual, and commit on success. This free function is the
/// single source of accept/reject semantics, shared by the sequential
/// controller below and the batched pipeline in rota/runtime/.
AdmissionDecision decide_request(CommitmentLedger& ledger,
                                 const ConcurrentRequirement& rho, Tick now,
                                 PlanningPolicy policy);

class RotaAdmissionController {
 public:
  RotaAdmissionController(CostModel phi, ResourceSet initial_supply,
                          PlanningPolicy policy = PlanningPolicy::kAsap,
                          Tick now = 0)
      : phi_(std::move(phi)),
        ledger_(std::move(initial_supply), now),
        policy_(policy) {}

  /// Decides (Λ, s, d) at time `now`. Advances the ledger clock.
  AdmissionDecision request(const DistributedComputation& lambda, Tick now);

  /// Decides an already-derived requirement (for callers with their own Φ).
  AdmissionDecision request(const ConcurrentRequirement& rho, Tick now);

  /// Resource acquisition rule.
  void on_join(const ResourceSet& joined) { ledger_.join(joined); }

  /// Computation leave rule (only before the computation starts).
  bool release(const std::string& name) { return ledger_.release(name); }

  /// Gives away part of the uncommitted supply (CyberOrgs isolation); false
  /// if the residual does not cover the slice.
  bool carve(const ResourceSet& slice) { return ledger_.carve(slice); }

  /// Absorbs another controller's supply and commitments (CyberOrgs
  /// assimilation); the other controller is left empty.
  void absorb(RotaAdmissionController&& other) {
    ledger_.merge(std::move(other.ledger_));
  }

  const CommitmentLedger& ledger() const { return ledger_; }
  const CostModel& phi() const { return phi_; }
  PlanningPolicy policy() const { return policy_; }

 private:
  CostModel phi_;
  CommitmentLedger ledger_;
  PlanningPolicy policy_;
};

}  // namespace rota
