#include "rota/admission/baselines.hpp"

#include <algorithm>

namespace rota {

AdmissionDecision NaiveTotalQuantityStrategy::request(
    const DistributedComputation& lambda, Tick now) {
  AdmissionDecision decision;
  const TimeInterval window(std::max(lambda.earliest_start(), now), lambda.deadline());
  if (window.empty()) {
    decision.reason = "deadline has already passed";
    return decision;
  }

  const ConcurrentRequirement rho = make_concurrent_requirement(phi_, lambda);
  DemandSet needed = rho.total_demand();
  // Charge every overlapping booking's full demand against the window's pool.
  for (const auto& booking : bookings_) {
    if (booking.window.intersects(window)) needed.merge(booking.demand);
  }
  for (const auto& [type, q] : needed.amounts()) {
    if (supply_.quantity(type, window) < q) {
      decision.reason = "aggregate quantity of " + type.to_string() + " insufficient";
      return decision;
    }
  }
  bookings_.push_back(Booking{window, rho.total_demand()});
  decision.accepted = true;
  return decision;
}

AdmissionDecision OptimisticStrategy::request(const DistributedComputation& lambda,
                                              Tick now) {
  AdmissionDecision decision;
  const TimeInterval window(std::max(lambda.earliest_start(), now), lambda.deadline());
  if (window.empty()) {
    decision.reason = "deadline has already passed";
    return decision;
  }
  const ConcurrentRequirement rho = make_concurrent_requirement(phi_, lambda);
  const DemandSet needed = rho.total_demand();
  for (const auto& [type, q] : needed.amounts()) {
    if (supply_.quantity(type, window) < q) {
      decision.reason = "supply of " + type.to_string() + " insufficient";
      return decision;
    }
  }
  decision.accepted = true;
  return decision;
}

AdmissionDecision AlwaysAdmitStrategy::request(const DistributedComputation& lambda,
                                               Tick now) {
  AdmissionDecision decision;
  decision.accepted = now < lambda.deadline();
  if (!decision.accepted) decision.reason = "deadline has already passed";
  return decision;
}

}  // namespace rota
