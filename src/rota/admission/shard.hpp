// Ledger sharding by location.
//
// The calculus is located: every resource type carries the node it lives on
// (links are keyed by their source node), and a request's demand names the
// handful of locations it touches. That makes location the natural conflict
// domain for optimistic concurrency — two requests on disjoint locations
// cannot invalidate each other's speculations. The ledger therefore keeps
// one revision counter per location shard next to the global one: a
// speculation records the stamp of the shards its demand reads, and a commit
// whose global revision moved can still be salvaged when those shards did
// not.
//
// Shards are a fixed power-of-two count so a request's footprint fits in one
// 32-bit mask word. 16 shards keeps false conflicts (distinct locations
// hashing to one shard) rare at the workload sizes the benches model while
// the per-snapshot stamp copy stays two cache lines.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "rota/resource/located_type.hpp"

namespace rota {

inline constexpr std::size_t kLedgerShards = 16;

/// Bit s set ⇔ shard s is in the footprint. Fits kLedgerShards ≤ 32.
using ShardMask = std::uint32_t;

inline constexpr ShardMask kAllShards =
    static_cast<ShardMask>((1u << kLedgerShards) - 1);

/// Per-shard revision counters, indexed by shard_of().
using ShardRevisions = std::array<std::uint64_t, kLedgerShards>;

/// Shard assignment: by source location. Node resources live where they are;
/// link resources are charged to their source node, so <network, l1→l2> and
/// <cpu, l1> conflict (both shard by l1) while <cpu, l2> does not.
inline std::size_t shard_of(const LocatedType& type) {
  return type.source().id() % kLedgerShards;
}

/// Sum of the masked shards' revisions. Because every counter is monotone
/// non-decreasing and a snapshot's counters are componentwise ≤ the live
/// ledger's, sum equality is equivalent to componentwise equality — one
/// uint64 comparison revalidates a whole footprint.
inline std::uint64_t shard_stamp(const ShardRevisions& revisions, ShardMask mask) {
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < kLedgerShards; ++s) {
    if (mask & (static_cast<ShardMask>(1) << s)) sum += revisions[s];
  }
  return sum;
}

}  // namespace rota
