#include "rota/admission/negotiation.hpp"

#include <algorithm>
#include <stdexcept>

namespace rota {

namespace {

/// One candidate-window probe: a kernel speculation through the snapshot's
/// restriction cache. `focus` is the search's whole probe range, constant
/// across the binary search, so the residual is restricted exactly once.
bool probe(const FeasibilitySnapshot& snapshot, const PlanningKernel& kernel,
           const ConcurrentRequirement& rho, const TimeInterval& window,
           const TimeInterval& focus) {
  return kernel
      .speculate_within(clip_requirement(rho, window), window.start(), snapshot,
                        focus)
      .feasible();
}

}  // namespace

std::optional<Tick> earliest_feasible_deadline(const FeasibilitySnapshot& snapshot,
                                               const ConcurrentRequirement& rho,
                                               Tick latest,
                                               const PlanningKernel& kernel) {
  const Tick start = rho.window().start();
  if (latest <= start) {
    throw std::invalid_argument("earliest_feasible_deadline: latest must follow s");
  }
  const TimeInterval focus(start, latest);
  // ASAP feasibility is monotone in d: a plan for d also works for d' > d.
  if (!probe(snapshot, kernel, rho, focus, focus)) return std::nullopt;
  Tick lo = start + 1, hi = latest;  // invariant: hi is feasible
  while (lo < hi) {
    const Tick mid = lo + (hi - lo) / 2;
    if (probe(snapshot, kernel, rho, TimeInterval(start, mid), focus)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

std::optional<Tick> earliest_feasible_deadline(const ResourceSet& available,
                                               const ConcurrentRequirement& rho,
                                               Tick latest, PlanningPolicy policy) {
  return earliest_feasible_deadline(FeasibilitySnapshot::over(available), rho,
                                    latest, PlanningKernel(policy));
}

std::optional<Tick> latest_feasible_start(const FeasibilitySnapshot& snapshot,
                                          const ConcurrentRequirement& rho,
                                          const PlanningKernel& kernel) {
  const Tick deadline = rho.window().end();
  const TimeInterval focus(rho.window().start(), deadline);
  auto feasible_from = [&](Tick s) {
    return probe(snapshot, kernel, rho, TimeInterval(s, deadline), focus);
  };
  if (!feasible_from(rho.window().start())) return std::nullopt;
  // Shrinking the window from the left is monotone the other way: if start s
  // fails, every later start fails too.
  Tick lo = rho.window().start(), hi = deadline - 1;  // invariant: lo is feasible
  while (lo < hi) {
    const Tick mid = lo + (hi - lo + 1) / 2;
    if (feasible_from(mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::optional<Tick> latest_feasible_start(const ResourceSet& available,
                                          const ConcurrentRequirement& rho,
                                          PlanningPolicy policy) {
  return latest_feasible_start(FeasibilitySnapshot::over(available), rho,
                               PlanningKernel(policy));
}

CounterOffer request_with_counter_offer(RotaAdmissionController& controller,
                                        const ConcurrentRequirement& rho, Tick now,
                                        Tick max_deadline) {
  CounterOffer offer;
  offer.decision = controller.request(rho, now);
  if (offer.decision.accepted) return offer;
  if (max_deadline <= rho.window().end()) return offer;  // nothing to offer

  // Probe the residual for the smallest workable extension. The probe window
  // starts where the kernel would clip: max(s, now). One snapshot serves the
  // whole search; its restriction cache holds the single restricted view
  // every candidate window is planned against.
  const Tick start = std::max(rho.window().start(), now);
  if (start >= max_deadline) return offer;
  const ConcurrentRequirement probe_rho =
      clip_requirement(rho, TimeInterval(start, max_deadline));
  const FeasibilitySnapshot snapshot =
      FeasibilitySnapshot::capture(controller.ledger());
  auto d = earliest_feasible_deadline(snapshot, probe_rho, max_deadline,
                                      controller.kernel());
  // Only offer genuine extensions (a d inside the original window would
  // contradict the rejection; guard against boundary effects).
  if (d && *d > rho.window().end()) offer.suggested_deadline = d;
  return offer;
}

std::vector<ConcurrentPlan> admissible_copies(const ResourceSet& available,
                                              const ConcurrentRequirement& rho,
                                              std::size_t max_copies,
                                              PlanningPolicy policy) {
  const PlanningKernel kernel(policy);
  std::vector<ConcurrentPlan> plans;
  FeasibilitySnapshot snapshot = FeasibilitySnapshot::over(available);
  for (std::size_t i = 0; i < max_copies; ++i) {
    PlanResult result = kernel.speculate(rho, rho.window().start(), snapshot);
    if (!result.feasible()) break;
    auto next = snapshot.minus(*result.plan);
    if (!next) {
      throw std::logic_error("admissible_copies: plan exceeded residual");
    }
    snapshot = std::move(*next);
    plans.push_back(std::move(*result.plan));
  }
  return plans;
}

}  // namespace rota
