#include "rota/admission/negotiation.hpp"

#include <algorithm>
#include <stdexcept>

#include "rota/admission/controller.hpp"

namespace rota {

namespace {

ConcurrentRequirement with_window(const ConcurrentRequirement& rho,
                                  const TimeInterval& window) {
  std::vector<ComplexRequirement> actors;
  actors.reserve(rho.actors().size());
  for (const auto& a : rho.actors()) {
    actors.emplace_back(a.actor(), a.phases(), window, a.rate_cap());
  }
  return ConcurrentRequirement(rho.name(), std::move(actors), window);
}

}  // namespace

std::optional<Tick> earliest_feasible_deadline(const ResourceSet& available,
                                               const ConcurrentRequirement& rho,
                                               Tick latest, PlanningPolicy policy) {
  const Tick start = rho.window().start();
  if (latest <= start) {
    throw std::invalid_argument("earliest_feasible_deadline: latest must follow s");
  }
  // ASAP feasibility is monotone in d: a plan for d also works for d' > d.
  if (!plan_concurrent(available, with_window(rho, TimeInterval(start, latest)),
                       policy)) {
    return std::nullopt;
  }
  Tick lo = start + 1, hi = latest;  // invariant: hi is feasible
  while (lo < hi) {
    const Tick mid = lo + (hi - lo) / 2;
    if (plan_concurrent(available, with_window(rho, TimeInterval(start, mid)),
                        policy)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

std::optional<Tick> latest_feasible_start(const ResourceSet& available,
                                          const ConcurrentRequirement& rho,
                                          PlanningPolicy policy) {
  const Tick deadline = rho.window().end();
  auto feasible_from = [&](Tick s) {
    return plan_concurrent(available, with_window(rho, TimeInterval(s, deadline)),
                           policy)
        .has_value();
  };
  if (!feasible_from(rho.window().start())) return std::nullopt;
  // Shrinking the window from the left is monotone the other way: if start s
  // fails, every later start fails too.
  Tick lo = rho.window().start(), hi = deadline - 1;  // invariant: lo is feasible
  while (lo < hi) {
    const Tick mid = lo + (hi - lo + 1) / 2;
    if (feasible_from(mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

CounterOffer request_with_counter_offer(RotaAdmissionController& controller,
                                        const ConcurrentRequirement& rho, Tick now,
                                        Tick max_deadline) {
  CounterOffer offer;
  offer.decision = controller.request(rho, now);
  if (offer.decision.accepted) return offer;
  if (max_deadline <= rho.window().end()) return offer;  // nothing to offer

  // Probe the residual for the smallest workable extension. The probe window
  // starts where the controller would clip: max(s, now).
  const Tick start = std::max(rho.window().start(), now);
  if (start >= max_deadline) return offer;
  std::vector<ComplexRequirement> actors;
  actors.reserve(rho.actors().size());
  for (const auto& a : rho.actors()) {
    actors.emplace_back(a.actor(), a.phases(), TimeInterval(start, max_deadline),
                        a.rate_cap());
  }
  const ConcurrentRequirement probe(rho.name(), std::move(actors),
                                    TimeInterval(start, max_deadline));
  auto d = earliest_feasible_deadline(
      controller.ledger().residual().restricted(probe.window()), probe,
      max_deadline, controller.policy());
  // Only offer genuine extensions (a d inside the original window would
  // contradict the rejection; guard against boundary effects).
  if (d && *d > rho.window().end()) offer.suggested_deadline = d;
  return offer;
}

std::vector<ConcurrentPlan> admissible_copies(const ResourceSet& available,
                                              const ConcurrentRequirement& rho,
                                              std::size_t max_copies,
                                              PlanningPolicy policy) {
  std::vector<ConcurrentPlan> plans;
  ResourceSet residual = available;
  for (std::size_t i = 0; i < max_copies; ++i) {
    auto plan = plan_concurrent(residual, rho, policy);
    if (!plan) break;
    auto next = residual.relative_complement(plan->usage_as_resources());
    if (!next) {
      throw std::logic_error("admissible_copies: plan exceeded residual");
    }
    residual = std::move(*next);
    plans.push_back(std::move(*plan));
  }
  return plans;
}

}  // namespace rota
