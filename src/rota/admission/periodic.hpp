// Periodic computations: the classic real-time workload shape, expressed in
// ROTA's vocabulary.
//
// A periodic task is a template computation released every `period` ticks:
// instance k runs in window [s + k·period, d + k·period). Because ROTA
// requirements carry their windows explicitly, periodicity is pure
// expansion — every instance is an ordinary DistributedComputation, and
// admission of the whole series is Theorem 4 applied instance by instance
// (all-or-nothing: a series you cannot sustain should not start).
#pragma once

#include <optional>
#include <vector>

#include "rota/admission/controller.hpp"
#include "rota/computation/actor_computation.hpp"

namespace rota {

/// Instances k = 0 … count-1 of `task`, each shifted by k·period. Instance
/// names get a "#k" suffix. Requires period >= 1 and count >= 1. Note that
/// period may be smaller than the window length — instances then overlap,
/// which is legal (the planner simply fits them side by side).
std::vector<DistributedComputation> expand_periodic(const DistributedComputation& task,
                                                    Tick period, std::size_t count);

/// Outcome of admitting a periodic series.
struct PeriodicAdmission {
  bool accepted = false;
  std::vector<ConcurrentPlan> plans;  // one per instance when accepted
  std::size_t failed_instance = 0;    // first instance that did not fit
  std::string reason;                 // its rejection reason
};

/// All-or-nothing admission of the series: every instance is planned against
/// the controller's residual; if any fails, earlier instances are released
/// and the controller is left exactly as found. Requires
/// task.earliest_start() > now (throws otherwise): rollback uses the
/// computation-leave rule, which is only legal before a computation starts.
PeriodicAdmission admit_periodic(RotaAdmissionController& controller,
                                 const DistributedComputation& task, Tick period,
                                 std::size_t count, Tick now);

/// The largest sustainable instance count within [0, max_count]: admits
/// nothing (probes a copy of the controller), just reports how far the
/// series could go. Useful for rate negotiation ("how often can you run
/// this?").
std::size_t sustainable_instances(const RotaAdmissionController& controller,
                                  const DistributedComputation& task, Tick period,
                                  std::size_t max_count, Tick now);

}  // namespace rota
