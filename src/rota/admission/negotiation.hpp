// Deadline negotiation: turning yes/no admission into counter-offers.
//
// ROTA's verdicts are binary — (Λ, s, d) fits or it does not. A practical
// admission service wants to answer the follow-ups: *what deadline could you
// promise?*, *when could you start?*, *how many copies of this would fit?*
// All three reduce to monotone searches over the planning kernel: enlarging
// the window (later d, or earlier s) never hurts ASAP feasibility, so binary
// search applies. Every probe is a PlanningKernel::speculate against one
// FeasibilitySnapshot — the snapshot's restriction cache means a whole
// search pays for a single residual restriction, not one per candidate
// window.
#pragma once

#include <optional>

#include "rota/admission/controller.hpp"
#include "rota/computation/requirement.hpp"
#include "rota/plan/kernel.hpp"

namespace rota {

/// The smallest deadline d' >= s+1 such that (Λ, s, d') is feasible against
/// the snapshot, probing no further than `latest`. The requirement's own
/// deadline is ignored; phases and earliest start are kept. nullopt when
/// even d' = latest fails.
std::optional<Tick> earliest_feasible_deadline(const FeasibilitySnapshot& snapshot,
                                               const ConcurrentRequirement& rho,
                                               Tick latest,
                                               const PlanningKernel& kernel);

/// Convenience overload over a bare availability.
std::optional<Tick> earliest_feasible_deadline(const ResourceSet& available,
                                               const ConcurrentRequirement& rho,
                                               Tick latest,
                                               PlanningPolicy policy = PlanningPolicy::kAsap);

/// The latest start s' (>= the requirement's own s) such that the computation
/// still fits before its deadline — how long admission can be deferred, e.g.
/// while waiting for a cheaper price window. nullopt when even the original
/// start fails.
std::optional<Tick> latest_feasible_start(const FeasibilitySnapshot& snapshot,
                                          const ConcurrentRequirement& rho,
                                          const PlanningKernel& kernel);

/// Convenience overload over a bare availability.
std::optional<Tick> latest_feasible_start(const ResourceSet& available,
                                          const ConcurrentRequirement& rho,
                                          PlanningPolicy policy = PlanningPolicy::kAsap);

/// How many identical copies of the computation fit side by side (each
/// speculated against the what-if snapshot left by the previous ones —
/// FeasibilitySnapshot::minus), capped at `max_copies`. Returns the plans so
/// the caller can commit them.
std::vector<ConcurrentPlan> admissible_copies(const ResourceSet& available,
                                              const ConcurrentRequirement& rho,
                                              std::size_t max_copies,
                                              PlanningPolicy policy = PlanningPolicy::kAsap);

/// A rejection with a counter-offer attached.
struct CounterOffer {
  AdmissionDecision decision;              // verdict for the requested window
  std::optional<Tick> suggested_deadline;  // smallest workable d, if any
};

/// Requests (Λ, s, d); on rejection, probes the controller's residual for the
/// smallest deadline extension (up to `max_deadline`) that *would* fit and
/// attaches it as a counter-offer. The caller decides whether to accept the
/// offer by re-requesting with the extended window — nothing is committed
/// for a rejected request.
CounterOffer request_with_counter_offer(RotaAdmissionController& controller,
                                        const ConcurrentRequirement& rho, Tick now,
                                        Tick max_deadline);

}  // namespace rota
