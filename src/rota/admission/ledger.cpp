#include "rota/admission/ledger.hpp"

#include <algorithm>
#include <stdexcept>

namespace rota {

void CommitmentLedger::join(const ResourceSet& joined) {
  supply_.union_with(joined);
  residual_.union_with(joined);
  ++revision_;
}

void CommitmentLedger::advance_to(Tick t) {
  if (t < now_) throw std::logic_error("CommitmentLedger: time cannot move backwards");
  now_ = t;
}

bool CommitmentLedger::admit(const std::string& name, const TimeInterval& window,
                             const ConcurrentPlan& plan) {
  auto next_residual = residual_.relative_complement(plan.usage_as_resources());
  if (!next_residual) return false;
  residual_ = std::move(*next_residual);
  admitted_.push_back(AdmittedRecord{name, window, plan, now_});
  ++revision_;
  return true;
}

bool CommitmentLedger::release(const std::string& name) {
  auto it = std::find_if(admitted_.begin(), admitted_.end(),
                         [&](const AdmittedRecord& r) { return r.name == name; });
  if (it == admitted_.end()) return false;
  if (now_ >= it->window.start()) {
    throw std::logic_error("computation " + name +
                           " has already started and may not leave");
  }
  residual_.union_with(it->plan.usage_as_resources());
  admitted_.erase(it);
  ++revision_;
  return true;
}

bool CommitmentLedger::carve(const ResourceSet& slice) {
  auto next_residual = residual_.relative_complement(slice);
  if (!next_residual) return false;
  auto next_supply = supply_.relative_complement(slice);
  if (!next_supply) return false;  // residual ⊆ supply, so this cannot fail
  residual_ = std::move(*next_residual);
  supply_ = std::move(*next_supply);
  ++revision_;
  return true;
}

void CommitmentLedger::merge(CommitmentLedger&& other) {
  supply_.union_with(other.supply_);
  residual_.union_with(other.residual_);
  admitted_.insert(admitted_.end(),
                   std::make_move_iterator(other.admitted_.begin()),
                   std::make_move_iterator(other.admitted_.end()));
  now_ = std::max(now_, other.now_);
  other.supply_ = ResourceSet{};
  other.residual_ = ResourceSet{};
  other.admitted_.clear();
  ++revision_;
}

double CommitmentLedger::utilization(const LocatedType& type,
                                     const TimeInterval& window) const {
  const Quantity total = supply_.quantity(type, window);
  if (total <= 0) return 0.0;
  const Quantity free = residual_.quantity(type, window);
  return 1.0 - static_cast<double>(free) / static_cast<double>(total);
}

}  // namespace rota
