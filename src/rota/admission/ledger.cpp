#include "rota/admission/ledger.hpp"

#include <algorithm>
#include <stdexcept>

#include "rota/obs/obs.hpp"

namespace rota {

namespace {

/// Shared bookkeeping for every residual-changing ledger operation:
/// `counter` is the operation's event count, invoked only when metered.
void note_revision(obs::Counter& (*counter)(obs::CoreMetrics&), std::uint64_t revision) {
  if (!obs::metrics_enabled()) return;
  obs::CoreMetrics& m = obs::CoreMetrics::get();
  counter(m).add();
  m.ledger_revision.set(static_cast<std::int64_t>(revision));
}

}  // namespace

void CommitmentLedger::bump_revision(const ResourceSet& touched) {
  ++revision_;
  touched.for_each_type(
      [this](const LocatedType& type) { ++shard_revisions_[shard_of(type)]; });
}

void CommitmentLedger::bump_revision_all() {
  ++revision_;
  for (auto& r : shard_revisions_) ++r;
}

void CommitmentLedger::join(const ResourceSet& joined) {
  ROTA_OBS_SPAN("ledger.join");
  supply_.union_with(joined);
  residual_.union_with(joined);
  bump_revision(joined);
  note_revision([](obs::CoreMetrics& m) -> obs::Counter& { return m.ledger_joins; },
                revision_);
}

void CommitmentLedger::advance_to(Tick t) {
  if (t < now_) throw std::logic_error("CommitmentLedger: time cannot move backwards");
  now_ = t;
}

bool CommitmentLedger::admit(const std::string& name, const TimeInterval& window,
                             const ConcurrentPlan& plan) {
  ROTA_OBS_SPAN("ledger.admit");
  const ResourceSet usage = plan.usage_as_resources();
  auto next_residual = residual_.relative_complement(usage);
  if (!next_residual) return false;
  residual_ = std::move(*next_residual);
  admitted_.push_back(AdmittedRecord{name, window, plan, now_});
  bump_revision(usage);
  note_revision([](obs::CoreMetrics& m) -> obs::Counter& { return m.ledger_admits; },
                revision_);
  return true;
}

bool CommitmentLedger::release(const std::string& name) {
  ROTA_OBS_SPAN("ledger.release");
  auto it = std::find_if(admitted_.begin(), admitted_.end(),
                         [&](const AdmittedRecord& r) { return r.name == name; });
  if (it == admitted_.end()) return false;
  if (now_ >= it->window.start()) {
    throw std::logic_error("computation " + name +
                           " has already started and may not leave");
  }
  const ResourceSet usage = it->plan.usage_as_resources();
  residual_.union_with(usage);
  admitted_.erase(it);
  bump_revision(usage);
  note_revision([](obs::CoreMetrics& m) -> obs::Counter& { return m.ledger_releases; },
                revision_);
  return true;
}

bool CommitmentLedger::carve(const ResourceSet& slice) {
  auto next_residual = residual_.relative_complement(slice);
  if (!next_residual) return false;
  auto next_supply = supply_.relative_complement(slice);
  if (!next_supply) return false;  // residual ⊆ supply, so this cannot fail
  residual_ = std::move(*next_residual);
  supply_ = std::move(*next_supply);
  bump_revision(slice);
  return true;
}

void CommitmentLedger::merge(CommitmentLedger&& other) {
  supply_.union_with(other.supply_);
  residual_.union_with(other.residual_);
  admitted_.insert(admitted_.end(),
                   std::make_move_iterator(other.admitted_.begin()),
                   std::make_move_iterator(other.admitted_.end()));
  now_ = std::max(now_, other.now_);
  other.supply_ = ResourceSet{};
  other.residual_ = ResourceSet{};
  other.admitted_.clear();
  bump_revision_all();
}

double CommitmentLedger::utilization(const LocatedType& type,
                                     const TimeInterval& window) const {
  const Quantity total = supply_.quantity(type, window);
  if (total <= 0) return 0.0;
  const Quantity free = residual_.quantity(type, window);
  return 1.0 - static_cast<double>(free) / static_cast<double>(total);
}

}  // namespace rota
