#include "rota/admission/audit.hpp"

#include <sstream>
#include <stdexcept>

namespace rota {

AuditLog::AuditLog(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("AuditLog needs capacity >= 1");
}

void AuditLog::record(Tick at, const ConcurrentRequirement& rho,
                      const AdmissionDecision& decision) {
  AuditEntry entry;
  entry.at = at;
  entry.computation = rho.name();
  entry.window = rho.window();
  entry.total_demand = rho.total_demand().total();
  entry.accepted = decision.accepted;
  if (decision.accepted) {
    entry.planned_finish = decision.plan ? decision.plan->finish : rho.window().end();
    entry.plan = decision.plan;
  } else {
    entry.reason = decision.reason;
  }

  entries_.push_back(std::move(entry));
  if (entries_.size() > capacity_) entries_.pop_front();
  ++total_;
  total_accepted_ += decision.accepted ? 1 : 0;
}

double AuditLog::acceptance() const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(total_accepted_) / static_cast<double>(total_);
}

std::map<std::string, std::size_t> AuditLog::rejection_reasons() const {
  std::map<std::string, std::size_t> out;
  for (const auto& e : entries_) {
    if (!e.accepted) ++out[e.reason];
  }
  return out;
}

std::map<Tick, double> AuditLog::acceptance_by_window(Tick bucket_width) const {
  if (bucket_width <= 0) {
    throw std::invalid_argument("acceptance_by_window needs a positive bucket");
  }
  std::map<Tick, std::pair<std::size_t, std::size_t>> buckets;  // accepted, total
  for (const auto& e : entries_) {
    auto& [accepted, total] = buckets[e.window.length() / bucket_width];
    accepted += e.accepted ? 1 : 0;
    ++total;
  }
  std::map<Tick, double> out;
  for (const auto& [bucket, counts] : buckets) {
    out[bucket] = static_cast<double>(counts.first) / counts.second;
  }
  return out;
}

double AuditLog::mean_slack_fraction() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (!e.accepted || e.window.empty()) continue;
    sum += static_cast<double>(e.window.end() - e.planned_finish) /
           static_cast<double>(e.window.length());
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::size_t AuditLog::replay_into(CommitmentLedger& ledger) const {
  // Recovery goes through the same commit gate as live admission
  // (PlanningKernel::replay), so a WAL rebuild cannot bypass the
  // revision-checked path or its conflict handling.
  const PlanningKernel kernel;
  std::size_t replayed = 0;
  for (const auto& e : entries_) {
    if (!e.accepted || !e.plan) continue;
    if (kernel.replay(e.computation, e.window, *e.plan, ledger)) ++replayed;
  }
  return replayed;
}

std::string AuditLog::to_string() const {
  std::ostringstream out;
  out << "audit: " << total_ << " decisions, acceptance "
      << acceptance() << ", retained " << entries_.size();
  return out.str();
}

AdmissionDecision AuditedController::request(const DistributedComputation& lambda,
                                             Tick now) {
  return request(make_concurrent_requirement(controller_.phi(), lambda), now);
}

AdmissionDecision AuditedController::request(const ConcurrentRequirement& rho,
                                             Tick now) {
  AdmissionDecision decision = controller_.request(rho, now);
  log_.record(now, rho, decision);
  return decision;
}

}  // namespace rota
