#include "rota/admission/controller.hpp"

#include <algorithm>

namespace rota {

AdmissionDecision RotaAdmissionController::request(const DistributedComputation& lambda,
                                                   Tick now) {
  return request(make_concurrent_requirement(phi_, lambda), now);
}

AdmissionDecision RotaAdmissionController::request(const ConcurrentRequirement& rho,
                                                   Tick now) {
  ledger_.advance_to(std::max(now, ledger_.now()));

  AdmissionDecision decision;
  const TimeInterval window(std::max(rho.window().start(), now), rho.window().end());
  if (window.empty()) {
    decision.reason = "deadline has already passed";
    return decision;
  }

  // Re-clip the requirement in case the earliest start is already behind us.
  std::vector<ComplexRequirement> clipped;
  clipped.reserve(rho.actors().size());
  for (const auto& a : rho.actors()) {
    clipped.emplace_back(a.actor(), a.phases(), window, a.rate_cap());
  }
  const ConcurrentRequirement effective(rho.name(), std::move(clipped), window);

  auto plan = plan_concurrent(ledger_.residual().restricted(window), effective, policy_);
  if (!plan) {
    decision.reason = "no feasible plan over expiring resources";
    return decision;
  }
  if (!ledger_.admit(rho.name(), window, *plan)) {
    decision.reason = "plan no longer fits residual";  // defensive; not expected
    return decision;
  }
  decision.accepted = true;
  decision.plan = std::move(*plan);
  return decision;
}

}  // namespace rota
