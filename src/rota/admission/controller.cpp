#include "rota/admission/controller.hpp"

#include <algorithm>

#include "rota/obs/obs.hpp"

namespace rota {

TimeInterval effective_window(const ConcurrentRequirement& rho, Tick now) {
  return TimeInterval(std::max(rho.window().start(), now), rho.window().end());
}

ConcurrentRequirement clip_requirement(const ConcurrentRequirement& rho,
                                       const TimeInterval& window) {
  std::vector<ComplexRequirement> clipped;
  clipped.reserve(rho.actors().size());
  for (const auto& a : rho.actors()) {
    clipped.emplace_back(a.actor(), a.phases(), window, a.rate_cap());
  }
  return ConcurrentRequirement(rho.name(), std::move(clipped), window);
}

AdmissionDecision decide_request(CommitmentLedger& ledger,
                                 const ConcurrentRequirement& rho, Tick now,
                                 PlanningPolicy policy) {
  ROTA_OBS_SPAN("admit.decide");
  ledger.advance_to(std::max(now, ledger.now()));

  AdmissionDecision decision;
  const TimeInterval window = effective_window(rho, now);
  if (window.empty()) {
    decision.reason = "deadline has already passed";
    if (obs::metrics_enabled()) obs::CoreMetrics::get().admission_rejected_deadline.add();
    return decision;
  }

  const ConcurrentRequirement effective = clip_requirement(rho, window);
  auto plan = plan_concurrent(ledger.residual().restricted(window), effective, policy);
  if (!plan) {
    decision.reason = "no feasible plan over expiring resources";
    if (obs::metrics_enabled()) obs::CoreMetrics::get().admission_rejected_no_plan.add();
    return decision;
  }
  if (!ledger.admit(rho.name(), window, *plan)) {
    decision.reason = "plan no longer fits residual";  // defensive; not expected
    if (obs::metrics_enabled()) obs::CoreMetrics::get().admission_rejected_conflict.add();
    return decision;
  }
  decision.accepted = true;
  decision.plan = std::move(*plan);
  if (obs::metrics_enabled()) obs::CoreMetrics::get().admission_accepted.add();
  return decision;
}

AdmissionDecision RotaAdmissionController::request(const DistributedComputation& lambda,
                                                   Tick now) {
  return request(make_concurrent_requirement(phi_, lambda), now);
}

AdmissionDecision RotaAdmissionController::request(const ConcurrentRequirement& rho,
                                                   Tick now) {
  return decide_request(ledger_, rho, now, policy_);
}

}  // namespace rota
