#include "rota/admission/controller.hpp"

namespace rota {

AdmissionDecision RotaAdmissionController::request(const DistributedComputation& lambda,
                                                   Tick now) {
  return request(make_concurrent_requirement(phi_, lambda), now);
}

}  // namespace rota
