#include "rota/admission/periodic.hpp"

#include <stdexcept>

namespace rota {

std::vector<DistributedComputation> expand_periodic(const DistributedComputation& task,
                                                    Tick period, std::size_t count) {
  if (period < 1) throw std::invalid_argument("periodic: period must be >= 1");
  if (count < 1) throw std::invalid_argument("periodic: count must be >= 1");
  std::vector<DistributedComputation> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const Tick shift = static_cast<Tick>(k) * period;
    out.emplace_back(task.name() + "#" + std::to_string(k), task.actors(),
                     task.earliest_start() + shift, task.deadline() + shift);
  }
  return out;
}

PeriodicAdmission admit_periodic(RotaAdmissionController& controller,
                                 const DistributedComputation& task, Tick period,
                                 std::size_t count, Tick now) {
  // All-or-nothing needs rollback, and the computation-leave rule only
  // permits releasing computations that have not started — so the first
  // release must still be in the future when a later instance fails.
  if (task.earliest_start() <= now) {
    throw std::invalid_argument(
        "admit_periodic: the series must start strictly after `now` so that "
        "rollback (the leave rule) stays legal");
  }
  PeriodicAdmission result;
  const auto instances = expand_periodic(task, period, count);
  std::vector<std::string> admitted_names;
  for (std::size_t k = 0; k < instances.size(); ++k) {
    AdmissionDecision d = controller.request(instances[k], now);
    if (!d.accepted) {
      result.failed_instance = k;
      result.reason = d.reason;
      // Roll back: none of the earlier instances has started (their windows
      // lie in the future of `now` by construction when s > now; if the
      // first window already began, release will throw — surface that).
      for (auto it = admitted_names.rbegin(); it != admitted_names.rend(); ++it) {
        controller.release(*it);
      }
      result.plans.clear();
      return result;
    }
    admitted_names.push_back(instances[k].name());
    result.plans.push_back(std::move(*d.plan));
  }
  result.accepted = true;
  return result;
}

std::size_t sustainable_instances(const RotaAdmissionController& controller,
                                  const DistributedComputation& task, Tick period,
                                  std::size_t max_count, Tick now) {
  RotaAdmissionController probe = controller;  // never mutate the caller's
  const auto instances = expand_periodic(task, period, std::max<std::size_t>(1, max_count));
  std::size_t sustained = 0;
  for (const auto& instance : instances) {
    if (sustained >= max_count) break;
    if (!probe.request(instance, now).accepted) break;
    ++sustained;
  }
  return sustained;
}

}  // namespace rota
