#include "rota/admission/periodic.hpp"

#include <stdexcept>

#include "rota/plan/kernel.hpp"

namespace rota {

std::vector<DistributedComputation> expand_periodic(const DistributedComputation& task,
                                                    Tick period, std::size_t count) {
  if (period < 1) throw std::invalid_argument("periodic: period must be >= 1");
  if (count < 1) throw std::invalid_argument("periodic: count must be >= 1");
  std::vector<DistributedComputation> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const Tick shift = static_cast<Tick>(k) * period;
    out.emplace_back(task.name() + "#" + std::to_string(k), task.actors(),
                     task.earliest_start() + shift, task.deadline() + shift);
  }
  return out;
}

PeriodicAdmission admit_periodic(RotaAdmissionController& controller,
                                 const DistributedComputation& task, Tick period,
                                 std::size_t count, Tick now) {
  // All-or-nothing needs rollback, and the computation-leave rule only
  // permits releasing computations that have not started — so the first
  // release must still be in the future when a later instance fails.
  if (task.earliest_start() <= now) {
    throw std::invalid_argument(
        "admit_periodic: the series must start strictly after `now` so that "
        "rollback (the leave rule) stays legal");
  }
  PeriodicAdmission result;
  const auto instances = expand_periodic(task, period, count);
  std::vector<std::string> admitted_names;
  for (std::size_t k = 0; k < instances.size(); ++k) {
    // Instance by instance through the kernel: speculate against the live
    // residual, commit on success (stale cannot happen between the two in
    // this sequential loop, but the loop keeps the contract honest).
    const ConcurrentRequirement rho =
        make_concurrent_requirement(controller.phi(), instances[k]);
    std::optional<AdmissionDecision> d;
    do {
      const PlanResult speculation = controller.kernel().speculate(
          rho, now, FeasibilitySnapshot::capture(controller.ledger()));
      d = controller.commit(speculation);
    } while (!d);
    if (!d->accepted) {
      result.failed_instance = k;
      result.reason = d->reason;
      // Roll back: none of the earlier instances has started (their windows
      // lie in the future of `now` by construction when s > now; if the
      // first window already began, release will throw — surface that).
      for (auto it = admitted_names.rbegin(); it != admitted_names.rend(); ++it) {
        controller.release(*it);
      }
      result.plans.clear();
      return result;
    }
    admitted_names.push_back(instances[k].name());
    result.plans.push_back(std::move(*d->plan));
  }
  result.accepted = true;
  return result;
}

std::size_t sustainable_instances(const RotaAdmissionController& controller,
                                  const DistributedComputation& task, Tick period,
                                  std::size_t max_count, Tick now) {
  // Pure speculation: chain what-if snapshots (each minus the previous
  // instance's plan) instead of probing a copied controller — the caller's
  // ledger is never touched and nothing is copied up front.
  const auto instances = expand_periodic(task, period, std::max<std::size_t>(1, max_count));
  FeasibilitySnapshot snapshot = FeasibilitySnapshot::capture(controller.ledger());
  std::size_t sustained = 0;
  for (const auto& instance : instances) {
    if (sustained >= max_count) break;
    const ConcurrentRequirement rho =
        make_concurrent_requirement(controller.phi(), instance);
    PlanResult result = controller.kernel().speculate(rho, now, snapshot);
    if (!result.feasible()) break;
    auto next = snapshot.minus(*result.plan);
    if (!next) break;  // defensive: a feasible plan is covered by the view
    snapshot = std::move(*next);
    ++sustained;
  }
  return sustained;
}

}  // namespace rota
