// Admission audit log: what was decided, when, and why.
//
// A production admission service must answer "why was my job rejected at
// 14:02?" without re-running the planner. AuditLog is a bounded record of
// decisions with derived statistics: acceptance over time, rejection-reason
// histogram, and per-window-size acceptance (tight deadlines get rejected
// more — the histogram shows operators where the pressure is).
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <string>

#include "rota/admission/controller.hpp"

namespace rota {

struct AuditEntry {
  Tick at = 0;                 // decision time
  std::string computation;
  TimeInterval window;         // requested window
  Quantity total_demand = 0;   // aggregate quantity requested
  bool accepted = false;
  std::string reason;          // empty when accepted
  Tick planned_finish = 0;     // valid when accepted
  /// The committed plan (accepted entries only) — the write-ahead record
  /// replay_into() uses to rebuild a crashed node's ledger.
  std::optional<ConcurrentPlan> plan;
};

class AuditLog {
 public:
  /// Keeps at most `capacity` most-recent entries (older ones roll off).
  explicit AuditLog(std::size_t capacity = 4096);

  /// Records one decision (call right after RotaAdmissionController::request).
  void record(Tick at, const ConcurrentRequirement& rho,
              const AdmissionDecision& decision);

  const std::deque<AuditEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  std::size_t total_recorded() const { return total_; }

  /// Acceptance ratio over everything ever recorded (not just retained).
  double acceptance() const;

  /// Rejection reasons → counts, over retained entries.
  std::map<std::string, std::size_t> rejection_reasons() const;

  /// Acceptance ratio bucketed by requested window length: bucket k covers
  /// lengths [k·bucket_width, (k+1)·bucket_width). Over retained entries.
  std::map<Tick, double> acceptance_by_window(Tick bucket_width) const;

  /// Laxity actually granted to accepted jobs: mean of
  /// (window end − planned finish) / window length. 0 when none accepted.
  double mean_slack_fraction() const;

  /// Crash recovery: re-admits every retained accepted entry (in decision
  /// order, with its recorded plan) into `ledger`. Replaying onto a fresh
  /// ledger with the pre-crash supply reproduces the pre-crash residual and
  /// — when the log retains the node's full history — its revision counter.
  /// Returns the number of entries re-admitted; entries whose plan no longer
  /// fits (supply shrank since the crash) are skipped, never partially
  /// applied.
  std::size_t replay_into(CommitmentLedger& ledger) const;

  std::string to_string() const;

 private:
  std::size_t capacity_;
  std::deque<AuditEntry> entries_;
  std::size_t total_ = 0;
  std::size_t total_accepted_ = 0;
};

/// Convenience wrapper: a controller plus its audit trail.
class AuditedController {
 public:
  AuditedController(CostModel phi, ResourceSet supply,
                    PlanningPolicy policy = PlanningPolicy::kAsap,
                    std::size_t audit_capacity = 4096)
      : controller_(std::move(phi), std::move(supply), policy),
        log_(audit_capacity) {}

  AdmissionDecision request(const DistributedComputation& lambda, Tick now);
  AdmissionDecision request(const ConcurrentRequirement& rho, Tick now);
  void on_join(const ResourceSet& joined) { controller_.on_join(joined); }

  const RotaAdmissionController& controller() const { return controller_; }
  const AuditLog& log() const { return log_; }

 private:
  RotaAdmissionController controller_;
  AuditLog log_;
};

}  // namespace rota
