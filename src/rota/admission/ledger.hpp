// The commitment ledger: online bookkeeping behind Theorem 4.
//
// The ledger tracks total supply and the *residual* — supply minus the
// consumption plans of every admitted computation. The residual is exactly
// Θ_expire of the committed path (what would expire unused), so "plan the
// newcomer against the residual, subtract its plan on success" is the online
// form of Theorem 4's accommodation condition: existing commitments are
// untouched by construction.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rota/admission/shard.hpp"
#include "rota/logic/planner.hpp"
#include "rota/resource/resource_set.hpp"

namespace rota {

struct AdmittedRecord {
  std::string name;
  TimeInterval window;
  ConcurrentPlan plan;
  Tick admitted_at = 0;
};

class CommitmentLedger {
 public:
  CommitmentLedger() = default;
  explicit CommitmentLedger(ResourceSet supply, Tick now = 0)
      : supply_(supply), residual_(std::move(supply)), now_(now) {}

  const ResourceSet& supply() const { return supply_; }

  /// The cached residual, maintained incrementally across commits — planning
  /// reads this directly instead of re-deriving supply minus all admitted
  /// plans on every request.
  const ResourceSet& residual() const { return residual_; }

  /// Bumped whenever the residual changes (join/admit/release/carve/merge).
  /// Optimistic readers — the batched admission pipeline — snapshot the
  /// revision together with residual() and revalidate against it at commit.
  std::uint64_t revision() const { return revision_; }

  /// Per-location-shard revision counters (see shard.hpp). A mutation bumps
  /// exactly the shards of the types it changed, so an optimistic reader that
  /// recorded the stamp of its demand's shards can revalidate against those
  /// alone: commits on other locations do not invalidate it.
  const ShardRevisions& shard_revisions() const { return shard_revisions_; }
  std::uint64_t shard_revision(std::size_t s) const { return shard_revisions_[s]; }
  /// Compressed stamp of the masked shards (see shard_stamp in shard.hpp).
  std::uint64_t shard_stamp(ShardMask mask) const {
    return rota::shard_stamp(shard_revisions_, mask);
  }

  Tick now() const { return now_; }
  const std::vector<AdmittedRecord>& admitted() const { return admitted_; }

  /// Resource acquisition: new supply is immediately part of the residual.
  void join(const ResourceSet& joined);

  /// Clock advance. Monotonic; throws on retrograde time.
  void advance_to(Tick t);

  /// Records an admission whose plan was computed against residual();
  /// subtracts the plan's usage. Returns false (ledger unchanged) if the
  /// plan does not fit the residual — callers treat that as a rejection.
  bool admit(const std::string& name, const TimeInterval& window,
             const ConcurrentPlan& plan);

  /// Computation leave rule: gives a not-yet-started computation's reserved
  /// supply back to the residual. Throws if it has started (now >= s);
  /// returns false if unknown.
  bool release(const std::string& name);

  /// Fraction of supply of `type` within `window` that is already planned
  /// for (1 − residual/supply); 0 when there is no supply.
  double utilization(const LocatedType& type, const TimeInterval& window) const;

  /// Permanently removes `slice` from both supply and residual — the
  /// resources leave this ledger's authority (CyberOrgs isolation). Returns
  /// false (ledger unchanged) if the residual does not cover the slice:
  /// already-committed resources cannot be given away.
  bool carve(const ResourceSet& slice);

  /// Absorbs another ledger: supply, residual and admitted records merge
  /// (CyberOrgs assimilation). The other ledger is left empty.
  void merge(CommitmentLedger&& other);

  std::size_t admitted_count() const { return admitted_.size(); }

 private:
  /// Bumps the global revision plus the shards of every type in `touched`.
  void bump_revision(const ResourceSet& touched);
  /// Bumps the global revision plus every shard (structural operations whose
  /// footprint is not worth computing: merge).
  void bump_revision_all();

  ResourceSet supply_;
  ResourceSet residual_;
  std::vector<AdmittedRecord> admitted_;
  Tick now_ = 0;
  std::uint64_t revision_ = 0;
  ShardRevisions shard_revisions_{};
};

}  // namespace rota
