// Admission strategies: ROTA and the baselines it is evaluated against.
//
// The paper argues (§III) that "it is not necessarily enough for the total
// amount of resource available over the course of an interval to be greater"
// — temporal structure matters. The baselines here embody exactly the
// reasoning shortcuts that argument rules out, so the benchmarks can show
// what the shortcuts cost:
//   * NaiveTotalQuantity — bookkeeping on aggregate quantities per window,
//     blind to rates and to phase ordering (over-admits);
//   * Optimistic       — checks the newcomer's demand against raw supply,
//     ignoring other commitments entirely (over-admits badly under load);
//   * AlwaysAdmit      — the no-control upper bound on acceptance;
//   * RotaStrategy     — the Theorem-4 controller (never over-admits).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rota/admission/controller.hpp"

namespace rota {

/// Uniform interface the benchmark harness drives. Implementations decide
/// admission only; execution outcomes come from the simulator.
class AdmissionStrategy {
 public:
  virtual ~AdmissionStrategy() = default;

  virtual std::string name() const = 0;
  virtual AdmissionDecision request(const DistributedComputation& lambda, Tick now) = 0;
  virtual void on_join(const ResourceSet& joined) = 0;
};

/// Theorem-4 admission (sound: admitted computations carry feasible plans).
class RotaStrategy final : public AdmissionStrategy {
 public:
  RotaStrategy(CostModel phi, ResourceSet supply,
               PlanningPolicy policy = PlanningPolicy::kAsap, Tick now = 0)
      : controller_(std::move(phi), std::move(supply), policy, now),
        label_("rota-" + policy_name(policy)) {}

  std::string name() const override { return label_; }
  /// The Theorem-4 decision, spelled in kernel vocabulary: speculate against
  /// a snapshot of the residual, commit the result (re-speculating on the
  /// stale case, which cannot arise in this sequential harness).
  AdmissionDecision request(const DistributedComputation& lambda, Tick now) override {
    const ConcurrentRequirement rho =
        make_concurrent_requirement(controller_.phi(), lambda);
    for (;;) {
      const PlanResult speculation = controller_.kernel().speculate(
          rho, now, FeasibilitySnapshot::capture(controller_.ledger()));
      if (auto decision = controller_.commit(speculation)) return *decision;
    }
  }
  void on_join(const ResourceSet& joined) override { controller_.on_join(joined); }

  const RotaAdmissionController& controller() const { return controller_; }

 private:
  RotaAdmissionController controller_;
  std::string label_;
};

/// Admits when, for every located type, the supply quantity within the new
/// window covers the new demand plus all previously admitted demands whose
/// windows overlap it. Quantity-only: no rate limits, no ordering.
class NaiveTotalQuantityStrategy final : public AdmissionStrategy {
 public:
  NaiveTotalQuantityStrategy(CostModel phi, ResourceSet supply)
      : phi_(std::move(phi)), supply_(std::move(supply)) {}

  std::string name() const override { return "naive-total"; }
  AdmissionDecision request(const DistributedComputation& lambda, Tick now) override;
  void on_join(const ResourceSet& joined) override {
    supply_ = supply_.unioned(joined);
  }

 private:
  struct Booking {
    TimeInterval window;
    DemandSet demand;
  };

  CostModel phi_;
  ResourceSet supply_;
  std::vector<Booking> bookings_;
};

/// Admits when raw supply within the window covers the newcomer's demand —
/// existing commitments ignored.
class OptimisticStrategy final : public AdmissionStrategy {
 public:
  OptimisticStrategy(CostModel phi, ResourceSet supply)
      : phi_(std::move(phi)), supply_(std::move(supply)) {}

  std::string name() const override { return "optimistic"; }
  AdmissionDecision request(const DistributedComputation& lambda, Tick now) override;
  void on_join(const ResourceSet& joined) override {
    supply_ = supply_.unioned(joined);
  }

 private:
  CostModel phi_;
  ResourceSet supply_;
};

/// Admits everything with a live deadline.
class AlwaysAdmitStrategy final : public AdmissionStrategy {
 public:
  std::string name() const override { return "always-admit"; }
  AdmissionDecision request(const DistributedComputation& lambda, Tick now) override;
  void on_join(const ResourceSet&) override {}
};

}  // namespace rota
