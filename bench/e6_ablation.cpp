// E6: ablation of the planner's design choices (DESIGN.md §5):
//   * schedule policy — ASAP vs ALAP vs UNIFORM consumption;
//   * admission order within a multi-actor computation — given order vs
//     most-demanding-first;
//   * executor discipline for the same admitted set — plan-following vs EDF
//     vs FCFS work-conserving.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <numeric>

#include "rota/admission/baselines.hpp"
#include "rota/sim/simulator.hpp"
#include "rota/util/table.hpp"
#include "rota/workload/generator.hpp"

namespace {

using namespace rota;

WorkloadGenerator make_generator(std::uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.num_locations = 3;
  config.cpu_rate = 6;
  config.network_rate = 6;
  config.mean_interarrival = 5.0;  // saturating load
  config.laxity = 1.8;             // tight deadlines expose policy differences
  config.actors_min = 1;
  config.actors_max = 3;
  return WorkloadGenerator(config, CostModel());
}

void print_policy_ablation() {
  util::Table table({"policy", "offered", "admitted", "acceptance", "misses"});
  for (PlanningPolicy policy :
       {PlanningPolicy::kAsap, PlanningPolicy::kAlap, PlanningPolicy::kUniform}) {
    WorkloadGenerator gen = make_generator(707);
    const Tick horizon = 700;
    const ResourceSet supply = gen.base_supply(TimeInterval(0, horizon));
    RotaStrategy rota(gen.phi(), supply, policy);
    Simulator sim(supply, 0, ExecutionMode::kPlanFollowing);

    const auto arrivals = gen.make_arrivals(horizon * 2 / 3);
    std::size_t admitted = 0;
    for (const Arrival& a : arrivals) {
      AdmissionDecision d = rota.request(a.computation, a.at);
      if (!d.accepted) continue;
      ++admitted;
      sim.schedule_admission(a.at,
                             make_concurrent_requirement(gen.phi(), a.computation),
                             std::move(d.plan));
    }
    SimReport report = sim.run(horizon);
    table.add_row({policy_name(policy), std::to_string(arrivals.size()),
                   std::to_string(admitted),
                   util::fixed(static_cast<double>(admitted) / arrivals.size(), 3),
                   std::to_string(report.missed())});
  }
  std::cout << "== E6a: schedule-policy ablation (same workload) ==\n"
            << table.to_string()
            << "\nASAP leaves the most tail headroom for later arrivals; ALAP "
               "preserves\nearly supply; UNIFORM is simplest and accepts "
               "least.\n\n";
}

void print_order_ablation() {
  // Within multi-actor computations: does planning the hungriest actor first
  // change acceptance?
  util::Table table({"actor order", "offered", "admitted"});
  for (bool demanding_first : {false, true}) {
    WorkloadGenerator gen = make_generator(717);
    const Tick horizon = 700;
    const ResourceSet supply = gen.base_supply(TimeInterval(0, horizon));
    RotaAdmissionController ctl(gen.phi(), supply);
    const auto arrivals = gen.make_arrivals(horizon * 2 / 3);
    std::size_t admitted = 0;
    for (const Arrival& a : arrivals) {
      ConcurrentRequirement rho =
          make_concurrent_requirement(gen.phi(), a.computation);
      if (demanding_first) {
        // Re-order actors by descending total demand before planning.
        std::vector<ComplexRequirement> actors = rho.actors();
        std::stable_sort(actors.begin(), actors.end(),
                         [](const ComplexRequirement& x, const ComplexRequirement& y) {
                           return x.total_demand().total() > y.total_demand().total();
                         });
        rho = ConcurrentRequirement(rho.name(), std::move(actors), rho.window());
      }
      if (ctl.request(rho, a.at).accepted) ++admitted;
    }
    table.add_row({demanding_first ? "most-demanding-first" : "as-given",
                   std::to_string(arrivals.size()), std::to_string(admitted)});
  }
  std::cout << "== E6b: actor planning order within a computation ==\n"
            << table.to_string() << "\n";
}

void print_executor_ablation() {
  // Same ROTA-admitted set, three executors.
  util::Table table({"executor", "admitted", "misses"});
  struct Mode {
    const char* label;
    ExecutionMode mode;
    PriorityOrder order;
  } modes[] = {
      {"plan-following", ExecutionMode::kPlanFollowing, PriorityOrder::kEdf},
      {"work-conserving edf", ExecutionMode::kWorkConserving, PriorityOrder::kEdf},
      {"work-conserving fcfs", ExecutionMode::kWorkConserving, PriorityOrder::kFcfs},
  };
  for (const Mode& m : modes) {
    WorkloadGenerator gen = make_generator(727);
    const Tick horizon = 700;
    const ResourceSet supply = gen.base_supply(TimeInterval(0, horizon));
    RotaStrategy rota(gen.phi(), supply);
    Simulator sim(supply, 0, m.mode, m.order);
    std::size_t admitted = 0;
    for (const Arrival& a : gen.make_arrivals(horizon * 2 / 3)) {
      AdmissionDecision d = rota.request(a.computation, a.at);
      if (!d.accepted) continue;
      ++admitted;
      sim.schedule_admission(a.at,
                             make_concurrent_requirement(gen.phi(), a.computation),
                             std::move(d.plan));
    }
    table.add_row({m.label, std::to_string(admitted),
                   std::to_string(sim.run(horizon).missed())});
  }
  std::cout << "== E6c: executor discipline for the same admitted set ==\n"
            << table.to_string()
            << "\nplan-following is the assurance guarantee; work-conserving "
               "executors\nusually coincide here because plans never "
               "over-book.\n\n";
}

void BM_PlanPolicies(benchmark::State& state) {
  WorkloadGenerator gen = make_generator(737);
  const ResourceSet supply = gen.base_supply(TimeInterval(0, 2000));
  DistributedComputation c = gen.make_computation(0);
  ConcurrentRequirement rho = make_concurrent_requirement(gen.phi(), c);
  const auto policy = static_cast<PlanningPolicy>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_concurrent(supply, rho, policy));
  }
  state.SetLabel(policy_name(policy));
}
BENCHMARK(BM_PlanPolicies)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  print_policy_ablation();
  print_order_ablation();
  print_executor_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
