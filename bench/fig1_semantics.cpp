// Figure 1 reproduction: the ROTA satisfaction semantics, exercised rule by
// rule on a concrete committed path, plus model-checking cost vs. path
// length and formula depth.
#include <benchmark/benchmark.h>

#include <iostream>

#include "rota/computation/requirement.hpp"
#include "rota/logic/model_checker.hpp"
#include "rota/logic/theorems.hpp"
#include "rota/util/table.hpp"

namespace {

using namespace rota;

struct Fixture {
  Location l1{"f1-l1"};
  Location l2{"f1-l2"};
  CostModel phi;
  ResourceSet supply;
  ComputationPath path{SystemState{}};

  Fixture() {
    supply.add(4, TimeInterval(0, 60), LocatedType::cpu(l1));
    supply.add(4, TimeInterval(0, 60), LocatedType::network(l1, l2));

    // A committed computation consuming the first few ticks.
    auto gamma = ActorComputationBuilder("busy", l1).evaluate().send(l2).build();
    DistributedComputation lambda("busy", {gamma}, 0, 20);
    ConcurrentRequirement rho = make_concurrent_requirement(phi, lambda);
    auto plan = plan_concurrent(supply, rho, PlanningPolicy::kAsap);
    path = realize_plan(supply, rho, *plan, 0);
    // Extend with idle (pure expiration) steps to position 30.
    while (path.back().now() < 30) path.apply(TickStep{});
  }

  SimpleRequirement cpu_demand(Quantity q, Tick s, Tick d) const {
    DemandSet dem;
    dem.add(LocatedType::cpu(l1), q);
    return SimpleRequirement(dem, TimeInterval(s, d));
  }
};

void print_fig1(const Fixture& fx) {
  ModelChecker mc(fx.path);
  util::Table table({"rule", "formula", "position", "verdict"});
  auto row = [&](const std::string& rule, const FormulaPtr& psi, std::size_t pos) {
    table.add_row({rule, psi->to_string().substr(0, 48), std::to_string(pos),
                   mc.satisfies(psi, pos) ? "sat" : "unsat"});
  };

  row("true", f_true(), 0);
  row("false", f_false(), 0);
  row("satisfy-simple (fits leftovers)", f_satisfy(fx.cpu_demand(16, 0, 10)), 0);
  row("satisfy-simple (consumed ticks)", f_satisfy(fx.cpu_demand(1, 0, 2)), 0);

  auto gamma = ActorComputationBuilder("probe", fx.l1).evaluate().send(fx.l2).build();
  ComplexRequirement complex =
      make_complex_requirement(fx.phi, gamma, TimeInterval(0, 15));
  row("satisfy-complex (cut points)", f_satisfy(complex), 0);
  ComplexRequirement tight = make_complex_requirement(fx.phi, gamma, TimeInterval(0, 2));
  row("satisfy-complex (window tight)", f_satisfy(tight), 0);

  auto g1 = ActorComputationBuilder("p1", fx.l1).evaluate().build();
  auto g2 = ActorComputationBuilder("p2", fx.l1).evaluate().build();
  DistributedComputation duo("duo", {g1, g2}, 0, 15);
  row("satisfy-concurrent", f_satisfy(make_concurrent_requirement(fx.phi, duo)), 0);

  row("negation", f_not(f_satisfy(fx.cpu_demand(1, 0, 2))), 0);
  row("eventually", f_eventually(f_satisfy(fx.cpu_demand(4, 0, 20))), 0);
  row("eventually (window passes)", f_eventually(f_satisfy(fx.cpu_demand(4, 0, 3))), 5);
  row("always (degrades)", f_always(f_satisfy(fx.cpu_demand(40, 0, 20))), 0);
  row("always (stable)", f_always(f_not(f_false())), 0);

  std::cout << "== Figure 1: satisfaction semantics on a committed path ==\n"
            << table.to_string() << "\n";
}

const Fixture& fixture() {
  static Fixture fx;
  return fx;
}

void BM_SatisfySimple(benchmark::State& state) {
  const Fixture& fx = fixture();
  ModelChecker mc(fx.path);
  FormulaPtr psi = f_satisfy(fx.cpu_demand(16, 0, 20));
  for (auto _ : state) benchmark::DoNotOptimize(mc.satisfies(psi, 0));
}
BENCHMARK(BM_SatisfySimple);

void BM_SatisfyComplex(benchmark::State& state) {
  const Fixture& fx = fixture();
  ModelChecker mc(fx.path);
  auto gamma = ActorComputationBuilder("probe", fx.l1)
                   .evaluate()
                   .send(fx.l2)
                   .evaluate()
                   .build();
  FormulaPtr psi =
      f_satisfy(make_complex_requirement(fx.phi, gamma, TimeInterval(0, 25)));
  for (auto _ : state) benchmark::DoNotOptimize(mc.satisfies(psi, 0));
}
BENCHMARK(BM_SatisfyComplex);

void BM_TemporalDepth(benchmark::State& state) {
  // Cost of nesting ◇/□ to the given depth: each level scans the path suffix.
  const Fixture& fx = fixture();
  ModelChecker mc(fx.path);
  FormulaPtr psi = f_satisfy(fx.cpu_demand(4, 0, 30));
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    psi = (i % 2 == 0) ? f_eventually(psi) : f_always(psi);
  }
  for (auto _ : state) benchmark::DoNotOptimize(mc.satisfies(psi, 0));
}
BENCHMARK(BM_TemporalDepth)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_PathLength(benchmark::State& state) {
  // Eventually-satisfy over idle paths of growing length.
  Location l1("f1b-l1");
  ResourceSet supply;
  supply.add(4, TimeInterval(0, state.range(0) + 10), LocatedType::cpu(l1));
  ComputationPath path(SystemState(supply, 0));
  for (std::int64_t i = 0; i < state.range(0); ++i) path.apply(TickStep{});
  ModelChecker mc(path);
  DemandSet dem;
  dem.add(LocatedType::cpu(l1), 4);
  FormulaPtr psi = f_eventually(
      f_satisfy(SimpleRequirement(dem, TimeInterval(0, state.range(0) + 5))));
  for (auto _ : state) benchmark::DoNotOptimize(mc.satisfies(psi, 0));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PathLength)->Arg(16)->Arg(64)->Arg(256)->Complexity(benchmark::oN);

}  // namespace

int main(int argc, char** argv) {
  print_fig1(fixture());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
