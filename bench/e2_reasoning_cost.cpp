// E2: cost of the reasoning itself — the paper's §VI concern ("algorithmic
// complexity of the reasoning enabled by ROTA is obviously high").
//
// Measures feasibility-check latency as a function of:
//   * actors per computation        (BM_FeasibilityVsActors)
//   * actions per actor             (BM_FeasibilityVsActions)
//   * locations (resource types)    (BM_FeasibilityVsLocations)
//   * committed computations ahead  (BM_AdmissionVsCommitments)
// and contrasts the polynomial greedy witness generator with the
// exponential schedule search on identical small instances.
#include <benchmark/benchmark.h>

#include <iostream>

#include "rota/admission/controller.hpp"
#include "rota/logic/theorems.hpp"
#include "rota/workload/generator.hpp"

namespace {

using namespace rota;

WorkloadConfig config_for(std::size_t locations, std::size_t actors,
                          std::size_t actions, std::uint64_t seed = 11) {
  WorkloadConfig c;
  c.seed = seed;
  c.num_locations = locations;
  c.cpu_rate = 20;
  c.network_rate = 20;
  c.actors_min = c.actors_max = actors;
  c.actions_min = c.actions_max = actions;
  c.laxity = 3.0;
  return c;
}

void run_feasibility(benchmark::State& state, std::size_t locations,
                     std::size_t actors, std::size_t actions) {
  WorkloadGenerator gen(config_for(locations, actors, actions), CostModel());
  const ResourceSet supply = gen.base_supply(TimeInterval(0, 4000));
  std::vector<ConcurrentRequirement> reqs;
  for (int i = 0; i < 32; ++i) {
    reqs.push_back(make_concurrent_requirement(gen.phi(), gen.make_computation(0)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        plan_concurrent(supply, reqs[i++ & 31], PlanningPolicy::kAsap));
  }
}

void BM_FeasibilityVsActors(benchmark::State& state) {
  run_feasibility(state, 4, static_cast<std::size_t>(state.range(0)), 6);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FeasibilityVsActors)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Complexity();

void BM_FeasibilityVsActions(benchmark::State& state) {
  run_feasibility(state, 4, 2, static_cast<std::size_t>(state.range(0)));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FeasibilityVsActions)->Arg(2)->Arg(8)->Arg(32)->Arg(128)->Complexity();

void BM_FeasibilityVsLocations(benchmark::State& state) {
  run_feasibility(state, static_cast<std::size_t>(state.range(0)), 2, 6);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FeasibilityVsLocations)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Complexity();

void BM_AdmissionVsCommitments(benchmark::State& state) {
  // Latency of one more admission decision when the ledger already carries N
  // commitments (the online Theorem-4 path).
  WorkloadGenerator gen(config_for(4, 2, 6, 23), CostModel());
  const Tick horizon = 100000;
  const ResourceSet supply = gen.base_supply(TimeInterval(0, horizon));
  RotaAdmissionController ctl(gen.phi(), supply);
  // Pre-admit N computations in disjoint windows so they all fit.
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    DistributedComputation c = gen.make_computation(i * 50);
    ctl.request(c, 0);
  }
  std::vector<DistributedComputation> probes;
  for (int i = 0; i < 16; ++i) probes.push_back(gen.make_computation(i * 37));
  std::size_t i = 0;
  for (auto _ : state) {
    RotaAdmissionController copy = ctl;
    benchmark::DoNotOptimize(copy.request(probes[i++ & 15], 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AdmissionVsCommitments)->Arg(1)->Arg(8)->Arg(32)->Arg(128)->Complexity();

void BM_GreedyWitness(benchmark::State& state) {
  // Greedy witness generation (run_greedy) over the transition rules.
  WorkloadGenerator gen(config_for(3, 2, 6, 31), CostModel());
  const ResourceSet supply = gen.base_supply(TimeInterval(0, 2000));
  DistributedComputation c = gen.make_computation(0);
  ConcurrentRequirement rho = make_concurrent_requirement(gen.phi(), c);
  for (auto _ : state) {
    SystemState s0(supply, 0);
    s0.accommodate(rho);
    benchmark::DoNotOptimize(run_greedy(std::move(s0), c.deadline(),
                                        PriorityOrder::kEdf));
  }
}
BENCHMARK(BM_GreedyWitness);

void BM_ExhaustiveSearch(benchmark::State& state) {
  // The permutation search on small multi-computation states — exponential,
  // kept tiny by design.
  WorkloadGenerator gen(config_for(3, 1, 4, 37), CostModel());
  const ResourceSet supply = gen.base_supply(TimeInterval(0, 2000));
  SystemState s0(supply, 0);
  Tick horizon = 0;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    DistributedComputation c = gen.make_computation(0);
    s0.accommodate(make_concurrent_requirement(gen.phi(), c));
    horizon = std::max(horizon, c.deadline());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(search_feasible(s0, horizon));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExhaustiveSearch)->Arg(1)->Arg(3)->Arg(5)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  std::cout << "== E2: reasoning cost (paper Section VI complexity concern) ==\n"
               "greedy feasibility is polynomial; the schedule search is the\n"
               "exponential fallback and is kept to small instances.\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
