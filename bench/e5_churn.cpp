// E5: open-system churn. Donated resources join with bounded lifetimes; the
// controller reasons about them the moment they announce themselves
// (the paper's resource acquisition rule). Sweeps join rate and lifetime:
//   * acceptance gained by planning over donations vs base-only,
//   * assurance retained (plan-following misses stay at zero because the
//     logic only ever commits to declared intervals).
#include <benchmark/benchmark.h>

#include <iostream>

#include "rota/admission/controller.hpp"
#include "rota/sim/simulator.hpp"
#include "rota/util/table.hpp"
#include "rota/workload/generator.hpp"

namespace {

using namespace rota;

struct ChurnResult {
  std::size_t offered = 0;
  std::size_t base_accepted = 0;
  std::size_t churn_accepted = 0;
  std::size_t missed = 0;
};

ChurnResult run_churn(double join_rate, double mean_lifetime, std::uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.num_locations = 5;
  config.cpu_rate = 2;  // thin base — donations matter
  config.network_rate = 4;
  config.mean_interarrival = 14.0;
  config.laxity = 2.5;
  const Tick horizon = 900;

  WorkloadGenerator gen(config, CostModel());
  const ResourceSet base = gen.base_supply(TimeInterval(0, horizon));
  ChurnTrace churn = gen.make_churn(horizon, join_rate, mean_lifetime, /*max_rate=*/8);
  const auto arrivals = gen.make_arrivals(horizon * 2 / 3);

  RotaAdmissionController base_only(gen.phi(), base);
  RotaAdmissionController with_churn(gen.phi(), base);
  Simulator sim(base, 0, ExecutionMode::kPlanFollowing);
  sim.schedule_churn(churn);

  ChurnResult result;
  result.offered = arrivals.size();
  std::size_t next_join = 0;
  for (const Arrival& a : arrivals) {
    while (next_join < churn.size() && churn.events()[next_join].at <= a.at) {
      ResourceSet joined;
      joined.add(churn.events()[next_join].term);
      with_churn.on_join(joined);
      ++next_join;
    }
    if (base_only.request(a.computation, a.at).accepted) ++result.base_accepted;
    AdmissionDecision d = with_churn.request(a.computation, a.at);
    if (!d.accepted) continue;
    ++result.churn_accepted;
    sim.schedule_admission(a.at,
                           make_concurrent_requirement(gen.phi(), a.computation),
                           std::move(d.plan));
  }
  result.missed = sim.run(horizon).missed();
  return result;
}

void print_churn_sweep() {
  util::Table table({"join rate", "mean lifetime", "offered", "base-only accepts",
                     "with-churn accepts", "gain", "misses"});
  for (double rate : {0.05, 0.2, 0.5}) {
    for (double lifetime : {20.0, 80.0}) {
      ChurnResult r = run_churn(rate, lifetime, /*seed=*/606);
      table.add_row(
          {util::fixed(rate, 2), util::fixed(lifetime, 0), std::to_string(r.offered),
           std::to_string(r.base_accepted), std::to_string(r.churn_accepted),
           "+" + std::to_string(r.churn_accepted - r.base_accepted),
           std::to_string(r.missed)});
    }
  }
  std::cout << "== E5: churn sweep — donations unlock admissions, assurance "
               "holds ==\n"
            << table.to_string()
            << "\nmisses stay at 0 in every cell: the logic only commits to "
               "declared intervals.\n\n";
}

void BM_ChurnScenario(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_churn(0.2, 40.0, 607));
  }
}
BENCHMARK(BM_ChurnScenario)->Unit(benchmark::kMillisecond);

void BM_JoinHeavyLedger(benchmark::State& state) {
  // Admission latency when the ledger has absorbed many churn joins (the
  // availability profiles become finely fragmented).
  WorkloadConfig config;
  config.seed = 608;
  config.num_locations = 5;
  config.cpu_rate = 2;
  WorkloadGenerator gen(config, CostModel());
  RotaAdmissionController ctl(gen.phi(), gen.base_supply(TimeInterval(0, 4000)));
  ChurnTrace churn =
      gen.make_churn(4000, static_cast<double>(state.range(0)) / 100.0, 50.0, 8);
  for (const auto& e : churn.events()) {
    ResourceSet joined;
    joined.add(e.term);
    ctl.on_join(joined);
  }
  DistributedComputation probe = gen.make_computation(100);
  for (auto _ : state) {
    RotaAdmissionController copy = ctl;
    benchmark::DoNotOptimize(copy.request(probe, 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_JoinHeavyLedger)->Arg(5)->Arg(20)->Arg(80)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  print_churn_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
