// E14: periodic computations — the classic real-time workload, answered by
// Theorem-4 admission. A periodic task with per-instance work W and window L
// released every P ticks imposes utilization U ≈ W / (rate · P). Sweeping P
// maps the sustainability frontier: series sustain fully while cumulative
// utilization stays under 1 and collapse past it — the utilization-bound
// story, recovered from a logic that has no notion of "periodic" at all.
#include <benchmark/benchmark.h>

#include <iostream>

#include "rota/admission/periodic.hpp"
#include "rota/util/table.hpp"

namespace {

using namespace rota;

struct World {
  Location node{"e14-node"};
  CostModel phi;
  ResourceSet supply;
  Tick horizon = 2000;

  World() { supply.add(4, TimeInterval(0, horizon), LocatedType::cpu(node)); }

  /// One instance: W = 8·weight cpu within a window of `length` ticks.
  DistributedComputation task(std::int64_t weight, Tick length, Tick s = 10) const {
    auto gamma = ActorComputationBuilder("p.a", node).evaluate(weight).build();
    return DistributedComputation("ptask", {gamma}, s, s + length);
  }
};

void print_utilization_frontier() {
  World world;
  util::Table table({"period P", "per-instance work", "utilization W/(rate*P)",
                     "requested", "sustained", "sustained fraction"});
  // W = 16 cpu per instance at rate 4.
  for (Tick period : {16, 8, 6, 5, 4, 3}) {
    const std::size_t requested =
        static_cast<std::size_t>((world.horizon - 100) / period);
    RotaAdmissionController ctl(world.phi, world.supply);
    const std::size_t sustained = sustainable_instances(
        ctl, world.task(2, std::min<Tick>(period, 8)), period, requested, 0);
    const double utilization = 16.0 / (4.0 * static_cast<double>(period));
    table.add_row({std::to_string(period), "16",
                   util::fixed(utilization, 3), std::to_string(requested),
                   std::to_string(sustained),
                   util::fixed(static_cast<double>(sustained) / requested, 3)});
  }
  std::cout << "== E14a: sustainability frontier vs period (one series) ==\n"
            << table.to_string()
            << "\nU <= 1 sustains the whole horizon; U > 1 collapses almost "
               "immediately\n(the first window that cannot absorb the backlog "
               "rejects).\n\n";
}

void print_multi_series_packing() {
  World world;
  // How many independent series (each U = 0.25, windows tiling the period)
  // stack on one node before rejection?
  util::Table table({"series admitted so far", "next series sustainable?"});
  RotaAdmissionController ctl(world.phi, world.supply);
  const Tick period = 16;  // W=16, rate 4, window = period → U = 0.25 each
  std::size_t stacked = 0;
  for (int s = 0; s < 6; ++s) {
    const std::size_t count = static_cast<std::size_t>((world.horizon - 100) / period);
    const bool sustainable =
        sustainable_instances(ctl, world.task(2, period), period, count, 0) == count;
    table.add_row({std::to_string(stacked), sustainable ? "yes" : "no"});
    if (!sustainable) break;
    PeriodicAdmission r = admit_periodic(ctl, world.task(2, period), period, count, 0);
    if (!r.accepted) break;
    ++stacked;
  }
  std::cout << "== E14b: stacking U=0.25 series on one node ==\n"
            << table.to_string()
            << "\nexactly 4 series fit (U = 1.0); the 5th is refused with no "
               "deadline ever missed.\n\n";
}

void BM_AdmitPeriodicSeries(benchmark::State& state) {
  World world;
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    RotaAdmissionController ctl(world.phi, world.supply);
    benchmark::DoNotOptimize(admit_periodic(ctl, world.task(1, 8), 16, count, 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AdmitPeriodicSeries)->Arg(4)->Arg(16)->Arg(64)->Complexity();

void BM_SustainableProbe(benchmark::State& state) {
  World world;
  RotaAdmissionController ctl(world.phi, world.supply);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sustainable_instances(ctl, world.task(2, 8), 8,
                              static_cast<std::size_t>(state.range(0)), 0));
  }
}
BENCHMARK(BM_SustainableProbe)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_utilization_frontier();
  print_multi_series_packing();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
