// E3: deadline assurance — the headline experiment. Identical workloads are
// offered to each admission strategy across a load sweep; admitted sets
// execute in the simulator. Assurance = deadline-miss rate among admitted
// computations. Expected shape: ROTA ≈ 0 misses at every load; the
// quantity-blind baselines' miss rates climb with load.
#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>
#include <memory>

#include "rota/admission/baselines.hpp"
#include "rota/sim/simulator.hpp"
#include "rota/util/table.hpp"
#include "rota/workload/generator.hpp"

namespace {

using namespace rota;

struct StrategyResult {
  std::size_t offered = 0;
  std::size_t admitted = 0;
  std::size_t missed = 0;
  double utilization = 0.0;
};

StrategyResult run_once(AdmissionStrategy& strategy, ExecutionMode mode,
                        double mean_interarrival, std::uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.num_locations = 4;
  config.cpu_rate = 8;
  config.network_rate = 8;
  config.mean_interarrival = mean_interarrival;
  config.laxity = 1.6;

  const Tick horizon = 800;
  WorkloadGenerator gen(config, CostModel());
  const ResourceSet supply = gen.base_supply(TimeInterval(0, horizon));
  const auto arrivals = gen.make_arrivals(horizon * 2 / 3);

  Simulator sim(supply, 0, mode, PriorityOrder::kEdf);
  StrategyResult result;
  result.offered = arrivals.size();
  for (const Arrival& a : arrivals) {
    AdmissionDecision d = strategy.request(a.computation, a.at);
    if (!d.accepted) continue;
    ++result.admitted;
    sim.schedule_admission(a.at,
                           make_concurrent_requirement(gen.phi(), a.computation),
                           std::move(d.plan));
  }
  SimReport report = sim.run(horizon);
  result.missed = report.missed();
  result.utilization = report.utilization();
  return result;
}

void print_assurance_sweep() {
  util::Table table({"load (1/interarrival)", "strategy", "offered", "admitted",
                     "missed", "miss-rate", "utilization"});

  const double interarrivals[] = {16.0, 8.0, 4.0, 2.0};
  for (double gap : interarrivals) {
    struct Entry {
      std::string label;
      std::function<std::unique_ptr<AdmissionStrategy>(const ResourceSet&)> make;
      ExecutionMode mode;
    };
    // Strategies are rebuilt per load so ledgers start clean. The supply they
    // see must match the simulator's: rebuild it identically inside run_once.
    WorkloadConfig probe;
    probe.num_locations = 4;
    probe.cpu_rate = 8;
    probe.network_rate = 8;
    WorkloadGenerator probe_gen(probe, CostModel());
    const ResourceSet supply = probe_gen.base_supply(TimeInterval(0, 800));

    const std::vector<Entry> entries = {
        {"rota-asap (plan-following)",
         [](const ResourceSet& s) {
           return std::make_unique<RotaStrategy>(CostModel(), s,
                                                 PlanningPolicy::kAsap);
         },
         ExecutionMode::kPlanFollowing},
        {"rota-asap (edf executor)",
         [](const ResourceSet& s) {
           return std::make_unique<RotaStrategy>(CostModel(), s,
                                                 PlanningPolicy::kAsap);
         },
         ExecutionMode::kWorkConserving},
        {"naive-total",
         [](const ResourceSet& s) {
           return std::make_unique<NaiveTotalQuantityStrategy>(CostModel(), s);
         },
         ExecutionMode::kWorkConserving},
        {"optimistic",
         [](const ResourceSet& s) {
           return std::make_unique<OptimisticStrategy>(CostModel(), s);
         },
         ExecutionMode::kWorkConserving},
        {"always-admit",
         [](const ResourceSet&) { return std::make_unique<AlwaysAdmitStrategy>(); },
         ExecutionMode::kWorkConserving},
    };

    for (const Entry& e : entries) {
      auto strategy = e.make(supply);
      StrategyResult r = run_once(*strategy, e.mode, gap, /*seed=*/404);
      const double miss_rate =
          r.admitted == 0 ? 0.0 : static_cast<double>(r.missed) / r.admitted;
      table.add_row({util::fixed(1.0 / gap, 3), e.label, std::to_string(r.offered),
                     std::to_string(r.admitted), std::to_string(r.missed),
                     util::fixed(miss_rate, 3), util::fixed(r.utilization, 3)});
    }
  }
  std::cout << "== E3: deadline assurance across load (miss rate among admitted) ==\n"
            << table.to_string() << "\n";
}

void BM_AdmitAndSimulate(benchmark::State& state) {
  for (auto _ : state) {
    WorkloadConfig probe;
    probe.num_locations = 4;
    probe.cpu_rate = 8;
    probe.network_rate = 8;
    WorkloadGenerator gen(probe, CostModel());
    RotaStrategy rota(CostModel(), gen.base_supply(TimeInterval(0, 800)));
    benchmark::DoNotOptimize(
        run_once(rota, ExecutionMode::kPlanFollowing, 6.0, 405));
  }
}
BENCHMARK(BM_AdmitAndSimulate)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_assurance_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
