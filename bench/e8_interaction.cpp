// E8: interacting computations (the §VI extension). Exhibits:
//   * gate cost — finish-time inflation of a pipeline vs the same work
//     ungated, as the chain deepens;
//   * planner cost — plan_dag latency vs segment count and DAG shape
//     (chain / fan-out / diamond).
#include <benchmark/benchmark.h>

#include <iostream>

#include "rota/logic/dag_planner.hpp"
#include "rota/util/table.hpp"

namespace {

using namespace rota;

struct World {
  std::vector<Location> sites;
  CostModel phi;
  ResourceSet supply;

  explicit World(std::size_t n, Tick horizon) {
    for (std::size_t i = 0; i < n; ++i) {
      sites.emplace_back("e8-s" + std::to_string(i));
      supply.add(8, TimeInterval(0, horizon), LocatedType::cpu(sites.back()));
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        supply.add(6, TimeInterval(0, horizon),
                   LocatedType::network(sites[i], sites[j]));
      }
    }
  }
};

/// A k-stage pipeline: stage i computes at site i%n and messages stage i+1.
InteractingComputation make_chain(const World& world, std::size_t stages,
                                  Tick deadline) {
  std::vector<SegmentedActor> actors;
  std::vector<MessageDependency> deps;
  for (std::size_t i = 0; i < stages; ++i) {
    const Location at = world.sites[i % world.sites.size()];
    const Location next = world.sites[(i + 1) % world.sites.size()];
    SegmentedActorBuilder b("stage" + std::to_string(i), at);
    b.evaluate(2);
    if (i + 1 < stages) b.send(next, 1);
    actors.push_back(std::move(b).build());
    if (i > 0) deps.push_back({i - 1, 0, i, 0});
  }
  return InteractingComputation("chain", std::move(actors), std::move(deps), 0,
                                deadline);
}

/// Fan-out/fan-in diamond of the given width.
InteractingComputation make_diamond(const World& world, std::size_t width,
                                    Tick deadline) {
  std::vector<SegmentedActor> actors;
  std::vector<MessageDependency> deps;
  {
    SegmentedActorBuilder src("src", world.sites[0]);
    src.evaluate(1);
    actors.push_back(std::move(src).build());
  }
  for (std::size_t i = 0; i < width; ++i) {
    SegmentedActorBuilder w("w" + std::to_string(i),
                            world.sites[(i + 1) % world.sites.size()]);
    w.evaluate(2);
    actors.push_back(std::move(w).build());
    deps.push_back({0, 0, 1 + i, 0});
  }
  {
    SegmentedActorBuilder sink("sink", world.sites[0]);
    sink.evaluate(1);
    actors.push_back(std::move(sink).build());
    for (std::size_t i = 0; i < width; ++i) deps.push_back({1 + i, 0, 1 + width, 0});
  }
  return InteractingComputation("diamond", std::move(actors), std::move(deps), 0,
                                deadline);
}

void print_gate_cost() {
  World world(4, 4000);
  util::Table table({"stages", "gated finish", "ungated finish", "gate latency"});
  for (std::size_t stages : {2u, 4u, 8u, 16u}) {
    InteractingComputation gated = make_chain(world, stages, 2000);
    auto gated_plan = plan_interacting(world.supply, world.phi, gated);
    InteractingComputation ungated("free", gated.actors(), {}, 0, 2000);
    auto free_plan = plan_interacting(world.supply, world.phi, ungated);
    if (!gated_plan || !free_plan) continue;
    table.add_row({std::to_string(stages), std::to_string(gated_plan->finish),
                   std::to_string(free_plan->finish),
                   std::to_string(gated_plan->finish - free_plan->finish)});
  }
  std::cout << "== E8: what blocking messages cost (pipeline depth sweep) ==\n"
            << table.to_string() << "\n";
}

void BM_PlanChain(benchmark::State& state) {
  World world(4, 100000);
  InteractingComputation c =
      make_chain(world, static_cast<std::size_t>(state.range(0)), 100000);
  DagRequirement dag = make_dag_requirement(world.phi, c);
  for (auto _ : state) benchmark::DoNotOptimize(plan_dag(world.supply, dag));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PlanChain)->Arg(2)->Arg(8)->Arg(32)->Arg(128)->Complexity();

void BM_PlanDiamond(benchmark::State& state) {
  World world(4, 100000);
  InteractingComputation c =
      make_diamond(world, static_cast<std::size_t>(state.range(0)), 100000);
  DagRequirement dag = make_dag_requirement(world.phi, c);
  for (auto _ : state) benchmark::DoNotOptimize(plan_dag(world.supply, dag));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PlanDiamond)->Arg(2)->Arg(8)->Arg(32)->Arg(128)->Complexity();

void BM_DagDerivation(benchmark::State& state) {
  World world(4, 100000);
  InteractingComputation c =
      make_chain(world, static_cast<std::size_t>(state.range(0)), 100000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_dag_requirement(world.phi, c));
  }
}
BENCHMARK(BM_DagDerivation)->Arg(8)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_gate_cost();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
