// E18: symbolic feasibility vs the brute-force explorer.
//
// Two sections, one artifact (BENCH_feasibility.json; pass a path as argv[1]
// to redirect):
//
//   parity  — the feasibility differential-oracle family at a pinned seed:
//     the symbolic cut-point engine and the permutation explorer decide the
//     same randomized multi-actor instances, with witness replay and (on
//     tiny instances) a bounded exhaustive adjudicator. Any divergence is
//     fatal (exit 1) and printed as a reproduction recipe. The committed
//     artifact runs >= 600 cases; --smoke shrinks that to 120 for CI.
//
//   scaling — the drip/hog family (one uncapped hog ranked first, n-1
//     zero-slack capped drips: every greedy order fails) at n = 2..10
//     commitments. The permutation sweep needs ~n! greedy runs and refuses
//     outright above its ceiling (max_permuted = 6); the symbolic engine
//     decides every size with a single polynomial flow check (single-phase
//     instances spend zero DFS nodes). Each row records both engines' wall
//     time, the sweep's deterministic explorer_permutations count, and the
//     verdicts — rows above the ceiling must show the symbolic engine
//     deciding what the sweep refused, which is the point of the engine.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "rota/computation/requirement.hpp"
#include "rota/fuzz/oracles.hpp"
#include "rota/logic/explorer.hpp"
#include "rota/logic/symbolic/feasibility.hpp"
#include "rota/obs/obs.hpp"

namespace {

using namespace rota;

std::size_t host_cpus() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

std::size_t host_cpus_online() {
#if defined(_SC_NPROCESSORS_ONLN)
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  if (n > 0) return static_cast<std::size_t>(n);
#endif
  return host_cpus();
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Hog-first drip/hog instance (mirrors tests/test_symbolic.cpp): supply
/// n/tick over [0, 12); one uncapped hog wanting 12, n-1 drips wanting 12 at
/// cap 1 (zero slack). Feasible only when every drip outranks the hog, and
/// all greedy orders tie into index order, so the ladder always reaches the
/// engine under test.
SystemState drip_hog_state(std::size_t n) {
  const Location site("e18");
  const LocatedType cpu = LocatedType::cpu(site);
  const TimeInterval w(0, 12);
  const auto mk = [&](const std::string& name, Rate cap) {
    Phase p;
    p.demand.add(cpu, 12);
    p.first_action = 0;
    p.action_count = 1;
    return ComplexRequirement(name, {p}, w, cap);
  };
  std::vector<ComplexRequirement> actors;
  actors.push_back(mk("hog", 0));
  for (std::size_t i = 0; i + 1 < n; ++i) {
    actors.push_back(mk("drip" + std::to_string(i), 1));
  }
  ResourceSet supply;
  supply.add(static_cast<Rate>(n), w, cpu);
  SystemState s(supply, 0);
  s.accommodate(ConcurrentRequirement("dh", std::move(actors), w));
  return s;
}

struct ScalingRow {
  std::size_t commitments = 0;
  std::string symbolic_verdict;
  double symbolic_us = 0.0;
  std::uint64_t symbolic_nodes = 0;
  std::uint64_t symbolic_flow_checks = 0;
  std::string explorer;  // "path" | "refused" | "exhausted"
  double explorer_us = 0.0;
  std::uint64_t explorer_permutations = 0;
};

constexpr int kTrials = 3;

ScalingRow bench_size(std::size_t n, std::size_t sweep_ceiling) {
  const SystemState start = drip_hog_state(n);
  ScalingRow row;
  row.commitments = n;

  FeasibilityResult sym;
  double best = 1e100;
  for (int t = 0; t < kTrials; ++t) {
    const double t0 = now_seconds();
    sym = decide_feasibility(start, 12);
    best = std::min(best, now_seconds() - t0);
  }
  row.symbolic_verdict = feasibility_verdict_name(sym.verdict);
  row.symbolic_us = best * 1e6;
  row.symbolic_nodes = sym.stats.nodes;
  row.symbolic_flow_checks = sym.stats.flow_checks;

  SearchOptions sweep;
  sweep.engine = FeasibilityEngine::kExplorer;
  obs::enable_metrics(true);
  auto& metrics = obs::CoreMetrics::get();
  std::optional<ComputationPath> path;
  best = 1e100;
  std::uint64_t perms = 0;
  for (int t = 0; t < kTrials; ++t) {
    const std::uint64_t before = metrics.explorer_permutations.value();
    const double t0 = now_seconds();
    path = search_feasible(start, 12, sweep);
    best = std::min(best, now_seconds() - t0);
    perms = metrics.explorer_permutations.value() - before;
  }
  obs::enable_metrics(false);
  row.explorer_us = best * 1e6;
  row.explorer_permutations = perms;
  row.explorer = path.has_value() ? "path"
                 : n > sweep_ceiling ? "refused"
                                     : "exhausted";
  return row;
}

bool write_json(const std::string& path, bool smoke,
                const fuzz::OracleReport& parity, std::size_t sweep_ceiling,
                const std::vector<ScalingRow>& scaling) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"bench\": \"e18_feasibility\",\n"
      << "  \"host_cpus\": " << host_cpus() << ",\n"
      << "  \"host_cpus_online\": " << host_cpus_online() << ",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"sweep_ceiling\": " << sweep_ceiling << ",\n"
      << "  \"parity\": {\"seed\": 2026, \"cases\": " << parity.cases
      << ", \"checks\": " << parity.checks
      << ", \"divergences\": " << parity.divergence_count << "},\n"
      << "  \"scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const ScalingRow& r = scaling[i];
    out << "    {\"commitments\": " << r.commitments << ", \"symbolic_verdict\": \""
        << r.symbolic_verdict << "\", \"symbolic_us\": " << r.symbolic_us
        << ", \"symbolic_nodes\": " << r.symbolic_nodes
        << ", \"symbolic_flow_checks\": " << r.symbolic_flow_checks
        << ", \"explorer\": \"" << r.explorer
        << "\", \"explorer_us\": " << r.explorer_us
        << ", \"explorer_permutations\": " << r.explorer_permutations << "}"
        << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "== E18: symbolic feasibility vs brute-force explorer ==\n\n";
  std::string json_path = "BENCH_feasibility.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      json_path = arg;
    }
  }

  // Section 1: verdict parity at a pinned seed, divergences fatal.
  const std::size_t cases = smoke ? 120 : 600;
  std::cout << "parity: feasibility oracle family, seed 2026, " << cases
            << " cases" << (smoke ? " (smoke mode)" : "") << "...\n";
  const fuzz::OracleReport parity = fuzz::run_feasibility_oracle(2026, cases);
  std::cout << "  " << parity.summary() << "\n";
  if (!parity.clean()) {
    for (const fuzz::Divergence& d : parity.divergences) {
      std::cerr << "  " << d.to_string() << "\n";
    }
    std::cerr << "FATAL: engines diverged — not writing " << json_path << "\n";
    return 1;
  }

  // Section 2: time vs commitment count on the drip/hog family.
  const std::size_t sweep_ceiling = SearchOptions{}.max_permuted;
  const std::size_t max_n = smoke ? 8 : 10;
  std::vector<ScalingRow> scaling;
  std::cout << "\ncommitments   symbolic        sweep           permutations\n";
  for (std::size_t n = 2; n <= max_n; ++n) {
    const ScalingRow row = bench_size(n, sweep_ceiling);
    std::printf("%11zu   %-8s %5.0fus  %-9s %7.0fus  %10llu\n", n,
                row.symbolic_verdict.c_str(), row.symbolic_us,
                row.explorer.c_str(), row.explorer_us,
                static_cast<unsigned long long>(row.explorer_permutations));
    // The whole family is feasible and single-phase: the symbolic engine
    // must decide every size without spending a DFS node, and above the
    // sweep ceiling it must decide what the sweep refused.
    if (row.symbolic_verdict != "feasible" || row.symbolic_nodes != 0) {
      std::cerr << "FATAL: symbolic engine failed to flat-decide n=" << n << "\n";
      return 1;
    }
    if (n <= sweep_ceiling && row.explorer != "path") {
      std::cerr << "FATAL: sweep missed the feasible order at n=" << n << "\n";
      return 1;
    }
    if (n > sweep_ceiling && row.explorer != "refused") {
      std::cerr << "FATAL: sweep did not refuse n=" << n
                << " (> ceiling " << sweep_ceiling << ")\n";
      return 1;
    }
    scaling.push_back(row);
  }

  if (!write_json(json_path, smoke, parity, sweep_ceiling, scaling)) {
    std::cerr << "\nERROR: could not write " << json_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}
