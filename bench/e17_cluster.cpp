// E17: federated cluster admission — deadline-hit rate, goodput, and
// forwarded fraction of the multi-node cluster layer, swept over node count
// × link loss, with a local-only baseline (max_remote_rounds = 0) run on the
// exact same workload for every cell. Writes BENCH_cluster_admission.json
// (pass a path as argv[1] to redirect).
//
// The flagship cell is the ISSUE acceptance configuration: 8 nodes, 5% link
// loss, a mid-run crash of the hottest peer followed by an audit-log
// recovery. The bench exits non-zero if the federated hit rate there falls
// below the local-only baseline, or if two identically-seeded runs disagree
// on a single decision.
//
// The workload is skewed on purpose: 70% of jobs arrive at node 0, so the
// hot node drowns unless the probe/offer/claim protocol moves work to the
// idle peers. Local-only runs answer "what would these nodes do alone?" —
// the gap between the two curves is what the federation buys, and how that
// gap erodes as the fabric gets lossier is the experiment.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "rota/cluster/cluster.hpp"
#include "rota/workload/generator.hpp"

namespace {

using namespace rota;
using namespace rota::cluster;

constexpr Tick kArrivalWindow = 400;
constexpr Tick kHorizon = 600;
constexpr double kHotFraction = 0.7;
constexpr std::uint64_t kSeed = 2026;

struct Cell {
  std::size_t nodes = 0;
  double loss = 0.0;
  bool federated = true;
  bool crash = false;

  std::size_t submitted = 0;
  std::size_t accepted_local = 0;
  std::size_t accepted_remote = 0;
  std::size_t rejected = 0;
  std::size_t lost = 0;
  double hit_rate = 0.0;
  double forwarded = 0.0;
  double goodput = 0.0;  // surviving accepted jobs per 100 ticks
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_dropped = 0;
  std::string decision_log;
};

WorkloadGenerator make_generator() {
  WorkloadConfig wc;
  wc.seed = kSeed;
  wc.num_locations = 8;
  wc.mean_interarrival = 1.0;  // oversubscribes the hot node
  wc.laxity = 3.0;             // enough slack that forwarding can pay off
  WorkloadGenerator gen(wc, CostModel());
  return gen;
}

Cell run_cell(std::size_t nodes, double loss, bool federated, bool crash) {
  Cell cell;
  cell.nodes = nodes;
  cell.loss = loss;
  cell.federated = federated;
  cell.crash = crash;

  // A fresh generator per cell: every cell (and its local-only twin) sees
  // the byte-identical arrival sequence.
  WorkloadGenerator gen = make_generator();

  ClusterConfig config;
  config.seed = kSeed;
  config.default_link.jitter = 1;
  config.default_link.drop = loss;
  if (!federated) config.node.max_remote_rounds = 0;

  ClusterSim sim(CostModel(), config);
  for (std::size_t i = 0; i < nodes; ++i) {
    sim.add_node(gen.locations()[i], gen.node_supply(i, TimeInterval(0, kHorizon)));
  }
  for (const ClusterArrivalSpec& a : gen.make_cluster_arrivals(
           kArrivalWindow, nodes, kHotFraction)) {
    sim.submit(a.at, static_cast<NodeId>(a.origin), a.work);
  }
  if (crash) {
    // The busiest forwarding target dies mid-run and comes back via
    // audit-log replay; placements inside the outage count as lost.
    sim.schedule_crash(kArrivalWindow / 2, 1);
    sim.schedule_restart(kArrivalWindow / 2 + 10, 1, /*recover=*/true);
  }

  const ClusterReport report = sim.run(kHorizon);
  cell.submitted = report.submitted();
  cell.accepted_local = report.accepted(Placement::kLocal);
  cell.accepted_remote = report.accepted(Placement::kRemote);
  cell.rejected = report.rejected();
  cell.lost = report.lost();
  cell.hit_rate = report.deadline_hit_rate();
  cell.forwarded = report.forwarded_fraction();
  cell.goodput = 100.0 *
                 static_cast<double>(report.accepted_total() - report.lost()) /
                 static_cast<double>(kArrivalWindow);
  cell.msgs_sent = report.messages_sent;
  cell.msgs_dropped = report.messages_dropped;
  cell.decision_log = report.decision_log();
  return cell;
}

void print_cell(const Cell& c) {
  std::cout << (c.federated ? "federated " : "local-only") << " nodes=" << c.nodes
            << " loss=" << c.loss << (c.crash ? " +crash" : "")
            << ": submitted=" << c.submitted << " local=" << c.accepted_local
            << " remote=" << c.accepted_remote << " rejected=" << c.rejected
            << " lost=" << c.lost << " hit=" << c.hit_rate
            << " fwd=" << c.forwarded << " goodput=" << c.goodput << "/100t\n";
}

void emit_cell(std::ofstream& out, const Cell& c, bool last) {
  out << "    {\"nodes\": " << c.nodes << ", \"loss\": " << c.loss
      << ", \"mode\": \"" << (c.federated ? "federated" : "local-only")
      << "\", \"crash\": " << (c.crash ? "true" : "false")
      << ", \"submitted\": " << c.submitted
      << ", \"accepted_local\": " << c.accepted_local
      << ", \"accepted_remote\": " << c.accepted_remote
      << ", \"rejected\": " << c.rejected << ", \"lost\": " << c.lost
      << ", \"deadline_hit_rate\": " << c.hit_rate
      << ", \"forwarded_fraction\": " << c.forwarded
      << ", \"goodput_per_100_ticks\": " << c.goodput
      << ", \"messages_sent\": " << c.msgs_sent
      << ", \"messages_dropped\": " << c.msgs_dropped << "}"
      << (last ? "" : ",") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "BENCH_cluster_admission.json";

  const std::vector<std::size_t> node_counts = {2, 4, 8};
  const std::vector<double> losses = {0.0, 0.02, 0.05};

  std::vector<Cell> cells;
  for (const std::size_t n : node_counts) {
    for (const double loss : losses) {
      cells.push_back(run_cell(n, loss, /*federated=*/true, /*crash=*/false));
      print_cell(cells.back());
      cells.push_back(run_cell(n, loss, /*federated=*/false, /*crash=*/false));
      print_cell(cells.back());
    }
  }

  // Flagship: 8 nodes, 5% loss, mid-run crash + audit-log recovery.
  const Cell flagship = run_cell(8, 0.05, true, /*crash=*/true);
  const Cell flagship_local = run_cell(8, 0.05, false, /*crash=*/true);
  std::cout << "\nflagship (mid-run crash + recovery):\n";
  print_cell(flagship);
  print_cell(flagship_local);

  if (flagship.hit_rate < flagship_local.hit_rate) {
    std::cerr << "FATAL: federated hit rate " << flagship.hit_rate
              << " fell below the local-only baseline "
              << flagship_local.hit_rate << "\n";
    return 1;
  }

  // Determinism: the same seed must reproduce the flagship cell decision for
  // decision. A single divergent line fails the bench.
  const Cell rerun = run_cell(8, 0.05, true, /*crash=*/true);
  if (rerun.decision_log != flagship.decision_log) {
    std::cerr << "FATAL: identical seeds produced different decision logs\n";
    return 1;
  }
  std::cout << "determinism: rerun decision log identical ("
            << flagship.submitted << " decisions)\n";

  std::ofstream out(path);
  out << "{\n"
      << "  \"bench\": \"e17_cluster\",\n"
      << "  \"workload\": {\n"
      << "    \"seed\": " << kSeed << ",\n"
      << "    \"arrival_window_ticks\": " << kArrivalWindow << ",\n"
      << "    \"horizon_ticks\": " << kHorizon << ",\n"
      << "    \"hot_fraction\": " << kHotFraction << ",\n"
      << "    \"mean_interarrival\": 1.0\n"
      << "  },\n"
      << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    emit_cell(out, cells[i], /*last=*/false);
  }
  emit_cell(out, flagship, /*last=*/false);
  emit_cell(out, flagship_local, /*last=*/true);
  out << "  ],\n"
      << "  \"flagship\": {\n"
      << "    \"federated_hit_rate\": " << flagship.hit_rate << ",\n"
      << "    \"local_only_hit_rate\": " << flagship_local.hit_rate << ",\n"
      << "    \"determinism\": \"rerun decision log identical\"\n"
      << "  }\n"
      << "}\n";
  if (!out.good()) {
    std::cerr << "FATAL: failed to write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << path << "\n";
  return 0;
}
