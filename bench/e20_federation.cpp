// E20: live federation — two admission daemons over real unix sockets.
//
// Node A has no supply at its site (every local admission rejects and
// federates); node B has ample supply. The split workload is N forwardable
// requests at A — each must travel probe/offer/claim over the SocketTransport
// and commit into B's live ledger — plus N locally-feasible requests at B,
// admitted by B's planning lanes while it is also serving A's claims. The
// artifact (BENCH_federation.json; argv[1] redirects) records the forward
// round-trip latency distribution and the safety counters.
//
// Acceptance (exit 1 on violation, artifact not written):
//   * every forward is peer-accepted (A's supply-less site never strands a
//     feasible job);
//   * B committed exactly one claim per forward;
//   * revalidations_failed == 0 on both services — a peer claim is
//     re-validated against the live residual exactly like a local accept;
//   * both daemons drain cleanly, federation first.
//
// Latency percentiles are printed and recorded for trend reading but never
// gated: a forward crosses two pump cadences and a socket, all host noise.
//
// --smoke shrinks the split (16+16 requests) for CI.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rota/service/federation.hpp"

namespace {

using namespace rota;
using namespace rota::service;
using Clock = std::chrono::steady_clock;

std::size_t host_cpus() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

std::string socket_path(const char* tag) {
  return "/tmp/rota_e20_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// One daemon: live ledger, admission service, federation driver.
struct Daemon {
  Daemon(Location site, ResourceSet supply, cluster::NodeId id,
         const std::string& listen_path, cluster::NodeId peer_id,
         const std::string& peer_path)
      : ledger(std::move(supply)), service(ledger, CostModel{}, config()) {
    FederationConfig fconfig;
    fconfig.site = site.name();
    fconfig.transport.local = id;
    fconfig.transport.listen = "unix:" + listen_path;
    fconfig.transport.peers[peer_id] = "unix:" + peer_path;
    fconfig.transport.tick_ms = 20;
    // A gossips before B's listener exists; don't let that failed connect's
    // backoff swallow the one-shot probe sends (default backoff 500 ms would
    // outlive the 80 ms probe timeout).
    fconfig.transport.reconnect_backoff_ms = 25;
    fconfig.pump_interval_ms = 2;
    federation = std::make_unique<FederatedService>(service, fconfig);
  }

  static ServiceConfig config() {
    ServiceConfig c;
    c.lanes = 2;
    c.queue_capacity = 256;
    return c;
  }

  CommitmentLedger ledger;
  AdmissionService service;
  std::unique_ptr<FederatedService> federation;
};

AdmitRequest make_request(std::uint64_t id, Location home) {
  AdmitRequest request;
  request.id = id;
  request.budget_us = 10'000'000;
  ActorComputation actor =
      ActorComputationBuilder("e20-actor-" + std::to_string(id), home)
          .evaluate(5)
          .ready()
          .build();
  request.computation = DistributedComputation(
      "e20-job-" + std::to_string(id), {actor}, 0, 100'000);
  return request;
}

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const std::size_t i = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[i];
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_federation.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    else json_path = arg;
  }
  const std::size_t n = smoke ? 16 : 64;

  const Location site_a("e20-starved"), site_b("e20-ample");
  const std::string path_a = socket_path("a");
  const std::string path_b = socket_path("b");
  ResourceSet ample;
  ample.add(100, TimeInterval(0, 200'000), LocatedType::cpu(site_b));

  Daemon a(site_a, ResourceSet{}, 0, path_a, 1, path_b);
  Daemon b(site_b, std::move(ample), 1, path_b, 0, path_a);

  const auto bench_start = Clock::now();

  // The split: A's half federates (one future per forward so round-trip
  // latency is per-request), B's half is decided locally in parallel.
  struct Forward {
    Clock::time_point sent;
    std::future<AdmitResponse> response;
    double ms = 0.0;
  };
  std::vector<Forward> forwards(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    auto promise = std::make_shared<std::promise<AdmitResponse>>();
    forwards[i].response = promise->get_future();
    forwards[i].sent = Clock::now();
    a.federation->submit(make_request(i + 1, site_a),
                         [promise](const AdmitResponse& r) {
                           promise->set_value(r);
                         });
  }
  std::size_t local_accepted = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    auto promise = std::make_shared<std::promise<AdmitResponse>>();
    auto future = promise->get_future();
    b.federation->submit(make_request(1000 + i, site_b),
                         [promise](const AdmitResponse& r) {
                           promise->set_value(r);
                         });
    if (future.get().verdict == Verdict::kAccepted) ++local_accepted;
  }

  std::size_t forward_accepted = 0;
  std::vector<double> latencies_ms;
  for (Forward& f : forwards) {
    const AdmitResponse response = f.response.get();
    f.ms = std::chrono::duration<double, std::milli>(Clock::now() - f.sent)
               .count();
    latencies_ms.push_back(f.ms);
    if (response.verdict == Verdict::kAccepted &&
        response.strategy == "federated") {
      ++forward_accepted;
    }
  }
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - bench_start).count();

  // The daemon shutdown order: federation first, then each service drains.
  const FederationStats fa = a.federation->stats();
  const FederationStats fb = b.federation->stats();
  a.federation->stop();
  b.federation->stop();
  a.service.drain_and_stop();
  b.service.drain_and_stop();
  const std::uint64_t revalidations = a.service.stats().revalidations_failed +
                                      b.service.stats().revalidations_failed;

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double p50 = percentile(latencies_ms, 0.50);
  const double p99 = percentile(latencies_ms, 0.99);
  const double max_ms = latencies_ms.empty() ? 0.0 : latencies_ms.back();

  std::printf("e20_federation: %zu forwards (%zu peer-accepted), "
              "%zu/%zu local at B, %llu peer claims\n",
              n, forward_accepted, local_accepted, n,
              static_cast<unsigned long long>(fb.peer_claims));
  std::printf("forward round trip: p50 %.2fms  p99 %.2fms  max %.2fms\n",
              p50, p99, max_ms);

  if (forward_accepted != n) {
    std::cerr << "FATAL: only " << forward_accepted << "/" << n
              << " forwards were peer-accepted\n";
    return 1;
  }
  if (fa.forwarded != n || fa.forward_accepts != n || fa.forward_rejects != 0) {
    std::cerr << "FATAL: forward accounting off (forwarded " << fa.forwarded
              << ", accepts " << fa.forward_accepts << ", rejects "
              << fa.forward_rejects << ")\n";
    return 1;
  }
  if (fb.peer_claims != n) {
    std::cerr << "FATAL: B committed " << fb.peer_claims
              << " peer claims, expected " << n << "\n";
    return 1;
  }
  if (local_accepted != n) {
    std::cerr << "FATAL: only " << local_accepted << "/" << n
              << " local requests were accepted at B\n";
    return 1;
  }
  if (revalidations != 0) {
    std::cerr << "FATAL: " << revalidations
              << " peer claim(s) were refused by the live residual\n";
    return 1;
  }

  std::ofstream out(json_path);
  out << "{\n  \"bench\": \"e20_federation\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"host_cpus\": " << host_cpus() << ",\n"
      << "  \"nodes\": 2,\n"
      << "  \"forwarded\": " << fa.forwarded << ",\n"
      << "  \"forward_accepts\": " << fa.forward_accepts << ",\n"
      << "  \"forward_rejects\": " << fa.forward_rejects << ",\n"
      << "  \"peer_claims\": " << fb.peer_claims << ",\n"
      << "  \"local_requests\": " << n << ",\n"
      << "  \"local_accepted\": " << local_accepted << ",\n"
      << "  \"revalidations_failed\": " << revalidations << ",\n"
      << "  \"forward_p50_ms\": " << p50 << ",\n"
      << "  \"forward_p99_ms\": " << p99 << ",\n"
      << "  \"forward_max_ms\": " << max_ms << ",\n"
      << "  \"elapsed_seconds\": " << elapsed_s << "\n}\n";
  if (!out.good()) {
    std::cerr << "ERROR: could not write " << json_path << "\n";
    return 1;
  }
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
