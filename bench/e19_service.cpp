// E19: admission-as-a-service under load — anytime strategies, the SLO
// governor, and load shedding.
//
// Two load shapes against the in-process AdmissionService (the daemon core;
// the socket layer adds nothing to planning latency worth benchmarking here),
// one artifact (BENCH_service_latency.json; pass a path as argv[1] to
// redirect):
//
//   light — an open-loop trickle (diurnal pattern, wall-clock gaps far wider
//     than exact planning time). The governor must never leave kExact: at
//     least 99% of requests are decided by the exact kernel within budget
//     and nothing is shed.
//
//   flash — a flash crowd: producers flood requests far faster than the
//     lanes can plan. The bounded queue must shed (kOverloaded, never
//     silence), the governor must demote at least once, the queue depth must
//     stay within its bound, and the p99 planning latency of *served*
//     requests must stay within the SLO — overload degrades acceptance
//     latency for the shed, never decision latency for the served.
//
//   calm  — a slow tail after the crowd: the governor must promote back
//     toward kExact once pressure clears.
//
// Safety gate, both phases: service.revalidations_failed == 0 — every accept
// from every rung carried a plan the live residual covered at commit. Any
// violation is fatal (exit 1) and the artifact is not written.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rota/service/service.hpp"
#include "rota/workload/generator.hpp"

namespace {

using namespace rota;
using namespace rota::service;

constexpr Tick kHorizon = 4000;

WorkloadGenerator make_generator(std::uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.num_locations = 4;
  config.laxity = 3.0;
  return WorkloadGenerator(config, CostModel{});
}

/// Collects streamed decisions and lets the driver await the full count.
struct Collector {
  void on_response(const AdmitResponse& response) {
    std::lock_guard<std::mutex> lock(mutex);
    responses.push_back(response);
    all_in.notify_all();
  }
  void await(std::size_t expected) {
    std::unique_lock<std::mutex> lock(mutex);
    all_in.wait(lock, [&] { return responses.size() >= expected; });
  }
  std::size_t served_by(const char* strategy) const {
    std::size_t n = 0;
    for (const auto& r : responses) {
      if (r.strategy == strategy) ++n;
    }
    return n;
  }
  std::size_t with_verdict(Verdict v) const {
    std::size_t n = 0;
    for (const auto& r : responses) {
      if (r.verdict == v) ++n;
    }
    return n;
  }

  std::mutex mutex;
  std::condition_variable all_in;
  std::vector<AdmitResponse> responses;
};

struct PhaseReport {
  std::size_t requests = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t shed = 0;
  std::size_t by_exact = 0, by_digest = 0, by_greedy = 0;
  std::uint64_t p99_planning_ns = 0;
  std::uint64_t demotions = 0, promotions = 0;
  std::uint64_t max_queue_depth = 0;
};

PhaseReport report_of(const Collector& collected, const ServiceStats& stats) {
  PhaseReport r;
  r.requests = collected.responses.size();
  r.accepted = collected.with_verdict(Verdict::kAccepted);
  r.rejected = collected.with_verdict(Verdict::kRejected);
  r.shed = collected.with_verdict(Verdict::kOverloaded);
  r.by_exact = collected.served_by("exact");
  r.by_digest = collected.served_by("digest");
  r.by_greedy = collected.served_by("greedy");
  r.p99_planning_ns = stats.planning_ns.quantile_upper_bound(0.99);
  r.demotions = stats.demotions;
  r.promotions = stats.promotions;
  r.max_queue_depth = stats.max_queue_depth;
  return r;
}

void print_phase(const char* name, const PhaseReport& r) {
  std::printf(
      "%-6s %5zu req  %4zu acc  %4zu rej  %4zu shed  "
      "exact/digest/greedy %zu/%zu/%zu  p99 %.2fms  demote %llu  "
      "promote %llu  maxq %llu\n",
      name, r.requests, r.accepted, r.rejected, r.shed, r.by_exact, r.by_digest,
      r.by_greedy, static_cast<double>(r.p99_planning_ns) / 1e6,
      static_cast<unsigned long long>(r.demotions),
      static_cast<unsigned long long>(r.promotions),
      static_cast<unsigned long long>(r.max_queue_depth));
}

void write_phase(std::ofstream& out, const char* name, const PhaseReport& r,
                 bool trailing_comma) {
  out << "  \"" << name << "\": {\"requests\": " << r.requests
      << ", \"accepted\": " << r.accepted << ", \"rejected\": " << r.rejected
      << ", \"shed\": " << r.shed << ", \"by_exact\": " << r.by_exact
      << ", \"by_digest\": " << r.by_digest << ", \"by_greedy\": " << r.by_greedy
      << ", \"p99_planning_ns\": " << r.p99_planning_ns
      << ", \"demotions\": " << r.demotions
      << ", \"promotions\": " << r.promotions
      << ", \"max_queue_depth\": " << r.max_queue_depth << "}"
      << (trailing_comma ? "," : "") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "== E19: admission service latency under load ==\n\n";
  std::string json_path = "BENCH_service_latency.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      json_path = arg;
    }
  }

  const std::uint64_t slo_ns = 20'000'000;  // 20 ms served-request p99 target

  // ---- Phase 1: light load ------------------------------------------------
  // Diurnal trickle, ~2ms wall-clock between arrivals: orders of magnitude
  // wider than exact planning, so the governor has no reason to move.
  const std::size_t light_n = smoke ? 120 : 600;
  PhaseReport light;
  {
    WorkloadGenerator gen = make_generator(2026);
    CommitmentLedger ledger(gen.base_supply(TimeInterval(0, kHorizon)));
    ServiceConfig config;
    config.lanes = 2;
    config.queue_capacity = 64;
    config.default_budget_us = 20'000;
    config.governor.slo_ns = slo_ns;
    AdmissionService svc(ledger, gen.phi(), config);

    ArrivalPattern pattern;
    pattern.base_mean_interarrival = 4.0;
    pattern.diurnal_amplitude = 0.5;
    pattern.diurnal_period = kHorizon / 2;
    std::vector<Arrival> arrivals = gen.make_arrivals(kHorizon, pattern);
    if (arrivals.size() > light_n) arrivals.resize(light_n);

    Collector collected;
    std::uint64_t id = 0;
    for (const Arrival& a : arrivals) {
      AdmitRequest request;
      request.id = ++id;
      request.at = a.at;
      request.computation = a.computation;
      svc.submit(std::move(request),
                 [&collected](const AdmitResponse& r) { collected.on_response(r); });
      // Open loop: the tick gap mapped to wall clock (0.5ms per tick at mean
      // gap 4 ticks ≈ 2ms between arrivals).
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    collected.await(arrivals.size());
    light = report_of(collected, svc.stats());
    svc.drain_and_stop();
    if (svc.stats().revalidations_failed != 0) {
      std::cerr << "FATAL: light phase revalidation failures\n";
      return 1;
    }
  }
  print_phase("light", light);
  const double exact_fraction =
      light.requests == 0
          ? 0.0
          : static_cast<double>(light.by_exact) / static_cast<double>(light.requests);
  if (exact_fraction < 0.99 || light.shed != 0) {
    std::cerr << "FATAL: light load must be served by kExact without shedding "
              << "(exact fraction " << exact_fraction << ", shed " << light.shed
              << ")\n";
    return 1;
  }

  // ---- Phase 2: flash crowd ----------------------------------------------
  // Producers flood the queue far faster than two lanes can plan: the queue
  // bound turns the excess into explicit sheds and sustained depth drives
  // the governor down the ladder.
  const std::size_t flash_n = smoke ? 600 : 3000;
  PhaseReport flash;
  PhaseReport calm;
  std::uint64_t revalidations = 0;
  int final_level = 0;
  {
    WorkloadGenerator gen = make_generator(2027);
    CommitmentLedger ledger(gen.base_supply(TimeInterval(0, kHorizon)));
    ServiceConfig config;
    config.lanes = 2;
    config.queue_capacity = 64;
    config.default_budget_us = 20'000;
    config.governor.slo_ns = slo_ns;
    config.governor.queue_high = 16;
    config.governor.queue_low = 4;
    config.governor.demote_after = 4;
    config.governor.promote_after = smoke ? 16 : 32;
    AdmissionService svc(ledger, gen.phi(), config);

    // The flash crowd itself: a pattern whose flash window covers the whole
    // burst, realized as 4 producers submitting back-to-back.
    ArrivalPattern pattern;
    pattern.base_mean_interarrival = 4.0;
    pattern.flash_multiplier = 50.0;
    pattern.flash_at = 0;
    pattern.flash_duration = 400;
    std::vector<Arrival> arrivals = gen.make_arrivals(kHorizon, pattern);
    while (arrivals.size() < flash_n) {
      std::vector<Arrival> more = gen.make_arrivals(kHorizon, pattern);
      arrivals.insert(arrivals.end(), more.begin(), more.end());
    }
    arrivals.resize(flash_n);

    Collector collected;
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= arrivals.size()) return;
          AdmitRequest request;
          request.id = static_cast<std::uint64_t>(i) + 1;
          request.at = arrivals[i].at;
          request.computation = arrivals[i].computation;
          svc.submit(std::move(request), [&collected](const AdmitResponse& r) {
            collected.on_response(r);
          });
        }
      });
    }
    for (auto& t : producers) t.join();
    collected.await(arrivals.size());
    flash = report_of(collected, svc.stats());

    // ---- Phase 3: calm tail — promotion after pressure clears -------------
    const std::size_t calm_n =
        static_cast<std::size_t>(config.governor.promote_after) * 2 + 8;
    Collector calm_collected;
    const ServiceStats before_calm = svc.stats();
    for (std::size_t i = 0; i < calm_n; ++i) {
      AdmitRequest request;
      request.id = 1'000'000 + i;
      request.at = arrivals[i % arrivals.size()].at;
      request.computation = gen.make_computation(request.at);
      svc.submit(std::move(request), [&calm_collected](const AdmitResponse& r) {
        calm_collected.on_response(r);
      });
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
    calm_collected.await(calm_n);
    calm = report_of(calm_collected, svc.stats());
    calm.demotions -= flash.demotions;    // phase-local deltas
    calm.promotions -= flash.promotions;
    calm.max_queue_depth = before_calm.max_queue_depth;
    final_level = static_cast<int>(svc.governor().level());

    svc.drain_and_stop();
    revalidations = svc.stats().revalidations_failed;
  }
  print_phase("flash", flash);
  print_phase("calm", calm);
  std::printf("final governor level: %s   revalidations failed: %llu\n",
              strategy_name(static_cast<StrategyKind>(final_level)),
              static_cast<unsigned long long>(revalidations));

  // ---- Acceptance checks --------------------------------------------------
  if (revalidations != 0) {
    std::cerr << "FATAL: a degraded accept was refused by the live residual\n";
    return 1;
  }
  if (flash.demotions == 0) {
    std::cerr << "FATAL: flash crowd did not demote the governor\n";
    return 1;
  }
  if (flash.shed == 0) {
    std::cerr << "FATAL: flash crowd was not shed (queue bound ineffective)\n";
    return 1;
  }
  if (flash.max_queue_depth > 64) {
    std::cerr << "FATAL: queue depth " << flash.max_queue_depth
              << " exceeded its bound\n";
    return 1;
  }
  if (flash.p99_planning_ns > slo_ns) {
    std::cerr << "FATAL: served-request p99 " << flash.p99_planning_ns
              << "ns exceeded the " << slo_ns << "ns SLO\n";
    return 1;
  }
  if (calm.promotions == 0) {
    std::cerr << "FATAL: governor failed to promote after pressure cleared\n";
    return 1;
  }

  std::ofstream out(json_path);
  out << "{\n  \"bench\": \"e19_service\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"slo_ns\": " << slo_ns << ",\n"
      << "  \"queue_capacity\": 64,\n"
      << "  \"light_exact_fraction\": " << exact_fraction << ",\n";
  write_phase(out, "light", light, true);
  write_phase(out, "flash", flash, true);
  write_phase(out, "calm", calm, true);
  out << "  \"final_level\": \"" << strategy_name(static_cast<StrategyKind>(final_level))
      << "\",\n  \"revalidations_failed\": " << revalidations << "\n}\n";
  if (!out.good()) {
    std::cerr << "ERROR: could not write " << json_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}
