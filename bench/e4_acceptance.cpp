// E4: acceptance ratio vs load, and the crossover where over-admission stops
// paying. ROTA accepts less than the unsound baselines, but *useful*
// throughput (jobs that actually meet their deadlines) tells the real story:
// past saturation the baselines' on-time count falls below ROTA's.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "rota/admission/baselines.hpp"
#include "rota/sim/simulator.hpp"
#include "rota/util/table.hpp"
#include "rota/workload/generator.hpp"

namespace {

using namespace rota;

struct Outcome {
  std::size_t offered = 0;
  std::size_t admitted = 0;
  std::size_t on_time = 0;
};

Outcome offered_load(AdmissionStrategy& strategy, ExecutionMode mode, double gap,
                     std::uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.num_locations = 3;
  config.cpu_rate = 8;
  config.network_rate = 8;
  config.mean_interarrival = gap;
  config.laxity = 1.6;
  const Tick horizon = 700;

  WorkloadGenerator gen(config, CostModel());
  const ResourceSet supply = gen.base_supply(TimeInterval(0, horizon));
  const auto arrivals = gen.make_arrivals(horizon * 2 / 3);

  Simulator sim(supply, 0, mode, PriorityOrder::kEdf);
  Outcome out;
  out.offered = arrivals.size();
  for (const Arrival& a : arrivals) {
    AdmissionDecision d = strategy.request(a.computation, a.at);
    if (!d.accepted) continue;
    ++out.admitted;
    sim.schedule_admission(a.at,
                           make_concurrent_requirement(gen.phi(), a.computation),
                           std::move(d.plan));
  }
  SimReport report = sim.run(horizon);
  out.on_time = report.met();
  return out;
}

void print_acceptance_sweep() {
  util::Table table({"interarrival", "strategy", "offered", "acceptance", "on-time",
                     "on-time ratio"});
  for (double gap : {32.0, 16.0, 8.0, 4.0, 2.0}) {
    WorkloadConfig probe;
    probe.num_locations = 3;
    probe.cpu_rate = 8;
    probe.network_rate = 8;
    WorkloadGenerator probe_gen(probe, CostModel());
    const ResourceSet supply = probe_gen.base_supply(TimeInterval(0, 700));

    RotaStrategy rota(CostModel(), supply);
    NaiveTotalQuantityStrategy naive(CostModel(), supply);
    AlwaysAdmitStrategy always;

    struct Row {
      const char* label;
      AdmissionStrategy* strategy;
      ExecutionMode mode;
    } rows[] = {
        {"rota-asap", &rota, ExecutionMode::kPlanFollowing},
        {"naive-total", &naive, ExecutionMode::kWorkConserving},
        {"always-admit", &always, ExecutionMode::kWorkConserving},
    };
    for (const Row& r : rows) {
      Outcome o = offered_load(*r.strategy, r.mode, gap, /*seed=*/515);
      table.add_row(
          {util::fixed(gap, 1), r.label, std::to_string(o.offered),
           util::fixed(o.offered ? static_cast<double>(o.admitted) / o.offered : 0, 3),
           std::to_string(o.on_time),
           util::fixed(o.offered ? static_cast<double>(o.on_time) / o.offered : 0, 3)});
    }
  }
  std::cout << "== E4: acceptance and useful (on-time) throughput vs load ==\n"
            << table.to_string()
            << "\nwatch the crossover: under light load everyone looks fine; as "
               "load grows,\nover-admission converts accepted jobs into missed "
               "deadlines.\n\n";
}

void BM_AcceptanceSweepPoint(benchmark::State& state) {
  for (auto _ : state) {
    WorkloadConfig probe;
    probe.num_locations = 3;
    probe.cpu_rate = 8;
    probe.network_rate = 8;
    WorkloadGenerator gen(probe, CostModel());
    RotaStrategy rota(CostModel(), gen.base_supply(TimeInterval(0, 700)));
    benchmark::DoNotOptimize(
        offered_load(rota, ExecutionMode::kPlanFollowing, 8.0, 516));
  }
}
BENCHMARK(BM_AcceptanceSweepPoint)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_acceptance_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
