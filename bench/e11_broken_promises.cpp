// E11: broken promises. The paper's model assumes a joining resource honours
// the interval it declared. Open systems are not that polite — donors crash,
// lie, or leave early. This experiment breaks a fraction of the announced
// donations (the controller plans on them; the executor never sees them) and
// measures the damage, then applies the natural mitigation: *discount*
// announced donations to a fraction of their declared rate before reasoning
// about them. Shape: misses grow with the break fraction; a discount of
// 1 − break restores (near-)zero misses at an acceptance cost; planning only
// on guaranteed base supply (discount 0) is the fully safe floor.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "rota/admission/controller.hpp"
#include "rota/sim/simulator.hpp"
#include "rota/util/rng.hpp"
#include "rota/util/table.hpp"
#include "rota/workload/generator.hpp"

namespace {

using namespace rota;

struct PromiseResult {
  std::size_t offered = 0;
  std::size_t admitted = 0;
  std::size_t missed = 0;
};

/// `break_fraction` of donations never materialize; the controller reasons
/// about every announcement at `discount` of its declared rate.
PromiseResult run_promises(double break_fraction, double discount,
                           std::uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.num_locations = 4;
  config.cpu_rate = 1;  // starving base: donations carry the system
  config.network_rate = 3;
  config.mean_interarrival = 6.0;
  config.laxity = 1.3;  // tight deadlines: lost donations cannot be absorbed
  const Tick horizon = 900;

  WorkloadGenerator gen(config, CostModel());
  const ResourceSet base = gen.base_supply(TimeInterval(0, horizon));
  ChurnTrace churn = gen.make_churn(horizon, /*join_rate=*/0.4,
                                    /*mean_lifetime=*/70.0, /*max_rate=*/8);

  // Decide which donations are honest, reproducibly.
  util::Rng coin(seed * 31 + 17);
  std::vector<bool> honest;
  honest.reserve(churn.size());
  for (std::size_t i = 0; i < churn.size(); ++i) {
    honest.push_back(!coin.chance(break_fraction));
  }

  RotaAdmissionController ctl(gen.phi(), base);
  // Execution must be work-conserving: plans may reference supply that never
  // arrives, so the executor reallocates greedily.
  Simulator sim(base, 0, ExecutionMode::kWorkConserving, PriorityOrder::kEdf);
  for (std::size_t i = 0; i < churn.size(); ++i) {
    if (!honest[i]) continue;  // the broken promise never materializes
    ResourceSet joined;
    joined.add(churn.events()[i].term);
    sim.schedule_join(churn.events()[i].at, joined);
  }

  PromiseResult result;
  std::size_t next_join = 0;
  for (const Arrival& a : gen.make_arrivals(horizon * 2 / 3)) {
    while (next_join < churn.size() && churn.events()[next_join].at <= a.at) {
      const ResourceTerm& term = churn.events()[next_join].term;
      const Rate discounted = static_cast<Rate>(
          std::floor(static_cast<double>(term.rate()) * discount));
      if (discounted > 0) {
        ResourceSet announced;
        announced.add(discounted, term.interval(), term.type());
        ctl.on_join(announced);  // the controller believes the (discounted) ad
      }
      ++next_join;
    }
    ++result.offered;
    AdmissionDecision d = ctl.request(a.computation, a.at);
    if (!d.accepted) continue;
    ++result.admitted;
    sim.schedule_admission(a.at,
                           make_concurrent_requirement(gen.phi(), a.computation));
  }
  result.missed = sim.run(horizon).missed();
  return result;
}

void print_promise_sweep() {
  util::Table table({"break fraction", "trust discount", "offered", "admitted",
                     "missed", "miss-rate"});
  for (double broken : {0.0, 0.25, 0.5, 0.75}) {
    for (double discount : {1.0, 0.5, 0.25, 0.0}) {
      PromiseResult r = run_promises(broken, discount, 1111);
      table.add_row(
          {util::fixed(broken, 2), util::fixed(discount, 2),
           std::to_string(r.offered), std::to_string(r.admitted),
           std::to_string(r.missed),
           util::fixed(r.admitted ? static_cast<double>(r.missed) / r.admitted : 0.0,
                       3)});
    }
  }
  std::cout << "== E11: broken donation promises (beyond-paper robustness) ==\n"
            << table.to_string()
            << "\ndiscount 1.0 = trust every announcement (the paper's model);\n"
               "discount 0.0 = plan only on guaranteed base supply (safe "
               "floor).\n\n";
}

void BM_PromiseScenario(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_promises(0.25, 0.5, 1112));
  }
}
BENCHMARK(BM_PromiseScenario)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_promise_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
