// E21: hostile-conditions fault sweep — accepted-plan deadline-hit rate of
// the cluster layer under seeded crash/restart/partition schedules, with and
// without closed-loop retry clients, at three fault intensities (calm /
// moderate / hostile). Writes BENCH_faults.json (pass a path as argv[1] to
// redirect; --smoke shrinks the workload for CI).
//
// Both retry variants of an intensity run against the byte-identical fault
// schedule and arrival stream, so the retries column is the only thing that
// moves between them: the gap between deadline_hit_rate (per submission,
// retries diluted in) and root_hit_rate (per original job, retries folded
// into their root) is what the storm buys back.
//
// The bench exits non-zero on its own invariants: message accounting must
// balance (sent = delivered + dropped + in-flight), every decision must be
// an original or a minted retry, calm cells must lose nothing, a no-retry
// cell must resubmit nothing, the hostile retry cell must actually storm,
// and an identically-seeded rerun of that flagship cell must reproduce the
// decision log byte for byte.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "rota/cluster/cluster.hpp"
#include "rota/faults/schedule.hpp"
#include "rota/util/rng.hpp"
#include "rota/workload/generator.hpp"

namespace {

using namespace rota;
using namespace rota::cluster;

constexpr std::size_t kNodes = 4;
constexpr double kHotFraction = 0.5;
constexpr std::uint64_t kSeed = 2026;

struct Intensity {
  const char* name;
  bool faulty;  // calm = no schedule at all
  faults::FaultProfile profile;
};

std::vector<Intensity> intensities() {
  Intensity calm{"calm", false, {}};

  Intensity moderate{"moderate", true, {}};
  moderate.profile.crash_rate = 0.5;
  moderate.profile.min_outage = 4;
  moderate.profile.max_outage = 12;
  moderate.profile.partition_rate = 0.4;
  moderate.profile.heal_probability = 0.9;

  Intensity hostile{"hostile", true, {}};
  hostile.profile.crash_rate = 1.0;
  hostile.profile.restart_probability = 0.8;
  hostile.profile.recover_probability = 0.5;
  hostile.profile.min_outage = 0;  // same-tick bounces allowed
  hostile.profile.max_outage = 20;
  hostile.profile.partition_rate = 0.9;
  hostile.profile.min_cut = 0;
  hostile.profile.max_cut = 20;
  hostile.profile.heal_probability = 0.8;

  return {calm, moderate, hostile};
}

struct Cell {
  std::string intensity;
  std::size_t fault_events = 0;
  bool retries = false;

  std::size_t originals = 0;
  std::size_t submitted = 0;  // originals + minted retries
  std::uint64_t resubmissions = 0;
  std::size_t accepted_local = 0;
  std::size_t accepted_remote = 0;
  std::size_t rejected = 0;
  std::size_t lost = 0;
  double hit_rate = 0.0;       // accepted-and-survived over submissions
  double root_hit_rate = 0.0;  // retries folded into their original job
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_delivered = 0;
  std::uint64_t msgs_dropped = 0;
  std::uint64_t msgs_in_flight = 0;
  std::string decision_log;
};

Cell run_cell(const Intensity& intensity, std::size_t intensity_index,
              bool retries, Tick arrival_window) {
  const Tick horizon = arrival_window + 200;
  Cell cell;
  cell.intensity = intensity.name;
  cell.retries = retries;

  // A fresh generator per cell: every cell of the sweep sees the
  // byte-identical arrival sequence.
  WorkloadConfig wc;
  wc.seed = kSeed;
  wc.num_locations = kNodes;
  wc.mean_interarrival = 1.5;
  wc.laxity = 3.0;  // enough slack that a backed-off retry can still land
  WorkloadGenerator gen(wc, CostModel());

  ClusterConfig config;
  config.seed = kSeed;
  config.default_link.jitter = 1;
  config.default_link.drop = 0.02;
  ClusterSim sim(CostModel(), config);
  for (std::size_t i = 0; i < kNodes; ++i) {
    sim.add_node(gen.locations()[i], gen.node_supply(i, TimeInterval(0, horizon)));
  }

  if (intensity.faulty) {
    // Seeded per intensity, not per cell: both retry variants replay the
    // exact same hostile timeline.
    util::Rng fault_rng(kSeed + intensity_index);
    const faults::FaultSchedule schedule = faults::make_fault_schedule(
        fault_rng, kNodes, arrival_window, intensity.profile);
    cell.fault_events = schedule.size();
    sim.apply(schedule);
  }
  if (retries) {
    faults::RetryPolicy policy;
    policy.max_attempts = 4;
    policy.backoff_base = 1;
    policy.backoff_cap = 8;
    policy.jitter = 2;
    sim.set_retry_policy(policy, kSeed + intensity_index);
  }

  std::size_t originals = 0;
  for (const ClusterArrivalSpec& a :
       gen.make_cluster_arrivals(arrival_window, kNodes, kHotFraction)) {
    sim.submit(a.at, static_cast<NodeId>(a.origin), a.work);
    ++originals;
  }

  const ClusterReport report = sim.run(horizon);
  cell.originals = originals;
  cell.submitted = report.submitted();
  cell.resubmissions = report.resubmissions;
  cell.accepted_local = report.accepted(Placement::kLocal);
  cell.accepted_remote = report.accepted(Placement::kRemote);
  cell.rejected = report.rejected();
  cell.lost = report.lost();
  cell.hit_rate = report.deadline_hit_rate();
  cell.root_hit_rate = report.root_hit_rate();
  cell.msgs_sent = report.messages_sent;
  cell.msgs_delivered = report.messages_delivered;
  cell.msgs_dropped = report.messages_dropped;
  cell.msgs_in_flight = report.messages_in_flight;
  cell.decision_log = report.decision_log();
  return cell;
}

void print_cell(const Cell& c) {
  std::cout << c.intensity << (c.retries ? " +retries" : "          ")
            << ": faults=" << c.fault_events << " jobs=" << c.originals
            << " resubmit=" << c.resubmissions
            << " local=" << c.accepted_local << " remote=" << c.accepted_remote
            << " rejected=" << c.rejected << " lost=" << c.lost
            << " hit=" << c.hit_rate << " root_hit=" << c.root_hit_rate
            << "\n";
}

bool check_cell(const Cell& c, std::string& error) {
  if (c.msgs_sent != c.msgs_delivered + c.msgs_dropped + c.msgs_in_flight) {
    error = c.intensity + ": message accounting broke (sent " +
            std::to_string(c.msgs_sent) + " != delivered " +
            std::to_string(c.msgs_delivered) + " + dropped " +
            std::to_string(c.msgs_dropped) + " + in-flight " +
            std::to_string(c.msgs_in_flight) + ")";
    return false;
  }
  if (c.submitted != c.originals + c.resubmissions) {
    error = c.intensity + ": decision coverage broke (" +
            std::to_string(c.submitted) + " decisions for " +
            std::to_string(c.originals) + " jobs + " +
            std::to_string(c.resubmissions) + " retries)";
    return false;
  }
  if (!c.retries && c.resubmissions != 0) {
    error = c.intensity + ": retries disabled but " +
            std::to_string(c.resubmissions) + " resubmissions minted";
    return false;
  }
  if (c.fault_events == 0 && c.lost != 0) {
    error = c.intensity + ": no faults scheduled but " +
            std::to_string(c.lost) + " placements lost";
    return false;
  }
  return true;
}

void emit_cell(std::ofstream& out, const Cell& c, bool last) {
  out << "    {\"intensity\": \"" << c.intensity << "\", \"retries\": "
      << (c.retries ? "true" : "false")
      << ", \"fault_events\": " << c.fault_events
      << ", \"jobs\": " << c.originals
      << ", \"resubmissions\": " << c.resubmissions
      << ", \"submitted\": " << c.submitted
      << ", \"accepted_local\": " << c.accepted_local
      << ", \"accepted_remote\": " << c.accepted_remote
      << ", \"rejected\": " << c.rejected << ", \"lost\": " << c.lost
      << ", \"deadline_hit_rate\": " << c.hit_rate
      << ", \"root_hit_rate\": " << c.root_hit_rate
      << ", \"messages_sent\": " << c.msgs_sent
      << ", \"messages_delivered\": " << c.msgs_delivered
      << ", \"messages_dropped\": " << c.msgs_dropped
      << ", \"messages_in_flight\": " << c.msgs_in_flight << "}"
      << (last ? "" : ",") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "BENCH_faults.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      path = arg;
    }
  }
  const Tick arrival_window = smoke ? 120 : 400;

  const std::vector<Intensity> sweep = intensities();
  std::vector<Cell> cells;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    for (const bool retries : {false, true}) {
      cells.push_back(run_cell(sweep[i], i, retries, arrival_window));
      print_cell(cells.back());
      std::string error;
      if (!check_cell(cells.back(), error)) {
        std::cerr << "FATAL: " << error << "\n";
        return 1;
      }
    }
  }

  // The flagship is the hostile retry-storm cell: it must actually storm,
  // and an identically-seeded rerun must reproduce it byte for byte.
  const Cell& flagship = cells.back();
  if (flagship.resubmissions == 0) {
    std::cerr << "FATAL: the hostile retry cell minted no resubmissions — "
                 "the storm never fired\n";
    return 1;
  }
  const Cell rerun = run_cell(sweep.back(), sweep.size() - 1, true,
                              arrival_window);
  if (rerun.decision_log != flagship.decision_log ||
      rerun.resubmissions != flagship.resubmissions) {
    std::cerr << "FATAL: identical seeds produced different fault-sweep "
                 "runs\n";
    return 1;
  }
  std::cout << "determinism: flagship rerun identical (" << flagship.submitted
            << " decisions, " << flagship.resubmissions << " retries)\n";

  std::ofstream out(path);
  out << "{\n"
      << "  \"bench\": \"e21_faults\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"workload\": {\n"
      << "    \"seed\": " << kSeed << ",\n"
      << "    \"nodes\": " << kNodes << ",\n"
      << "    \"arrival_window_ticks\": " << arrival_window << ",\n"
      << "    \"hot_fraction\": " << kHotFraction << ",\n"
      << "    \"mean_interarrival\": 1.5\n"
      << "  },\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    emit_cell(out, cells[i], i + 1 == cells.size());
  }
  out << "  ],\n"
      << "  \"flagship\": {\n"
      << "    \"intensity\": \"" << flagship.intensity << "\",\n"
      << "    \"resubmissions\": " << flagship.resubmissions << ",\n"
      << "    \"deadline_hit_rate\": " << flagship.hit_rate << ",\n"
      << "    \"root_hit_rate\": " << flagship.root_hit_rate << ",\n"
      << "    \"determinism\": \"rerun decision log identical\"\n"
      << "  }\n"
      << "}\n";
  if (!out.good()) {
    std::cerr << "FATAL: failed to write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << path << "\n";
  return 0;
}
