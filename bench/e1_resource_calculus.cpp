// E1: the paper's §III worked resource-set calculations, printed and checked,
// plus microbenchmarks of the three calculus operations on those shapes.
#include <benchmark/benchmark.h>

#include <cassert>
#include <iostream>

#include "rota/resource/resource_set.hpp"
#include "rota/util/table.hpp"

namespace {

using namespace rota;

void print_worked_examples() {
  Location l1("e1-l1"), l2("e1-l2");
  const LocatedType cpu1 = LocatedType::cpu(l1);
  const LocatedType net12 = LocatedType::network(l1, l2);

  util::Table table({"expression", "result"});

  {
    // {5}^(0,3)_cpu ∪ {5}^(0,5)_net — distinct types stay separate.
    ResourceSet s;
    s.add(5, TimeInterval(0, 3), cpu1);
    s.add(5, TimeInterval(0, 5), net12);
    table.add_row({"{5}^(0,3)_cpu u {5}^(0,5)_net", s.to_string()});
  }
  {
    // {5}^(0,3)_cpu ∪ {5}^(0,5)_cpu = {10}^(0,3), {5}^(3,5).
    ResourceSet s;
    s.add(5, TimeInterval(0, 3), cpu1);
    s.add(5, TimeInterval(0, 5), cpu1);
    table.add_row({"{5}^(0,3)_cpu u {5}^(0,5)_cpu", s.to_string()});
    assert(s.availability(cpu1).value_at(0) == 10);
    assert(s.availability(cpu1).value_at(4) == 5);
  }
  {
    // {5}^(0,3)_cpu \ {3}^(1,2)_cpu = {5}^(0,1), {2}^(1,2), {5}^(2,3).
    ResourceSet a;
    a.add(5, TimeInterval(0, 3), cpu1);
    ResourceSet b;
    b.add(3, TimeInterval(1, 2), cpu1);
    auto diff = a.relative_complement(b);
    assert(diff.has_value());
    table.add_row({"{5}^(0,3)_cpu \\ {3}^(1,2)_cpu", diff->to_string()});
  }
  {
    // Undefined complement: the subtrahend is not dominated.
    ResourceSet a;
    a.add(5, TimeInterval(0, 3), cpu1);
    ResourceSet b;
    b.add(6, TimeInterval(1, 2), cpu1);
    table.add_row({"{5}^(0,3)_cpu \\ {6}^(1,2)_cpu",
                   a.relative_complement(b) ? "defined (BUG)" : "undefined"});
  }

  std::cout << "== E1: the paper's Section III worked examples ==\n"
            << table.to_string() << "\n";
}

ResourceSet make_set(int terms, int type_count) {
  static Location locs[] = {Location("e1-m1"), Location("e1-m2"), Location("e1-m3"),
                            Location("e1-m4")};
  ResourceSet s;
  for (int i = 0; i < terms; ++i) {
    const Tick start = (i * 7) % 97;
    const Tick end = start + 3 + (i % 11);
    s.add(1 + i % 5, TimeInterval(start, end), LocatedType::cpu(locs[i % type_count]));
  }
  return s;
}

void BM_UnionTerm(benchmark::State& state) {
  ResourceSet base = make_set(static_cast<int>(state.range(0)), 4);
  Location l("e1-m1");
  std::size_t i = 0;
  for (auto _ : state) {
    ResourceSet copy = base;
    copy.add(3, TimeInterval(static_cast<Tick>(i % 90), static_cast<Tick>(i % 90 + 5)),
             LocatedType::cpu(l));
    benchmark::DoNotOptimize(copy);
    ++i;
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_UnionTerm)->Arg(8)->Arg(64)->Arg(512)->Complexity();

void BM_UnionSets(benchmark::State& state) {
  ResourceSet a = make_set(static_cast<int>(state.range(0)), 4);
  ResourceSet b = make_set(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) benchmark::DoNotOptimize(a.unioned(b));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_UnionSets)->Arg(8)->Arg(64)->Arg(512)->Complexity();

void BM_RelativeComplement(benchmark::State& state) {
  ResourceSet a = make_set(static_cast<int>(state.range(0)), 4);
  ResourceSet b = make_set(static_cast<int>(state.range(0)) / 2, 4);
  ResourceSet sum = a.unioned(b);
  for (auto _ : state) benchmark::DoNotOptimize(sum.relative_complement(b));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RelativeComplement)->Arg(8)->Arg(64)->Arg(512)->Complexity();

void BM_TermExtraction(benchmark::State& state) {
  ResourceSet a = make_set(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) benchmark::DoNotOptimize(a.terms());
}
BENCHMARK(BM_TermExtraction)->Arg(8)->Arg(64)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  print_worked_examples();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
